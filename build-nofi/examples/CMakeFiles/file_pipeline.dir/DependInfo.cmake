
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/file_pipeline.cpp" "examples/CMakeFiles/file_pipeline.dir/file_pipeline.cpp.o" "gcc" "examples/CMakeFiles/file_pipeline.dir/file_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-nofi/src/eval/CMakeFiles/privrec_eval.dir/DependInfo.cmake"
  "/root/repo/build-nofi/src/core/CMakeFiles/privrec_core.dir/DependInfo.cmake"
  "/root/repo/build-nofi/src/dp/CMakeFiles/privrec_dp.dir/DependInfo.cmake"
  "/root/repo/build-nofi/src/community/CMakeFiles/privrec_community.dir/DependInfo.cmake"
  "/root/repo/build-nofi/src/similarity/CMakeFiles/privrec_similarity.dir/DependInfo.cmake"
  "/root/repo/build-nofi/src/data/CMakeFiles/privrec_data.dir/DependInfo.cmake"
  "/root/repo/build-nofi/src/graph/CMakeFiles/privrec_graph.dir/DependInfo.cmake"
  "/root/repo/build-nofi/src/la/CMakeFiles/privrec_la.dir/DependInfo.cmake"
  "/root/repo/build-nofi/src/common/CMakeFiles/privrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
