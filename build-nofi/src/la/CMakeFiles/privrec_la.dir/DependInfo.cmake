
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/csr_matrix.cc" "src/la/CMakeFiles/privrec_la.dir/csr_matrix.cc.o" "gcc" "src/la/CMakeFiles/privrec_la.dir/csr_matrix.cc.o.d"
  "/root/repo/src/la/dense_matrix.cc" "src/la/CMakeFiles/privrec_la.dir/dense_matrix.cc.o" "gcc" "src/la/CMakeFiles/privrec_la.dir/dense_matrix.cc.o.d"
  "/root/repo/src/la/svd.cc" "src/la/CMakeFiles/privrec_la.dir/svd.cc.o" "gcc" "src/la/CMakeFiles/privrec_la.dir/svd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-nofi/src/common/CMakeFiles/privrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
