# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-nofi/src/common/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-nofi/src/la/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-nofi/src/graph/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-nofi/src/data/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-nofi/src/similarity/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-nofi/src/community/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-nofi/src/dp/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-nofi/src/eval/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build-nofi/src/core/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-nofi/src/common/libprivrec_common.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-nofi/src/la/libprivrec_la.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-nofi/src/graph/libprivrec_graph.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-nofi/src/data/libprivrec_data.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-nofi/src/similarity/libprivrec_similarity.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-nofi/src/community/libprivrec_community.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-nofi/src/dp/libprivrec_dp.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-nofi/src/eval/libprivrec_eval.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-nofi/src/core/libprivrec_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/privrec" TYPE DIRECTORY FILES "/root/repo/src/" FILES_MATCHING REGEX "/[^/]*\\.h$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/privrec/privrecConfig.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/privrec/privrecConfig.cmake"
         "/root/repo/build-nofi/src/CMakeFiles/Export/83ce0a26091c83324ae6a436f961eebf/privrecConfig.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/privrec/privrecConfig-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/privrec/privrecConfig.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/privrec" TYPE FILE FILES "/root/repo/build-nofi/src/CMakeFiles/Export/83ce0a26091c83324ae6a436f961eebf/privrecConfig.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ww][Ii][Tt][Hh][Dd][Ee][Bb][Ii][Nn][Ff][Oo])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/privrec" TYPE FILE FILES "/root/repo/build-nofi/src/CMakeFiles/Export/83ce0a26091c83324ae6a436f961eebf/privrecConfig-relwithdebinfo.cmake")
  endif()
endif()

