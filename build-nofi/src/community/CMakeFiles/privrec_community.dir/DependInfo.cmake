
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/community/kmeans.cc" "src/community/CMakeFiles/privrec_community.dir/kmeans.cc.o" "gcc" "src/community/CMakeFiles/privrec_community.dir/kmeans.cc.o.d"
  "/root/repo/src/community/label_propagation.cc" "src/community/CMakeFiles/privrec_community.dir/label_propagation.cc.o" "gcc" "src/community/CMakeFiles/privrec_community.dir/label_propagation.cc.o.d"
  "/root/repo/src/community/louvain.cc" "src/community/CMakeFiles/privrec_community.dir/louvain.cc.o" "gcc" "src/community/CMakeFiles/privrec_community.dir/louvain.cc.o.d"
  "/root/repo/src/community/modularity.cc" "src/community/CMakeFiles/privrec_community.dir/modularity.cc.o" "gcc" "src/community/CMakeFiles/privrec_community.dir/modularity.cc.o.d"
  "/root/repo/src/community/partition.cc" "src/community/CMakeFiles/privrec_community.dir/partition.cc.o" "gcc" "src/community/CMakeFiles/privrec_community.dir/partition.cc.o.d"
  "/root/repo/src/community/partition_io.cc" "src/community/CMakeFiles/privrec_community.dir/partition_io.cc.o" "gcc" "src/community/CMakeFiles/privrec_community.dir/partition_io.cc.o.d"
  "/root/repo/src/community/postprocess.cc" "src/community/CMakeFiles/privrec_community.dir/postprocess.cc.o" "gcc" "src/community/CMakeFiles/privrec_community.dir/postprocess.cc.o.d"
  "/root/repo/src/community/quality.cc" "src/community/CMakeFiles/privrec_community.dir/quality.cc.o" "gcc" "src/community/CMakeFiles/privrec_community.dir/quality.cc.o.d"
  "/root/repo/src/community/simple_clusterings.cc" "src/community/CMakeFiles/privrec_community.dir/simple_clusterings.cc.o" "gcc" "src/community/CMakeFiles/privrec_community.dir/simple_clusterings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-nofi/src/la/CMakeFiles/privrec_la.dir/DependInfo.cmake"
  "/root/repo/build-nofi/src/graph/CMakeFiles/privrec_graph.dir/DependInfo.cmake"
  "/root/repo/build-nofi/src/common/CMakeFiles/privrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
