
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dp/audit.cc" "src/dp/CMakeFiles/privrec_dp.dir/audit.cc.o" "gcc" "src/dp/CMakeFiles/privrec_dp.dir/audit.cc.o.d"
  "/root/repo/src/dp/budget.cc" "src/dp/CMakeFiles/privrec_dp.dir/budget.cc.o" "gcc" "src/dp/CMakeFiles/privrec_dp.dir/budget.cc.o.d"
  "/root/repo/src/dp/ledger.cc" "src/dp/CMakeFiles/privrec_dp.dir/ledger.cc.o" "gcc" "src/dp/CMakeFiles/privrec_dp.dir/ledger.cc.o.d"
  "/root/repo/src/dp/mechanisms.cc" "src/dp/CMakeFiles/privrec_dp.dir/mechanisms.cc.o" "gcc" "src/dp/CMakeFiles/privrec_dp.dir/mechanisms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-nofi/src/common/CMakeFiles/privrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
