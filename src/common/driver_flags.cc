#include "common/driver_flags.h"

#include <iostream>
#include <utility>

#include "common/parallel.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace privrec {

int64_t ApplyThreadsFlag(FlagParser& flags) {
  int64_t threads = flags.GetInt("threads", GlobalThreadCount());
  SetGlobalThreadCount(threads);
  return GlobalThreadCount();
}

ServeFlagSettings ApplyServeFlags(FlagParser& flags) {
  ServeFlagSettings s;
  s.deadline_ms = flags.GetInt("serve-deadline-ms", s.deadline_ms);
  s.queue_depth = flags.GetInt("serve-queue-depth", s.queue_depth);
  s.max_concurrency =
      flags.GetInt("serve-max-concurrency", s.max_concurrency);
  s.breaker_failures =
      flags.GetInt("serve-breaker-failures", s.breaker_failures);
  s.breaker_cooldown_ms =
      flags.GetInt("serve-breaker-cooldown-ms", s.breaker_cooldown_ms);
  s.reload_period = flags.GetInt("serve-reload-period", s.reload_period);
  s.batch_window_ms =
      flags.GetInt("serve-batch-window-ms", s.batch_window_ms);
  s.batch_max_requests =
      flags.GetInt("serve-batch-max-requests", s.batch_max_requests);
  s.batch_max_users =
      flags.GetInt("serve-batch-max-users", s.batch_max_users);
  return s;
}

LoadFlagSettings ApplyLoadFlags(FlagParser& flags) {
  LoadFlagSettings s;
  s.rps = flags.GetDouble("load-rps", s.rps);
  s.duration_ms = flags.GetInt("load-duration-ms", s.duration_ms);
  s.seed = flags.GetInt("load-seed", s.seed);
  s.zipf_s = flags.GetDouble("load-zipf-s", s.zipf_s);
  s.users_per_request =
      flags.GetInt("load-users-per-request", s.users_per_request);
  s.burst_factor = flags.GetDouble("load-burst-factor", s.burst_factor);
  s.burst_period_ms =
      flags.GetInt("load-burst-period-ms", s.burst_period_ms);
  s.burst_duration_ms =
      flags.GetInt("load-burst-duration-ms", s.burst_duration_ms);
  s.swap_period_ms = flags.GetInt("load-swap-period-ms", s.swap_period_ms);
  s.swap_storm = flags.GetBool("load-swap-storm", s.swap_storm);
  s.threads = flags.GetInt("load-threads", s.threads);
  s.wall = flags.GetBool("load-wall", s.wall);
  s.slo_p50_ms = flags.GetDouble("load-slo-p50-ms", s.slo_p50_ms);
  s.slo_p99_ms = flags.GetDouble("load-slo-p99-ms", s.slo_p99_ms);
  s.slo_p999_ms = flags.GetDouble("load-slo-p999-ms", s.slo_p999_ms);
  s.slo_shed_rate =
      flags.GetDouble("load-slo-shed-rate", s.slo_shed_rate);
  s.slo_rollback_rate =
      flags.GetDouble("load-slo-rollback-rate", s.slo_rollback_rate);
  s.report = flags.GetString("load-report", s.report);
  return s;
}

TelemetryFlagSettings ApplyTelemetryFlags(FlagParser& flags) {
  TelemetryFlagSettings s;
  s.sample_every =
      flags.GetInt("telemetry-sample-every", s.sample_every);
  s.slow_ms = flags.GetDouble("telemetry-slow-ms", s.slow_ms);
  s.window_ms = flags.GetInt("telemetry-window-ms", s.window_ms);
  s.burn_lookback =
      flags.GetInt("telemetry-burn-lookback", s.burn_lookback);
  s.burn_threshold =
      flags.GetDouble("telemetry-burn-threshold", s.burn_threshold);
  s.window_p99_ms =
      flags.GetDouble("telemetry-window-p99-ms", s.window_p99_ms);
  s.window_shed_rate =
      flags.GetDouble("telemetry-window-shed-rate", s.window_shed_rate);
  s.jsonl = flags.GetString("telemetry-jsonl", s.jsonl);
  s.statusz_every = flags.GetInt("statusz-every", s.statusz_every);
  s.statusz_out = flags.GetString("statusz-out", s.statusz_out);
  return s;
}

StreamFlagSettings ApplyStreamFlags(FlagParser& flags) {
  StreamFlagSettings s;
  s.wal = flags.GetString("stream-wal", s.wal);
  s.fsync_every = flags.GetInt("stream-fsync-every", s.fsync_every);
  s.drift_threshold =
      flags.GetDouble("stream-drift-threshold", s.drift_threshold);
  s.republish_drift =
      flags.GetDouble("stream-republish-drift", s.republish_drift);
  s.republish_growth =
      flags.GetDouble("stream-republish-growth", s.republish_growth);
  s.republish_every =
      flags.GetInt("stream-republish-every", s.republish_every);
  s.min_deltas = flags.GetInt("stream-min-deltas", s.min_deltas);
  return s;
}

ObsSession ObsSession::FromFlags(FlagParser& flags) {
  ObsSession session;
  session.metrics_json_path_ = flags.GetString("metrics-json", "");
  session.trace_path_ = flags.GetString("trace-out", "");
  session.metrics_stderr_ = flags.GetBool("metrics-stderr", false);
  session.finished_ = false;
  if (!session.trace_path_.empty()) {
    obs::Tracer::Instance().SetEnabled(true);
  }
  return session;
}

ObsSession& ObsSession::operator=(ObsSession&& other) noexcept {
  if (this != &other) {
    Finish();
    metrics_json_path_ = std::move(other.metrics_json_path_);
    trace_path_ = std::move(other.trace_path_);
    metrics_stderr_ = other.metrics_stderr_;
    finished_ = other.finished_;
    other.finished_ = true;
  }
  return *this;
}

void ObsSession::Finish() {
  if (finished_) return;
  finished_ = true;

  std::string error;
  if (metrics_stderr_ || !metrics_json_path_.empty()) {
    obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Instance().Snapshot();
    if (metrics_stderr_) {
      obs::MetricsToTable(snapshot, std::cerr);
    }
    if (!metrics_json_path_.empty() &&
        !obs::WriteTextFile(metrics_json_path_,
                            obs::MetricsToJson(snapshot), &error)) {
      std::cerr << "metrics export failed: " << error << "\n";
    }
  }
  if (!trace_path_.empty()) {
    obs::Tracer::Instance().SetEnabled(false);
    if (!obs::WriteTextFile(
            trace_path_,
            obs::SpansToChromeTrace(obs::Tracer::Instance().Snapshot()),
            &error)) {
      std::cerr << "trace export failed: " << error << "\n";
    }
  }
}

}  // namespace privrec
