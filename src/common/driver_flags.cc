#include "common/driver_flags.h"

#include <iostream>
#include <utility>

#include "common/parallel.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace privrec {

int64_t ApplyThreadsFlag(FlagParser& flags) {
  int64_t threads = flags.GetInt("threads", GlobalThreadCount());
  SetGlobalThreadCount(threads);
  return GlobalThreadCount();
}

ServeFlagSettings ApplyServeFlags(FlagParser& flags) {
  ServeFlagSettings s;
  s.deadline_ms = flags.GetInt("serve-deadline-ms", s.deadline_ms);
  s.queue_depth = flags.GetInt("serve-queue-depth", s.queue_depth);
  s.max_concurrency =
      flags.GetInt("serve-max-concurrency", s.max_concurrency);
  s.breaker_failures =
      flags.GetInt("serve-breaker-failures", s.breaker_failures);
  s.breaker_cooldown_ms =
      flags.GetInt("serve-breaker-cooldown-ms", s.breaker_cooldown_ms);
  s.reload_period = flags.GetInt("serve-reload-period", s.reload_period);
  return s;
}

ObsSession ObsSession::FromFlags(FlagParser& flags) {
  ObsSession session;
  session.metrics_json_path_ = flags.GetString("metrics-json", "");
  session.trace_path_ = flags.GetString("trace-out", "");
  session.metrics_stderr_ = flags.GetBool("metrics-stderr", false);
  session.finished_ = false;
  if (!session.trace_path_.empty()) {
    obs::Tracer::Instance().SetEnabled(true);
  }
  return session;
}

ObsSession& ObsSession::operator=(ObsSession&& other) noexcept {
  if (this != &other) {
    Finish();
    metrics_json_path_ = std::move(other.metrics_json_path_);
    trace_path_ = std::move(other.trace_path_);
    metrics_stderr_ = other.metrics_stderr_;
    finished_ = other.finished_;
    other.finished_ = true;
  }
  return *this;
}

void ObsSession::Finish() {
  if (finished_) return;
  finished_ = true;

  std::string error;
  if (metrics_stderr_ || !metrics_json_path_.empty()) {
    obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Instance().Snapshot();
    if (metrics_stderr_) {
      obs::MetricsToTable(snapshot, std::cerr);
    }
    if (!metrics_json_path_.empty() &&
        !obs::WriteTextFile(metrics_json_path_,
                            obs::MetricsToJson(snapshot), &error)) {
      std::cerr << "metrics export failed: " << error << "\n";
    }
  }
  if (!trace_path_.empty()) {
    obs::Tracer::Instance().SetEnabled(false);
    if (!obs::WriteTextFile(
            trace_path_,
            obs::SpansToChromeTrace(obs::Tracer::Instance().Snapshot()),
            &error)) {
      std::cerr << "trace export failed: " << error << "\n";
    }
  }
}

}  // namespace privrec
