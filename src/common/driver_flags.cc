#include "common/driver_flags.h"

#include <iostream>
#include <utility>

#include "common/parallel.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace privrec {

int64_t ApplyThreadsFlag(FlagParser& flags) {
  int64_t threads = flags.GetInt("threads", GlobalThreadCount());
  SetGlobalThreadCount(threads);
  return GlobalThreadCount();
}

ObsSession ObsSession::FromFlags(FlagParser& flags) {
  ObsSession session;
  session.metrics_json_path_ = flags.GetString("metrics-json", "");
  session.trace_path_ = flags.GetString("trace-out", "");
  session.metrics_stderr_ = flags.GetBool("metrics-stderr", false);
  session.finished_ = false;
  if (!session.trace_path_.empty()) {
    obs::Tracer::Instance().SetEnabled(true);
  }
  return session;
}

ObsSession& ObsSession::operator=(ObsSession&& other) noexcept {
  if (this != &other) {
    Finish();
    metrics_json_path_ = std::move(other.metrics_json_path_);
    trace_path_ = std::move(other.trace_path_);
    metrics_stderr_ = other.metrics_stderr_;
    finished_ = other.finished_;
    other.finished_ = true;
  }
  return *this;
}

void ObsSession::Finish() {
  if (finished_) return;
  finished_ = true;

  std::string error;
  if (metrics_stderr_ || !metrics_json_path_.empty()) {
    obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Instance().Snapshot();
    if (metrics_stderr_) {
      obs::MetricsToTable(snapshot, std::cerr);
    }
    if (!metrics_json_path_.empty() &&
        !obs::WriteTextFile(metrics_json_path_,
                            obs::MetricsToJson(snapshot), &error)) {
      std::cerr << "metrics export failed: " << error << "\n";
    }
  }
  if (!trace_path_.empty()) {
    obs::Tracer::Instance().SetEnabled(false);
    if (!obs::WriteTextFile(
            trace_path_,
            obs::SpansToChromeTrace(obs::Tracer::Instance().Snapshot()),
            &error)) {
      std::cerr << "trace export failed: " << error << "\n";
    }
  }
}

}  // namespace privrec
