// Status / Result<T>: exception-free error propagation for fallible
// operations (I/O, parsing, user-supplied configuration).
//
// Usage:
//   Result<Dataset> r = LoadHetRecLastFm(dir);
//   if (!r.ok()) { std::cerr << r.status().message(); return; }
//   Dataset d = std::move(r).value();

#ifndef PRIVREC_COMMON_STATUS_H_
#define PRIVREC_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace privrec {

// Coarse error taxonomy; sufficient for a library of this size.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kIoError,
  kParseError,
  kInternal,
  // A finite resource (privacy budget, memory, quota) is used up. Distinct
  // from kFailedPrecondition so callers can tell "budget gone — stop
  // releasing" from other ordering/state errors.
  kResourceExhausted,
  // The request's deadline passed before (or while) it could be served.
  // The serving runtime (src/serve) distinguishes this from
  // kResourceExhausted so clients know whether to retry with backoff
  // (overload) or with a larger deadline (slow path).
  kDeadlineExceeded,
  // Artifact compatibility gates (src/artifact). Each gate gets its own
  // code so callers can distinguish "rebuild with the new format"
  // (kVersionMismatch) from "this model was built on different data"
  // (kGraphMismatch) from "the DP provenance does not match the request"
  // (kProvenanceMismatch).
  kVersionMismatch,
  kGraphMismatch,
  kProvenanceMismatch,
  // Stored bytes failed an integrity check (CRC mismatch on a shard or
  // manifest payload). Distinct from kParseError ("the frame is
  // structurally wrong / truncated") so corruption triage can tell a
  // flipped bit from a torn write, and from kIoError ("the device said
  // no") so it is never confused with a transient read failure.
  kDataLoss,
};

// Returns a stable human-readable name, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

// A cheap value type carrying a code and a message. Ok statuses carry no
// message and never allocate.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status VersionMismatch(std::string msg) {
    return Status(StatusCode::kVersionMismatch, std::move(msg));
  }
  static Status GraphMismatch(std::string msg) {
    return Status(StatusCode::kGraphMismatch, std::move(msg));
  }
  static Status ProvenanceMismatch(std::string msg) {
    return Status(StatusCode::kProvenanceMismatch, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a T or a non-ok Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    PRIVREC_CHECK_MSG(!std::get<Status>(rep_).ok(),
                      "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  const T& value() const& {
    PRIVREC_CHECK_MSG(ok(), status().message().c_str());
    return std::get<T>(rep_);
  }
  T& value() & {
    PRIVREC_CHECK_MSG(ok(), status().message().c_str());
    return std::get<T>(rep_);
  }
  T&& value() && {
    PRIVREC_CHECK_MSG(ok(), status().message().c_str());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace privrec

#endif  // PRIVREC_COMMON_STATUS_H_
