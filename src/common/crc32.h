// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to checksum
// artifact sections. Chosen over a cryptographic hash because the threat
// model is accidental corruption (truncation, bit rot), not tampering, and
// the table-driven implementation has no dependencies.

#ifndef PRIVREC_COMMON_CRC32_H_
#define PRIVREC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace privrec {

// CRC of `size` bytes starting at `data`. `seed` is the running CRC for
// incremental use (pass the previous return value); the default starts a
// fresh checksum.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace privrec

#endif  // PRIVREC_COMMON_CRC32_H_
