#include "common/experiment_inputs.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "community/partition_io.h"
#include "data/synthetic.h"
#include "graph/graph_io.h"
#include "similarity/common_neighbors.h"
#include "similarity/workload_io.h"

namespace privrec {

namespace {

Result<data::Dataset> LoadFileDataset(
    const ExperimentInputsOptions& options,
    std::vector<int64_t>* original_user_id,
    std::vector<int64_t>* original_item_id) {
  // Bootstrap demo inputs when absent so drivers run out of the box.
  if (!std::filesystem::exists(options.social_path) ||
      !std::filesystem::exists(options.prefs_path)) {
    if (options.verbose) {
      std::printf("inputs not found; writing a demo dataset to %s / %s\n",
                  options.social_path.c_str(), options.prefs_path.c_str());
    }
    data::Dataset demo = data::MakeTinyDataset(400, 600, 2024);
    Status s1 = graph::SaveSocialGraph(demo.social, options.social_path);
    if (!s1.ok()) return s1;
    Status s2 =
        graph::SavePreferenceGraph(demo.preferences, options.prefs_path);
    if (!s2.ok()) return s2;
  }

  auto social = graph::LoadSocialGraph(options.social_path);
  if (!social.ok()) return social.status();
  auto prefs = graph::LoadPreferenceGraph(options.prefs_path);
  if (!prefs.ok()) return prefs.status();
  if (prefs->graph.num_users() != social->graph.num_nodes()) {
    return Status::InvalidArgument(
        "preference users (" + std::to_string(prefs->graph.num_users()) +
        ") do not match social nodes (" +
        std::to_string(social->graph.num_nodes()) +
        "); the graphs must cover the same user set");
  }

  data::Dataset dataset;
  dataset.name = options.social_path;
  dataset.social = std::move(social->graph);
  dataset.preferences = std::move(prefs->graph);
  dataset.report = social->report;
  *original_user_id = std::move(social->original_id);
  *original_item_id = std::move(prefs->original_item_id);
  return dataset;
}

data::Dataset MakeSyntheticDataset(const ExperimentInputsOptions& options) {
  if (options.synthetic == "lastfm") return data::MakeSyntheticLastFm();
  if (options.synthetic == "flixster") return data::MakeSyntheticFlixster();
  PRIVREC_CHECK_MSG(options.synthetic == "tiny",
                    "synthetic must be tiny/lastfm/flixster");
  return data::MakeTinyDataset(options.tiny_users, options.tiny_items,
                               static_cast<int64_t>(options.tiny_seed));
}

}  // namespace

std::vector<graph::NodeId> ExperimentInputs::AllUsers() const {
  std::vector<graph::NodeId> users(
      static_cast<size_t>(dataset.social.num_nodes()));
  for (graph::NodeId u = 0; u < dataset.social.num_nodes(); ++u) {
    users[static_cast<size_t>(u)] = u;
  }
  return users;
}

core::RecommenderContext ExperimentInputs::Context() const {
  return {&dataset.social,
          holdout.has_value() ? &holdout->train : &dataset.preferences,
          &workload};
}

Result<ExperimentInputs> LoadExperimentInputs(
    const ExperimentInputsOptions& options) {
  ExperimentInputs inputs;
  if (options.social_path.empty() && options.prefs_path.empty()) {
    inputs.dataset = MakeSyntheticDataset(options);
    // Synthetic ids are already dense: the mapping is the identity.
    for (int64_t u = 0; u < inputs.dataset.social.num_nodes(); ++u) {
      inputs.original_user_id.push_back(u);
    }
    for (int64_t i = 0; i < inputs.dataset.preferences.num_items(); ++i) {
      inputs.original_item_id.push_back(i);
    }
  } else {
    auto loaded = LoadFileDataset(options, &inputs.original_user_id,
                                  &inputs.original_item_id);
    if (!loaded.ok()) return loaded.status();
    inputs.dataset = std::move(*loaded);
    if (options.verbose) {
      std::printf(
          "loaded %lld users, %lld social edges, %lld items, %lld "
          "preference edges\n",
          static_cast<long long>(inputs.dataset.social.num_nodes()),
          static_cast<long long>(inputs.dataset.social.num_edges()),
          static_cast<long long>(inputs.dataset.preferences.num_items()),
          static_cast<long long>(inputs.dataset.preferences.num_edges()));
    }
  }

  // Similarity workload: cache file first, computed (and cached back)
  // otherwise.
  const similarity::CommonNeighbors default_measure;
  const similarity::SimilarityMeasure& measure =
      options.measure != nullptr ? *options.measure : default_measure;
  bool workload_cached = false;
  if (!options.workload_path.empty() &&
      std::filesystem::exists(options.workload_path)) {
    auto cached = similarity::LoadWorkload(options.workload_path);
    if (cached.ok() &&
        cached->num_users() == inputs.dataset.social.num_nodes()) {
      inputs.workload = std::move(*cached);
      workload_cached = true;
      if (options.verbose) {
        std::printf("loaded cached similarity workload from %s\n",
                    options.workload_path.c_str());
      }
    }
  }
  if (!workload_cached) {
    inputs.workload = similarity::SimilarityWorkload::Compute(
        inputs.dataset.social, measure);
    if (!options.workload_path.empty()) {
      Status s =
          similarity::SaveWorkload(inputs.workload, options.workload_path);
      if (s.ok() && options.verbose) {
        std::printf("cached similarity workload to %s\n",
                    options.workload_path.c_str());
      }
    }
  }

  // Clustering: same cache-or-compute dance.
  if (options.run_louvain) {
    bool partition_cached = false;
    if (!options.partition_path.empty() &&
        std::filesystem::exists(options.partition_path)) {
      auto cached = community::LoadPartition(options.partition_path);
      if (cached.ok() &&
          cached->num_nodes() == inputs.dataset.social.num_nodes()) {
        inputs.louvain.partition = std::move(*cached);
        partition_cached = true;
        if (options.verbose) {
          std::printf(
              "loaded cached clustering from %s (%lld clusters)\n",
              options.partition_path.c_str(),
              static_cast<long long>(
                  inputs.louvain.partition.num_clusters()));
        }
      }
    }
    if (!partition_cached) {
      inputs.louvain =
          community::RunLouvain(inputs.dataset.social, options.louvain);
      if (!options.partition_path.empty()) {
        Status s = community::SavePartition(inputs.louvain.partition,
                                            options.partition_path);
        if (s.ok() && options.verbose) {
          std::printf("cached clustering to %s\n",
                      options.partition_path.c_str());
        }
      }
    }
  }

  if (options.holdout_fraction > 0.0) {
    inputs.holdout = eval::SplitHoldout(
        inputs.dataset.preferences,
        {.fraction = options.holdout_fraction, .seed = options.holdout_seed});
  }
  return inputs;
}

}  // namespace privrec
