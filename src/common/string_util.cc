#include "common/string_util.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace privrec {

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

namespace {
bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
         c == '\f';
}
}  // namespace

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsSpace(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !IsSpace(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsSpace(s[b])) ++b;
  while (e > b && IsSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty() || s.size() > 31) return false;
  char buf[32];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty() || s.size() > 63) return false;
  char buf[64];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + s.size()) return false;
  *out = v;
  return true;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

int64_t EditDistance(std::string_view a, std::string_view b) {
  // Single-row dynamic program over the shorter string.
  if (a.size() < b.size()) std::swap(a, b);
  std::vector<int64_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = static_cast<int64_t>(j);
  for (size_t i = 1; i <= a.size(); ++i) {
    int64_t diag = row[0];
    row[0] = static_cast<int64_t>(i);
    for (size_t j = 1; j <= b.size(); ++j) {
      int64_t next = std::min({row[j] + 1, row[j - 1] + 1,
                               diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = row[j];
      row[j] = next;
    }
  }
  return row[b.size()];
}

std::string FormatDouble(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, x);
  return buf;
}

}  // namespace privrec
