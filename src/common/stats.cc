#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace privrec {

void RunningStats::Add(double x) {
  ++count_;
  if (count_ == 1) {
    mean_ = x;
    min_ = x;
    max_ = x;
    m2_ = 0.0;
    return;
  }
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  int64_t n = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  mean_ += delta * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double p) {
  PRIVREC_CHECK(!values.empty());
  PRIVREC_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Histogram::Histogram(double lo, double hi, int num_bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / num_bins), counts_(num_bins, 0) {
  PRIVREC_CHECK(hi > lo);
  PRIVREC_CHECK(num_bins > 0);
}

void Histogram::Add(double x) {
  int b = static_cast<int>((x - lo_) / width_);
  b = std::max(0, std::min(b, num_bins() - 1));
  ++counts_[b];
  ++total_;
}

double Histogram::Fraction(int b) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[b]) / static_cast<double>(total_);
}

double Histogram::BinCenter(int b) const {
  return lo_ + (static_cast<double>(b) + 0.5) * width_;
}

}  // namespace privrec
