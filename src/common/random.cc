#include "common/random.h"

#include <cmath>
#include <unordered_set>

namespace privrec {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) {
  // Expand the 64-bit seed into 256 bits of state; splitmix64 guarantees the
  // state is never all-zero for distinct outputs.
  uint64_t x = seed;
  for (auto& s : s_) {
    x = SplitMix64(x);
    s = x;
  }
  // Defensive: xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ull;
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Mix the current state with the stream id to derive a decorrelated child.
  uint64_t h = s_[0] ^ Rotl(s_[2], 17);
  return Rng(SplitMix64(h ^ SplitMix64(stream_id)));
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t n) {
  PRIVREC_DCHECK(n > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  PRIVREC_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Normal(double mean, double stddev) {
  // Marsaglia polar method; one of the pair is discarded to keep the
  // generator stateless with respect to call parity.
  double u, v, s;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
}

double Rng::Exponential(double lambda) {
  PRIVREC_DCHECK(lambda > 0);
  // -log(1 - U) avoids log(0) because UniformDouble() < 1.
  return -std::log1p(-UniformDouble()) / lambda;
}

double Rng::Laplace(double scale) {
  PRIVREC_DCHECK(scale > 0);
  // Inverse CDF on a symmetric uniform: u in (-1/2, 1/2].
  double u = UniformDouble() - 0.5;
  // sign(u) * log(1 - 2|u|) with the u == 0.5 boundary handled by log1p.
  double sign = (u < 0) ? -1.0 : 1.0;
  return -scale * sign * std::log1p(-2.0 * std::fabs(u));
}

int64_t Rng::TwoSidedGeometric(double alpha) {
  PRIVREC_DCHECK(alpha > 0 && alpha < 1);
  // Difference of two one-sided geometrics (support k >= 0 each) is the
  // two-sided geometric distribution.
  auto one_sided = [&]() -> int64_t {
    // Inverse CDF: k = floor(log(U) / log(alpha)).
    double u = UniformDouble();
    if (u <= 0.0) u = 0x1.0p-53;
    return static_cast<int64_t>(std::floor(std::log(u) / std::log(alpha)));
  };
  return one_sided() - one_sided();
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  PRIVREC_DCHECK(n > 0);
  if (n == 1) return 0;
  if (s <= 0.0) return UniformInt(n);
  // Rejection-inversion for H(x) = integral of x^-s (s != 1) or log (s == 1),
  // over ranks 1..n; returned value is rank-1 (0-based).
  const double e = 1.0 - s;
  auto h_integral = [&](double x) -> double {
    // Integral of t^-s from 1 to x (plus constant).
    if (std::fabs(e) < 1e-12) return std::log(x);
    return (std::pow(x, e) - 1.0) / e;
  };
  auto h_integral_inv = [&](double y) -> double {
    if (std::fabs(e) < 1e-12) return std::exp(y);
    return std::pow(1.0 + y * e, 1.0 / e);
  };
  const double h_x1 = h_integral(1.5) - 1.0;
  const double h_n = h_integral(static_cast<double>(n) + 0.5);
  for (;;) {
    double u = h_x1 + UniformDouble() * (h_n - h_x1);
    double x = h_integral_inv(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    double k_d = static_cast<double>(k);
    // Acceptance test.
    if (u >= h_integral(k_d + 0.5) - std::pow(k_d, -s) || k == 1) {
      return k - 1;
    }
  }
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  PRIVREC_CHECK(k <= n);
  // Floyd's algorithm: O(k) expected time, O(k) space.
  std::unordered_set<uint64_t> seen;
  std::vector<uint64_t> out;
  out.reserve(k);
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = UniformInt(j + 1);
    if (seen.insert(t).second) {
      out.push_back(t);
    } else {
      seen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace privrec
