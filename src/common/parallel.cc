#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace privrec {

namespace {

// Per-(job, thread) claim tallies. One histogram observation per thread
// per parallel region — load imbalance shows up as a wide spread of
// chunks-per-thread within one region. Never touches results: metrics are
// recorded after the chunks ran.
void RecordThreadClaims(int64_t claimed) {
  if (claimed <= 0) return;
  static obs::Histogram& per_thread = obs::GetHistogram(
      "privrec.parallel.chunks_per_thread",
      obs::ExponentialBuckets(1.0, 2.0, 12));
  static obs::Counter& total =
      obs::GetCounter("privrec.parallel.chunks_executed");
  per_thread.Observe(static_cast<double>(claimed));
  total.Add(claimed);
}

// True while this thread is executing chunks of some parallel region;
// nested parallel calls then run serially inline (no deadlock on the run
// mutex, and determinism is preserved because serial execution of fixed
// chunks is the reference behaviour).
thread_local bool t_in_parallel_region = false;

int64_t InitialThreadCount() {
  if (const char* env = std::getenv("PRIVREC_THREADS")) {
    char* end = nullptr;
    long long v = std::strtoll(env, &end, 10);
    if (end != env && v >= 1) return static_cast<int64_t>(v);
  }
  return HardwareThreads();
}

std::atomic<int64_t>& GlobalThreadCountStorage() {
  static std::atomic<int64_t> count{InitialThreadCount()};
  return count;
}

// A chunked pool without work stealing: one job at a time, workers (and
// the submitting thread) claim chunk indices from a shared counter. The
// pool is created on first parallel use and intentionally leaked so that
// worker lifetime never races with static destruction.
class ThreadPool {
 public:
  static ThreadPool& Global() {
    static ThreadPool* pool = new ThreadPool();
    return *pool;
  }

  Status Run(int64_t num_chunks, int64_t threads,
             const std::function<Status(int64_t)>& chunk_fn) {
    // Serializes concurrent Run() calls from different threads; parallel
    // regions do not nest (nested calls take the serial path above).
    std::lock_guard<std::mutex> run_lock(run_mutex_);

    Job job;
    job.fn = &chunk_fn;
    job.num_chunks = num_chunks;

    EnsureWorkers(threads - 1);
    {
      std::lock_guard<std::mutex> lk(mutex_);
      job_ = &job;
      ++job_epoch_;
    }
    cv_.notify_all();

    // The caller works too: with zero idle workers this degrades to the
    // plain serial loop.
    t_in_parallel_region = true;
    WorkOn(job);
    t_in_parallel_region = false;

    std::unique_lock<std::mutex> lk(mutex_);
    done_cv_.wait(lk, [&] { return active_ == 0; });
    job_ = nullptr;
    return job.first_error_chunk < 0 ? Status::Ok() : job.error;
  }

 private:
  struct Job {
    const std::function<Status(int64_t)>* fn = nullptr;
    int64_t num_chunks = 0;
    std::atomic<int64_t> next{0};
    std::atomic<bool> cancelled{false};
    // Guarded by the pool mutex.
    int64_t first_error_chunk = -1;
    Status error;
  };

  void EnsureWorkers(int64_t wanted) {
    std::lock_guard<std::mutex> lk(mutex_);
    while (static_cast<int64_t>(workers_.size()) < wanted) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void WorkerLoop() {
    t_in_parallel_region = true;
    uint64_t seen_epoch = 0;
    while (true) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lk(mutex_);
        cv_.wait(lk,
                 [&] { return job_ != nullptr && job_epoch_ != seen_epoch; });
        seen_epoch = job_epoch_;
        job = job_;
        ++active_;
      }
      WorkOn(*job);
      {
        std::lock_guard<std::mutex> lk(mutex_);
        if (--active_ == 0) done_cv_.notify_all();
      }
    }
  }

  void WorkOn(Job& job) {
    int64_t claimed = 0;
    while (true) {
      const int64_t c = job.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.num_chunks) break;
      if (job.cancelled.load(std::memory_order_relaxed)) break;
      ++claimed;
      PRIVREC_SPAN_CHUNK("parallel.chunk", c);
      Status s = (*job.fn)(c);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lk(mutex_);
        if (job.first_error_chunk < 0 || c < job.first_error_chunk) {
          job.first_error_chunk = c;
          job.error = std::move(s);
        }
        job.cancelled.store(true, std::memory_order_relaxed);
      }
    }
    RecordThreadClaims(claimed);
  }

  std::mutex run_mutex_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;
  uint64_t job_epoch_ = 0;
  int64_t active_ = 0;
  std::vector<std::thread> workers_;  // leaked with the pool, never joined
};

}  // namespace

int64_t HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int64_t>(hw);
}

int64_t GlobalThreadCount() {
  return GlobalThreadCountStorage().load(std::memory_order_relaxed);
}

void SetGlobalThreadCount(int64_t threads) {
  GlobalThreadCountStorage().store(threads < 1 ? 1 : threads,
                                   std::memory_order_relaxed);
}

int64_t DefaultChunkSize(int64_t n) {
  if (n <= 0) return 1;
  return (n + kDefaultTargetChunks - 1) / kDefaultTargetChunks;
}

int64_t NumChunks(int64_t n, int64_t chunk_size) {
  if (n <= 0) return 0;
  PRIVREC_CHECK(chunk_size >= 1);
  return (n + chunk_size - 1) / chunk_size;
}

namespace internal {

int64_t ResolveThreads(int64_t requested) {
  const int64_t t = requested > 0 ? requested : GlobalThreadCount();
  return t < 1 ? 1 : t;
}

Status RunChunks(int64_t num_chunks, int64_t threads,
                 const std::function<Status(int64_t)>& chunk_fn) {
  if (num_chunks <= 0) return Status::Ok();
  threads = std::min(threads, num_chunks);
  if (threads <= 1 || t_in_parallel_region) {
    // Serial reference path: chunks in index order, stop at first error.
    // Nested regions are not counted as runs of their own — their chunks
    // belong to the enclosing region's accounting.
    const bool nested = t_in_parallel_region;
    if (!nested) {
      static obs::Counter& serial_runs =
          obs::GetCounter("privrec.parallel.runs_serial");
      serial_runs.Increment();
    }
    t_in_parallel_region = true;
    Status result;
    int64_t executed = 0;
    for (int64_t c = 0; c < num_chunks; ++c) {
      PRIVREC_SPAN_CHUNK("parallel.chunk", c);
      result = chunk_fn(c);
      ++executed;
      if (!result.ok()) break;
    }
    t_in_parallel_region = nested;
    if (!nested) RecordThreadClaims(executed);
    return result;
  }
  static obs::Counter& pooled_runs =
      obs::GetCounter("privrec.parallel.runs_pooled");
  pooled_runs.Increment();
  return ThreadPool::Global().Run(num_chunks, threads, chunk_fn);
}

}  // namespace internal

}  // namespace privrec
