#include "common/crc32.h"

#include <array>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define PRIVREC_CRC32_PCLMUL 1
#endif

namespace privrec {
namespace {

// Slicing-by-8 CRC-32 (reflected polynomial 0xEDB88320). Table 0 is the
// classic byte-at-a-time table; tables 1..7 extend it so eight input
// bytes fold into the accumulator per iteration. The polynomial and the
// pre/post conditioning are unchanged, so every value this produces is
// identical to the old single-table implementation — the speedup matters
// because the mapped-artifact loader CRC-verifies whole multi-hundred-MB
// payloads on its near-instant open path.
constexpr std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (size_t t = 1; t < 8; ++t) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kTables = MakeTables();

// Table-driven body shared by the portable path and the SIMD tail.
// Operates on the PRE-conditioned accumulator (seed already xored with
// ~0); the caller applies the final inversion.
uint32_t CrcTableBody(const unsigned char* p, size_t size, uint32_t crc) {
  while (size >= 8) {
    const uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                               static_cast<uint32_t>(p[1]) << 8 |
                               static_cast<uint32_t>(p[2]) << 16 |
                               static_cast<uint32_t>(p[3]) << 24);
    crc = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
          kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
          kTables[3][p[4]] ^ kTables[2][p[5]] ^ kTables[1][p[6]] ^
          kTables[0][p[7]];
    p += 8;
    size -= 8;
  }
  for (size_t i = 0; i < size; ++i) {
    crc = kTables[0][(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

#ifdef PRIVREC_CRC32_PCLMUL

// Carry-less-multiply folding (the classic 4x128-bit scheme from Intel's
// "Fast CRC Computation Using PCLMULQDQ" white paper, reflected variant).
// Same polynomial and values as the table path — only the grouping of
// the GF(2) arithmetic changes, so callers cannot observe which path
// ran. The fold constants are x^N mod P for the shift distances the
// loop uses:
//   k1 = x^(4*128+32) mod P, k2 = x^(4*128-32) mod P  (fold by 512 bits)
//   k3 = x^(128+32)  mod P, k4 = x^(128-32)  mod P   (fold by 128 bits)
//   k5 = x^64 mod P; poly'/mu for the final Barrett reduction.
// Requires len >= 64 and len % 64 == 0; crc is the pre-conditioned
// accumulator. Compiled with a per-function target attribute so the rest
// of the library keeps the baseline ISA; callers gate on
// __builtin_cpu_supports.
__attribute__((target("pclmul,sse4.1"))) uint32_t CrcClmulBody(
    const unsigned char* buf, size_t len, uint32_t crc) {
  alignas(16) static const uint64_t k1k2[] = {0x0154442bd4, 0x01c6e41596};
  alignas(16) static const uint64_t k3k4[] = {0x01751997d0, 0x00ccaa009e};
  alignas(16) static const uint64_t k5k0[] = {0x0163cd6124, 0x0000000000};
  alignas(16) static const uint64_t poly[] = {0x01db710641, 0x01f7011641};
  __m128i x0, x1, x2, x3, x4, x5, x6, x7, x8, y5, y6, y7, y8;

  x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
  x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
  x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
  x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(k1k2));
  buf += 64;
  len -= 64;

  while (len >= 64) {
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x6 = _mm_clmulepi64_si128(x2, x0, 0x00);
    x7 = _mm_clmulepi64_si128(x3, x0, 0x00);
    x8 = _mm_clmulepi64_si128(x4, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x2 = _mm_clmulepi64_si128(x2, x0, 0x11);
    x3 = _mm_clmulepi64_si128(x3, x0, 0x11);
    x4 = _mm_clmulepi64_si128(x4, x0, 0x11);
    y5 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
    y6 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
    y7 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
    y8 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), y5);
    x2 = _mm_xor_si128(_mm_xor_si128(x2, x6), y6);
    x3 = _mm_xor_si128(_mm_xor_si128(x3, x7), y7);
    x4 = _mm_xor_si128(_mm_xor_si128(x4, x8), y8);
    buf += 64;
    len -= 64;
  }

  // Fold the four 128-bit accumulators into one.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(k3k4));
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), x2);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), x3);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), x4);

  // Fold 128 bits down to 64.
  x2 = _mm_clmulepi64_si128(x1, x0, 0x10);
  x3 = _mm_setr_epi32(~0, 0, ~0, 0);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, x2);

  x0 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(k5k0));
  x2 = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, x3);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);

  // Barrett reduction 64 -> 32 bits.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(poly));
  x2 = _mm_and_si128(x1, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x10);
  x2 = _mm_and_si128(x2, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);

  return static_cast<uint32_t>(_mm_extract_epi32(x1, 1));
}

bool HasClmul() {
  static const bool has =
      __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
  return has;
}

#endif  // PRIVREC_CRC32_PCLMUL

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
#ifdef PRIVREC_CRC32_PCLMUL
  if (size >= 64 && HasClmul()) {
    const size_t folded = size & ~size_t{63};
    crc = CrcClmulBody(p, folded, crc);
    p += folded;
    size -= folded;
  }
#endif
  crc = CrcTableBody(p, size, crc);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace privrec
