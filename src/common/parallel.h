// Deterministic parallel execution for the similarity/serving hot paths.
//
// The library's randomized mechanisms only keep their privacy calibration
// if the noise stream — and every floating-point reduction feeding it — is
// reproducible bit-for-bit. That makes parallelism a correctness problem:
// naive work division re-orders FP sums and interleaves RNG draws, so the
// same seed produces different releases at different thread counts.
//
// This layer guarantees **thread-count invariance**: for a fixed input and
// seed, results are bit-identical for any --threads value, including 1.
// Three rules make that hold:
//
//   1. Fixed chunking. A range [0, n) is cut into chunks whose boundaries
//      are a pure function of (n, chunk_size) — never of the thread count.
//      DefaultChunkSize(n) aims for kDefaultTargetChunks chunks; for
//      n <= kDefaultTargetChunks the chunk size is 1, so small ranges
//      reproduce the serial element order exactly.
//   2. Ordered reduction. ParallelReduce computes one partial result per
//      chunk (in whatever order threads reach them) and folds the partials
//      sequentially in increasing chunk index. The FP summation tree is
//      therefore fixed by the chunk boundaries alone.
//   3. Split RNG. SplitRng derives one independent splitmix64-seeded
//      xoshiro256++ stream per chunk. A chunk's draws depend only on
//      (seed, invocation, chunk index), not on which thread ran it or what
//      other chunks did.
//
// There is no work stealing and no dynamic splitting: threads claim whole
// chunks from a shared counter, so scheduling affects only *when* a chunk
// runs, never *what* it computes.
//
// Exceptions thrown by a chunk body are captured and surfaced as a
// Status (kInternal); a Status-returning body propagates its own error.
// Among failing chunks the lowest chunk index wins, so single-error
// scenarios report deterministically. After a failure, unstarted chunks
// are skipped; partial side effects of other chunks are unspecified.
//
// Nested parallel calls (a ParallelFor inside a chunk body) run serially
// inline — deterministic and deadlock-free.

#ifndef PRIVREC_COMMON_PARALLEL_H_
#define PRIVREC_COMMON_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace privrec {

// ----------------------------------------------------------- configuration

// Number of hardware threads (>= 1).
int64_t HardwareThreads();

// The process-wide default thread count used when ParallelOptions.threads
// is 0. Initialized from the PRIVREC_THREADS environment variable if set,
// else HardwareThreads(). Thread counts are clamped to >= 1.
int64_t GlobalThreadCount();
void SetGlobalThreadCount(int64_t threads);

// RAII override of the global thread count (tests, benches).
class ScopedThreadCount {
 public:
  explicit ScopedThreadCount(int64_t threads)
      : saved_(GlobalThreadCount()) {
    SetGlobalThreadCount(threads);
  }
  ~ScopedThreadCount() { SetGlobalThreadCount(saved_); }
  ScopedThreadCount(const ScopedThreadCount&) = delete;
  ScopedThreadCount& operator=(const ScopedThreadCount&) = delete;

 private:
  int64_t saved_;
};

struct ParallelOptions {
  // 0 = GlobalThreadCount(). Affects scheduling only, never results.
  int64_t threads = 0;
  // 0 = DefaultChunkSize(n). A caller-supplied value MUST NOT be derived
  // from the thread count, or determinism across thread counts is lost.
  int64_t chunk_size = 0;
};

// Chunk-count target of DefaultChunkSize: enough chunks for load balance
// on any realistic machine, few enough that per-chunk overhead and the
// ordered fold stay negligible.
inline constexpr int64_t kDefaultTargetChunks = 256;

// ceil(n / kDefaultTargetChunks), min 1 — a pure function of n.
int64_t DefaultChunkSize(int64_t n);

// ceil(n / chunk_size) for n > 0; 0 for n <= 0.
int64_t NumChunks(int64_t n, int64_t chunk_size);

// ------------------------------------------------------------------ rng

// Derives one independent RNG stream per chunk (or per any caller-chosen
// stream id). Streams depend only on (seed, invocation, stream id): the
// noise a chunk draws is the same no matter which thread runs it, how many
// threads exist, or in what order chunks complete.
class SplitRng {
 public:
  // `invocation` distinguishes repeated uses under one seed (e.g. repeated
  // Recommend() calls must draw fresh, still-reproducible noise).
  explicit SplitRng(uint64_t seed, uint64_t invocation = 0)
      : base_(Rng(seed).Fork(invocation)) {}

  // Derive from an existing generator (already forked per invocation).
  explicit SplitRng(const Rng& base) : base_(base) {}

  // The independent stream for `stream_id` (typically the chunk index).
  Rng StreamFor(uint64_t stream_id) const { return base_.Fork(stream_id); }

 private:
  Rng base_;
};

// ------------------------------------------------------------- internals

namespace internal {

// Runs chunk_fn(c) for c in [0, num_chunks) on up to `threads` threads
// (the calling thread participates). Blocks until every started chunk
// finished. Returns the error of the lowest-indexed failing chunk, or OK.
Status RunChunks(int64_t num_chunks, int64_t threads,
                 const std::function<Status(int64_t)>& chunk_fn);

int64_t ResolveThreads(int64_t requested);

template <typename Body>
Status InvokeChunk(Body& body, int64_t chunk, int64_t begin, int64_t end) {
  try {
    if constexpr (std::is_same_v<
                      std::invoke_result_t<Body&, int64_t, int64_t, int64_t>,
                      Status>) {
      return body(chunk, begin, end);
    } else {
      body(chunk, begin, end);
      return Status::Ok();
    }
  } catch (const std::exception& e) {
    return Status::Internal("exception in parallel chunk " +
                            std::to_string(chunk) + ": " + e.what());
  } catch (...) {
    return Status::Internal("unknown exception in parallel chunk " +
                            std::to_string(chunk));
  }
}

}  // namespace internal

// ---------------------------------------------------------------- loops

// body(chunk_index, begin, end) over fixed chunks of [0, n). The body may
// return void or Status and may throw; errors come back as a Status.
template <typename Body>
Status ParallelFor(int64_t n, const ParallelOptions& options, Body&& body) {
  if (n <= 0) return Status::Ok();
  const int64_t chunk_size =
      options.chunk_size > 0 ? options.chunk_size : DefaultChunkSize(n);
  const int64_t chunks = NumChunks(n, chunk_size);
  return internal::RunChunks(
      chunks, internal::ResolveThreads(options.threads),
      [&](int64_t c) -> Status {
        const int64_t begin = c * chunk_size;
        const int64_t end = std::min(n, begin + chunk_size);
        return internal::InvokeChunk(body, c, begin, end);
      });
}

// Convenience overload with default options.
template <typename Body>
Status ParallelFor(int64_t n, Body&& body) {
  return ParallelFor(n, ParallelOptions{}, std::forward<Body>(body));
}

// Ordered chunked reduction: partial = map(chunk_index, begin, end) per
// chunk, then combine(accumulator, std::move(partial)) folded left in
// increasing chunk index starting from `init`. The partial type is
// whatever `map` returns; it need not match the accumulator type T.
// Because both the chunk boundaries and the fold order are fixed, the
// result (including its FP rounding) is identical for every thread count.
template <typename T, typename Map, typename Combine>
Result<T> ParallelReduce(int64_t n, const ParallelOptions& options, T init,
                         Map&& map, Combine&& combine) {
  using Partial = std::invoke_result_t<Map&, int64_t, int64_t, int64_t>;
  if (n <= 0) return init;
  const int64_t chunk_size =
      options.chunk_size > 0 ? options.chunk_size : DefaultChunkSize(n);
  const int64_t chunks = NumChunks(n, chunk_size);
  std::vector<std::optional<Partial>> partials(static_cast<size_t>(chunks));
  Status run = internal::RunChunks(
      chunks, internal::ResolveThreads(options.threads),
      [&](int64_t c) -> Status {
        const int64_t begin = c * chunk_size;
        const int64_t end = std::min(n, begin + chunk_size);
        auto wrapped = [&](int64_t chunk, int64_t b, int64_t e) -> Status {
          partials[static_cast<size_t>(chunk)].emplace(map(chunk, b, e));
          return Status::Ok();
        };
        return internal::InvokeChunk(wrapped, c, begin, end);
      });
  if (!run.ok()) return run;
  T acc = std::move(init);
  for (int64_t c = 0; c < chunks; ++c) {
    combine(acc, std::move(*partials[static_cast<size_t>(c)]));
  }
  return acc;
}

template <typename T, typename Map, typename Combine>
Result<T> ParallelReduce(int64_t n, T init, Map&& map, Combine&& combine) {
  return ParallelReduce(n, ParallelOptions{}, std::move(init),
                        std::forward<Map>(map),
                        std::forward<Combine>(combine));
}

// Ordered chunked double sum of f(i) over [0, n) — the common case for
// statistics (mean NDCG, row sums). Serial left-fold within each chunk,
// chunk partials folded in index order.
template <typename F>
double ParallelSum(int64_t n, const ParallelOptions& options, F&& f) {
  Result<double> r = ParallelReduce(
      n, options, 0.0,
      [&](int64_t, int64_t begin, int64_t end) {
        double acc = 0.0;
        for (int64_t i = begin; i < end; ++i) acc += f(i);
        return acc;
      },
      [](double& acc, double part) { acc += part; });
  // The map never fails; a failure here means a chunk body threw, which
  // the simple summation callers treat as a programming error.
  PRIVREC_CHECK_MSG(r.ok(), r.status().message().c_str());
  return *r;
}

template <typename F>
double ParallelSum(int64_t n, F&& f) {
  return ParallelSum(n, ParallelOptions{}, std::forward<F>(f));
}

}  // namespace privrec

#endif  // PRIVREC_COMMON_PARALLEL_H_
