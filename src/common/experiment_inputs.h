// LoadExperimentInputs: the one shared dataset prologue for bench and
// example drivers — previously copy-pasted per binary (load-or-bootstrap
// the TSV inputs, reuse the on-disk workload/partition caches, compute
// similarity rows and Louvain clusters, optionally carve a held-out
// split). The two-phase build/serve drivers call this instead of growing a
// third copy.
//
// Declared under common/ next to driver_flags (it is a driver-prologue
// helper) but compiled into the separate `privrec_driver` target: unlike
// the flag helpers it legitimately depends on the data/similarity/
// community/eval layers, which privrec_common must not.

#ifndef PRIVREC_COMMON_EXPERIMENT_INPUTS_H_
#define PRIVREC_COMMON_EXPERIMENT_INPUTS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "community/louvain.h"
#include "core/recommender.h"
#include "data/dataset.h"
#include "eval/holdout.h"
#include "similarity/similarity_measure.h"
#include "similarity/workload.h"

namespace privrec {

struct ExperimentInputsOptions {
  // File-backed mode: load these TSV paths; when either file is missing, a
  // demo dataset is written there first so drivers run out of the box.
  // Both empty: build the synthetic dataset named by `synthetic` instead.
  std::string social_path;
  std::string prefs_path;
  // Optional caches for the public precomputations (clustering and
  // similarity rows read only public data, so deployments compute them
  // once and reuse them across releases).
  std::string workload_path;
  std::string partition_path;
  // Synthetic mode: "tiny", "lastfm" (Table 1 Last.fm shape) or
  // "flixster". tiny_* apply to "tiny" only.
  std::string synthetic = "tiny";
  int64_t tiny_users = 300;
  int64_t tiny_items = 400;
  uint64_t tiny_seed = 42;
  // Similarity measure for the workload (null: common neighbors).
  const similarity::SimilarityMeasure* measure = nullptr;
  // createClusters configuration; set run_louvain = false for drivers that
  // cluster per-snapshot themselves (e.g. dynamic sessions).
  community::LouvainOptions louvain;
  bool run_louvain = true;
  // > 0: hide this fraction of each user's preference edges; Context()
  // then serves from the train split and `holdout` carries the hidden
  // items for recall scoring.
  double holdout_fraction = 0.0;
  uint64_t holdout_seed = 11;
  // Print load/bootstrap progress to stdout (examples do, benches don't).
  bool verbose = false;
};

struct ExperimentInputs {
  data::Dataset dataset;
  // Original ids from the input files (identity for synthetic data).
  std::vector<int64_t> original_user_id;
  std::vector<int64_t> original_item_id;
  similarity::SimilarityWorkload workload;
  // Default-constructed when run_louvain was false.
  community::LouvainResult louvain;
  std::optional<eval::HoldoutSplit> holdout;

  std::vector<graph::NodeId> AllUsers() const;
  // The recommender inputs: the holdout's train split when one was
  // requested, the full preference graph otherwise. The returned context
  // points into this struct — keep it alive.
  core::RecommenderContext Context() const;
};

Result<ExperimentInputs> LoadExperimentInputs(
    const ExperimentInputsOptions& options);

}  // namespace privrec

#endif  // PRIVREC_COMMON_EXPERIMENT_INPUTS_H_
