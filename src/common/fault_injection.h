// Deterministic fault-injection harness.
//
// Library and service code declares named fault points at the places where
// the real world can fail (file opens, reads, allocations, noise sampling).
// Tests and operators arm those points with a FaultSpec — programmatically,
// via a flag string, or via the PRIVREC_FAULTS environment variable — and
// the code under test observes injected I/O errors, short reads, NaN/Inf
// poisoning or allocation failures exactly where they were requested.
//
// Determinism: faults fire by hit count (the Nth time the point is reached)
// or by a seeded splitmix64 coin per hit. No wall clock, no global entropy;
// a test that arms the same spec twice sees the same failures twice.
//
// Cost: when the library is built with PRIVREC_NO_FAULT_INJECTION the probe
// functions are constexpr no-ops and every call site compiles away. In the
// default build an unarmed harness costs one relaxed atomic load per probe
// (probes sit at record/release granularity, never in per-element loops).
//
// Spec string grammar (';'-separated):
//   point=kind            fire on every hit
//   point=kind@N          fire on the Nth hit only (1-based)
//   point=kind@N+         fire on every hit from the Nth on
//   point=kind@N+K        fire on hits N .. N+K-1
//   point=kind%P:SEED     fire each hit with probability P (seeded coin)
// kinds: io_error, short_read, nan, inf, bad_alloc, latency
// e.g. PRIVREC_FAULTS="graph_io.open=io_error@1+2;cluster.noisy_averages=nan"

#ifndef PRIVREC_COMMON_FAULT_INJECTION_H_
#define PRIVREC_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace privrec::fault {

enum class FaultKind {
  kNone = 0,
  kIoError,    // simulated open/read/write failure
  kShortRead,  // input stream ends early (truncated file)
  kNaN,        // poison a floating-point value with quiet NaN
  kInf,        // poison a floating-point value with +infinity
  kBadAlloc,   // simulated allocation failure
  kLatency,    // the operation succeeds but stalls (slow disk, cold cache)
};

// Stable lowercase name used by the spec grammar ("io_error", "nan", ...).
const char* FaultKindName(FaultKind kind);

// Inverse of FaultKindName; returns false for unknown names.
bool ParseFaultKind(const std::string& name, FaultKind* out);

// How an armed point decides whether a given hit fires.
struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  // Fires on hits with 1-based index in [first_hit, first_hit + count).
  int64_t first_hit = 1;
  int64_t count = std::numeric_limits<int64_t>::max();
  // If < 1.0, an eligible hit additionally fires only when a splitmix64
  // coin seeded from (seed, hit index) lands below `probability`.
  double probability = 1.0;
  uint64_t seed = 0;
};

// Process-wide registry of armed fault points. Thread-safe; a singleton so
// fault points deep inside the library need no plumbing.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  // Arms `point` with `spec`, replacing any previous spec and resetting the
  // point's hit counter.
  void Arm(const std::string& point, const FaultSpec& spec);

  // Arms `point` to fire `kind` exactly once, on the nth hit (1-based).
  void ArmNth(const std::string& point, FaultKind kind, int64_t nth);

  void Disarm(const std::string& point);

  // Disarms everything and zeroes all hit counters.
  void Reset();

  // Arms points from a spec string (grammar in the file comment). Partial
  // application on error: specs before the malformed clause stay armed.
  Status ArmFromSpec(const std::string& spec);

  // Arms from the PRIVREC_FAULTS environment variable; no-op if unset.
  Status ArmFromEnv();

  // Hits recorded for `point` since it was last armed (unarmed points do
  // not count hits — the fast path skips them).
  int64_t HitCount(const std::string& point) const;

  // True iff at least one point is armed.
  bool AnyArmed() const {
    return any_armed_.load(std::memory_order_relaxed);
  }

  // Slow path: records a hit and returns the fault to inject (kNone when
  // the point is unarmed or this hit does not fire). Use fault::Hit below.
  FaultKind HitSlow(const char* point);

 private:
  FaultInjector() = default;

  struct PointState {
    FaultSpec spec;
    int64_t hits = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, PointState> points_;
  std::atomic<bool> any_armed_{false};
};

#ifdef PRIVREC_NO_FAULT_INJECTION

// Lets tests (and diagnostics) detect a build with the probes compiled
// out: armed points exist but never fire.
inline constexpr bool kCompiledIn = false;

inline constexpr FaultKind Hit(const char* /*point*/) {
  return FaultKind::kNone;
}

#else

inline constexpr bool kCompiledIn = true;

// The probe placed at fault points: returns the fault to inject at this
// hit, kNone when nothing is armed.
inline FaultKind Hit(const char* point) {
  FaultInjector& injector = FaultInjector::Instance();
  if (!injector.AnyArmed()) return FaultKind::kNone;
  return injector.HitSlow(point);
}

#endif  // PRIVREC_NO_FAULT_INJECTION

// Applies a kNaN/kInf fault at `point` to `value`; other kinds (and unarmed
// points) leave it unchanged.
double MaybePoison(const char* point, double value);

// RAII helper for tests: disarms everything on scope exit so a failing test
// cannot leak armed faults into the next one.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection() = default;
  ScopedFaultInjection(const std::string& point, const FaultSpec& spec) {
    FaultInjector::Instance().Arm(point, spec);
  }
  ~ScopedFaultInjection() { FaultInjector::Instance().Reset(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace privrec::fault

#endif  // PRIVREC_COMMON_FAULT_INJECTION_H_
