#include "common/fault_injection.h"

#include <cstdlib>
#include <limits>

#include "common/random.h"
#include "common/string_util.h"

namespace privrec::fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kIoError:
      return "io_error";
    case FaultKind::kShortRead:
      return "short_read";
    case FaultKind::kNaN:
      return "nan";
    case FaultKind::kInf:
      return "inf";
    case FaultKind::kBadAlloc:
      return "bad_alloc";
    case FaultKind::kLatency:
      return "latency";
  }
  return "none";
}

bool ParseFaultKind(const std::string& name, FaultKind* out) {
  for (FaultKind kind :
       {FaultKind::kIoError, FaultKind::kShortRead, FaultKind::kNaN,
        FaultKind::kInf, FaultKind::kBadAlloc, FaultKind::kLatency}) {
    if (name == FaultKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const std::string& point, const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  points_[point] = PointState{spec, 0};
  any_armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::ArmNth(const std::string& point, FaultKind kind,
                           int64_t nth) {
  FaultSpec spec;
  spec.kind = kind;
  spec.first_hit = nth;
  spec.count = 1;
  Arm(point, spec);
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.erase(point);
  any_armed_.store(!points_.empty(), std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  any_armed_.store(false, std::memory_order_relaxed);
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  for (std::string_view clause : Split(spec, ';')) {
    clause = Trim(clause);
    if (clause.empty()) continue;
    size_t eq = clause.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("fault spec clause missing '=': " +
                                     std::string(clause));
    }
    std::string point(Trim(clause.substr(0, eq)));
    std::string_view rhs = Trim(clause.substr(eq + 1));

    FaultSpec out;
    std::string kind_name;
    std::string_view rest;
    size_t at = rhs.find('@');
    size_t pct = rhs.find('%');
    if (at != std::string_view::npos) {
      kind_name = std::string(rhs.substr(0, at));
      rest = rhs.substr(at + 1);
      // N | N+ | N+K
      size_t plus = rest.find('+');
      std::string_view first =
          plus == std::string_view::npos ? rest : rest.substr(0, plus);
      if (!ParseInt64(first, &out.first_hit) || out.first_hit < 1) {
        return Status::InvalidArgument("bad hit index in fault spec: " +
                                       std::string(rhs));
      }
      if (plus == std::string_view::npos) {
        out.count = 1;
      } else {
        std::string_view width = rest.substr(plus + 1);
        if (width.empty()) {
          out.count = std::numeric_limits<int64_t>::max();
        } else if (!ParseInt64(width, &out.count) || out.count < 1) {
          return Status::InvalidArgument("bad hit count in fault spec: " +
                                         std::string(rhs));
        }
      }
    } else if (pct != std::string_view::npos) {
      kind_name = std::string(rhs.substr(0, pct));
      rest = rhs.substr(pct + 1);
      // P:SEED (seed optional)
      size_t colon = rest.find(':');
      std::string_view prob =
          colon == std::string_view::npos ? rest : rest.substr(0, colon);
      if (!ParseDouble(prob, &out.probability) || out.probability < 0.0 ||
          out.probability > 1.0) {
        return Status::InvalidArgument("bad probability in fault spec: " +
                                       std::string(rhs));
      }
      if (colon != std::string_view::npos) {
        int64_t seed = 0;
        if (!ParseInt64(rest.substr(colon + 1), &seed)) {
          return Status::InvalidArgument("bad seed in fault spec: " +
                                         std::string(rhs));
        }
        out.seed = static_cast<uint64_t>(seed);
      }
    } else {
      kind_name = std::string(rhs);
    }
    if (!ParseFaultKind(kind_name, &out.kind)) {
      return Status::InvalidArgument("unknown fault kind: " + kind_name);
    }
    Arm(point, out);
  }
  return Status::Ok();
}

Status FaultInjector::ArmFromEnv() {
  const char* env = std::getenv("PRIVREC_FAULTS");
  if (env == nullptr || env[0] == '\0') return Status::Ok();
  return ArmFromSpec(env);
}

int64_t FaultInjector::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

FaultKind FaultInjector::HitSlow(const char* point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return FaultKind::kNone;
  PointState& state = it->second;
  const int64_t hit = ++state.hits;  // 1-based
  if (hit < state.spec.first_hit) return FaultKind::kNone;
  if (hit - state.spec.first_hit >= state.spec.count) {
    return FaultKind::kNone;
  }
  if (state.spec.probability < 1.0) {
    // Seeded per-hit coin: deterministic in (seed, hit index).
    uint64_t bits =
        SplitMix64(state.spec.seed ^ (0x9e3779b97f4a7c15ull *
                                      static_cast<uint64_t>(hit)));
    double coin =
        static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
    if (coin >= state.spec.probability) return FaultKind::kNone;
  }
  return state.spec.kind;
}

double MaybePoison(const char* point, double value) {
  switch (Hit(point)) {
    case FaultKind::kNaN:
      return std::numeric_limits<double>::quiet_NaN();
    case FaultKind::kInf:
      return std::numeric_limits<double>::infinity();
    default:
      return value;
  }
}

}  // namespace privrec::fault
