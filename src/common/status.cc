#include "common/status.h"

namespace privrec {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kVersionMismatch:
      return "VERSION_MISMATCH";
    case StatusCode::kGraphMismatch:
      return "GRAPH_MISMATCH";
    case StatusCode::kProvenanceMismatch:
      return "PROVENANCE_MISMATCH";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace privrec
