// Deterministic random number generation for privrec.
//
// All randomized components in the library (graph generators, Louvain node
// orderings, DP mechanisms, experiment trials) draw from an explicitly
// seeded Rng so that every run is reproducible bit-for-bit. The engine is
// xoshiro256++ seeded through splitmix64, which is fast, has a 256-bit
// state, and passes BigCrush.
//
// Distribution helpers include the samplers required by the paper's
// mechanisms: Laplace (Theorem 1), exponential, and two-sided geometric
// (the discrete analogue of Laplace).

#ifndef PRIVREC_COMMON_RANDOM_H_
#define PRIVREC_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace privrec {

// Stateless 64-bit mixer; used for seeding and for deriving independent
// per-entity substreams (e.g. one stream per trial).
uint64_t SplitMix64(uint64_t x);

// xoshiro256++ engine with distribution helpers. Copyable (cheap, 32-byte
// state); copies evolve independently.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Derives an independent generator for substream `stream_id`; used to give
  // each trial/user/item its own reproducible stream.
  Rng Fork(uint64_t stream_id) const;

  // UniformRandomBitGenerator interface (usable with <random> and
  // std::shuffle).
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ull; }
  uint64_t operator()() { return Next(); }

  uint64_t Next();

  // Uniform in [0, n). Requires n > 0. Uses Lemire's multiply-shift with
  // rejection for exact uniformity.
  uint64_t UniformInt(uint64_t n);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Standard normal via Marsaglia polar method.
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Exponential with rate lambda > 0 (mean 1/lambda).
  double Exponential(double lambda);

  // Laplace(0, scale): density (1/2b) exp(-|x|/b). This is the noise
  // distribution of Theorem 1; variance is 2*scale^2.
  double Laplace(double scale);

  // Two-sided geometric noise with parameter alpha in (0,1):
  // Pr[X = k] proportional to alpha^|k|. The discrete analogue of Laplace;
  // alpha = exp(-eps/sensitivity) yields eps-DP for integer-valued queries.
  int64_t TwoSidedGeometric(double alpha);

  // Zipf-distributed integer in [0, n) with exponent s >= 0 (s = 0 is
  // uniform). Uses rejection-inversion (Hörmann & Derflinger), O(1) per
  // sample after O(1) setup per call signature.
  uint64_t Zipf(uint64_t n, double s);

  // Fisher-Yates shuffle of v.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Samples k distinct indices from [0, n) uniformly (Floyd's algorithm).
  // Requires k <= n. Result is unsorted.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

 private:
  uint64_t s_[4];
};

}  // namespace privrec

#endif  // PRIVREC_COMMON_RANDOM_H_
