// Wall-clock timer for experiment reporting.

#ifndef PRIVREC_COMMON_TIMER_H_
#define PRIVREC_COMMON_TIMER_H_

#include <chrono>

namespace privrec {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace privrec

#endif  // PRIVREC_COMMON_TIMER_H_
