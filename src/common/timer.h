// Wall-clock timers for experiment reporting: WallTimer for ad-hoc
// elapsed-time reads, ScopedTimer for scoped phases that should also
// accumulate into a metrics histogram.

#ifndef PRIVREC_COMMON_TIMER_H_
#define PRIVREC_COMMON_TIMER_H_

#include <chrono>

#include "obs/metrics.h"

namespace privrec {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// The scoped/accumulating variant: observes the elapsed milliseconds into
// a metrics histogram when the scope exits (or when Stop() is called
// explicitly), while still exposing the WallTimer read API for printed
// progress lines. With a null sink it degrades to a plain WallTimer.
class ScopedTimer {
 public:
  explicit ScopedTimer(obs::Histogram* sink) : sink_(sink) {}
  ~ScopedTimer() { Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }
  double ElapsedMillis() const { return timer_.ElapsedMillis(); }

  // Records the current elapsed time into the sink now (idempotent; the
  // destructor then records nothing further).
  void Stop() {
    if (sink_ != nullptr) {
      sink_->Observe(timer_.ElapsedMillis());
      sink_ = nullptr;
    }
  }

 private:
  WallTimer timer_;
  obs::Histogram* sink_;
};

}  // namespace privrec

#endif  // PRIVREC_COMMON_TIMER_H_
