// A tiny --key=value command-line flag parser for the bench and example
// binaries (which want e.g. --trials=3 --users=5000 without pulling in a
// flags dependency).
//
// Usage:
//   FlagParser flags(argc, argv);
//   int trials = flags.GetInt("trials", 10);
//   if (!flags.Validate()) return 1;   // rejects unknown flags

#ifndef PRIVREC_COMMON_FLAGS_H_
#define PRIVREC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace privrec {

class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  // Accessors record the flag name as "known"; unknown flags on the command
  // line are reported by Validate().
  int64_t GetInt(const std::string& name, int64_t default_value);
  double GetDouble(const std::string& name, double default_value);
  std::string GetString(const std::string& name,
                        const std::string& default_value);
  bool GetBool(const std::string& name, bool default_value);

  bool Has(const std::string& name) const {
    return values_.count(name) > 0;
  }

  // Returns false (and prints to stderr) if any parse error occurred or any
  // flag supplied on the command line was never consumed. Unknown flags
  // close in edit distance to a known flag get a "did you mean" hint
  // (catching e.g. --allocaton=geometric silently selecting the default).
  bool Validate() const;

  // The closest known (consumed) flag name within a small edit distance of
  // `name`, or "" if nothing is close enough. Exposed for tests; Validate()
  // uses it for its hint.
  std::string SuggestionFor(const std::string& name) const;

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> known_;
  bool parse_error_ = false;
};

}  // namespace privrec

#endif  // PRIVREC_COMMON_FLAGS_H_
