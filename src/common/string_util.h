// Minimal string helpers for parsers and report printers.

#ifndef PRIVREC_COMMON_STRING_UTIL_H_
#define PRIVREC_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace privrec {

// Splits on a single delimiter character; empty fields are kept
// ("a,,b" -> {"a", "", "b"}). An empty input yields one empty field.
std::vector<std::string_view> Split(std::string_view s, char delim);

// Splits on any run of whitespace; empty fields are dropped.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

// Strips leading/trailing whitespace (space, tab, CR, LF).
std::string_view Trim(std::string_view s);

// Strict numeric parsers: the whole (trimmed) string must be consumed.
// Return false on any violation, leaving *out untouched.
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseDouble(std::string_view s, double* out);

// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);

// Levenshtein edit distance (insert/delete/substitute, unit costs); used
// for "did you mean" suggestions on typo'd flag names.
int64_t EditDistance(std::string_view a, std::string_view b);

// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double x, int digits);

}  // namespace privrec

#endif  // PRIVREC_COMMON_STRING_UTIL_H_
