// LoadReport: per-defect-class diagnostics for hardened ingestion.
//
// Loaders run in one of two modes:
//   kStrict   any malformed record aborts the load with a ParseError
//             (the historical behaviour; right for curated inputs where a
//             defect means the file is not what the caller thinks it is).
//   kLenient  malformed records are counted per defect class and skipped;
//             the valid subset loads and the caller inspects the report
//             (right for operational ingestion of external dumps).
//
// Every loader fills a LoadReport in both modes, so even a strict success
// reports what it scanned.

#ifndef PRIVREC_COMMON_LOAD_REPORT_H_
#define PRIVREC_COMMON_LOAD_REPORT_H_

#include <cstdint>
#include <string>

namespace privrec {

enum class ParseMode {
  kStrict,
  kLenient,
};

struct LoadReport {
  // Non-blank, non-comment record lines seen (across all files of a
  // multi-file load).
  int64_t lines_scanned = 0;
  // Records that made it into the loaded structure.
  int64_t records_loaded = 0;

  // Defect classes (lenient mode counts-and-skips; strict mode aborts on
  // the first instance, so at most one class is nonzero after a failure).
  int64_t skipped_malformed = 0;     // wrong field count / non-numeric
  int64_t skipped_out_of_range = 0;  // negative or otherwise invalid ids
  int64_t skipped_duplicates = 0;    // repeated edge
  int64_t skipped_self_loops = 0;    // a == b in an undirected edge list
  int64_t skipped_bad_weight = 0;    // non-numeric / non-positive weight

  // File-shape diagnostics.
  bool truncated = false;      // stream ended mid-file (short read / I/O)
  bool bom_stripped = false;   // UTF-8 byte-order mark removed from head
  bool empty_input = false;    // no record lines at all
  int64_t io_retries = 0;      // transient I/O failures retried away

  int64_t TotalSkipped() const {
    return skipped_malformed + skipped_out_of_range + skipped_duplicates +
           skipped_self_loops + skipped_bad_weight;
  }

  bool Clean() const { return TotalSkipped() == 0 && !truncated; }

  // Accumulates counts from a per-file report into a whole-load report.
  void Merge(const LoadReport& other);

  // One line, e.g.
  // "scanned 10, loaded 7 (skipped: 1 malformed, 2 duplicate; truncated)".
  std::string ToString() const;
};

// Records a completed load into the metrics registry: rows read/loaded
// plus one counter per defect class under privrec.data.* (loaders call
// this once per finished load, success or failure).
void RecordLoadMetrics(const LoadReport& report);

}  // namespace privrec

#endif  // PRIVREC_COMMON_LOAD_REPORT_H_
