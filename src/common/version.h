// Library version and build provenance.

#ifndef PRIVREC_COMMON_VERSION_H_
#define PRIVREC_COMMON_VERSION_H_

// Stamped by CMake with `git rev-parse --short HEAD` at configure time so
// that benchmark records (BENCH_*.json) identify the code they measured.
#ifndef PRIVREC_GIT_REVISION
#define PRIVREC_GIT_REVISION "unknown"
#endif

namespace privrec {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";
inline constexpr const char* kGitRevision = PRIVREC_GIT_REVISION;

}  // namespace privrec

#endif  // PRIVREC_COMMON_VERSION_H_
