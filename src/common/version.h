// Library version.

#ifndef PRIVREC_COMMON_VERSION_H_
#define PRIVREC_COMMON_VERSION_H_

namespace privrec {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace privrec

#endif  // PRIVREC_COMMON_VERSION_H_
