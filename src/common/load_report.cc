#include "common/load_report.h"

#include <vector>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace privrec {

void LoadReport::Merge(const LoadReport& other) {
  lines_scanned += other.lines_scanned;
  records_loaded += other.records_loaded;
  skipped_malformed += other.skipped_malformed;
  skipped_out_of_range += other.skipped_out_of_range;
  skipped_duplicates += other.skipped_duplicates;
  skipped_self_loops += other.skipped_self_loops;
  skipped_bad_weight += other.skipped_bad_weight;
  truncated = truncated || other.truncated;
  bom_stripped = bom_stripped || other.bom_stripped;
  empty_input = empty_input && other.empty_input;
  io_retries += other.io_retries;
}

std::string LoadReport::ToString() const {
  std::string out = "scanned " + std::to_string(lines_scanned) +
                    ", loaded " + std::to_string(records_loaded);
  std::vector<std::string> skips;
  auto note = [&skips](int64_t n, const char* what) {
    if (n > 0) skips.push_back(std::to_string(n) + " " + what);
  };
  note(skipped_malformed, "malformed");
  note(skipped_out_of_range, "out-of-range");
  note(skipped_duplicates, "duplicate");
  note(skipped_self_loops, "self-loop");
  note(skipped_bad_weight, "bad-weight");
  if (!skips.empty()) out += " (skipped: " + Join(skips, ", ") + ")";
  if (truncated) out += " [truncated]";
  if (bom_stripped) out += " [bom]";
  if (empty_input) out += " [empty]";
  if (io_retries > 0) {
    out += " [" + std::to_string(io_retries) + " retries]";
  }
  return out;
}

void RecordLoadMetrics(const LoadReport& report) {
  static obs::Counter& loads = obs::GetCounter("privrec.data.loads");
  static obs::Counter& lines =
      obs::GetCounter("privrec.data.lines_scanned");
  static obs::Counter& loaded =
      obs::GetCounter("privrec.data.records_loaded");
  static obs::Counter& malformed =
      obs::GetCounter("privrec.data.skipped_malformed");
  static obs::Counter& out_of_range =
      obs::GetCounter("privrec.data.skipped_out_of_range");
  static obs::Counter& duplicates =
      obs::GetCounter("privrec.data.skipped_duplicates");
  static obs::Counter& self_loops =
      obs::GetCounter("privrec.data.skipped_self_loops");
  static obs::Counter& bad_weight =
      obs::GetCounter("privrec.data.skipped_bad_weight");
  static obs::Counter& truncated_loads =
      obs::GetCounter("privrec.data.truncated_loads");
  static obs::Counter& empty_inputs =
      obs::GetCounter("privrec.data.empty_inputs");
  static obs::Counter& io_retry_count =
      obs::GetCounter("privrec.data.io_retries");
  loads.Increment();
  lines.Add(report.lines_scanned);
  loaded.Add(report.records_loaded);
  malformed.Add(report.skipped_malformed);
  out_of_range.Add(report.skipped_out_of_range);
  duplicates.Add(report.skipped_duplicates);
  self_loops.Add(report.skipped_self_loops);
  bad_weight.Add(report.skipped_bad_weight);
  if (report.truncated) truncated_loads.Increment();
  if (report.empty_input) empty_inputs.Increment();
  io_retry_count.Add(report.io_retries);
}

}  // namespace privrec
