#include "common/load_report.h"

#include <vector>

#include "common/string_util.h"

namespace privrec {

void LoadReport::Merge(const LoadReport& other) {
  lines_scanned += other.lines_scanned;
  records_loaded += other.records_loaded;
  skipped_malformed += other.skipped_malformed;
  skipped_out_of_range += other.skipped_out_of_range;
  skipped_duplicates += other.skipped_duplicates;
  skipped_self_loops += other.skipped_self_loops;
  skipped_bad_weight += other.skipped_bad_weight;
  truncated = truncated || other.truncated;
  bom_stripped = bom_stripped || other.bom_stripped;
  empty_input = empty_input && other.empty_input;
  io_retries += other.io_retries;
}

std::string LoadReport::ToString() const {
  std::string out = "scanned " + std::to_string(lines_scanned) +
                    ", loaded " + std::to_string(records_loaded);
  std::vector<std::string> skips;
  auto note = [&skips](int64_t n, const char* what) {
    if (n > 0) skips.push_back(std::to_string(n) + " " + what);
  };
  note(skipped_malformed, "malformed");
  note(skipped_out_of_range, "out-of-range");
  note(skipped_duplicates, "duplicate");
  note(skipped_self_loops, "self-loop");
  note(skipped_bad_weight, "bad-weight");
  if (!skips.empty()) out += " (skipped: " + Join(skips, ", ") + ")";
  if (truncated) out += " [truncated]";
  if (bom_stripped) out += " [bom]";
  if (empty_input) out += " [empty]";
  if (io_retries > 0) {
    out += " [" + std::to_string(io_retries) + " retries]";
  }
  return out;
}

}  // namespace privrec
