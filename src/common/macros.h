// Assertion macros used throughout privrec.
//
// Library code does not throw exceptions; invariant violations terminate the
// process with a diagnostic. PRIVREC_CHECK is always on; PRIVREC_DCHECK
// compiles away in NDEBUG builds.

#ifndef PRIVREC_COMMON_MACROS_H_
#define PRIVREC_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define PRIVREC_CHECK(condition)                                          \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "PRIVREC_CHECK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, #condition);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define PRIVREC_CHECK_MSG(condition, msg)                                 \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "PRIVREC_CHECK failed at %s:%d: %s (%s)\n",    \
                   __FILE__, __LINE__, #condition, msg);                  \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define PRIVREC_DCHECK(condition) \
  do {                            \
  } while (false)
#else
#define PRIVREC_DCHECK(condition) PRIVREC_CHECK(condition)
#endif

#endif  // PRIVREC_COMMON_MACROS_H_
