// Bounded retry with exponential backoff for transient I/O failures.
//
// RetryWithBackoff re-invokes a fallible operation (returning Status or
// Result<T>) while it fails with a retryable code, up to a bounded number
// of attempts. Backoff durations are computed deterministically; the
// caller supplies the sleeper, so tests (and single-threaded tools) run
// with no wall-clock dependence at all — the default sleeper does nothing
// and merely records the schedule in RetryStats.
//
//   RetryStats stats;
//   auto r = RetryWithBackoff(
//       [&] { return graph::LoadSocialGraph(path); }, {}, &stats);

#ifndef PRIVREC_COMMON_RETRY_H_
#define PRIVREC_COMMON_RETRY_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "common/status.h"

namespace privrec {

struct RetryOptions {
  // Total invocations allowed (1 = no retrying).
  int max_attempts = 3;
  // Backoff before retry k (1-based) is initial_backoff_ms * multiplier^(k-1).
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  // Invoked with each backoff duration; null = don't sleep (tests, tools
  // that prefer immediate retries). Real services pass a thread sleep.
  std::function<void(double ms)> sleeper;
  // Which failure codes are worth retrying. Transient I/O only by default;
  // parse errors and precondition failures are permanent.
  bool (*retryable)(StatusCode) = +[](StatusCode code) {
    return code == StatusCode::kIoError;
  };
};

struct RetryStats {
  int attempts = 0;
  double total_backoff_ms = 0.0;
};

namespace internal {
inline StatusCode CodeOf(const Status& s) { return s.code(); }
template <typename T>
StatusCode CodeOf(const Result<T>& r) {
  return r.status().code();
}
}  // namespace internal

template <typename Fn>
auto RetryWithBackoff(Fn&& fn, const RetryOptions& options = {},
                      RetryStats* stats = nullptr) -> decltype(fn()) {
  double backoff = options.initial_backoff_ms;
  int attempts = 0;
  for (;;) {
    auto result = fn();
    ++attempts;
    if (stats != nullptr) stats->attempts = attempts;
    if (result.ok() || attempts >= options.max_attempts ||
        !options.retryable(internal::CodeOf(result))) {
      return result;
    }
    if (stats != nullptr) stats->total_backoff_ms += backoff;
    if (options.sleeper) options.sleeper(backoff);
    backoff *= options.backoff_multiplier;
  }
}

}  // namespace privrec

#endif  // PRIVREC_COMMON_RETRY_H_
