// Bounded retry with exponential backoff for transient I/O failures.
//
// RetryWithBackoff re-invokes a fallible operation (returning Status or
// Result<T>) while it fails with a retryable code, up to a bounded number
// of attempts. Backoff durations are computed deterministically; the
// caller supplies the sleeper, so tests (and single-threaded tools) run
// with no wall-clock dependence at all — the default sleeper does nothing
// and merely records the schedule in RetryStats.
//
//   RetryStats stats;
//   auto r = RetryWithBackoff(
//       [&] { return graph::LoadSocialGraph(path); }, {}, &stats);
//
// Optional deterministic jitter: with `jitter` in (0, 1] the k-th backoff
// is scaled by a factor in [1 - jitter, 1 + jitter] drawn from a
// SplitRng(jitter_seed) stream keyed on the attempt index. The schedule is
// bit-identical for a fixed seed (no global entropy, no wall clock) yet
// de-synchronizes a fleet of retriers whose seeds differ — the classic
// thundering-herd fix, minus the nondeterminism. Off by default.

#ifndef PRIVREC_COMMON_RETRY_H_
#define PRIVREC_COMMON_RETRY_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"

namespace privrec {

struct RetryOptions {
  // Total invocations allowed (1 = no retrying).
  int max_attempts = 3;
  // Backoff before retry k (1-based) is initial_backoff_ms * multiplier^(k-1).
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  // Jitter half-width as a fraction of the nominal backoff: the k-th
  // backoff is multiplied by a deterministic factor in
  // [1 - jitter, 1 + jitter]. 0 disables jitter (exact exponential
  // schedule). Must be in [0, 1].
  double jitter = 0.0;
  // Seed of the SplitRng the jitter factors are drawn from; attempt k uses
  // stream k, so the schedule depends only on (jitter_seed, k).
  uint64_t jitter_seed = 0;
  // Invoked with each backoff duration; null = don't sleep (tests, tools
  // that prefer immediate retries). Real services pass a thread sleep.
  std::function<void(double ms)> sleeper;
  // Which failure codes are worth retrying. Transient I/O only by default;
  // parse errors and precondition failures are permanent.
  bool (*retryable)(StatusCode) = +[](StatusCode code) {
    return code == StatusCode::kIoError;
  };
};

struct RetryStats {
  int attempts = 0;
  double total_backoff_ms = 0.0;
  // The backoff actually applied before each retry (jitter included), in
  // order — one entry per sleep, so max_attempts - 1 entries at most.
  std::vector<double> backoff_schedule_ms;
};

namespace internal {
inline StatusCode CodeOf(const Status& s) { return s.code(); }
template <typename T>
StatusCode CodeOf(const Result<T>& r) {
  return r.status().code();
}
}  // namespace internal

template <typename Fn>
auto RetryWithBackoff(Fn&& fn, const RetryOptions& options = {},
                      RetryStats* stats = nullptr) -> decltype(fn()) {
  double backoff = options.initial_backoff_ms;
  const SplitRng jitter_rng(options.jitter_seed);
  int attempts = 0;
  for (;;) {
    auto result = fn();
    ++attempts;
    if (stats != nullptr) stats->attempts = attempts;
    if (result.ok() || attempts >= options.max_attempts ||
        !options.retryable(internal::CodeOf(result))) {
      return result;
    }
    double applied = backoff;
    if (options.jitter > 0.0) {
      Rng stream = jitter_rng.StreamFor(static_cast<uint64_t>(attempts));
      applied = backoff * (1.0 - options.jitter +
                           2.0 * options.jitter * stream.UniformDouble());
    }
    if (stats != nullptr) {
      stats->total_backoff_ms += applied;
      stats->backoff_schedule_ms.push_back(applied);
    }
    if (options.sleeper) options.sleeper(applied);
    backoff *= options.backoff_multiplier;
  }
}

}  // namespace privrec

#endif  // PRIVREC_COMMON_RETRY_H_
