// Small statistics helpers used by experiments and tests: streaming
// mean/variance (Welford), percentiles, and fixed-bin histograms.

#ifndef PRIVREC_COMMON_STATS_H_
#define PRIVREC_COMMON_STATS_H_

#include <cstdint>
#include <vector>

namespace privrec {

// Streaming mean / variance / min / max accumulator (Welford's algorithm;
// numerically stable for long streams).
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample by linear interpolation between closest ranks.
// `p` in [0, 100]. Copies and sorts; intended for analysis, not hot paths.
double Percentile(std::vector<double> values, double p);

// Fixed-width-bin histogram over [lo, hi); values outside are clamped into
// the first/last bin. Used by tests that check noise distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, int num_bins);

  void Add(double x);
  int64_t bin_count(int b) const { return counts_[b]; }
  int num_bins() const { return static_cast<int>(counts_.size()); }
  int64_t total() const { return total_; }
  // Fraction of mass in bin b; 0 if empty.
  double Fraction(int b) const;
  // Center of bin b.
  double BinCenter(int b) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace privrec

#endif  // PRIVREC_COMMON_STATS_H_
