// Shared command-line conventions for every bench and example driver:
// the --threads flag (deterministic parallel layer) and the observability
// flags (--metrics-json, --trace-out, --metrics-stderr). One helper so the
// parsing is not copy-pasted per binary and unknown-flag typo suggestions
// (common/flags.h) automatically cover all of them.

#ifndef PRIVREC_COMMON_DRIVER_FLAGS_H_
#define PRIVREC_COMMON_DRIVER_FLAGS_H_

#include <cstdint>
#include <string>

#include "common/flags.h"

namespace privrec {

// Consumes the --threads flag (default: hardware concurrency, or the
// PRIVREC_THREADS environment variable if set) and installs it as the
// process-wide thread count for the deterministic parallel layer. Results
// are bit-identical for every value — the flag trades wall-clock only.
int64_t ApplyThreadsFlag(FlagParser& flags);

// RAII export session for the observability flags:
//   --metrics-json=PATH   write a MetricsToJson snapshot on exit
//   --trace-out=PATH      enable the span tracer, write a Chrome
//                         trace_event file on exit (chrome://tracing,
//                         Perfetto)
//   --metrics-stderr=BOOL print the metrics table to stderr on exit
// FromFlags() consumes the flags (so Validate() knows them) and enables
// tracing immediately when --trace-out is set; Finish() — called by the
// destructor at the latest — takes the snapshots and writes the requested
// exports. Export failures print to stderr and never fail the driver.
class ObsSession {
 public:
  static ObsSession FromFlags(FlagParser& flags);

  ObsSession() = default;
  ~ObsSession() { Finish(); }

  ObsSession(ObsSession&& other) noexcept { *this = std::move(other); }
  ObsSession& operator=(ObsSession&& other) noexcept;
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  // Idempotent: exports once, then becomes a no-op.
  void Finish();

 private:
  std::string metrics_json_path_;
  std::string trace_path_;
  bool metrics_stderr_ = false;
  bool finished_ = true;  // armed by FromFlags
};

// The standard driver prologue: --threads plus the obs flags.
inline ObsSession ApplyDriverFlags(FlagParser& flags) {
  ApplyThreadsFlag(flags);
  return ObsSession::FromFlags(flags);
}

// Serving-runtime knobs, shared by every driver that embeds a
// serve::ServeRuntime. Plain integers here (common must not depend on
// serve); drivers copy them into ServeRuntimeOptions. Consuming them
// through the parser also teaches Validate()'s typo suggestions the
// --serve-* vocabulary.
struct ServeFlagSettings {
  int64_t deadline_ms = 1000;       // --serve-deadline-ms
  int64_t queue_depth = 8;          // --serve-queue-depth
  int64_t max_concurrency = 4;      // --serve-max-concurrency
  int64_t breaker_failures = 3;     // --serve-breaker-failures
  int64_t breaker_cooldown_ms = 1000;  // --serve-breaker-cooldown-ms
  int64_t reload_period = 0;        // --serve-reload-period (0 = off)
  // Cross-request batching (serve/batcher.h); 0 window = disabled.
  int64_t batch_window_ms = 0;      // --serve-batch-window-ms
  int64_t batch_max_requests = 8;   // --serve-batch-max-requests
  int64_t batch_max_users = 256;    // --serve-batch-max-users
};

ServeFlagSettings ApplyServeFlags(FlagParser& flags);

// Open-loop load-harness knobs (bench_serve_load and any driver that
// embeds the loadgen harness). Plain scalars for the same layering reason
// as ServeFlagSettings: common must not depend on loadgen, so drivers
// copy these into loadgen::LoadSpec / SwapStormSpec / SloBudget.
// Negative SLO budgets mean "not enforced".
struct LoadFlagSettings {
  double rps = 2000.0;              // --load-rps
  int64_t duration_ms = 2000;       // --load-duration-ms
  int64_t seed = 1;                 // --load-seed
  double zipf_s = 1.1;              // --load-zipf-s
  int64_t users_per_request = 4;    // --load-users-per-request
  double burst_factor = 4.0;        // --load-burst-factor
  int64_t burst_period_ms = 500;    // --load-burst-period-ms
  int64_t burst_duration_ms = 50;   // --load-burst-duration-ms
  int64_t swap_period_ms = 0;       // --load-swap-period-ms (0 = no storm)
  bool swap_storm = false;          // --load-swap-storm (corrupt + faults)
  int64_t threads = 4;              // --load-threads (wall mode)
  bool wall = false;                // --load-wall (real threads + clock)
  double slo_p50_ms = -1.0;         // --load-slo-p50-ms
  double slo_p99_ms = -1.0;         // --load-slo-p99-ms
  double slo_p999_ms = -1.0;        // --load-slo-p999-ms
  double slo_shed_rate = -1.0;      // --load-slo-shed-rate
  double slo_rollback_rate = -1.0;  // --load-slo-rollback-rate
  std::string report = "BENCH_serve.json";  // --load-report ("" = none)
};

LoadFlagSettings ApplyLoadFlags(FlagParser& flags);

// Serving-telemetry knobs (wide-event sampling, rolling SLO windows,
// burn-rate alerting, statusz dumps) for drivers that attach a
// serve::ServeTelemetry sink. Plain scalars for the usual layering
// reason (common must not depend on serve); drivers copy them into
// serve::ServeTelemetryOptions / obs::WindowBudget. Negative window
// budgets mean "not enforced".
struct TelemetryFlagSettings {
  int64_t sample_every = 16;        // --telemetry-sample-every
  double slow_ms = 100.0;           // --telemetry-slow-ms
  int64_t window_ms = 250;          // --telemetry-window-ms
  int64_t burn_lookback = 8;        // --telemetry-burn-lookback
  double burn_threshold = 0.25;     // --telemetry-burn-threshold
  double window_p99_ms = -1.0;      // --telemetry-window-p99-ms
  double window_shed_rate = -1.0;   // --telemetry-window-shed-rate
  std::string jsonl;                // --telemetry-jsonl ("" = none)
  int64_t statusz_every = 0;        // --statusz-every (0 = off)
  std::string statusz_out;          // --statusz-out ("" = stderr)
};

TelemetryFlagSettings ApplyTelemetryFlags(FlagParser& flags);

// Streaming-pipeline knobs (WAL-journaled ingestion + re-publication
// scheduling) for drivers that embed a stream::StreamPipeline. Plain
// scalars for the usual layering reason (common must not depend on
// stream); drivers copy these into StreamPipelineOptions.
struct StreamFlagSettings {
  std::string wal;                  // --stream-wal ("" = unjournaled)
  int64_t fsync_every = 1;          // --stream-fsync-every (0 = never)
  double drift_threshold = 0.05;    // --stream-drift-threshold (restart)
  double republish_drift = 0.05;    // --stream-republish-drift
  double republish_growth = 0.25;   // --stream-republish-growth
  int64_t republish_every = 0;      // --stream-republish-every (0 = off)
  int64_t min_deltas = 8;           // --stream-min-deltas
};

StreamFlagSettings ApplyStreamFlags(FlagParser& flags);

}  // namespace privrec

#endif  // PRIVREC_COMMON_DRIVER_FLAGS_H_
