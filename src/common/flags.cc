#include "common/flags.h"

#include <cstdio>

#include "common/string_util.h"

namespace privrec {

FlagParser::FlagParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!StartsWith(arg, "--")) {
      std::fprintf(stderr, "flags: positional argument not supported: %s\n",
                   argv[i]);
      parse_error_ = true;
      continue;
    }
    arg.remove_prefix(2);
    size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      // Bare --flag means boolean true.
      values_[std::string(arg)] = "true";
    } else {
      values_[std::string(arg.substr(0, eq))] =
          std::string(arg.substr(eq + 1));
    }
  }
}

int64_t FlagParser::GetInt(const std::string& name, int64_t default_value) {
  known_.insert(name);
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  int64_t v = 0;
  if (!ParseInt64(it->second, &v)) {
    std::fprintf(stderr, "flags: --%s=%s is not an integer\n", name.c_str(),
                 it->second.c_str());
    parse_error_ = true;
    return default_value;
  }
  return v;
}

double FlagParser::GetDouble(const std::string& name, double default_value) {
  known_.insert(name);
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  double v = 0;
  if (!ParseDouble(it->second, &v)) {
    std::fprintf(stderr, "flags: --%s=%s is not a number\n", name.c_str(),
                 it->second.c_str());
    parse_error_ = true;
    return default_value;
  }
  return v;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) {
  known_.insert(name);
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) {
  known_.insert(name);
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  std::fprintf(stderr, "flags: --%s=%s is not a boolean\n", name.c_str(),
               it->second.c_str());
  parse_error_ = true;
  return default_value;
}

std::string FlagParser::SuggestionFor(const std::string& name) const {
  // Accept a suggestion only when the typo is small relative to the flag
  // length (distance <= 1 + len/4), so unrelated flags are not offered.
  const int64_t budget = 1 + static_cast<int64_t>(name.size()) / 4;
  std::string best;
  int64_t best_distance = budget + 1;
  for (const std::string& candidate : known_) {
    int64_t d = EditDistance(name, candidate);
    if (d < best_distance || (d == best_distance && candidate < best)) {
      best = candidate;
      best_distance = d;
    }
  }
  return best_distance <= budget ? best : std::string();
}

bool FlagParser::Validate() const {
  bool ok = !parse_error_;
  for (const auto& [name, value] : values_) {
    if (known_.count(name) == 0) {
      std::string suggestion = SuggestionFor(name);
      if (suggestion.empty()) {
        std::fprintf(stderr, "flags: unknown flag --%s=%s\n", name.c_str(),
                     value.c_str());
      } else {
        std::fprintf(stderr,
                     "flags: unknown flag --%s=%s (did you mean --%s?)\n",
                     name.c_str(), value.c_str(), suggestion.c_str());
      }
      ok = false;
    }
  }
  return ok;
}

}  // namespace privrec
