#include "core/dynamic_recommender.h"

#include <cmath>
#include <filesystem>
#include <memory>
#include <optional>
#include <utility>

#include "artifact/builder.h"
#include "artifact/model_io.h"
#include "artifact/serving.h"
#include "common/fault_injection.h"
#include "common/random.h"
#include "core/cluster_recommender.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace privrec::core {

DynamicRecommenderSession::DynamicRecommenderSession(
    const DynamicRecommenderOptions& options)
    : options_(options), budget_(options.total_epsilon) {
  PRIVREC_CHECK(options.total_epsilon > 0.0);
  PRIVREC_CHECK(options.planned_snapshots >= 1);
  PRIVREC_CHECK(options.geometric_ratio > 0.0 &&
                options.geometric_ratio < 1.0);
  PRIVREC_CHECK_MSG(options.ledger_path.empty(),
                    "use DynamicRecommenderSession::Open for a "
                    "ledger-backed session");
}

Result<DynamicRecommenderSession> DynamicRecommenderSession::Open(
    const DynamicRecommenderOptions& options) {
  DynamicRecommenderOptions in_memory = options;
  in_memory.ledger_path.clear();
  DynamicRecommenderSession session(in_memory);
  session.options_ = options;
  if (options.ledger_path.empty()) return session;

  Result<dp::BudgetLedger> ledger =
      dp::BudgetLedger::Open(options.ledger_path, options.total_epsilon);
  if (!ledger.ok()) return ledger.status();
  session.ledger_ = std::move(ledger).value();
  // Every journaled intent counts as spent ε — committed or not. A crash
  // between intent and commit already paid; re-releasing that snapshot
  // must not charge again.
  session.ledger_->ReplayInto(&session.budget_);
  // Resume after the last committed snapshot. If an uncommitted intent
  // exists it is for exactly this index (intents are sequential), and
  // ProcessSnapshot will re-derive the identical release without a fresh
  // charge.
  session.snapshots_processed_ = session.ledger_->NumCommitted();
  return session;
}

double DynamicRecommenderSession::EpsilonForSnapshot(int64_t t) const {
  PRIVREC_CHECK(t >= 0);
  switch (options_.allocation) {
    case BudgetAllocation::kUniform:
      return options_.total_epsilon /
             static_cast<double>(options_.planned_snapshots);
    case BudgetAllocation::kGeometric:
      return options_.total_epsilon * (1.0 - options_.geometric_ratio) *
             std::pow(options_.geometric_ratio, static_cast<double>(t));
  }
  return 0.0;
}

Result<SnapshotRelease> DynamicRecommenderSession::ProcessSnapshot(
    const RecommenderContext& context,
    const std::vector<graph::NodeId>& users, int64_t top_n,
    const community::Partition* partition) {
  context.CheckValid();
  const int64_t t = snapshots_processed_;
  PRIVREC_SPAN_CHUNK("core.dynamic.snapshot", t);
  static obs::Counter& snapshots =
      obs::GetCounter("privrec.dynamic.snapshots");
  static obs::Counter& stale_replays =
      obs::GetCounter("privrec.dynamic.stale_replays");
  static obs::Counter& resumed =
      obs::GetCounter("privrec.dynamic.resumed_from_intent");
  snapshots.Increment();
  const double epsilon = EpsilonForSnapshot(t);

  // Write-ahead accounting. Three cases:
  //   1. The ledger already holds an intent for t (previous run crashed
  //      between journal and release): the ε was restored by ReplayInto,
  //      charge nothing and re-derive the identical release below.
  //   2. Budget covers ε_t: journal the intent FIRST, then charge.
  //   3. Budget exhausted: stale replay or RESOURCE_EXHAUSTED.
  const bool resumed_intent = ledger_ && ledger_->HasIntent(t);
  if (!resumed_intent) {
    if (epsilon <= 0.0 || !budget_.CanCharge(kGroup, epsilon)) {
      if (options_.serve_stale_on_exhaustion && !last_lists_.empty()) {
        SnapshotRelease release;
        release.lists = last_lists_;
        release.degradation.assign(
            users.size(), {DegradationReason::kStaleReplay});
        release.report.users_degraded =
            static_cast<int64_t>(users.size());
        release.epsilon_spent = 0.0;
        release.cumulative_epsilon = epsilon_spent();
        release.snapshot_index = t;
        release.stale = true;
        stale_replays.Increment();
        return release;
      }
      return Status::ResourceExhausted(
          "privacy budget exhausted after " + std::to_string(t) +
          " snapshots (spent " + std::to_string(epsilon_spent()) + " of " +
          std::to_string(options_.total_epsilon) + ")");
    }
    if (ledger_) {
      Status journaled = ledger_->AppendIntent(t, kGroup, epsilon);
      if (!journaled.ok()) return journaled;
    }
    PRIVREC_CHECK(budget_.Charge(kGroup, epsilon));
  }

  // The crash window the ledger protects against: ε journaled, release
  // not yet out.
  if (fault::Hit("dynamic.after_journal") == fault::FaultKind::kIoError) {
    return Status::IoError(
        "session aborted after journaling snapshot " + std::to_string(t) +
        " (injected fault)");
  }

  // Cluster the public social graph for this snapshot: the caller's
  // partition when one was injected (streaming keeps an incrementally
  // maintained clustering), otherwise a fresh Louvain run. Both the
  // clustering seed and the noise seed are pure functions of (seed, t),
  // which is what makes re-deriving a crashed release bit-identical.
  community::Partition clustering;
  if (partition != nullptr) {
    PRIVREC_CHECK_MSG(partition->num_nodes() == context.social->num_nodes(),
                      "injected partition does not cover the snapshot's "
                      "social graph");
    clustering = *partition;
  } else {
    community::LouvainOptions louvain_options = options_.louvain;
    louvain_options.seed =
        SplitMix64(options_.seed ^ static_cast<uint64_t>(t));
    clustering =
        community::RunLouvain(*context.social, louvain_options).partition;
  }

  const uint64_t noise_seed =
      SplitMix64(options_.seed + 0x9e37 + static_cast<uint64_t>(t));
  RecommendedBatch batch;
  if (!options_.artifact_dir.empty()) {
    // Two-phase route: build → save → load → serve. The artifact's
    // publication uses the same (partition, workload, ε_t, seed) as the
    // in-process route and serving runs the same reconstruction template,
    // so the released lists are bit-identical either way.
    std::error_code ec;
    std::filesystem::create_directories(options_.artifact_dir, ec);
    if (ec) {
      return Status::IoError("cannot create artifact dir '" +
                             options_.artifact_dir + "': " + ec.message());
    }
    const std::string path = options_.artifact_dir + "/snapshot_" +
                             std::to_string(t) + ".pvra";
    // A crash mid-save leaves a temp file next to the destination; it is
    // garbage from a torn write, never a resumable artifact.
    std::filesystem::remove(path + ".tmp", ec);

    artifact::ModelArtifactBuilder builder(context.social,
                                           context.preferences);
    builder.SetPartition(&clustering);
    builder.SetWorkload(context.workload);

    // Crash recovery may find snapshot t's artifact already on disk (the
    // previous run died after the rename committed but before the ledger
    // commit landed). If it loads cleanly and its provenance matches the
    // (ε_t, seed) this call would rebuild with, serve straight from it —
    // the noise inside is exactly the deterministic draw a rebuild would
    // reproduce. Any mismatch or load failure (torn file, wrong epoch)
    // falls through to skip-and-rebuild, overwriting the bad file.
    std::optional<serving::ServingEngine> engine;
    if (resumed_intent && std::filesystem::exists(path)) {
      Result<serving::ServingEngine> reloaded =
          serving::ServingEngine::Load(path);
      if (reloaded.ok() &&
          reloaded->model().provenance.epsilon == epsilon &&
          reloaded->model().provenance.seed == noise_seed) {
        static obs::Counter& reused =
            obs::GetCounter("privrec.dynamic.artifact_reused");
        reused.Increment();
        engine.emplace(std::move(reloaded).value());
      }
    }
    if (!engine) {
      artifact::BuildOptions build_options;
      build_options.epsilon = epsilon;
      build_options.seed = noise_seed;
      build_options.include_reference_sections = false;
      build_options.ledger_id =
          options_.ledger_path.empty()
              ? "snapshot_" + std::to_string(t)
              : options_.ledger_path + "#" + std::to_string(t);
      Result<serving::ArtifactModel> model = builder.Build(build_options);
      if (!model.ok()) return model.status();
      Status saved = serving::SaveArtifact(*model, path);
      if (!saved.ok()) return saved;
      Result<serving::ServingEngine> loaded =
          serving::ServingEngine::Load(path);
      if (!loaded.ok()) return loaded.status();
      engine.emplace(std::move(loaded).value());
    }
    serving::ServeSpec spec;
    spec.mechanism = "Cluster";
    spec.epsilon = epsilon;
    spec.expected_graph_hash = builder.graph_hash();
    Result<std::unique_ptr<serving::ServeRecommender>> server =
        serving::MakeServeRecommender(&*engine, spec);
    if (!server.ok()) return server.status();
    batch = (*server)->Recommend(users, top_n);
  } else {
    ClusterRecommender recommender(context, clustering,
                                   {.epsilon = epsilon, .seed = noise_seed});
    batch = recommender.RecommendWithReport(users, top_n);
  }

  SnapshotRelease release;
  release.lists = std::move(batch.lists);
  release.degradation = std::move(batch.degradation);
  release.report = batch.report;
  release.epsilon_spent = resumed_intent ? 0.0 : epsilon;
  release.cumulative_epsilon = epsilon_spent();
  release.snapshot_index = t;
  release.num_clusters = clustering.num_clusters();
  release.resumed_from_intent = resumed_intent;
  if (resumed_intent) resumed.Increment();

  if (ledger_ && !ledger_->IsCommitted(t)) {
    Status committed = ledger_->AppendCommit(t);
    if (!committed.ok()) return committed;
  }
  ++snapshots_processed_;
  last_lists_ = release.lists;
  return release;
}

}  // namespace privrec::core
