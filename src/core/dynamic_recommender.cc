#include "core/dynamic_recommender.h"

#include <cmath>
#include <utility>

#include "common/random.h"
#include "core/cluster_recommender.h"

namespace privrec::core {

DynamicRecommenderSession::DynamicRecommenderSession(
    const DynamicRecommenderOptions& options)
    : options_(options), budget_(options.total_epsilon) {
  PRIVREC_CHECK(options.total_epsilon > 0.0);
  PRIVREC_CHECK(options.planned_snapshots >= 1);
  PRIVREC_CHECK(options.geometric_ratio > 0.0 &&
                options.geometric_ratio < 1.0);
}

double DynamicRecommenderSession::EpsilonForSnapshot(int64_t t) const {
  PRIVREC_CHECK(t >= 0);
  switch (options_.allocation) {
    case BudgetAllocation::kUniform:
      return options_.total_epsilon /
             static_cast<double>(options_.planned_snapshots);
    case BudgetAllocation::kGeometric:
      return options_.total_epsilon * (1.0 - options_.geometric_ratio) *
             std::pow(options_.geometric_ratio, static_cast<double>(t));
  }
  return 0.0;
}

Result<SnapshotRelease> DynamicRecommenderSession::ProcessSnapshot(
    const RecommenderContext& context,
    const std::vector<graph::NodeId>& users, int64_t top_n) {
  context.CheckValid();
  const int64_t t = snapshots_processed_;
  const double epsilon = EpsilonForSnapshot(t);
  if (epsilon <= 0.0 || !budget_.Charge(kGroup, epsilon)) {
    return Status::FailedPrecondition(
        "privacy budget exhausted after " + std::to_string(t) +
        " snapshots (spent " + std::to_string(epsilon_spent()) + " of " +
        std::to_string(options_.total_epsilon) + ")");
  }

  // Re-cluster the public social graph for this snapshot.
  community::LouvainOptions louvain_options = options_.louvain;
  louvain_options.seed =
      SplitMix64(options_.seed ^ static_cast<uint64_t>(t));
  community::LouvainResult louvain =
      community::RunLouvain(*context.social, louvain_options);

  ClusterRecommender recommender(
      context, louvain.partition,
      {.epsilon = epsilon,
       .seed = SplitMix64(options_.seed + 0x9e37 +
                          static_cast<uint64_t>(t))});
  SnapshotRelease release;
  release.lists = recommender.Recommend(users, top_n);
  release.epsilon_spent = epsilon;
  release.cumulative_epsilon = epsilon_spent();
  release.snapshot_index = t;
  release.num_clusters = louvain.partition.num_clusters();
  ++snapshots_processed_;
  return release;
}

}  // namespace privrec::core
