// Name-based recommender construction: one entry point that maps the
// mechanism names used throughout the paper ("Exact", "Cluster", "NOU",
// "NOE", "GS", "LRM") to configured instances. Keeps bench/example/CLI
// code free of per-mechanism wiring.
//
// Two construction paths behind the same Recommender interface:
//   - legacy in-memory (MakeRecommender over a RecommenderContext), and
//   - artifact-backed (spec.engine set, or MakeArtifactRecommender),
//     which adapts a serving::ServeRecommender over a loaded .pvra model
//     so callers cannot tell the two apart.

#ifndef PRIVREC_CORE_RECOMMENDER_FACTORY_H_
#define PRIVREC_CORE_RECOMMENDER_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "artifact/serving.h"
#include "common/status.h"
#include "community/partition.h"
#include "core/recommender.h"

namespace privrec::core {

struct RecommenderSpec {
  // One of MechanismNames(). Case-sensitive.
  std::string mechanism = "Cluster";
  // Ignored by "Exact".
  double epsilon = 1.0;
  uint64_t seed = 1;
  // Required by "Cluster" (must cover the social graph's users).
  const community::Partition* partition = nullptr;
  // GS group size; LRM target rank.
  int64_t gs_group_size = 128;
  int64_t lrm_target_rank = 200;
  // Non-null: serve from this loaded artifact instead of the in-memory
  // context (which MakeRecommender then ignores entirely). The engine
  // must outlive the recommender.
  const serving::ServingEngine* engine = nullptr;
  // Artifact path only: when nonzero the engine's model must carry this
  // dataset fingerprint (kGraphMismatch otherwise).
  uint64_t expected_graph_hash = 0;
};

// All constructible mechanism names, paper order.
const std::vector<std::string>& MechanismNames();

// Builds the requested recommender, or InvalidArgument for unknown names
// / missing partition. With spec.engine set, builds the artifact-backed
// serve path instead and may also fail the compatibility gates
// (kGraphMismatch / kProvenanceMismatch / kFailedPrecondition — see
// serving::MakeServeRecommender).
Result<std::unique_ptr<Recommender>> MakeRecommender(
    const RecommenderContext& context, const RecommenderSpec& spec);

// Artifact-backed recommender that co-owns its engine — for callers that
// load an artifact and have no natural place to keep it alive.
Result<std::unique_ptr<Recommender>> MakeArtifactRecommender(
    std::shared_ptr<const serving::ServingEngine> engine,
    const RecommenderSpec& spec);

}  // namespace privrec::core

#endif  // PRIVREC_CORE_RECOMMENDER_FACTORY_H_
