// Name-based recommender construction: one entry point that maps the
// mechanism names used throughout the paper ("Exact", "Cluster", "NOU",
// "NOE", "GS", "LRM") to configured instances. Keeps bench/example/CLI
// code free of per-mechanism wiring.

#ifndef PRIVREC_CORE_RECOMMENDER_FACTORY_H_
#define PRIVREC_CORE_RECOMMENDER_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "community/partition.h"
#include "core/recommender.h"

namespace privrec::core {

struct RecommenderSpec {
  // One of MechanismNames(). Case-sensitive.
  std::string mechanism = "Cluster";
  // Ignored by "Exact".
  double epsilon = 1.0;
  uint64_t seed = 1;
  // Required by "Cluster" (must cover the social graph's users).
  const community::Partition* partition = nullptr;
  // GS group size; LRM target rank.
  int64_t gs_group_size = 128;
  int64_t lrm_target_rank = 200;
};

// All constructible mechanism names, paper order.
const std::vector<std::string>& MechanismNames();

// Builds the requested recommender, or InvalidArgument for unknown names
// / missing partition.
Result<std::unique_ptr<Recommender>> MakeRecommender(
    const RecommenderContext& context, const RecommenderSpec& spec);

}  // namespace privrec::core

#endif  // PRIVREC_CORE_RECOMMENDER_FACTORY_H_
