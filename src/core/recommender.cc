#include "core/recommender.h"

// Recommender is header-only apart from the vtable anchor below; keeping
// the key function here avoids emitting the vtable in every TU.

namespace privrec::core {}  // namespace privrec::core
