#include "core/low_rank_recommender.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dp/mechanisms.h"
#include "la/svd.h"

namespace privrec::core {

LowRankRecommender::LowRankRecommender(
    const RecommenderContext& context,
    const LowRankRecommenderOptions& options)
    : context_(context), options_(options) {
  context_.CheckValid();
  PRIVREC_CHECK_MSG(dp::IsValidEpsilon(options_.epsilon), "bad epsilon");
  PRIVREC_CHECK(options_.target_rank >= 1);

  const graph::NodeId n = context_.social->num_nodes();
  // Materialize the dense workload W[u][v] = sim(u, v).
  la::DenseMatrix w(n, n);
  for (graph::NodeId u = 0; u < n; ++u) {
    for (const similarity::SimilarityEntry& e : context_.workload->Row(u)) {
      w(u, e.user) = e.score;
    }
  }

  la::SvdOptions svd_options;
  svd_options.rank = std::min<int64_t>(options_.target_rank, n);
  svd_options.seed = options_.seed ^ 0x5fd1;
  la::SvdResult svd = la::RandomizedSvd(w, svd_options);
  rank_ = static_cast<int64_t>(svd.singular_values.size());

  // B = U_r, L = diag(sigma) V_r^T.
  b_ = std::move(svd.u);
  l_ = std::move(svd.vt);
  for (int64_t k = 0; k < rank_; ++k) {
    double sigma = svd.singular_values[static_cast<size_t>(k)];
    for (graph::NodeId v = 0; v < n; ++v) {
      l_(k, v) *= sigma;
    }
  }
  // One edge toggles coordinate v of D_i by at most w_max, shifting L*D_i
  // by w_max times column v of L.
  noise_sensitivity_ =
      l_.MaxColumnL1Norm() * context_.preferences->max_weight();

  // Factorization quality, for reporting: ||W - BL||_F / ||W||_F.
  la::DenseMatrix approx = b_.Multiply(l_);
  double num = 0.0;
  for (graph::NodeId u = 0; u < n; ++u) {
    for (graph::NodeId v = 0; v < n; ++v) {
      double d = w(u, v) - approx(u, v);
      num += d * d;
    }
  }
  double den = w.FrobeniusNorm();
  factorization_error_ = den > 0.0 ? std::sqrt(num) / den : 0.0;
}

std::vector<RecommendationList> LowRankRecommender::Recommend(
    const std::vector<graph::NodeId>& users, int64_t top_n) {
  const graph::NodeId num_users = context_.preferences->num_users();
  const graph::ItemId num_items = context_.preferences->num_items();
  dp::LaplaceMechanism laplace(options_.epsilon,
                               Rng(options_.seed).Fork(invocation_++));
  const double sensitivity = std::max(noise_sensitivity_, 1e-12);

  std::vector<TopNAccumulator> accumulators;
  accumulators.reserve(users.size());
  for (size_t k = 0; k < users.size(); ++k) {
    PRIVREC_CHECK(users[k] >= 0 && users[k] < num_users);
    accumulators.emplace_back(top_n);
  }

  std::vector<double> strategy(static_cast<size_t>(rank_));
  for (graph::ItemId i = 0; i < num_items; ++i) {
    // L D_i: weighted sum of L's columns over the users who prefer item i.
    std::fill(strategy.begin(), strategy.end(), 0.0);
    auto buyers = context_.preferences->UsersOf(i);
    auto weights = context_.preferences->ItemWeights(i);
    for (size_t b = 0; b < buyers.size(); ++b) {
      graph::NodeId v = buyers[b];
      double w = weights[b];
      for (int64_t k = 0; k < rank_; ++k) {
        strategy[static_cast<size_t>(k)] += w * l_(k, v);
      }
    }
    // Noise on the strategy answers (this is where LRM wins when the rank
    // is genuinely low: r noisy numbers instead of |U|).
    for (int64_t k = 0; k < rank_; ++k) {
      strategy[static_cast<size_t>(k)] =
          laplace.Release(strategy[static_cast<size_t>(k)], sensitivity);
    }
    // ŷ_i = B * strategy; only requested users' coordinates are consumed.
    for (size_t k = 0; k < users.size(); ++k) {
      graph::NodeId u = users[k];
      const double* row = b_.RowPtr(u);
      double acc = 0.0;
      for (int64_t r = 0; r < rank_; ++r) {
        acc += row[r] * strategy[static_cast<size_t>(r)];
      }
      accumulators[k].Offer(i, acc);
    }
  }

  std::vector<RecommendationList> out;
  out.reserve(users.size());
  for (TopNAccumulator& acc : accumulators) out.push_back(acc.Take());
  return out;
}

}  // namespace privrec::core
