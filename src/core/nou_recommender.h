// NouRecommender: the "Noise on Utility" strawman (Section 5.1.1).
//
// Applies the Laplace mechanism directly to the utility values:
//   μ̂_u^i = μ_u^i + Lap(Δ_A / ε),  Δ_A = max_v Σ_u sim(u, v),
// because adding/removing one preference edge (v, i) shifts the utility of
// item i for every user similar to v, by sim(u, v) each — so the L1
// sensitivity of the per-item utility vector is the largest column sum of
// the similarity workload.

#ifndef PRIVREC_CORE_NOU_RECOMMENDER_H_
#define PRIVREC_CORE_NOU_RECOMMENDER_H_

#include <cstdint>

#include "core/exact_recommender.h"
#include "core/recommender.h"

namespace privrec::core {

struct NouRecommenderOptions {
  double epsilon = 1.0;
  uint64_t seed = 200;
};

class NouRecommender final : public Recommender {
 public:
  NouRecommender(const RecommenderContext& context,
                 const NouRecommenderOptions& options);

  std::string Name() const override { return "NOU"; }

  // The sensitivity used for the noise scale.
  double sensitivity() const { return sensitivity_; }

  std::vector<RecommendationList> Recommend(
      const std::vector<graph::NodeId>& users, int64_t top_n) override;

 private:
  RecommenderContext context_;
  NouRecommenderOptions options_;
  ExactRecommender exact_;
  double sensitivity_;
  uint64_t invocation_ = 0;
};

}  // namespace privrec::core

#endif  // PRIVREC_CORE_NOU_RECOMMENDER_H_
