// ExactRecommender: the non-private top-N social recommender of
// Definition 4 — utility query Equation (1) evaluated exactly. It is both
// the accuracy reference for NDCG (Section 2.4) and the algorithm A that
// the private mechanisms approximate.

#ifndef PRIVREC_CORE_EXACT_RECOMMENDER_H_
#define PRIVREC_CORE_EXACT_RECOMMENDER_H_

#include <utility>
#include <vector>

#include "core/recommender.h"
#include "similarity/similarity_measure.h"

namespace privrec::core {

class ExactRecommender final : public Recommender {
 public:
  explicit ExactRecommender(const RecommenderContext& context);

  std::string Name() const override { return "Exact"; }

  std::vector<RecommendationList> Recommend(
      const std::vector<graph::NodeId>& users, int64_t top_n) override;

  // The full sparse utility row of u: every item with mu_u^i > 0, sorted by
  // item id. Used by the NDCG evaluator to look up ideal utilities of
  // arbitrary recommended items.
  std::vector<std::pair<graph::ItemId, double>> UtilityRow(
      graph::NodeId u);

  // Stateless variant for callers that manage their own scratch (the
  // parallel batch path and ExactReference precomputation; a scratch must
  // not be shared between concurrent calls).
  static std::vector<std::pair<graph::ItemId, double>> ComputeUtilityRow(
      const RecommenderContext& context, graph::NodeId u,
      similarity::DenseScratch* scratch);

 private:
  RecommenderContext context_;
  similarity::DenseScratch item_scratch_;
};

}  // namespace privrec::core

#endif  // PRIVREC_CORE_EXACT_RECOMMENDER_H_
