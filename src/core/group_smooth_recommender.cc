#include "core/group_smooth_recommender.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/fault_injection.h"
#include "dp/mechanisms.h"

namespace privrec::core {

GroupSmoothRecommender::GroupSmoothRecommender(
    const RecommenderContext& context,
    const GroupSmoothRecommenderOptions& options)
    : context_(context),
      options_(options),
      max_entry_(context.workload->MaxEntry()),
      max_column_sum_(context.workload->MaxColumnSum()) {
  context_.CheckValid();
  PRIVREC_CHECK_MSG(dp::IsValidEpsilon(options_.epsilon), "bad epsilon");
  PRIVREC_CHECK(options_.group_size >= 1);
}

RecommendedBatch GroupSmoothRecommender::RecommendWithReport(
    const std::vector<graph::NodeId>& users, int64_t top_n) {
  RecommendedBatch batch;
  const graph::NodeId num_users = context_.preferences->num_users();
  const graph::ItemId num_items = context_.preferences->num_items();
  const int64_t m =
      std::min<int64_t>(options_.group_size, num_users);
  Rng rng = Rng(options_.seed).Fork(invocation_++);
  // Budget split: eps/2 on the rough estimates, eps/2 on the group means.
  const double half_eps = options_.epsilon == dp::kEpsilonInfinity
                              ? dp::kEpsilonInfinity
                              : options_.epsilon / 2.0;
  dp::LaplaceMechanism rough_mech(half_eps, rng.Fork(1));
  dp::LaplaceMechanism group_mech(half_eps, rng.Fork(2));
  const double w_max = context_.preferences->max_weight();
  const double rough_sensitivity = std::max(max_entry_ * w_max, 1e-12);
  const double group_sensitivity =
      std::max(max_column_sum_ * w_max, 1e-12) / static_cast<double>(m);

  // Per-user streaming top-N accumulators for the *requested* users.
  std::vector<int64_t> accumulator_of(static_cast<size_t>(num_users), -1);
  std::vector<TopNAccumulator> accumulators;
  accumulators.reserve(users.size());
  for (size_t k = 0; k < users.size(); ++k) {
    PRIVREC_CHECK_MSG(
        accumulator_of[static_cast<size_t>(users[k])] == -1,
        "duplicate user in Recommend batch");
    accumulator_of[static_cast<size_t>(users[k])] =
        static_cast<int64_t>(k);
    accumulators.emplace_back(top_n);
  }

  // Per-requested-user flag: some group mean this user received had a
  // non-finite value sanitized out of it.
  std::vector<uint8_t> saw_sanitized(users.size(), 0);

  std::vector<double> true_utilities(static_cast<size_t>(num_users));
  std::vector<double> rough(static_cast<size_t>(num_users));
  std::vector<graph::NodeId> order(static_cast<size_t>(num_users));

  for (graph::ItemId i = 0; i < num_items; ++i) {
    std::fill(true_utilities.begin(), true_utilities.end(), 0.0);
    std::fill(rough.begin(), rough.end(), 0.0);

    auto buyers = context_.preferences->UsersOf(i);
    auto buyer_weights = context_.preferences->ItemWeights(i);
    for (size_t b = 0; b < buyers.size(); ++b) {
      graph::NodeId v = buyers[b];
      double w = buyer_weights[b];
      auto row = context_.workload->Row(v);
      // True utilities: the edge (v, i) contributes sim(u, v) * w(v, i)
      // to every user u similar to v (symmetric measure: row(v) gives
      // sim(·, v)).
      for (const similarity::SimilarityEntry& e : row) {
        true_utilities[static_cast<size_t>(e.user)] += e.score * w;
      }
      // Rough estimates: (v, i) is used in exactly ONE randomly chosen
      // query estimate.
      if (!row.empty()) {
        const similarity::SimilarityEntry& pick =
            row[rng.UniformInt(row.size())];
        rough[static_cast<size_t>(pick.user)] += pick.score * w;
      }
    }
    for (graph::NodeId u = 0; u < num_users; ++u) {
      rough[static_cast<size_t>(u)] = rough_mech.Release(
          rough[static_cast<size_t>(u)], rough_sensitivity);
    }

    // Sort users by rough key and smooth consecutive groups of size m.
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](graph::NodeId a, graph::NodeId b) {
                double ra = rough[static_cast<size_t>(a)];
                double rb = rough[static_cast<size_t>(b)];
                if (ra != rb) return ra > rb;
                return a < b;
              });
    for (int64_t start = 0; start < num_users; start += m) {
      int64_t end = std::min<int64_t>(start + m, num_users);
      double sum = 0.0;
      for (int64_t k = start; k < end; ++k) {
        sum += true_utilities[static_cast<size_t>(
            order[static_cast<size_t>(k)])];
      }
      double mean = sum / static_cast<double>(end - start);
      double released = group_mech.Release(mean, group_sensitivity);
      released = fault::MaybePoison("gs.group_mean", released);
      bool sanitized = false;
      if (!std::isfinite(released)) {
        // Post-processing of the released value: no extra ε.
        released = 0.0;
        sanitized = true;
        ++batch.report.nonfinite_sanitized;
      }
      if (end - start == num_users && num_users > 1) {
        // A single group spanning every user is a global ranking, no
        // longer a smoothing of personalized answers.
        ++batch.report.degenerate_groups;
      }
      for (int64_t k = start; k < end; ++k) {
        graph::NodeId u = order[static_cast<size_t>(k)];
        int64_t slot = accumulator_of[static_cast<size_t>(u)];
        if (slot >= 0) {
          accumulators[static_cast<size_t>(slot)].Offer(i, released);
          if (sanitized) saw_sanitized[static_cast<size_t>(slot)] = 1;
        }
      }
    }
  }

  batch.lists.reserve(users.size());
  batch.degradation.reserve(users.size());
  for (size_t k = 0; k < users.size(); ++k) {
    batch.lists.push_back(accumulators[k].Take());
    DegradationInfo info;
    if (context_.workload->Row(users[k]).empty()) {
      info.reason = DegradationReason::kIsolatedUser;
    } else if (saw_sanitized[k]) {
      info.reason = DegradationReason::kNonFiniteSanitized;
    }
    if (info.degraded()) ++batch.report.users_degraded;
    batch.degradation.push_back(info);
  }
  return batch;
}

std::vector<RecommendationList> GroupSmoothRecommender::Recommend(
    const std::vector<graph::NodeId>& users, int64_t top_n) {
  return RecommendWithReport(users, top_n).lists;
}

}  // namespace privrec::core
