// Recommendation lists and top-N selection utilities shared by all
// recommenders.

#ifndef PRIVREC_CORE_RECOMMENDATION_H_
#define PRIVREC_CORE_RECOMMENDATION_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "graph/ids.h"
#include "kernels/select.h"

namespace privrec::core {

struct Recommendation {
  graph::ItemId item;
  // The (possibly noisy) utility the recommender ranked by.
  double utility;

  friend bool operator==(const Recommendation&,
                         const Recommendation&) = default;
};

// Ranked best-first; at most N entries.
using RecommendationList = std::vector<Recommendation>;

// Selects the top `n` entries of a dense utility vector, ranked by utility
// descending with item id as the deterministic tie-breaker.
RecommendationList TopNFromDense(std::span<const double> utilities,
                                 int64_t n);

// Same, from a sparse (item, utility) set; entries need not be sorted.
RecommendationList TopNFromSparse(
    std::vector<std::pair<graph::ItemId, double>> entries, int64_t n);

// Streaming top-N accumulator for mechanisms that produce utilities
// item-by-item (GS, LRM): keeps the best N of everything offered.
class TopNAccumulator {
 public:
  explicit TopNAccumulator(int64_t n) : n_(n) { PRIVREC_CHECK(n >= 1); }

  void Offer(graph::ItemId item, double utility);

  // Extracts the ranked list (descending utility, item id tie-break) and
  // resets the accumulator.
  RecommendationList Take();

 private:
  // True if a beats b in ranking order (the shared kernel comparator).
  static bool Better(const Recommendation& a, const Recommendation& b) {
    return kernels::RankOrderBetter{}(a, b);
  }

  int64_t n_;
  // Min-heap on ranking order: heap_[0] is the current worst kept entry.
  std::vector<Recommendation> heap_;
};

}  // namespace privrec::core

#endif  // PRIVREC_CORE_RECOMMENDATION_H_
