// LowRankRecommender: an adaptation of the Low-Rank Mechanism (Yuan et
// al., PVLDB'12) to the social recommendation workload, following
// Section 6.4 of the paper.
//
// The |U| x |U| similarity workload W is factored W ~= B L with
// r = min(target_rank, |U|); per item i, the mechanism releases
//   ŷ_i = B (L D_i + Lap(Δ_L / ε)^r),
// where D_i is the 0/1 preference indicator column of item i and
// Δ_L = max column L1 norm of L — one preference edge toggles one
// coordinate of D_i and hence shifts L D_i by one column of L.
//
// Substitution note (see DESIGN.md): the factorization is a truncated
// randomized SVD (B = U_r, L = Σ_r V_rᵀ) rather than the ADMM optimizer of
// [34]. The paper's finding for LRM here is negative — W has near-full
// rank, so no low-rank strategy can represent it accurately — and that
// failure mode is exactly reproduced by the SVD strategy.

#ifndef PRIVREC_CORE_LOW_RANK_RECOMMENDER_H_
#define PRIVREC_CORE_LOW_RANK_RECOMMENDER_H_

#include <cstdint>

#include "core/recommender.h"
#include "la/dense_matrix.h"

namespace privrec::core {

struct LowRankRecommenderOptions {
  double epsilon = 1.0;
  // Factorization rank; clamped to |U|. The paper sets r = rank(W) (near
  // |U| in practice); 400 keeps the dense algebra tractable while leaving
  // the high-rank failure mode intact.
  int64_t target_rank = 400;
  uint64_t seed = 500;
};

class LowRankRecommender final : public Recommender {
 public:
  // Builds the factorization eagerly (the expensive part; reused across
  // Recommend calls).
  LowRankRecommender(const RecommenderContext& context,
                     const LowRankRecommenderOptions& options);

  std::string Name() const override { return "LRM"; }

  std::vector<RecommendationList> Recommend(
      const std::vector<graph::NodeId>& users, int64_t top_n) override;

  double noise_sensitivity() const { return noise_sensitivity_; }
  int64_t rank() const { return rank_; }
  // Relative Frobenius error ||W - BL|| / ||W|| of the factorization.
  double factorization_error() const { return factorization_error_; }

  // The factor matrices (B is |U| x r, L is r x |U|), exposed so the
  // artifact builder can serialize the Fit() output; the serve side replays
  // the release from these factors alone.
  const la::DenseMatrix& b() const { return b_; }
  const la::DenseMatrix& l() const { return l_; }

 private:
  RecommenderContext context_;
  LowRankRecommenderOptions options_;
  la::DenseMatrix b_;  // |U| x r
  la::DenseMatrix l_;  // r x |U|
  int64_t rank_ = 0;
  double noise_sensitivity_ = 0.0;
  double factorization_error_ = 0.0;
  uint64_t invocation_ = 0;
};

}  // namespace privrec::core

#endif  // PRIVREC_CORE_LOW_RANK_RECOMMENDER_H_
