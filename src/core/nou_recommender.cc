#include "core/nou_recommender.h"

#include <algorithm>

#include "dp/mechanisms.h"

namespace privrec::core {

NouRecommender::NouRecommender(const RecommenderContext& context,
                               const NouRecommenderOptions& options)
    : context_(context),
      options_(options),
      exact_(context),
      // One weighted edge (v, i) shifts item i's utility by sim(u, v) *
      // w(v, i) for every user u similar to v.
      sensitivity_(context.workload->MaxColumnSum() *
                   context.preferences->max_weight()) {
  context_.CheckValid();
  PRIVREC_CHECK_MSG(dp::IsValidEpsilon(options_.epsilon), "bad epsilon");
}

std::vector<RecommendationList> NouRecommender::Recommend(
    const std::vector<graph::NodeId>& users, int64_t top_n) {
  const graph::ItemId num_items = context_.preferences->num_items();
  dp::LaplaceMechanism laplace(options_.epsilon,
                               Rng(options_.seed).Fork(invocation_++));
  // Degenerate sensitivity (no similarity mass at all) only happens on an
  // edgeless graph where every utility is zero; release pure noise scaled
  // to 1 to stay well-defined.
  const double sensitivity = std::max(sensitivity_, 1e-12);

  std::vector<RecommendationList> out;
  out.reserve(users.size());
  std::vector<double> utilities(static_cast<size_t>(num_items));
  for (graph::NodeId u : users) {
    std::fill(utilities.begin(), utilities.end(), 0.0);
    for (auto [item, value] : exact_.UtilityRow(u)) {
      utilities[static_cast<size_t>(item)] = value;
    }
    // Every utility query is released, including the zero ones: the item
    // ranking depends on all of them.
    for (graph::ItemId i = 0; i < num_items; ++i) {
      utilities[static_cast<size_t>(i)] =
          laplace.Release(utilities[static_cast<size_t>(i)], sensitivity);
    }
    out.push_back(TopNFromDense(utilities, top_n));
  }
  return out;
}

}  // namespace privrec::core
