// Graceful-degradation reporting for the serving layer.
//
// Operational faults (degenerate clusterings, isolated users, poisoned
// noise values, exhausted budgets) should degrade a response and say so,
// not kill the request with kInternal. Recommenders expose a
// RecommendWithReport variant returning, alongside the lists, a per-user
// DegradationInfo and a batch-level ServingReport; the plain Recommend()
// interface keeps its signature and simply drops the diagnostics.

#ifndef PRIVREC_CORE_DEGRADATION_H_
#define PRIVREC_CORE_DEGRADATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/recommendation.h"

namespace privrec::core {

enum class DegradationReason {
  kNone = 0,
  // The user has no similarity support (empty sim(u) row, or all of it in
  // dead clusters); utilities fell back to the global average release.
  kIsolatedUser,
  // Non-finite noisy values (NaN/Inf) were sanitized out of the release
  // this user's utilities were reconstructed from.
  kNonFiniteSanitized,
  // The privacy budget could not cover a fresh release; the user received
  // a replay of the last paid release.
  kStaleReplay,
  // The serving runtime shed this request (queue full or deadline
  // exceeded) and answered from the global-average fallback tier instead
  // of running the personalized reconstruction. The response's Status
  // still carries the typed rejection (kResourceExhausted /
  // kDeadlineExceeded); this reason marks the degraded answer that rode
  // along with it.
  kLoadShed,
};

const char* DegradationReasonName(DegradationReason reason);

struct DegradationInfo {
  DegradationReason reason = DegradationReason::kNone;
  bool degraded() const { return reason != DegradationReason::kNone; }
};

// Batch-level serving diagnostics.
struct ServingReport {
  int64_t users_degraded = 0;
  // Degenerate clustering shape seen by this release.
  int64_t empty_clusters = 0;
  int64_t singleton_clusters = 0;
  // Group-and-smooth degenerate grouping (a single group is a global
  // ranking, no longer personalized smoothing).
  int64_t degenerate_groups = 0;
  // Non-finite noisy values replaced with 0 before ranking.
  int64_t nonfinite_sanitized = 0;

  bool Clean() const {
    return users_degraded == 0 && empty_clusters == 0 &&
           nonfinite_sanitized == 0 && degenerate_groups == 0;
  }

  std::string ToString() const;
};

// Recommend() output plus diagnostics; `degradation` is parallel to
// `lists` (one entry per requested user).
struct RecommendedBatch {
  std::vector<RecommendationList> lists;
  std::vector<DegradationInfo> degradation;
  ServingReport report;
};

// Folds a served batch into the process-wide metrics registry:
// privrec.serving.users_served, privrec.serving.users_degraded, and one
// privrec.serving.degraded.<reason> counter per DegradationReason.
void RecordServingMetrics(const RecommendedBatch& batch);

}  // namespace privrec::core

#endif  // PRIVREC_CORE_DEGRADATION_H_
