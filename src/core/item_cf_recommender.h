// Item-based collaborative filtering, non-social — the McSherry & Mironov
// (KDD'09) setting the paper contrasts itself against (Section 4), and
// one half of the hybrid recommender the paper defers to future work
// (Section 2.2).
//
// Scoring: score(u, i) = Σ_{j ∈ clamp_τ(u)} C(i, j), where C is the
// item-item co-occurrence matrix (#users holding both items) built from
// τ-clamped user lists. Clamping (keep each user's τ smallest item ids —
// deterministic) bounds the influence of ONE preference edge on C to at
// most 2(τ-1) unit changes (the edge's own ≤ τ-1 pairs, plus ≤ τ-1 pairs
// of the item it displaces from the clamped set), so releasing
// C̃ = C + Lap(2τ/ε) per entry is ε-DP — the global-matrix recipe of
// McSherry & Mironov, with clamping playing the role of their per-user
// weight normalization.
//
// C̃ is never materialized (|I|² entries): noise for entry (i, j) is
// drawn from an RNG keyed on (seed, min(i,j), max(i,j)), so every query
// observes the SAME noisy matrix at O(1) memory. Unlike the per-call
// mechanisms, the matrix is released ONCE per recommender instance;
// repeated Recommend calls are free post-processing of that single
// ε-release (the McSherry-Mironov publication model).
//
// Note on owned items: like the paper's social recommenders, no
// own-item exclusion is applied — filtering a user's own items out of
// their list would reveal those items by absence to the Section 2.3
// adversary, breaking the edge-level guarantee.

#ifndef PRIVREC_CORE_ITEM_CF_RECOMMENDER_H_
#define PRIVREC_CORE_ITEM_CF_RECOMMENDER_H_

#include <cstdint>

#include "core/recommender.h"

namespace privrec::core {

struct ItemCfRecommenderOptions {
  double epsilon = 1.0;
  // Per-user contribution clamp τ; per-entry sensitivity is 2τ.
  int64_t tau = 20;
  uint64_t seed = 700;
};

class ItemCfRecommender final : public Recommender {
 public:
  // The context's similarity workload is unused (CF is non-social) but
  // must still be valid; pass the one you already have.
  ItemCfRecommender(const RecommenderContext& context,
                    const ItemCfRecommenderOptions& options);

  std::string Name() const override { return "CF"; }

  std::vector<RecommendationList> Recommend(
      const std::vector<graph::NodeId>& users, int64_t top_n) override;

  // The τ-clamped item list of u (ascending item ids).
  std::span<const graph::ItemId> ClampedItems(graph::NodeId u) const;

  // Exact (pre-noise) scores for one user, dense over items. Exposed for
  // tests.
  std::vector<double> ExactScores(graph::NodeId u) const;

 private:
  double PairNoise(graph::ItemId a, graph::ItemId b) const;

  RecommenderContext context_;
  ItemCfRecommenderOptions options_;
  // Clamped lists in CSR form.
  std::vector<size_t> clamp_offsets_;
  std::vector<graph::ItemId> clamp_items_;
  // Reverse orientation of the clamped lists: item -> users.
  std::vector<size_t> item_offsets_;
  std::vector<graph::NodeId> item_users_;
};

}  // namespace privrec::core

#endif  // PRIVREC_CORE_ITEM_CF_RECOMMENDER_H_
