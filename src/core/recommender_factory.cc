#include "core/recommender_factory.h"

#include "core/cluster_recommender.h"
#include "core/exact_recommender.h"
#include "core/group_smooth_recommender.h"
#include "core/low_rank_recommender.h"
#include "core/noe_recommender.h"
#include "core/nou_recommender.h"

namespace privrec::core {

const std::vector<std::string>& MechanismNames() {
  static const std::vector<std::string>& kNames =
      *new std::vector<std::string>{"Exact", "Cluster", "NOU",
                                    "NOE",   "GS",      "LRM"};
  return kNames;
}

Result<std::unique_ptr<Recommender>> MakeRecommender(
    const RecommenderContext& context, const RecommenderSpec& spec) {
  if (spec.mechanism == "Exact") {
    return std::unique_ptr<Recommender>(new ExactRecommender(context));
  }
  if (spec.mechanism == "Cluster") {
    if (spec.partition == nullptr) {
      return Status::InvalidArgument(
          "Cluster requires a partition (createClusters output)");
    }
    return std::unique_ptr<Recommender>(new ClusterRecommender(
        context, *spec.partition,
        {.epsilon = spec.epsilon, .seed = spec.seed}));
  }
  if (spec.mechanism == "NOU") {
    return std::unique_ptr<Recommender>(new NouRecommender(
        context, {.epsilon = spec.epsilon, .seed = spec.seed}));
  }
  if (spec.mechanism == "NOE") {
    return std::unique_ptr<Recommender>(new NoeRecommender(
        context, {.epsilon = spec.epsilon, .seed = spec.seed}));
  }
  if (spec.mechanism == "GS") {
    return std::unique_ptr<Recommender>(new GroupSmoothRecommender(
        context, {.epsilon = spec.epsilon,
                  .group_size = spec.gs_group_size,
                  .seed = spec.seed}));
  }
  if (spec.mechanism == "LRM") {
    return std::unique_ptr<Recommender>(new LowRankRecommender(
        context, {.epsilon = spec.epsilon,
                  .target_rank = spec.lrm_target_rank,
                  .seed = spec.seed}));
  }
  return Status::InvalidArgument("unknown mechanism: " + spec.mechanism);
}

}  // namespace privrec::core
