#include "core/recommender_factory.h"

#include <utility>

#include "core/cluster_recommender.h"
#include "core/exact_recommender.h"
#include "core/group_smooth_recommender.h"
#include "core/low_rank_recommender.h"
#include "core/noe_recommender.h"
#include "core/nou_recommender.h"

namespace privrec::core {

namespace {

// Adapts a serving::ServeRecommender to the core::Recommender interface.
// Optionally co-owns the engine (MakeArtifactRecommender) so the serve
// path needs no external lifetime management.
class ArtifactBackedRecommender : public Recommender {
 public:
  ArtifactBackedRecommender(
      std::shared_ptr<const serving::ServingEngine> owned_engine,
      std::unique_ptr<serving::ServeRecommender> server)
      : owned_engine_(std::move(owned_engine)), server_(std::move(server)) {}

  std::string Name() const override { return server_->Name(); }

  std::vector<RecommendationList> Recommend(
      const std::vector<graph::NodeId>& users, int64_t top_n) override {
    return std::move(server_->Recommend(users, top_n).lists);
  }

 private:
  std::shared_ptr<const serving::ServingEngine> owned_engine_;
  std::unique_ptr<serving::ServeRecommender> server_;
};

serving::ServeSpec ToServeSpec(const RecommenderSpec& spec) {
  serving::ServeSpec serve;
  serve.mechanism = spec.mechanism;
  serve.epsilon = spec.epsilon;
  serve.seed = spec.seed;
  serve.gs_group_size = spec.gs_group_size;
  serve.expected_graph_hash = spec.expected_graph_hash;
  return serve;
}

}  // namespace

const std::vector<std::string>& MechanismNames() {
  static const std::vector<std::string>& kNames =
      *new std::vector<std::string>{"Exact", "Cluster", "NOU",
                                    "NOE",   "GS",      "LRM"};
  return kNames;
}

Result<std::unique_ptr<Recommender>> MakeRecommender(
    const RecommenderContext& context, const RecommenderSpec& spec) {
  if (spec.engine != nullptr) {
    Result<std::unique_ptr<serving::ServeRecommender>> server =
        serving::MakeServeRecommender(spec.engine, ToServeSpec(spec));
    if (!server.ok()) return server.status();
    return std::unique_ptr<Recommender>(new ArtifactBackedRecommender(
        nullptr, std::move(server).value()));
  }
  if (spec.mechanism == "Exact") {
    return std::unique_ptr<Recommender>(new ExactRecommender(context));
  }
  if (spec.mechanism == "Cluster") {
    if (spec.partition == nullptr) {
      return Status::InvalidArgument(
          "Cluster requires a partition (createClusters output)");
    }
    return std::unique_ptr<Recommender>(new ClusterRecommender(
        context, *spec.partition,
        {.epsilon = spec.epsilon, .seed = spec.seed}));
  }
  if (spec.mechanism == "NOU") {
    return std::unique_ptr<Recommender>(new NouRecommender(
        context, {.epsilon = spec.epsilon, .seed = spec.seed}));
  }
  if (spec.mechanism == "NOE") {
    return std::unique_ptr<Recommender>(new NoeRecommender(
        context, {.epsilon = spec.epsilon, .seed = spec.seed}));
  }
  if (spec.mechanism == "GS") {
    return std::unique_ptr<Recommender>(new GroupSmoothRecommender(
        context, {.epsilon = spec.epsilon,
                  .group_size = spec.gs_group_size,
                  .seed = spec.seed}));
  }
  if (spec.mechanism == "LRM") {
    return std::unique_ptr<Recommender>(new LowRankRecommender(
        context, {.epsilon = spec.epsilon,
                  .target_rank = spec.lrm_target_rank,
                  .seed = spec.seed}));
  }
  return Status::InvalidArgument("unknown mechanism: " + spec.mechanism);
}

Result<std::unique_ptr<Recommender>> MakeArtifactRecommender(
    std::shared_ptr<const serving::ServingEngine> engine,
    const RecommenderSpec& spec) {
  PRIVREC_CHECK(engine != nullptr);
  Result<std::unique_ptr<serving::ServeRecommender>> server =
      serving::MakeServeRecommender(engine.get(), ToServeSpec(spec));
  if (!server.ok()) return server.status();
  return std::unique_ptr<Recommender>(new ArtifactBackedRecommender(
      std::move(engine), std::move(server).value()));
}

}  // namespace privrec::core
