#include "core/noe_recommender.h"

#include <algorithm>
#include <vector>

#include "dp/mechanisms.h"

namespace privrec::core {

NoeRecommender::NoeRecommender(const RecommenderContext& context,
                               const NoeRecommenderOptions& options)
    : context_(context), options_(options) {
  context_.CheckValid();
  PRIVREC_CHECK_MSG(dp::IsValidEpsilon(options_.epsilon), "bad epsilon");
}

std::vector<RecommendationList> NoeRecommender::Recommend(
    const std::vector<graph::NodeId>& users, int64_t top_n) {
  const graph::NodeId num_users = context_.preferences->num_users();
  const graph::ItemId num_items = context_.preferences->num_items();
  Rng rng = Rng(options_.seed).Fork(invocation_++);

  // Sanitized weights w(v, i) + Lap(w_max/eps) for the whole preference
  // matrix (float: halves the footprint; the noise dominates any
  // rounding). w_max = 1 in the paper's unweighted model.
  const bool noiseless = options_.epsilon == dp::kEpsilonInfinity;
  const double scale =
      noiseless ? 0.0
                : context_.preferences->max_weight() / options_.epsilon;
  std::vector<float> sanitized(
      static_cast<size_t>(num_users) * static_cast<size_t>(num_items), 0.0f);
  if (!noiseless) {
    for (float& w : sanitized) {
      w = static_cast<float>(rng.Laplace(scale));
    }
  }
  for (graph::NodeId v = 0; v < num_users; ++v) {
    float* row = sanitized.data() +
                 static_cast<size_t>(v) * static_cast<size_t>(num_items);
    auto items = context_.preferences->ItemsOf(v);
    auto weights = context_.preferences->WeightsOf(v);
    for (size_t k = 0; k < items.size(); ++k) {
      row[static_cast<size_t>(items[k])] +=
          static_cast<float>(weights[k]);
    }
  }

  std::vector<RecommendationList> out;
  out.reserve(users.size());
  std::vector<double> utilities(static_cast<size_t>(num_items));
  for (graph::NodeId u : users) {
    std::fill(utilities.begin(), utilities.end(), 0.0);
    for (const similarity::SimilarityEntry& e : context_.workload->Row(u)) {
      const float* row =
          sanitized.data() +
          static_cast<size_t>(e.user) * static_cast<size_t>(num_items);
      double s = e.score;
      for (graph::ItemId i = 0; i < num_items; ++i) {
        utilities[static_cast<size_t>(i)] +=
            s * static_cast<double>(row[static_cast<size_t>(i)]);
      }
    }
    out.push_back(TopNFromDense(utilities, top_n));
  }
  return out;
}

}  // namespace privrec::core
