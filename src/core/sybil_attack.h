// The Section 2.3 adversary, as a reusable library: gadget construction
// for the Sybil / profile-cloning attack and inference scoring.
//
// Attack recipe (paper, Section 2.3): the adversary attaches a helper
// node `a` whose only friends are the victim and a chain of Sybil
// accounts b_1 ... b_k; the last Sybil's similarity set then contains
// exactly the victim (chain length 1 suffices for CN/AA; GD and KZ need
// d-1 / k-1 Sybils to stay within the distance cutoff while remaining
// isolated from everyone else). Every recommendation the observer Sybil
// receives from the *non-private* recommender is one of the victim's
// preference edges; under the framework the observer sees only a noisy
// community average.

#ifndef PRIVREC_CORE_SYBIL_ATTACK_H_
#define PRIVREC_CORE_SYBIL_ATTACK_H_

#include <cstdint>

#include "core/recommendation.h"
#include "graph/preference_graph.h"
#include "graph/social_graph.h"

namespace privrec::core {

struct SybilGadget {
  // The input graphs with the gadget appended (victim untouched).
  graph::SocialGraph social;
  graph::PreferenceGraph preferences;
  // The helper node `a` (friend of the victim).
  graph::NodeId helper = -1;
  // The Sybil whose recommendations the adversary reads (end of chain).
  graph::NodeId observer = -1;
  graph::NodeId victim = -1;
};

// Appends helper + `chain_length` Sybils (chain_length >= 1). The helper
// and Sybils hold no preference edges.
SybilGadget InjectSybilGadget(const graph::SocialGraph& social,
                              const graph::PreferenceGraph& preferences,
                              graph::NodeId victim,
                              int64_t chain_length = 1);

struct AttackScore {
  // Recommendations observed / how many are the victim's private edges.
  int64_t observed = 0;
  int64_t hits = 0;
  // hits / observed (0 when nothing was observed).
  double precision = 0.0;
  // hits / |victim's edges| — how much of the victim's history leaked.
  double recall = 0.0;
};

// Scores the adversary's inference: every recommended item that is one of
// the victim's preference edges counts as a successful membership
// inference.
AttackScore ScoreSybilInference(const RecommendationList& observed,
                                const graph::PreferenceGraph& preferences,
                                graph::NodeId victim);

}  // namespace privrec::core

#endif  // PRIVREC_CORE_SYBIL_ATTACK_H_
