#include "core/cluster_recommender.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "artifact/reconstruct.h"
#include "common/fault_injection.h"
#include "common/parallel.h"
#include "core/degradation.h"
#include "dp/mechanisms.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace privrec::core {

namespace {

// Per-chunk tallies of the noise-publication loop, folded in chunk order.
struct AverageTallies {
  int64_t empty_clusters = 0;
  int64_t singleton_clusters = 0;
  int64_t nonfinite_sanitized = 0;
};

}  // namespace

ClusterRecommender::ClusterRecommender(
    const RecommenderContext& context, community::Partition partition,
    const ClusterRecommenderOptions& options)
    : context_(context),
      partition_(std::move(partition)),
      options_(options) {
  context_.CheckValid();
  PRIVREC_CHECK(partition_.num_nodes() == context_.social->num_nodes());
  PRIVREC_CHECK_MSG(dp::IsValidEpsilon(options_.epsilon), "bad epsilon");
}

ClusterRelease ClusterRecommender::ComputeRelease() {
  PRIVREC_SPAN("core.publication");
  const int64_t num_clusters = partition_.num_clusters();
  const graph::ItemId num_items = context_.preferences->num_items();
  // Fresh per-invocation noise keeps repeated trials independent while the
  // whole object stays deterministic under a fixed seed. Each chunk of
  // clusters draws from its own split stream, so the released noise is
  // bit-identical for every thread count (see common/parallel.h).
  const SplitRng split(options_.seed, invocation_++);

  ClusterRelease result;
  result.sanitized.assign(static_cast<size_t>(num_clusters), 0);

  // Lines 2-6 of Algorithm 1: per-(cluster, item) edge-weight sums via one
  // pass over the preference edges. Stays serial: it is O(edges) while the
  // noise stage below is O(clusters * items), and users of one cluster may
  // sit anywhere in the id range.
  std::vector<double>& averages = result.values;
  averages.assign(static_cast<size_t>(num_clusters * num_items), 0.0);
  for (graph::NodeId v = 0; v < context_.preferences->num_users(); ++v) {
    int64_t c = partition_.ClusterOf(v);
    double* row = averages.data() + c * num_items;
    auto items = context_.preferences->ItemsOf(v);
    auto weights = context_.preferences->WeightsOf(v);
    for (size_t k = 0; k < items.size(); ++k) {
      row[items[k]] += weights[k];
    }
  }
  // Line 7: divide by cluster size and add Lap(w_max / (|c| * eps)). The
  // sensitivity of a cluster average is w_max/|c| because one preference
  // edge changes exactly one cluster's sum by at most the largest allowed
  // weight (cluster membership is data-independent); w_max = 1 in the
  // paper's unweighted model. Clusters are processed in fixed chunks with
  // disjoint rows; the per-chunk tallies fold in chunk order.
  const double w_max = context_.preferences->max_weight();
  // Sensitivity of each released cluster row (w_max/|c|): small values mean
  // large clusters whose averages need little noise.
  static obs::Histogram& sensitivity_hist = obs::GetHistogram(
      "privrec.core.cluster_sensitivity",
      obs::ExponentialBuckets(1e-4, 4.0, 10));
  Result<AverageTallies> tallies = ParallelReduce(
      num_clusters, AverageTallies{},
      [&](int64_t chunk, int64_t begin, int64_t end) {
        dp::LaplaceMechanism laplace(
            options_.epsilon, split.StreamFor(static_cast<uint64_t>(chunk)));
        AverageTallies t;
        for (int64_t c = begin; c < end; ++c) {
          const int64_t members = partition_.ClusterSize(c);
          double* row = averages.data() + c * num_items;
          if (members == 0) {
            // An empty cluster holds no preference edges: there is no
            // average to release (dividing would manufacture 0/0 NaNs).
            // Its row stays zero and contributes nothing downstream.
            ++t.empty_clusters;
            continue;
          }
          if (members == 1) ++t.singleton_clusters;
          double size = static_cast<double>(members);
          double sensitivity = w_max / size;
          sensitivity_hist.Observe(sensitivity);
          for (graph::ItemId i = 0; i < num_items; ++i) {
            row[i] = laplace.Release(row[i] / size, sensitivity);
          }
          row[0] = fault::MaybePoison("cluster.noisy_averages", row[0]);
          for (graph::ItemId i = 0; i < num_items; ++i) {
            if (!std::isfinite(row[i])) {
              // Sanitizing a released value is post-processing: no extra ε.
              row[i] = 0.0;
              ++t.nonfinite_sanitized;
              result.sanitized[static_cast<size_t>(c)] = 1;
            }
          }
        }
        return t;
      },
      [](AverageTallies& acc, AverageTallies t) {
        acc.empty_clusters += t.empty_clusters;
        acc.singleton_clusters += t.singleton_clusters;
        acc.nonfinite_sanitized += t.nonfinite_sanitized;
      });
  PRIVREC_CHECK_MSG(tallies.ok(), tallies.status().message().c_str());
  result.empty_clusters = tallies->empty_clusters;
  result.singleton_clusters = tallies->singleton_clusters;
  result.nonfinite_sanitized = tallies->nonfinite_sanitized;

  static obs::Counter& releases = obs::GetCounter("privrec.core.releases");
  static obs::Counter& laplace_draws =
      obs::GetCounter("privrec.core.laplace_draws");
  static obs::Counter& empty =
      obs::GetCounter("privrec.core.empty_clusters");
  static obs::Counter& singleton =
      obs::GetCounter("privrec.core.singleton_clusters");
  static obs::Counter& sanitized =
      obs::GetCounter("privrec.core.nonfinite_sanitized");
  releases.Increment();
  laplace_draws.Add((num_clusters - result.empty_clusters) *
                    static_cast<int64_t>(num_items));
  empty.Add(result.empty_clusters);
  singleton.Add(result.singleton_clusters);
  sanitized.Add(result.nonfinite_sanitized);
  return result;
}

std::vector<double> ClusterRecommender::ComputeNoisyClusterAverages() {
  return ComputeRelease().values;
}

RecommendedBatch ClusterRecommender::RecommendWithReport(
    const std::vector<graph::NodeId>& users, int64_t top_n) {
  const ClusterRelease noisy = ComputeRelease();

  PRIVREC_SPAN("core.reconstruction");
  RecommendedBatch batch;
  batch.report.empty_clusters = noisy.empty_clusters;
  batch.report.singleton_clusters = noisy.singleton_clusters;
  batch.report.nonfinite_sanitized = noisy.nonfinite_sanitized;

  // Lines 8-20 run through the shared serving::ReconstructTopN template —
  // the exact same code the artifact-backed ServingEngine executes — fed
  // here from the live release and the in-memory workload rows.
  serving::ReleaseView view;
  view.values = noisy.values.data();
  view.sanitized = noisy.sanitized.data();
  view.cluster_of = partition_.cluster_of().data();
  view.cluster_sizes = partition_.sizes().data();
  view.num_clusters = partition_.num_clusters();
  view.num_items = context_.preferences->num_items();
  view.num_users = context_.social->num_nodes();
  // Eager, unlike the serving engine's lazy row: the release is fresh per
  // invocation, so there is nothing to cache across calls.
  const std::vector<double> global = serving::GlobalAverageUtilities(view);
  Result<int64_t> degraded = serving::ReconstructTopN(
      view, [&](graph::NodeId u) { return context_.workload->Row(u); },
      [&global]() -> const std::vector<double>& { return global; }, users,
      top_n, &batch.lists, &batch.degradation);
  PRIVREC_CHECK_MSG(degraded.ok(), degraded.status().message().c_str());
  batch.report.users_degraded = *degraded;
  RecordServingMetrics(batch);
  return batch;
}

std::vector<RecommendationList> ClusterRecommender::Recommend(
    const std::vector<graph::NodeId>& users, int64_t top_n) {
  return RecommendWithReport(users, top_n).lists;
}

}  // namespace privrec::core
