#include "core/cluster_recommender.h"

#include <algorithm>
#include <utility>

#include "dp/mechanisms.h"

namespace privrec::core {

ClusterRecommender::ClusterRecommender(
    const RecommenderContext& context, community::Partition partition,
    const ClusterRecommenderOptions& options)
    : context_(context),
      partition_(std::move(partition)),
      options_(options) {
  context_.CheckValid();
  PRIVREC_CHECK(partition_.num_nodes() == context_.social->num_nodes());
  PRIVREC_CHECK_MSG(dp::IsValidEpsilon(options_.epsilon), "bad epsilon");
}

std::vector<double> ClusterRecommender::ComputeNoisyClusterAverages() {
  const int64_t num_clusters = partition_.num_clusters();
  const graph::ItemId num_items = context_.preferences->num_items();
  // Fresh noise stream per invocation keeps repeated trials independent
  // while the whole object stays deterministic under a fixed seed.
  dp::LaplaceMechanism laplace(options_.epsilon,
                               Rng(options_.seed).Fork(invocation_++));

  // Lines 2-6 of Algorithm 1: per-(cluster, item) edge-weight sums via one
  // pass over the preference edges.
  std::vector<double> averages(
      static_cast<size_t>(num_clusters * num_items), 0.0);
  for (graph::NodeId v = 0; v < context_.preferences->num_users(); ++v) {
    int64_t c = partition_.ClusterOf(v);
    double* row = averages.data() + c * num_items;
    auto items = context_.preferences->ItemsOf(v);
    auto weights = context_.preferences->WeightsOf(v);
    for (size_t k = 0; k < items.size(); ++k) {
      row[items[k]] += weights[k];
    }
  }
  // Line 7: divide by cluster size and add Lap(w_max / (|c| * eps)). The
  // sensitivity of a cluster average is w_max/|c| because one preference
  // edge changes exactly one cluster's sum by at most the largest allowed
  // weight (cluster membership is data-independent); w_max = 1 in the
  // paper's unweighted model.
  const double w_max = context_.preferences->max_weight();
  for (int64_t c = 0; c < num_clusters; ++c) {
    double size = static_cast<double>(partition_.ClusterSize(c));
    double sensitivity = w_max / size;
    double* row = averages.data() + c * num_items;
    for (graph::ItemId i = 0; i < num_items; ++i) {
      row[i] = laplace.Release(row[i] / size, sensitivity);
    }
  }
  return averages;
}

std::vector<RecommendationList> ClusterRecommender::Recommend(
    const std::vector<graph::NodeId>& users, int64_t top_n) {
  const int64_t num_clusters = partition_.num_clusters();
  const graph::ItemId num_items = context_.preferences->num_items();
  std::vector<double> averages = ComputeNoisyClusterAverages();

  // Lines 8-20: per-user reconstruction. sim_sum per cluster is sparse (a
  // user's similarity set touches few clusters); the item-utility vector is
  // dense because every noisy average is nonzero.
  std::vector<RecommendationList> out;
  out.reserve(users.size());
  std::vector<double> sim_sum(static_cast<size_t>(num_clusters), 0.0);
  std::vector<int64_t> touched;
  std::vector<double> utilities(static_cast<size_t>(num_items));
  for (graph::NodeId u : users) {
    touched.clear();
    for (const similarity::SimilarityEntry& e : context_.workload->Row(u)) {
      int64_t c = partition_.ClusterOf(e.user);
      if (sim_sum[static_cast<size_t>(c)] == 0.0) touched.push_back(c);
      sim_sum[static_cast<size_t>(c)] += e.score;
    }
    std::fill(utilities.begin(), utilities.end(), 0.0);
    for (int64_t c : touched) {
      double s = sim_sum[static_cast<size_t>(c)];
      const double* row = averages.data() + c * num_items;
      for (graph::ItemId i = 0; i < num_items; ++i) {
        utilities[static_cast<size_t>(i)] += s * row[i];
      }
      sim_sum[static_cast<size_t>(c)] = 0.0;
    }
    out.push_back(TopNFromDense(utilities, top_n));
  }
  return out;
}

}  // namespace privrec::core
