#include "core/cluster_recommender.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/fault_injection.h"
#include "common/parallel.h"
#include "core/degradation.h"
#include "dp/mechanisms.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace privrec::core {

namespace {

// Per-chunk tallies of the noise-publication loop, folded in chunk order.
struct AverageTallies {
  int64_t empty_clusters = 0;
  int64_t singleton_clusters = 0;
  int64_t nonfinite_sanitized = 0;
};

}  // namespace

ClusterRecommender::ClusterRecommender(
    const RecommenderContext& context, community::Partition partition,
    const ClusterRecommenderOptions& options)
    : context_(context),
      partition_(std::move(partition)),
      options_(options) {
  context_.CheckValid();
  PRIVREC_CHECK(partition_.num_nodes() == context_.social->num_nodes());
  PRIVREC_CHECK_MSG(dp::IsValidEpsilon(options_.epsilon), "bad epsilon");
}

ClusterRecommender::NoisyAverages ClusterRecommender::ComputeAverages() {
  PRIVREC_SPAN("core.publication");
  const int64_t num_clusters = partition_.num_clusters();
  const graph::ItemId num_items = context_.preferences->num_items();
  // Fresh per-invocation noise keeps repeated trials independent while the
  // whole object stays deterministic under a fixed seed. Each chunk of
  // clusters draws from its own split stream, so the released noise is
  // bit-identical for every thread count (see common/parallel.h).
  const SplitRng split(options_.seed, invocation_++);

  NoisyAverages result;
  result.sanitized.assign(static_cast<size_t>(num_clusters), 0);

  // Lines 2-6 of Algorithm 1: per-(cluster, item) edge-weight sums via one
  // pass over the preference edges. Stays serial: it is O(edges) while the
  // noise stage below is O(clusters * items), and users of one cluster may
  // sit anywhere in the id range.
  std::vector<double>& averages = result.values;
  averages.assign(static_cast<size_t>(num_clusters * num_items), 0.0);
  for (graph::NodeId v = 0; v < context_.preferences->num_users(); ++v) {
    int64_t c = partition_.ClusterOf(v);
    double* row = averages.data() + c * num_items;
    auto items = context_.preferences->ItemsOf(v);
    auto weights = context_.preferences->WeightsOf(v);
    for (size_t k = 0; k < items.size(); ++k) {
      row[items[k]] += weights[k];
    }
  }
  // Line 7: divide by cluster size and add Lap(w_max / (|c| * eps)). The
  // sensitivity of a cluster average is w_max/|c| because one preference
  // edge changes exactly one cluster's sum by at most the largest allowed
  // weight (cluster membership is data-independent); w_max = 1 in the
  // paper's unweighted model. Clusters are processed in fixed chunks with
  // disjoint rows; the per-chunk tallies fold in chunk order.
  const double w_max = context_.preferences->max_weight();
  // Sensitivity of each released cluster row (w_max/|c|): small values mean
  // large clusters whose averages need little noise.
  static obs::Histogram& sensitivity_hist = obs::GetHistogram(
      "privrec.core.cluster_sensitivity",
      obs::ExponentialBuckets(1e-4, 4.0, 10));
  Result<AverageTallies> tallies = ParallelReduce(
      num_clusters, AverageTallies{},
      [&](int64_t chunk, int64_t begin, int64_t end) {
        dp::LaplaceMechanism laplace(
            options_.epsilon, split.StreamFor(static_cast<uint64_t>(chunk)));
        AverageTallies t;
        for (int64_t c = begin; c < end; ++c) {
          const int64_t members = partition_.ClusterSize(c);
          double* row = averages.data() + c * num_items;
          if (members == 0) {
            // An empty cluster holds no preference edges: there is no
            // average to release (dividing would manufacture 0/0 NaNs).
            // Its row stays zero and contributes nothing downstream.
            ++t.empty_clusters;
            continue;
          }
          if (members == 1) ++t.singleton_clusters;
          double size = static_cast<double>(members);
          double sensitivity = w_max / size;
          sensitivity_hist.Observe(sensitivity);
          for (graph::ItemId i = 0; i < num_items; ++i) {
            row[i] = laplace.Release(row[i] / size, sensitivity);
          }
          row[0] = fault::MaybePoison("cluster.noisy_averages", row[0]);
          for (graph::ItemId i = 0; i < num_items; ++i) {
            if (!std::isfinite(row[i])) {
              // Sanitizing a released value is post-processing: no extra ε.
              row[i] = 0.0;
              ++t.nonfinite_sanitized;
              result.sanitized[static_cast<size_t>(c)] = 1;
            }
          }
        }
        return t;
      },
      [](AverageTallies& acc, AverageTallies t) {
        acc.empty_clusters += t.empty_clusters;
        acc.singleton_clusters += t.singleton_clusters;
        acc.nonfinite_sanitized += t.nonfinite_sanitized;
      });
  PRIVREC_CHECK_MSG(tallies.ok(), tallies.status().message().c_str());
  result.empty_clusters = tallies->empty_clusters;
  result.singleton_clusters = tallies->singleton_clusters;
  result.nonfinite_sanitized = tallies->nonfinite_sanitized;

  static obs::Counter& releases = obs::GetCounter("privrec.core.releases");
  static obs::Counter& laplace_draws =
      obs::GetCounter("privrec.core.laplace_draws");
  static obs::Counter& empty =
      obs::GetCounter("privrec.core.empty_clusters");
  static obs::Counter& singleton =
      obs::GetCounter("privrec.core.singleton_clusters");
  static obs::Counter& sanitized =
      obs::GetCounter("privrec.core.nonfinite_sanitized");
  releases.Increment();
  laplace_draws.Add((num_clusters - result.empty_clusters) *
                    static_cast<int64_t>(num_items));
  empty.Add(result.empty_clusters);
  singleton.Add(result.singleton_clusters);
  sanitized.Add(result.nonfinite_sanitized);
  return result;
}

std::vector<double> ClusterRecommender::ComputeNoisyClusterAverages() {
  return ComputeAverages().values;
}

RecommendedBatch ClusterRecommender::RecommendWithReport(
    const std::vector<graph::NodeId>& users, int64_t top_n) {
  const int64_t num_clusters = partition_.num_clusters();
  const graph::ItemId num_items = context_.preferences->num_items();
  const NoisyAverages noisy = ComputeAverages();
  const std::vector<double>& averages = noisy.values;

  PRIVREC_SPAN("core.reconstruction");
  RecommendedBatch batch;
  batch.report.empty_clusters = noisy.empty_clusters;
  batch.report.singleton_clusters = noisy.singleton_clusters;
  batch.report.nonfinite_sanitized = noisy.nonfinite_sanitized;

  // Global-average utilities, the fallback for users with no similarity
  // support: Σ_c |c|·ŵ_c^i / |U| re-weights the released cluster rows back
  // into one population-level row. Pure post-processing of the same
  // release, so serving it costs no additional privacy.
  const double num_users_d =
      static_cast<double>(context_.social->num_nodes());
  std::vector<double> global(static_cast<size_t>(num_items), 0.0);
  for (int64_t c = 0; c < num_clusters; ++c) {
    double size = static_cast<double>(partition_.ClusterSize(c));
    if (size == 0.0) continue;
    const double* row = averages.data() + c * num_items;
    for (graph::ItemId i = 0; i < num_items; ++i) {
      global[static_cast<size_t>(i)] += size * row[i] / num_users_d;
    }
  }

  // Lines 8-20: per-user reconstruction, parallel over fixed chunks of the
  // request batch. Each user's list and diagnostics are written to its own
  // slot; the per-chunk degradation counts fold in chunk order. sim_sum per
  // cluster is sparse (a user's similarity set touches few clusters); the
  // item-utility vector is dense because every noisy average is nonzero.
  batch.lists.resize(users.size());
  batch.degradation.resize(users.size());
  Result<int64_t> degraded = ParallelReduce(
      static_cast<int64_t>(users.size()), int64_t{0},
      [&](int64_t, int64_t begin, int64_t end) {
        // Worker-local scratch, fully re-zeroed between users (sim_sum via
        // the touched list, utilities via std::fill), so results do not
        // depend on which chunks this worker ran before.
        thread_local std::vector<double> sim_sum;
        thread_local std::vector<int64_t> touched;
        thread_local std::vector<double> utilities;
        if (sim_sum.size() < static_cast<size_t>(num_clusters)) {
          sim_sum.assign(static_cast<size_t>(num_clusters), 0.0);
        }
        utilities.resize(static_cast<size_t>(num_items));
        int64_t chunk_degraded = 0;
        for (int64_t k = begin; k < end; ++k) {
          graph::NodeId u = users[static_cast<size_t>(k)];
          touched.clear();
          for (const similarity::SimilarityEntry& e :
               context_.workload->Row(u)) {
            int64_t c = partition_.ClusterOf(e.user);
            if (sim_sum[static_cast<size_t>(c)] == 0.0) touched.push_back(c);
            sim_sum[static_cast<size_t>(c)] += e.score;
          }
          DegradationInfo info;
          if (touched.empty()) {
            // No similarity support: the reconstruction formula would rank
            // every item 0. Serve the global-average ranking instead of an
            // arbitrary tie-break.
            info.reason = DegradationReason::kIsolatedUser;
            batch.lists[static_cast<size_t>(k)] =
                TopNFromDense(global, top_n);
          } else {
            std::fill(utilities.begin(), utilities.end(), 0.0);
            bool touched_sanitized = false;
            for (int64_t c : touched) {
              double s = sim_sum[static_cast<size_t>(c)];
              if (noisy.sanitized[static_cast<size_t>(c)]) {
                touched_sanitized = true;
              }
              const double* row = averages.data() + c * num_items;
              for (graph::ItemId i = 0; i < num_items; ++i) {
                utilities[static_cast<size_t>(i)] += s * row[i];
              }
              sim_sum[static_cast<size_t>(c)] = 0.0;
            }
            if (touched_sanitized) {
              info.reason = DegradationReason::kNonFiniteSanitized;
            }
            batch.lists[static_cast<size_t>(k)] =
                TopNFromDense(utilities, top_n);
          }
          if (info.degraded()) ++chunk_degraded;
          batch.degradation[static_cast<size_t>(k)] = info;
        }
        return chunk_degraded;
      },
      [](int64_t& acc, int64_t part) { acc += part; });
  PRIVREC_CHECK_MSG(degraded.ok(), degraded.status().message().c_str());
  batch.report.users_degraded = *degraded;
  RecordServingMetrics(batch);
  return batch;
}

std::vector<RecommendationList> ClusterRecommender::Recommend(
    const std::vector<graph::NodeId>& users, int64_t top_n) {
  return RecommendWithReport(users, top_n).lists;
}

}  // namespace privrec::core
