#include "core/cluster_recommender.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/fault_injection.h"
#include "dp/mechanisms.h"

namespace privrec::core {

ClusterRecommender::ClusterRecommender(
    const RecommenderContext& context, community::Partition partition,
    const ClusterRecommenderOptions& options)
    : context_(context),
      partition_(std::move(partition)),
      options_(options) {
  context_.CheckValid();
  PRIVREC_CHECK(partition_.num_nodes() == context_.social->num_nodes());
  PRIVREC_CHECK_MSG(dp::IsValidEpsilon(options_.epsilon), "bad epsilon");
}

ClusterRecommender::NoisyAverages ClusterRecommender::ComputeAverages() {
  const int64_t num_clusters = partition_.num_clusters();
  const graph::ItemId num_items = context_.preferences->num_items();
  // Fresh noise stream per invocation keeps repeated trials independent
  // while the whole object stays deterministic under a fixed seed.
  dp::LaplaceMechanism laplace(options_.epsilon,
                               Rng(options_.seed).Fork(invocation_++));

  NoisyAverages result;
  result.sanitized.assign(static_cast<size_t>(num_clusters), 0);

  // Lines 2-6 of Algorithm 1: per-(cluster, item) edge-weight sums via one
  // pass over the preference edges.
  std::vector<double>& averages = result.values;
  averages.assign(static_cast<size_t>(num_clusters * num_items), 0.0);
  for (graph::NodeId v = 0; v < context_.preferences->num_users(); ++v) {
    int64_t c = partition_.ClusterOf(v);
    double* row = averages.data() + c * num_items;
    auto items = context_.preferences->ItemsOf(v);
    auto weights = context_.preferences->WeightsOf(v);
    for (size_t k = 0; k < items.size(); ++k) {
      row[items[k]] += weights[k];
    }
  }
  // Line 7: divide by cluster size and add Lap(w_max / (|c| * eps)). The
  // sensitivity of a cluster average is w_max/|c| because one preference
  // edge changes exactly one cluster's sum by at most the largest allowed
  // weight (cluster membership is data-independent); w_max = 1 in the
  // paper's unweighted model.
  const double w_max = context_.preferences->max_weight();
  for (int64_t c = 0; c < num_clusters; ++c) {
    const int64_t members = partition_.ClusterSize(c);
    double* row = averages.data() + c * num_items;
    if (members == 0) {
      // An empty cluster holds no preference edges: there is no average to
      // release (dividing would manufacture 0/0 NaNs). Its row stays zero
      // and contributes nothing downstream.
      ++result.empty_clusters;
      continue;
    }
    if (members == 1) ++result.singleton_clusters;
    double size = static_cast<double>(members);
    double sensitivity = w_max / size;
    for (graph::ItemId i = 0; i < num_items; ++i) {
      row[i] = laplace.Release(row[i] / size, sensitivity);
    }
    row[0] = fault::MaybePoison("cluster.noisy_averages", row[0]);
    for (graph::ItemId i = 0; i < num_items; ++i) {
      if (!std::isfinite(row[i])) {
        // Sanitizing a released value is post-processing: no extra ε.
        row[i] = 0.0;
        ++result.nonfinite_sanitized;
        result.sanitized[static_cast<size_t>(c)] = 1;
      }
    }
  }
  return result;
}

std::vector<double> ClusterRecommender::ComputeNoisyClusterAverages() {
  return ComputeAverages().values;
}

RecommendedBatch ClusterRecommender::RecommendWithReport(
    const std::vector<graph::NodeId>& users, int64_t top_n) {
  const int64_t num_clusters = partition_.num_clusters();
  const graph::ItemId num_items = context_.preferences->num_items();
  const NoisyAverages noisy = ComputeAverages();
  const std::vector<double>& averages = noisy.values;

  RecommendedBatch batch;
  batch.report.empty_clusters = noisy.empty_clusters;
  batch.report.singleton_clusters = noisy.singleton_clusters;
  batch.report.nonfinite_sanitized = noisy.nonfinite_sanitized;

  // Global-average utilities, the fallback for users with no similarity
  // support: Σ_c |c|·ŵ_c^i / |U| re-weights the released cluster rows back
  // into one population-level row. Pure post-processing of the same
  // release, so serving it costs no additional privacy.
  const double num_users_d =
      static_cast<double>(context_.social->num_nodes());
  std::vector<double> global(static_cast<size_t>(num_items), 0.0);
  for (int64_t c = 0; c < num_clusters; ++c) {
    double size = static_cast<double>(partition_.ClusterSize(c));
    if (size == 0.0) continue;
    const double* row = averages.data() + c * num_items;
    for (graph::ItemId i = 0; i < num_items; ++i) {
      global[static_cast<size_t>(i)] += size * row[i] / num_users_d;
    }
  }

  // Lines 8-20: per-user reconstruction. sim_sum per cluster is sparse (a
  // user's similarity set touches few clusters); the item-utility vector is
  // dense because every noisy average is nonzero.
  batch.lists.reserve(users.size());
  batch.degradation.reserve(users.size());
  std::vector<double> sim_sum(static_cast<size_t>(num_clusters), 0.0);
  std::vector<int64_t> touched;
  std::vector<double> utilities(static_cast<size_t>(num_items));
  for (graph::NodeId u : users) {
    touched.clear();
    for (const similarity::SimilarityEntry& e : context_.workload->Row(u)) {
      int64_t c = partition_.ClusterOf(e.user);
      if (sim_sum[static_cast<size_t>(c)] == 0.0) touched.push_back(c);
      sim_sum[static_cast<size_t>(c)] += e.score;
    }
    DegradationInfo info;
    if (touched.empty()) {
      // No similarity support: the reconstruction formula would rank every
      // item 0. Serve the global-average ranking instead of an arbitrary
      // tie-break.
      info.reason = DegradationReason::kIsolatedUser;
      batch.lists.push_back(TopNFromDense(global, top_n));
    } else {
      std::fill(utilities.begin(), utilities.end(), 0.0);
      bool touched_sanitized = false;
      for (int64_t c : touched) {
        double s = sim_sum[static_cast<size_t>(c)];
        if (noisy.sanitized[static_cast<size_t>(c)]) {
          touched_sanitized = true;
        }
        const double* row = averages.data() + c * num_items;
        for (graph::ItemId i = 0; i < num_items; ++i) {
          utilities[static_cast<size_t>(i)] += s * row[i];
        }
        sim_sum[static_cast<size_t>(c)] = 0.0;
      }
      if (touched_sanitized) {
        info.reason = DegradationReason::kNonFiniteSanitized;
      }
      batch.lists.push_back(TopNFromDense(utilities, top_n));
    }
    if (info.degraded()) ++batch.report.users_degraded;
    batch.degradation.push_back(info);
  }
  return batch;
}

std::vector<RecommendationList> ClusterRecommender::Recommend(
    const std::vector<graph::NodeId>& users, int64_t top_n) {
  return RecommendWithReport(users, top_n).lists;
}

}  // namespace privrec::core
