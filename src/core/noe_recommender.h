// NoeRecommender: the "Noise on Edges" strawman (Section 5.1.1).
//
// Injects independent Lap(1/ε) noise directly into the weight of *every*
// potential preference edge (present edges have weight 1, absent ones 0 —
// sensitivity 1 per edge), then runs the exact utility computation on the
// sanitized weights:
//   μ̂_u^i = Σ_{v ∈ sim(u)} sim(u, v) · (w(v, i) + Lap(1/ε)).
//
// The sanitized weight of an edge must be the SAME across every utility
// query that reads it (it is released once); the noise matrix is therefore
// materialized per invocation (float, |U| × |I|) rather than re-sampled
// per query.

#ifndef PRIVREC_CORE_NOE_RECOMMENDER_H_
#define PRIVREC_CORE_NOE_RECOMMENDER_H_

#include <cstdint>

#include "core/recommender.h"

namespace privrec::core {

struct NoeRecommenderOptions {
  double epsilon = 1.0;
  uint64_t seed = 300;
};

class NoeRecommender final : public Recommender {
 public:
  NoeRecommender(const RecommenderContext& context,
                 const NoeRecommenderOptions& options);

  std::string Name() const override { return "NOE"; }

  std::vector<RecommendationList> Recommend(
      const std::vector<graph::NodeId>& users, int64_t top_n) override;

 private:
  RecommenderContext context_;
  NoeRecommenderOptions options_;
  uint64_t invocation_ = 0;
};

}  // namespace privrec::core

#endif  // PRIVREC_CORE_NOE_RECOMMENDER_H_
