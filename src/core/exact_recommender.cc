#include "core/exact_recommender.h"

namespace privrec::core {

ExactRecommender::ExactRecommender(const RecommenderContext& context)
    : context_(context) {
  context_.CheckValid();
}

std::vector<std::pair<graph::ItemId, double>> ExactRecommender::UtilityRow(
    graph::NodeId u) {
  // mu_u = sum_{v in sim(u)} sim(u, v) * w(v, ·): scatter each similar
  // user's weighted item list into the dense item scratch.
  item_scratch_.Resize(context_.preferences->num_items());
  for (const similarity::SimilarityEntry& e : context_.workload->Row(u)) {
    auto items = context_.preferences->ItemsOf(e.user);
    auto weights = context_.preferences->WeightsOf(e.user);
    for (size_t k = 0; k < items.size(); ++k) {
      item_scratch_.Accumulate(items[k], e.score * weights[k]);
    }
  }
  std::vector<similarity::SimilarityEntry> raw =
      item_scratch_.TakeSortedPositive();
  std::vector<std::pair<graph::ItemId, double>> row;
  row.reserve(raw.size());
  for (const auto& e : raw) row.emplace_back(e.user, e.score);
  return row;
}

std::vector<RecommendationList> ExactRecommender::Recommend(
    const std::vector<graph::NodeId>& users, int64_t top_n) {
  std::vector<RecommendationList> out;
  out.reserve(users.size());
  for (graph::NodeId u : users) {
    out.push_back(TopNFromSparse(UtilityRow(u), top_n));
  }
  return out;
}

}  // namespace privrec::core
