#include "core/exact_recommender.h"

#include "common/parallel.h"

namespace privrec::core {

ExactRecommender::ExactRecommender(const RecommenderContext& context)
    : context_(context) {
  context_.CheckValid();
}

std::vector<std::pair<graph::ItemId, double>>
ExactRecommender::ComputeUtilityRow(const RecommenderContext& context,
                                    graph::NodeId u,
                                    similarity::DenseScratch* scratch) {
  // mu_u = sum_{v in sim(u)} sim(u, v) * w(v, ·): scatter each similar
  // user's weighted item list into the dense item scratch.
  scratch->Resize(context.preferences->num_items());
  for (const similarity::SimilarityEntry& e : context.workload->Row(u)) {
    auto items = context.preferences->ItemsOf(e.user);
    auto weights = context.preferences->WeightsOf(e.user);
    for (size_t k = 0; k < items.size(); ++k) {
      scratch->Accumulate(items[k], e.score * weights[k]);
    }
  }
  std::vector<similarity::SimilarityEntry> raw =
      scratch->TakeSortedPositive();
  std::vector<std::pair<graph::ItemId, double>> row;
  row.reserve(raw.size());
  for (const auto& e : raw) row.emplace_back(e.user, e.score);
  return row;
}

std::vector<std::pair<graph::ItemId, double>> ExactRecommender::UtilityRow(
    graph::NodeId u) {
  return ComputeUtilityRow(context_, u, &item_scratch_);
}

std::vector<RecommendationList> ExactRecommender::Recommend(
    const std::vector<graph::NodeId>& users, int64_t top_n) {
  std::vector<RecommendationList> out(users.size());
  Status run = ParallelFor(
      static_cast<int64_t>(users.size()),
      [&](int64_t, int64_t begin, int64_t end) {
        thread_local similarity::DenseScratch scratch;
        for (int64_t k = begin; k < end; ++k) {
          out[static_cast<size_t>(k)] = TopNFromSparse(
              ComputeUtilityRow(context_, users[static_cast<size_t>(k)],
                                &scratch),
              top_n);
        }
      });
  PRIVREC_CHECK_MSG(run.ok(), run.message().c_str());
  return out;
}

}  // namespace privrec::core
