#include "core/item_cf_recommender.h"

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "dp/mechanisms.h"
#include "similarity/similarity_measure.h"

namespace privrec::core {

ItemCfRecommender::ItemCfRecommender(const RecommenderContext& context,
                                     const ItemCfRecommenderOptions& options)
    : context_(context), options_(options) {
  context_.CheckValid();
  PRIVREC_CHECK_MSG(dp::IsValidEpsilon(options_.epsilon), "bad epsilon");
  PRIVREC_CHECK(options_.tau >= 2);

  // Clamp: keep each user's tau smallest item ids (lists are sorted).
  const graph::NodeId num_users = context_.preferences->num_users();
  const graph::ItemId num_items = context_.preferences->num_items();
  clamp_offsets_.assign(1, 0);
  clamp_offsets_.reserve(static_cast<size_t>(num_users) + 1);
  for (graph::NodeId u = 0; u < num_users; ++u) {
    auto items = context_.preferences->ItemsOf(u);
    size_t keep = std::min<size_t>(items.size(),
                                   static_cast<size_t>(options_.tau));
    clamp_items_.insert(clamp_items_.end(), items.begin(),
                        items.begin() + keep);
    clamp_offsets_.push_back(clamp_items_.size());
  }
  // Reverse orientation.
  std::vector<size_t> counts(static_cast<size_t>(num_items) + 1, 0);
  for (graph::ItemId i : clamp_items_) {
    ++counts[static_cast<size_t>(i) + 1];
  }
  item_offsets_.assign(static_cast<size_t>(num_items) + 1, 0);
  for (size_t k = 1; k < item_offsets_.size(); ++k) {
    item_offsets_[k] = item_offsets_[k - 1] + counts[k];
  }
  item_users_.resize(clamp_items_.size());
  std::vector<size_t> cursor(item_offsets_.begin(), item_offsets_.end() - 1);
  for (graph::NodeId u = 0; u < num_users; ++u) {
    for (size_t k = clamp_offsets_[static_cast<size_t>(u)];
         k < clamp_offsets_[static_cast<size_t>(u) + 1]; ++k) {
      item_users_[cursor[static_cast<size_t>(clamp_items_[k])]++] = u;
    }
  }
}

std::span<const graph::ItemId> ItemCfRecommender::ClampedItems(
    graph::NodeId u) const {
  PRIVREC_DCHECK(u >= 0 && u < context_.preferences->num_users());
  return {clamp_items_.data() + clamp_offsets_[static_cast<size_t>(u)],
          clamp_items_.data() + clamp_offsets_[static_cast<size_t>(u) + 1]};
}

std::vector<double> ItemCfRecommender::ExactScores(graph::NodeId u) const {
  const graph::ItemId num_items = context_.preferences->num_items();
  std::vector<double> scores(static_cast<size_t>(num_items), 0.0);
  // score(u, i) = sum_{j in clamp(u)} C(i, j): scatter the clamped list of
  // every user holding j. The co-holder v contributes 1 to C(i, j) for
  // each of v's clamped items i (excluding i == j, handled below).
  for (graph::ItemId j : ClampedItems(u)) {
    for (size_t k = item_offsets_[static_cast<size_t>(j)];
         k < item_offsets_[static_cast<size_t>(j) + 1]; ++k) {
      graph::NodeId v = item_users_[k];
      for (graph::ItemId i : ClampedItems(v)) {
        if (i != j) scores[static_cast<size_t>(i)] += 1.0;
      }
    }
  }
  return scores;
}

double ItemCfRecommender::PairNoise(graph::ItemId a, graph::ItemId b) const {
  // Deterministic per unordered pair: the same noisy matrix entry is seen
  // by every query.
  uint64_t lo = static_cast<uint64_t>(std::min(a, b));
  uint64_t hi = static_cast<uint64_t>(std::max(a, b));
  Rng rng(SplitMix64(options_.seed ^ SplitMix64(lo * 0x1f123bb5u + hi)));
  double scale = 2.0 * static_cast<double>(options_.tau) / options_.epsilon;
  return rng.Laplace(scale);
}

std::vector<RecommendationList> ItemCfRecommender::Recommend(
    const std::vector<graph::NodeId>& users, int64_t top_n) {
  const graph::ItemId num_items = context_.preferences->num_items();
  const bool noiseless = options_.epsilon == dp::kEpsilonInfinity;
  std::vector<RecommendationList> out;
  out.reserve(users.size());
  for (graph::NodeId u : users) {
    std::vector<double> scores = ExactScores(u);
    if (!noiseless) {
      auto clamped = ClampedItems(u);
      for (graph::ItemId i = 0; i < num_items; ++i) {
        double noise = 0.0;
        for (graph::ItemId j : clamped) {
          if (i != j) noise += PairNoise(i, j);
        }
        scores[static_cast<size_t>(i)] += noise;
      }
    }
    out.push_back(TopNFromDense(scores, top_n));
  }
  return out;
}

}  // namespace privrec::core
