// ClusterRecommender: the paper's privacy-preserving framework
// (Algorithm 1, Section 5).
//
// Pipeline (matching the three modules of the Theorem 4 proof):
//   1. createClusters(G_s): a disjoint user Partition derived from the
//      public social graph only (Louvain by default; any public-only
//      strategy preserves the guarantee).
//   2. A_w: for every (item, cluster) pair, release the noisy average edge
//      weight  ŵ_c^i = (Σ_{v∈c} w(v,i)) / |c| + Lap(1/(|c|·ε))  — the only
//      stage that reads the private preference graph. Parallel composition
//      across the disjoint clusters and disjoint per-item edge sets makes
//      the whole stage ε-DP.
//   3. A_R: reconstruct utility estimates
//      μ̂_u^i = Σ_c (Σ_{v∈sim(u)∩c} sim(u,v)) · ŵ_c^i  and emit per-user
//      top-N lists — pure post-processing.
//
// The class exposes the A_w output (NoisyClusterAverages) separately so
// tests can verify the DP guarantee empirically at the privacy boundary.
//
// Degradation semantics (see core/degradation.h): empty clusters release
// nothing (no 0/0 NaN), non-finite noisy values are sanitized to 0 and
// counted, and users with no similarity support fall back to the
// global-average utilities reconstructed from the SAME noisy release
// (post-processing — no extra ε). RecommendWithReport says which users
// degraded and why; Recommend() returns the same lists without the
// diagnostics. Fault point: cluster.noisy_averages (kNaN/kInf poisons the
// release, exercising the sanitizer).

#ifndef PRIVREC_CORE_CLUSTER_RECOMMENDER_H_
#define PRIVREC_CORE_CLUSTER_RECOMMENDER_H_

#include <cstdint>
#include <vector>

#include "community/partition.h"
#include "core/degradation.h"
#include "core/recommender.h"

namespace privrec::core {

struct ClusterRecommenderOptions {
  // Privacy parameter; dp::kEpsilonInfinity disables noise (isolating
  // approximation error, the paper's ε = ∞ runs).
  double epsilon = 1.0;
  uint64_t seed = 100;
};

// The full A_w output: the noisy table plus the sanitation diagnostics the
// reconstruction step needs. This is exactly what the artifact builder
// persists into the noisy-table section of a .pvra model — serving needs
// nothing else from the private phase.
struct ClusterRelease {
  std::vector<double> values;  // row-major [cluster][item]
  // Per-cluster flag: a non-finite value in this cluster's row was
  // sanitized to 0.
  std::vector<uint8_t> sanitized;
  int64_t empty_clusters = 0;
  int64_t singleton_clusters = 0;
  int64_t nonfinite_sanitized = 0;
};

class ClusterRecommender final : public Recommender {
 public:
  // `partition` is the createClusters output; it must cover exactly the
  // social graph's node set and must be derived from public data only for
  // the DP guarantee to hold (not enforceable here — see the class
  // comment).
  ClusterRecommender(const RecommenderContext& context,
                     community::Partition partition,
                     const ClusterRecommenderOptions& options);

  std::string Name() const override { return "Cluster"; }

  std::vector<RecommendationList> Recommend(
      const std::vector<graph::NodeId>& users, int64_t top_n) override;

  // Recommend() plus per-user degradation diagnostics.
  RecommendedBatch RecommendWithReport(
      const std::vector<graph::NodeId>& users, int64_t top_n);

  // The A_w module in isolation: row-major [cluster][item] noisy average
  // weights, freshly sampled (and sanitized — non-finite values read as
  // 0). Exposed for DP boundary tests; Recommend() calls this internally
  // once per invocation.
  std::vector<double> ComputeNoisyClusterAverages();

  // The A_w module with its full diagnostics — the Fit() half of the
  // build/serve split. Each call draws fresh noise (advancing the
  // invocation counter exactly like Recommend does), so the k-th
  // ComputeRelease matches the release the k-th Recommend would have used.
  ClusterRelease ComputeRelease();

  const community::Partition& partition() const { return partition_; }

 private:
  RecommenderContext context_;
  community::Partition partition_;
  ClusterRecommenderOptions options_;
  uint64_t invocation_ = 0;
};

}  // namespace privrec::core

#endif  // PRIVREC_CORE_CLUSTER_RECOMMENDER_H_
