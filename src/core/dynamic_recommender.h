// Dynamic-graph extension (the paper's first future-work item).
//
// The paper computes recommendations over a single static snapshot and
// notes that "enforcing differential privacy over dynamic graphs is a
// non-trivial extension". This module provides the natural baseline for
// that extension: a session that releases recommendations over a sequence
// of graph snapshots under ONE total privacy budget, paying for each
// release by sequential composition (Theorem 2 — the same preference edge
// can appear in every snapshot, so the per-snapshot epsilons add).
//
// Two allocation policies:
//   kUniform    ε_t = ε_total / planned_snapshots; exactly
//               planned_snapshots releases are possible.
//   kGeometric  ε_t = ε_total · (1 - γ) · γ^t; the series sums below
//               ε_total, so the session never exhausts — each release is
//               noisier than the last, an explicit freshness/privacy
//               trade-off.
//
// Each snapshot re-clusters the (public) social graph with Louvain and
// runs Algorithm 1 at the allocated ε_t. The session refuses to release
// once the accountant would be overdrawn.

#ifndef PRIVREC_CORE_DYNAMIC_RECOMMENDER_H_
#define PRIVREC_CORE_DYNAMIC_RECOMMENDER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "community/louvain.h"
#include "core/recommender.h"
#include "dp/budget.h"

namespace privrec::core {

enum class BudgetAllocation {
  kUniform,
  kGeometric,
};

struct DynamicRecommenderOptions {
  double total_epsilon = 1.0;
  BudgetAllocation allocation = BudgetAllocation::kUniform;
  // kUniform: the number of snapshot releases the budget is divided over.
  int64_t planned_snapshots = 10;
  // kGeometric: the decay ratio γ in (0, 1).
  double geometric_ratio = 0.7;
  community::LouvainOptions louvain;
  uint64_t seed = 600;
};

struct SnapshotRelease {
  std::vector<RecommendationList> lists;
  // The ε charged for this release and the cumulative total so far.
  double epsilon_spent = 0.0;
  double cumulative_epsilon = 0.0;
  int64_t snapshot_index = 0;
  int64_t num_clusters = 0;
};

class DynamicRecommenderSession {
 public:
  explicit DynamicRecommenderSession(
      const DynamicRecommenderOptions& options);

  // Releases top-`top_n` lists for `users` from the given snapshot.
  // The context's graphs/workload represent the snapshot at this instant
  // and must stay alive only for the duration of the call. Fails with
  // FAILED_PRECONDITION once the budget cannot cover the next allocation.
  Result<SnapshotRelease> ProcessSnapshot(
      const RecommenderContext& context,
      const std::vector<graph::NodeId>& users, int64_t top_n);

  // ε allocated to snapshot t (0-based) under the configured policy.
  double EpsilonForSnapshot(int64_t t) const;

  int64_t snapshots_processed() const { return snapshots_processed_; }
  double epsilon_spent() const { return budget_.GroupSpent(kGroup); }
  double epsilon_remaining() const { return budget_.Remaining(); }

 private:
  static constexpr const char* kGroup = "snapshots";

  DynamicRecommenderOptions options_;
  dp::PrivacyBudget budget_;
  int64_t snapshots_processed_ = 0;
};

}  // namespace privrec::core

#endif  // PRIVREC_CORE_DYNAMIC_RECOMMENDER_H_
