// Dynamic-graph extension (the paper's first future-work item).
//
// The paper computes recommendations over a single static snapshot and
// notes that "enforcing differential privacy over dynamic graphs is a
// non-trivial extension". This module provides the natural baseline for
// that extension: a session that releases recommendations over a sequence
// of graph snapshots under ONE total privacy budget, paying for each
// release by sequential composition (Theorem 2 — the same preference edge
// can appear in every snapshot, so the per-snapshot epsilons add).
//
// Two allocation policies:
//   kUniform    ε_t = ε_total / planned_snapshots; exactly
//               planned_snapshots releases are possible.
//   kGeometric  ε_t = ε_total · (1 - γ) · γ^t; the series sums below
//               ε_total, so the session never exhausts — each release is
//               noisier than the last, an explicit freshness/privacy
//               trade-off.
//
// Each snapshot re-clusters the (public) social graph with Louvain and
// runs Algorithm 1 at the allocated ε_t. The session refuses to release
// once the accountant would be overdrawn (RESOURCE_EXHAUSTED), or — with
// serve_stale_on_exhaustion — replays the last paid release, flagged
// kStaleReplay, at zero additional ε.
//
// Crash safety: with a ledger_path configured, every charge is journaled
// to a BudgetLedger BEFORE noise is sampled (write-ahead) and committed
// after the release. Open() replays the journal, so a restarted session
// resumes at the correct cumulative ε. A crash between intent and commit
// leaves a paid-but-unreleased snapshot; because snapshot t's noise is a
// deterministic function of (seed, t), the resumed session re-derives the
// IDENTICAL release without re-charging — re-releasing the same output is
// free under DP, re-randomizing would be a silent double-spend.
// Fault point: dynamic.after_journal (kIoError simulates a crash after
// the intent is journaled but before the release goes out).

#ifndef PRIVREC_CORE_DYNAMIC_RECOMMENDER_H_
#define PRIVREC_CORE_DYNAMIC_RECOMMENDER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "community/louvain.h"
#include "core/degradation.h"
#include "core/recommender.h"
#include "dp/budget.h"
#include "dp/ledger.h"

namespace privrec::core {

enum class BudgetAllocation {
  kUniform,
  kGeometric,
};

struct DynamicRecommenderOptions {
  double total_epsilon = 1.0;
  BudgetAllocation allocation = BudgetAllocation::kUniform;
  // kUniform: the number of snapshot releases the budget is divided over.
  int64_t planned_snapshots = 10;
  // kGeometric: the decay ratio γ in (0, 1).
  double geometric_ratio = 0.7;
  community::LouvainOptions louvain;
  uint64_t seed = 600;
  // Non-empty: journal charges to this write-ahead ledger (see Open()).
  std::string ledger_path;
  // On budget exhaustion, replay the last paid release (flagged
  // kStaleReplay) instead of failing with RESOURCE_EXHAUSTED.
  bool serve_stale_on_exhaustion = false;
  // Non-empty: route each snapshot through the two-phase pipeline — build
  // a model artifact, save it as <artifact_dir>/snapshot_<t>.pvra, load it
  // back, and serve the release from the artifact (bit-identical to the
  // in-process path). The saved artifacts are the session's audit trail:
  // each records its ε_t, seed, and ledger id in its provenance section.
  std::string artifact_dir;
};

struct SnapshotRelease {
  std::vector<RecommendationList> lists;
  // Per-user degradation diagnostics and the batch report from the
  // underlying recommender (see core/degradation.h).
  std::vector<DegradationInfo> degradation;
  ServingReport report;
  // The ε charged for this release and the cumulative total so far.
  double epsilon_spent = 0.0;
  double cumulative_epsilon = 0.0;
  int64_t snapshot_index = 0;
  int64_t num_clusters = 0;
  // This release re-issued a journaled-but-uncommitted intent found at
  // startup (crash recovery) — paid for by a previous run, not this call.
  bool resumed_from_intent = false;
  // This release is a replay of the last paid snapshot (budget exhausted,
  // serve_stale_on_exhaustion set).
  bool stale = false;
};

class DynamicRecommenderSession {
 public:
  // In-memory session (no ledger); ledger_path must be empty.
  explicit DynamicRecommenderSession(
      const DynamicRecommenderOptions& options);

  // Ledger-backed session: opens (or creates) options.ledger_path,
  // replays any journaled charges into the budget and resumes after the
  // last committed snapshot. With an empty ledger_path this is equivalent
  // to the constructor.
  static Result<DynamicRecommenderSession> Open(
      const DynamicRecommenderOptions& options);

  DynamicRecommenderSession(DynamicRecommenderSession&&) = default;
  DynamicRecommenderSession& operator=(DynamicRecommenderSession&&) =
      default;

  // Releases top-`top_n` lists for `users` from the given snapshot.
  // The context's graphs/workload represent the snapshot at this instant
  // and must stay alive only for the duration of the call. Fails with
  // RESOURCE_EXHAUSTED once the budget cannot cover the next allocation
  // (unless serve_stale_on_exhaustion is set and a paid release exists).
  //
  // `partition` non-null skips the per-snapshot Louvain run and clusters
  // with the caller's partition instead — the streaming pipeline passes
  // its incrementally-maintained clustering here. The caller must keep
  // the partition deterministic across crash recovery (a resumed intent
  // re-derives its release from it bit-for-bit).
  Result<SnapshotRelease> ProcessSnapshot(
      const RecommenderContext& context,
      const std::vector<graph::NodeId>& users, int64_t top_n,
      const community::Partition* partition = nullptr);

  // ε allocated to snapshot t (0-based) under the configured policy.
  double EpsilonForSnapshot(int64_t t) const;

  int64_t snapshots_processed() const { return snapshots_processed_; }
  double epsilon_spent() const { return budget_.GroupSpent(kGroup); }
  double epsilon_remaining() const { return budget_.Remaining(); }
  // Non-null for ledger-backed sessions.
  const dp::BudgetLedger* ledger() const {
    return ledger_ ? &*ledger_ : nullptr;
  }

 private:
  static constexpr const char* kGroup = "snapshots";

  DynamicRecommenderOptions options_;
  dp::PrivacyBudget budget_;
  int64_t snapshots_processed_ = 0;
  std::optional<dp::BudgetLedger> ledger_;
  // Last successful release, kept for stale replay on exhaustion.
  std::vector<RecommendationList> last_lists_;
};

}  // namespace privrec::core

#endif  // PRIVREC_CORE_DYNAMIC_RECOMMENDER_H_
