#include "core/recommendation.h"

#include <algorithm>

namespace privrec::core {

namespace {

bool RankOrder(const Recommendation& a, const Recommendation& b) {
  if (a.utility != b.utility) return a.utility > b.utility;
  return a.item < b.item;
}

}  // namespace

RecommendationList TopNFromDense(std::span<const double> utilities,
                                 int64_t n) {
  RecommendationList all;
  all.reserve(utilities.size());
  for (size_t i = 0; i < utilities.size(); ++i) {
    all.push_back({static_cast<graph::ItemId>(i), utilities[i]});
  }
  int64_t keep = std::min<int64_t>(n, static_cast<int64_t>(all.size()));
  std::partial_sort(all.begin(), all.begin() + keep, all.end(), RankOrder);
  all.resize(static_cast<size_t>(keep));
  return all;
}

RecommendationList TopNFromSparse(
    std::vector<std::pair<graph::ItemId, double>> entries, int64_t n) {
  RecommendationList all;
  all.reserve(entries.size());
  for (auto [item, utility] : entries) all.push_back({item, utility});
  int64_t keep = std::min<int64_t>(n, static_cast<int64_t>(all.size()));
  std::partial_sort(all.begin(), all.begin() + keep, all.end(), RankOrder);
  all.resize(static_cast<size_t>(keep));
  return all;
}

void TopNAccumulator::Offer(graph::ItemId item, double utility) {
  Recommendation candidate{item, utility};
  auto worse_on_heap = [this](const Recommendation& a,
                              const Recommendation& b) {
    // std::push_heap builds a max-heap; invert to keep the *worst* on top.
    return Better(a, b);
  };
  if (static_cast<int64_t>(heap_.size()) < n_) {
    heap_.push_back(candidate);
    std::push_heap(heap_.begin(), heap_.end(), worse_on_heap);
    return;
  }
  if (Better(candidate, heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), worse_on_heap);
    heap_.back() = candidate;
    std::push_heap(heap_.begin(), heap_.end(), worse_on_heap);
  }
}

RecommendationList TopNAccumulator::Take() {
  RecommendationList out = std::move(heap_);
  heap_.clear();
  std::sort(out.begin(), out.end(), RankOrder);
  return out;
}

}  // namespace privrec::core
