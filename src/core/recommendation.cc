#include "core/recommendation.h"

#include <algorithm>

#include "kernels/select.h"

namespace privrec::core {

// Rank order (utility desc, item asc) lives in kernels/select.h now so
// the dense kernel, the in-place helper, and the accumulator heap all
// share literally the same comparator.

RecommendationList TopNFromDense(std::span<const double> utilities,
                                 int64_t n) {
  thread_local std::vector<int64_t> top;
  kernels::SelectTopNIndicesDense(
      utilities.data(), static_cast<int64_t>(utilities.size()), n, &top);
  RecommendationList out;
  out.reserve(top.size());
  for (int64_t i : top) {
    out.push_back(
        {static_cast<graph::ItemId>(i), utilities[static_cast<size_t>(i)]});
  }
  return out;
}

RecommendationList TopNFromSparse(
    std::vector<std::pair<graph::ItemId, double>> entries, int64_t n) {
  RecommendationList all;
  all.reserve(entries.size());
  for (auto [item, utility] : entries) all.push_back({item, utility});
  kernels::SelectTopNInPlace(all, n);
  return all;
}

void TopNAccumulator::Offer(graph::ItemId item, double utility) {
  Recommendation candidate{item, utility};
  auto worse_on_heap = [this](const Recommendation& a,
                              const Recommendation& b) {
    // std::push_heap builds a max-heap; invert to keep the *worst* on top.
    return Better(a, b);
  };
  if (static_cast<int64_t>(heap_.size()) < n_) {
    heap_.push_back(candidate);
    std::push_heap(heap_.begin(), heap_.end(), worse_on_heap);
    return;
  }
  if (Better(candidate, heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), worse_on_heap);
    heap_.back() = candidate;
    std::push_heap(heap_.begin(), heap_.end(), worse_on_heap);
  }
}

RecommendationList TopNAccumulator::Take() {
  RecommendationList out = std::move(heap_);
  heap_.clear();
  std::sort(out.begin(), out.end(), kernels::RankOrderBetter{});
  return out;
}

}  // namespace privrec::core
