// GroupSmoothRecommender: the paper's adaptation (Section 6.4) of the
// Group-and-Smooth mechanism of Kellaris & Papadopoulos (PVLDB'13).
//
// GS extends NOU the way the framework extends NOE: it groups *query
// answers* and smooths each group to its noisy mean, splitting the budget:
//   - ε/2 buys differentially private "rough" estimates: each preference
//     edge (v, i) contributes to at most ONE query estimate μ̃_u^i, with u
//     drawn uniformly from sim(v); Laplace noise with sensitivity
//     Δ̃ = max_{u,v} sim(u, v) is added to every rough estimate.
//   - The true per-item utility vector is sorted by the rough keys and cut
//     into consecutive groups of size m; each group is released as its mean
//     plus Lap(Δ/(ε/2)) with Δ = (1/m) · max_v Σ_u sim(u, v).
// Every user in a group receives the group's noisy mean as its utility
// estimate for that item.
//
// Following the paper, m is selected by whichever value gives the best
// NDCG against the true utilities (which, as the paper notes, technically
// violates DP and flatters GS); the Figure-4 bench sweeps
// kGroupSizeCandidates and reports the best.
//
// Requirements: the context workload must contain rows for ALL users (the
// rough-estimate sampling touches every user with a preference edge) and
// the similarity measure must be symmetric (all four paper measures are).
//
// Degradation semantics (see core/degradation.h): non-finite released
// group means are sanitized to 0 and the users of the affected group are
// flagged kNonFiniteSanitized; requested users with an empty similarity
// row still receive their group means but are flagged kIsolatedUser (their
// ranking carries no personalized signal); a grouping that collapses to a
// single all-user group is counted as degenerate. Fault point:
// gs.group_mean (kNaN/kInf poisons a released mean).

#ifndef PRIVREC_CORE_GROUP_SMOOTH_RECOMMENDER_H_
#define PRIVREC_CORE_GROUP_SMOOTH_RECOMMENDER_H_

#include <array>
#include <cstdint>

#include "core/degradation.h"
#include "core/recommender.h"

namespace privrec::core {

// The m sweep for the best-NDCG selection. Deliberately excludes m on the
// order of |U| (a single group is a degenerate global ranking, no longer a
// smoothing of personalized answers).
inline constexpr std::array<int64_t, 4> kGroupSizeCandidates = {8, 32, 128,
                                                                512};

struct GroupSmoothRecommenderOptions {
  double epsilon = 1.0;
  // Group size m; clamped to the number of users.
  int64_t group_size = 128;
  uint64_t seed = 400;
};

class GroupSmoothRecommender final : public Recommender {
 public:
  GroupSmoothRecommender(const RecommenderContext& context,
                         const GroupSmoothRecommenderOptions& options);

  std::string Name() const override { return "GS"; }

  std::vector<RecommendationList> Recommend(
      const std::vector<graph::NodeId>& users, int64_t top_n) override;

  // Recommend() plus per-user degradation diagnostics.
  RecommendedBatch RecommendWithReport(
      const std::vector<graph::NodeId>& users, int64_t top_n);

 private:
  RecommenderContext context_;
  GroupSmoothRecommenderOptions options_;
  double max_entry_;       // Δ̃ for the rough estimates
  double max_column_sum_;  // m·Δ for the group averages
  uint64_t invocation_ = 0;
};

}  // namespace privrec::core

#endif  // PRIVREC_CORE_GROUP_SMOOTH_RECOMMENDER_H_
