// The top-N social recommender interface (Definition 4) shared by the
// non-private reference, the paper's framework (ClusterRecommender) and
// every baseline mechanism.
//
// A RecommenderContext bundles the inputs: the public social graph, the
// private preference graph, and the precomputed similarity workload
// (sim(u, ·) rows). Contexts are non-owning; the caller keeps the graphs
// and workload alive for the recommender's lifetime.

#ifndef PRIVREC_CORE_RECOMMENDER_H_
#define PRIVREC_CORE_RECOMMENDER_H_

#include <string>
#include <vector>

#include "core/recommendation.h"
#include "graph/preference_graph.h"
#include "graph/social_graph.h"
#include "similarity/workload.h"

namespace privrec::core {

struct RecommenderContext {
  const graph::SocialGraph* social = nullptr;
  const graph::PreferenceGraph* preferences = nullptr;
  const similarity::SimilarityWorkload* workload = nullptr;

  void CheckValid() const {
    PRIVREC_CHECK(social != nullptr);
    PRIVREC_CHECK(preferences != nullptr);
    PRIVREC_CHECK(workload != nullptr);
    PRIVREC_CHECK(social->num_nodes() == preferences->num_users());
    PRIVREC_CHECK(workload->num_users() == social->num_nodes());
  }
};

class Recommender {
 public:
  virtual ~Recommender() = default;

  // Mechanism identifier for reports: "Exact", "Cluster", "NOU", "NOE",
  // "GS", "LRM".
  virtual std::string Name() const = 0;

  // Produces a ranked top-`top_n` list for each requested user. Randomized
  // mechanisms draw fresh noise on every call. The similarity rows of every
  // requested user must be present in the context workload.
  virtual std::vector<RecommendationList> Recommend(
      const std::vector<graph::NodeId>& users, int64_t top_n) = 0;

  // Convenience: a single user.
  RecommendationList RecommendOne(graph::NodeId user, int64_t top_n) {
    return Recommend({user}, top_n)[0];
  }
};

}  // namespace privrec::core

#endif  // PRIVREC_CORE_RECOMMENDER_H_
