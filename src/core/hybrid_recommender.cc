#include "core/hybrid_recommender.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "dp/mechanisms.h"

namespace privrec::core {

HybridRecommender::HybridRecommender(const RecommenderContext& context,
                                     community::Partition partition,
                                     const HybridRecommenderOptions& options)
    : options_(options),
      social_(context, std::move(partition),
              {.epsilon = options.epsilon_social,
               .seed = SplitMix64(options.seed ^ 0x50C1A1)}),
      cf_(context, {.epsilon = options.epsilon_cf,
                    .tau = options.cf_tau,
                    .seed = SplitMix64(options.seed ^ 0xCF00)}) {
  PRIVREC_CHECK(options_.alpha >= 0.0 && options_.alpha <= 1.0);
  PRIVREC_CHECK(options_.rrf_k > 0.0);
  PRIVREC_CHECK(options_.candidate_multiple >= 1);
}

double HybridRecommender::TotalEpsilon() const {
  if (options_.epsilon_social == dp::kEpsilonInfinity ||
      options_.epsilon_cf == dp::kEpsilonInfinity) {
    return dp::kEpsilonInfinity;
  }
  // Sequential composition over the shared preference edges (Theorem 2);
  // the accountant view: one group, two charges.
  dp::PrivacyBudget budget(options_.epsilon_social + options_.epsilon_cf);
  PRIVREC_CHECK(budget.Charge("preferences", options_.epsilon_social));
  PRIVREC_CHECK(budget.Charge("preferences", options_.epsilon_cf));
  return budget.Spent();
}

std::vector<RecommendationList> HybridRecommender::Recommend(
    const std::vector<graph::NodeId>& users, int64_t top_n) {
  const int64_t candidates =
      std::max<int64_t>(top_n * options_.candidate_multiple, 100);
  std::vector<RecommendationList> social_lists =
      social_.Recommend(users, candidates);
  std::vector<RecommendationList> cf_lists =
      cf_.Recommend(users, candidates);

  std::vector<RecommendationList> out;
  out.reserve(users.size());
  std::unordered_map<graph::ItemId, double> fused;
  for (size_t k = 0; k < users.size(); ++k) {
    fused.clear();
    for (size_t p = 0; p < social_lists[k].size(); ++p) {
      fused[social_lists[k][p].item] +=
          options_.alpha /
          (options_.rrf_k + static_cast<double>(p) + 1.0);
    }
    for (size_t p = 0; p < cf_lists[k].size(); ++p) {
      fused[cf_lists[k][p].item] +=
          (1.0 - options_.alpha) /
          (options_.rrf_k + static_cast<double>(p) + 1.0);
    }
    std::vector<std::pair<graph::ItemId, double>> entries(fused.begin(),
                                                          fused.end());
    out.push_back(TopNFromSparse(std::move(entries), top_n));
  }
  return out;
}

}  // namespace privrec::core
