#include "core/sybil_attack.h"

#include <algorithm>

namespace privrec::core {

SybilGadget InjectSybilGadget(const graph::SocialGraph& social,
                              const graph::PreferenceGraph& preferences,
                              graph::NodeId victim, int64_t chain_length) {
  PRIVREC_CHECK(victim >= 0 && victim < social.num_nodes());
  PRIVREC_CHECK(chain_length >= 1);
  PRIVREC_CHECK(social.num_nodes() == preferences.num_users());

  SybilGadget gadget;
  gadget.victim = victim;
  gadget.helper = social.num_nodes();
  graph::NodeId next = gadget.helper + 1;

  auto edges = social.Edges();
  edges.emplace_back(victim, gadget.helper);
  graph::NodeId prev = gadget.helper;
  for (int64_t k = 0; k < chain_length; ++k) {
    edges.emplace_back(prev, next);
    prev = next;
    ++next;
  }
  gadget.observer = prev;
  gadget.social = graph::SocialGraph::FromEdges(next, edges);

  // Helper and Sybils contribute no preference edges.
  auto pref_edges = preferences.WeightedEdges();
  gadget.preferences =
      preferences.is_weighted()
          ? graph::PreferenceGraph::FromWeightedEdges(
                next, preferences.num_items(), pref_edges)
          : graph::PreferenceGraph::FromEdges(
                next, preferences.num_items(),
                [&] {
                  std::vector<std::pair<graph::NodeId, graph::ItemId>> e;
                  e.reserve(pref_edges.size());
                  for (const auto& edge : pref_edges) {
                    e.emplace_back(edge.user, edge.item);
                  }
                  return e;
                }());
  return gadget;
}

AttackScore ScoreSybilInference(const RecommendationList& observed,
                                const graph::PreferenceGraph& preferences,
                                graph::NodeId victim) {
  AttackScore score;
  score.observed = static_cast<int64_t>(observed.size());
  auto items = preferences.ItemsOf(victim);
  for (const Recommendation& r : observed) {
    if (std::binary_search(items.begin(), items.end(), r.item)) {
      ++score.hits;
    }
  }
  if (score.observed > 0) {
    score.precision = static_cast<double>(score.hits) /
                      static_cast<double>(score.observed);
  }
  if (!items.empty()) {
    score.recall = static_cast<double>(score.hits) /
                   static_cast<double>(items.size());
  }
  return score;
}

}  // namespace privrec::core
