#include "core/degradation.h"

#include <vector>

#include "common/string_util.h"

namespace privrec::core {

const char* DegradationReasonName(DegradationReason reason) {
  switch (reason) {
    case DegradationReason::kNone:
      return "none";
    case DegradationReason::kIsolatedUser:
      return "isolated_user";
    case DegradationReason::kNonFiniteSanitized:
      return "nonfinite_sanitized";
    case DegradationReason::kStaleReplay:
      return "stale_replay";
  }
  return "none";
}

std::string ServingReport::ToString() const {
  std::vector<std::string> parts;
  auto note = [&parts](int64_t n, const char* what) {
    if (n > 0) parts.push_back(std::to_string(n) + " " + what);
  };
  note(users_degraded, "degraded users");
  note(empty_clusters, "empty clusters");
  note(singleton_clusters, "singleton clusters");
  note(degenerate_groups, "degenerate groups");
  note(nonfinite_sanitized, "non-finite values sanitized");
  return parts.empty() ? "clean" : Join(parts, ", ");
}

}  // namespace privrec::core
