#include "core/degradation.h"

#include <string>
#include <vector>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace privrec::core {

const char* DegradationReasonName(DegradationReason reason) {
  switch (reason) {
    case DegradationReason::kNone:
      return "none";
    case DegradationReason::kIsolatedUser:
      return "isolated_user";
    case DegradationReason::kNonFiniteSanitized:
      return "nonfinite_sanitized";
    case DegradationReason::kStaleReplay:
      return "stale_replay";
    case DegradationReason::kLoadShed:
      return "load_shed";
  }
  return "none";
}

std::string ServingReport::ToString() const {
  std::vector<std::string> parts;
  auto note = [&parts](int64_t n, const char* what) {
    if (n > 0) parts.push_back(std::to_string(n) + " " + what);
  };
  note(users_degraded, "degraded users");
  note(empty_clusters, "empty clusters");
  note(singleton_clusters, "singleton clusters");
  note(degenerate_groups, "degenerate groups");
  note(nonfinite_sanitized, "non-finite values sanitized");
  return parts.empty() ? "clean" : Join(parts, ", ");
}

void RecordServingMetrics(const RecommendedBatch& batch) {
  static obs::Counter& served =
      obs::GetCounter("privrec.serving.users_served");
  static obs::Counter& degraded =
      obs::GetCounter("privrec.serving.users_degraded");
  served.Add(static_cast<int64_t>(batch.lists.size()));
  degraded.Add(batch.report.users_degraded);
  for (const DegradationInfo& info : batch.degradation) {
    if (!info.degraded()) continue;
    // One counter per reason; the name set is small and fixed, so the
    // registry lookup (with its mutex) only ever sees a handful of keys.
    obs::GetCounter(std::string("privrec.serving.degraded.") +
                    DegradationReasonName(info.reason))
        .Increment();
  }
}

}  // namespace privrec::core
