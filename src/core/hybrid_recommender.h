// Hybrid social + item-CF recommendation — the paper's Section 2.2
// deferral ("although it can be beneficial to use both social and
// non-social data ... we plan to study such hybrid recommenders in a
// future work"), built from the two DP components this library already
// provides:
//   - the social ClusterRecommender (Algorithm 1) at ε_social, and
//   - the non-social ItemCfRecommender (McSherry-Mironov style) at ε_cf.
//
// Both components read the SAME preference edges, so by sequential
// composition (Theorem 2) the hybrid is (ε_social + ε_cf)-DP; the
// internal PrivacyBudget accountant enforces exactly that.
//
// Blending uses reciprocal-rank fusion over each component's top
// candidates:  score(i) = α / (k0 + rank_social(i)) +
//                         (1-α) / (k0 + rank_cf(i)),
// which is scale-free (the two components' utilities are not
// commensurable) and pure post-processing of the two sanitized rankings.

#ifndef PRIVREC_CORE_HYBRID_RECOMMENDER_H_
#define PRIVREC_CORE_HYBRID_RECOMMENDER_H_

#include <cstdint>

#include "community/partition.h"
#include "core/cluster_recommender.h"
#include "core/item_cf_recommender.h"
#include "core/recommender.h"
#include "dp/budget.h"

namespace privrec::core {

struct HybridRecommenderOptions {
  // Component budgets; the hybrid's guarantee is their sum.
  double epsilon_social = 0.5;
  double epsilon_cf = 0.5;
  // Blend weight on the social component (1 = pure social, 0 = pure CF).
  double alpha = 0.5;
  // Rank-fusion smoothing constant (the standard RRF k).
  double rrf_k = 60.0;
  // Candidates taken from each component: max(top_n * multiple, 100).
  int64_t candidate_multiple = 4;
  int64_t cf_tau = 20;
  uint64_t seed = 800;
};

class HybridRecommender final : public Recommender {
 public:
  HybridRecommender(const RecommenderContext& context,
                    community::Partition partition,
                    const HybridRecommenderOptions& options);

  std::string Name() const override { return "Hybrid"; }

  // The total guarantee: ε_social + ε_cf (∞ if either is ∞).
  double TotalEpsilon() const;

  std::vector<RecommendationList> Recommend(
      const std::vector<graph::NodeId>& users, int64_t top_n) override;

 private:
  HybridRecommenderOptions options_;
  ClusterRecommender social_;
  ItemCfRecommender cf_;
};

}  // namespace privrec::core

#endif  // PRIVREC_CORE_HYBRID_RECOMMENDER_H_
