// Phase-scoped span tracer.
//
// PRIVREC_SPAN("phase") opens an RAII span that records, when tracing is
// enabled, a {name, start, duration, thread id, depth, chunk id} record
// into a per-thread buffer. Records from all threads merge into one
// hierarchical span tree (nesting is carried by per-thread depth plus
// containment of [start, start+duration) intervals) and export to the
// Chrome trace_event format (obs/export.h), loadable in chrome://tracing
// or https://ui.perfetto.dev.
//
// Cost: tracing is off by default; a span constructor then costs one
// relaxed atomic load. Enabled spans cost two steady_clock reads and one
// short critical section on the owning thread's buffer mutex (uncontended
// except against a concurrent snapshot). With PRIVREC_OBS=OFF the macros
// expand to nothing.
//
// Determinism: the tracer reads the steady clock but never feeds anything
// back into computation — enabling tracing cannot change results.

#ifndef PRIVREC_OBS_TRACE_H_
#define PRIVREC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/snapshot.h"

namespace privrec::obs {

#ifndef PRIVREC_NO_OBS

namespace internal {
struct ThreadSpanBuffer;
}  // namespace internal

class Tracer {
 public:
  static Tracer& Instance();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Drops every recorded span (buffers of live threads stay registered).
  void Clear();

  // All completed spans so far, sorted by (thread id, start time). Spans
  // still open at snapshot time are not included.
  std::vector<SpanRecord> Snapshot() const;

  // -- used by SpanScope ------------------------------------------------
  internal::ThreadSpanBuffer& BufferForThisThread();
  int64_t NowNs() const;

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<internal::ThreadSpanBuffer>> buffers_;
};

class SpanScope {
 public:
  explicit SpanScope(const char* name, int64_t chunk = -1);
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  // Attaches a key/value annotation to this span (request id, epoch,
  // shard ids, ...). No-op when tracing was off at entry, so the
  // disabled-path cost of an annotated span stays one relaxed load plus
  // one branch per Arg.
  void Arg(const char* key, std::string value) {
    if (name_ == nullptr) return;
    args_.emplace_back(key, std::move(value));
  }

 private:
  const char* name_ = nullptr;  // null when tracing was off at entry
  int64_t start_ns_ = 0;
  int64_t chunk_ = -1;
  internal::ThreadSpanBuffer* buffer_ = nullptr;
  std::vector<std::pair<std::string, std::string>> args_;
};

#define PRIVREC_OBS_CONCAT_INNER_(a, b) a##b
#define PRIVREC_OBS_CONCAT_(a, b) PRIVREC_OBS_CONCAT_INNER_(a, b)
#define PRIVREC_SPAN(name)                                        \
  ::privrec::obs::SpanScope PRIVREC_OBS_CONCAT_(privrec_span_,    \
                                                __LINE__)(name)
#define PRIVREC_SPAN_CHUNK(name, chunk)                           \
  ::privrec::obs::SpanScope PRIVREC_OBS_CONCAT_(privrec_span_,    \
                                                __LINE__)(name, chunk)

#else  // PRIVREC_NO_OBS

// No-op tracer shell: drivers can enable/snapshot unconditionally.
class Tracer {
 public:
  static Tracer& Instance() {
    static Tracer tracer;
    return tracer;
  }
  void SetEnabled(bool) {}
  bool enabled() const { return false; }
  void Clear() {}
  std::vector<SpanRecord> Snapshot() const { return {}; }
};

// No-op span shell so runtime code can hold a named SpanScope (and call
// Arg on it) unconditionally; everything folds to nothing.
class SpanScope {
 public:
  explicit SpanScope(const char*, int64_t = -1) {}
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  void Arg(const char*, const std::string&) {}
};

#define PRIVREC_SPAN(name) ((void)0)
#define PRIVREC_SPAN_CHUNK(name, chunk) ((void)sizeof(chunk))

#endif  // PRIVREC_NO_OBS

}  // namespace privrec::obs

#endif  // PRIVREC_OBS_TRACE_H_
