// Process-wide metrics registry: counters, gauges and fixed-bucket
// histograms for every layer of the pipeline.
//
// Naming: metrics are registered under dotted `privrec.<module>.<name>`
// keys (e.g. "privrec.dp.epsilon_spent", "privrec.parallel.chunks_per_
// thread") so exports group naturally by module.
//
// Fast path: call sites resolve a metric ONCE (function-local static
// reference) and then update it lock-free — a counter increment is a
// single relaxed atomic add, a gauge set a relaxed store, a histogram
// observation one bucket add plus the sum/count updates. The registry
// mutex is touched only at registration and snapshot time. Instrumentation
// sits at record/release granularity (per chunk, per cluster, per trial),
// never inside per-element inner loops.
//
// Determinism contract: the registry never reads the wall clock and never
// draws randomness; collecting metrics cannot perturb RNG streams,
// FP reduction order, or any recommendation output (obs_test pins this).
//
// Compile-out: configuring with -DPRIVREC_OBS=OFF defines PRIVREC_NO_OBS,
// which replaces every type in this header with a constexpr no-op shell —
// call sites compile away entirely, mirroring the fault-injection pattern
// (common/fault_injection.h). Snapshot/export types live in
// obs/snapshot.h and survive the compile-out so exporters and drivers
// still link (they just see empty data).

#ifndef PRIVREC_OBS_METRICS_H_
#define PRIVREC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/snapshot.h"

namespace privrec::obs {

// Upper-bound helpers for histogram registration. The returned vector is
// strictly increasing; values above the last bound land in an implicit
// overflow bucket.
std::vector<double> LinearBuckets(double start, double width, int count);
std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count);

// The shared latency preset: log-spaced bounds, five buckets per decade
// from 0.01 ms to 100 s. One preset for every latency histogram (serve
// request latency, load-harness response latency, swap pauses) so their
// quantiles are computed over identical bucket grids and stay comparable
// across BENCH_*.json records.
std::vector<double> LatencyBucketsMs();

#ifndef PRIVREC_NO_OBS

inline constexpr bool kCompiledIn = true;

class Counter {
 public:
  void Increment() { Add(1); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetValue() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double x) { value_.store(x, std::memory_order_relaxed); }
  // Accumulating update (CAS loop; gauges are low-frequency).
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void ResetValue() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: bucket b counts observations <= bounds[b]; one
// extra overflow bucket catches everything above the last bound. Bounds
// are fixed at registration, so Observe() is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double x);

  const std::vector<double>& bounds() const { return bounds_; }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t bucket_count(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  // bounds().size() + 1 (the last bucket is the overflow bucket).
  size_t num_buckets() const { return buckets_.size(); }
  void ResetValue();

  HistogramSample Sample(const std::string& name) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// The process-wide registry. Get* registers on first use and returns a
// reference with stable address for the lifetime of the process;
// re-registering the same name returns the same object (histogram bounds
// from the first registration win).
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  // A point-in-time copy of every registered metric, sorted by name.
  MetricsSnapshot Snapshot() const;

  // Zeroes every value but keeps registrations (cached references stay
  // valid) — test isolation between cases sharing the process registry.
  void ResetValues();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

inline Counter& GetCounter(const std::string& name) {
  return MetricsRegistry::Instance().GetCounter(name);
}
inline Gauge& GetGauge(const std::string& name) {
  return MetricsRegistry::Instance().GetGauge(name);
}
inline Histogram& GetHistogram(const std::string& name,
                               std::vector<double> bounds) {
  return MetricsRegistry::Instance().GetHistogram(name, std::move(bounds));
}

#else  // PRIVREC_NO_OBS

inline constexpr bool kCompiledIn = false;

// Constexpr no-op shells with the exact API of the real types; every call
// site optimizes to nothing.
class Counter {
 public:
  constexpr void Increment() const {}
  constexpr void Add(int64_t) const {}
  constexpr int64_t value() const { return 0; }
  constexpr void ResetValue() const {}
};

class Gauge {
 public:
  constexpr void Set(double) const {}
  constexpr void Add(double) const {}
  constexpr double value() const { return 0.0; }
  constexpr void ResetValue() const {}
};

class Histogram {
 public:
  constexpr void Observe(double) const {}
  const std::vector<double>& bounds() const {
    static const std::vector<double> kEmpty;
    return kEmpty;
  }
  constexpr int64_t count() const { return 0; }
  constexpr double sum() const { return 0.0; }
  constexpr int64_t bucket_count(size_t) const { return 0; }
  constexpr size_t num_buckets() const { return 0; }
  constexpr void ResetValue() const {}
  HistogramSample Sample(const std::string& name) const {
    HistogramSample sample;
    sample.name = name;
    return sample;
  }
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Instance() {
    static MetricsRegistry registry;
    return registry;
  }
  Counter& GetCounter(const std::string&) { return counter_; }
  Gauge& GetGauge(const std::string&) { return gauge_; }
  Histogram& GetHistogram(const std::string&, std::vector<double>) {
    return histogram_;
  }
  MetricsSnapshot Snapshot() const { return MetricsSnapshot{}; }
  void ResetValues() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

inline Counter& GetCounter(const std::string& name) {
  return MetricsRegistry::Instance().GetCounter(name);
}
inline Gauge& GetGauge(const std::string& name) {
  return MetricsRegistry::Instance().GetGauge(name);
}
inline Histogram& GetHistogram(const std::string& name,
                               std::vector<double> bounds) {
  return MetricsRegistry::Instance().GetHistogram(name, std::move(bounds));
}

#endif  // PRIVREC_NO_OBS

}  // namespace privrec::obs

#endif  // PRIVREC_OBS_METRICS_H_
