#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace privrec::obs {

std::vector<double> LinearBuckets(double start, double width, int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    bounds.push_back(start + width * static_cast<double>(i));
  }
  return bounds;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::vector<double> LatencyBucketsMs() {
  // Five log-spaced buckets per decade across seven decades:
  // 0.01 ms .. 1e5 ms (100 s). Bounds are computed as exact powers so the
  // grid is identical on every platform.
  std::vector<double> bounds;
  bounds.reserve(36);
  for (int i = 0; i <= 35; ++i) {
    bounds.push_back(0.01 *
                     std::pow(10.0, static_cast<double>(i) / 5.0));
  }
  return bounds;
}

#ifndef PRIVREC_NO_OBS

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double x) {
  // Inclusive upper bounds (bucket b counts x <= bounds[b]), matching the
  // Prometheus `le` convention: the first bound not smaller than x.
  const size_t b = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), x) -
      bounds_.begin());
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::ResetValue() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

HistogramSample Histogram::Sample(const std::string& name) const {
  HistogramSample s;
  s.name = name;
  s.bounds = bounds_;
  s.counts.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    s.counts.push_back(b.load(std::memory_order_relaxed));
  }
  s.count = count();
  s.sum = sum();
  return s;
}

MetricsRegistry& MetricsRegistry::Instance() {
  // Leaked so metrics updated from detached worker threads never race
  // static destruction (same pattern as the parallel layer's pool).
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back(histogram->Sample(name));
  }
  return snapshot;  // std::map iteration is already name-sorted
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->ResetValue();
  for (auto& [name, gauge] : gauges_) gauge->ResetValue();
  for (auto& [name, histogram] : histograms_) histogram->ResetValue();
}

#endif  // PRIVREC_NO_OBS

}  // namespace privrec::obs
