// Rolling time-windowed aggregates and the SLO burn-rate tracker.
//
// RollingWindows slices a request stream into fixed-width windows on a
// caller-supplied timeline (the serve runtime's injected clock — virtual
// time in the load harness, wall time in production) and computes, per
// window: request/outcome counts, rps, shed rate, and p50/p99/p999 on the
// shared LatencyBucketsMs() grid. Each closed window is checked against a
// WindowBudget; the fraction of breaching windows over a lookback ring is
// the SLO burn rate, and closing a window while the burn rate exceeds the
// threshold emits a WindowAlert.
//
// Like the other value types in this directory, everything here is always
// compiled (PRIVREC_OBS=OFF included) and never touches the metrics
// registry, the tracer, a clock, or an RNG: time enters exclusively
// through the now_ms arguments, so one deterministic event stream yields
// one byte-identical window series. Counter/gauge wiring lives in the
// serve layer (serve/telemetry.h).

#ifndef PRIVREC_OBS_ROLLING_WINDOW_H_
#define PRIVREC_OBS_ROLLING_WINDOW_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/wide_event.h"

namespace privrec::obs {

// Per-window SLO budget. Negative ceilings disable a line (a budget with
// every line disabled never breaches). The burn rate is the fraction of
// breaching windows among the last `lookback` closed windows; an alert
// fires on every window close while burn_rate > burn_threshold.
struct WindowBudget {
  double p99_ms = -1.0;
  double max_shed_rate = -1.0;
  int64_t lookback = 8;
  double burn_threshold = 0.25;
};

struct WindowStats {
  int64_t index = 0;
  // [start_ms, start_ms + width_ms) on the caller's timeline.
  int64_t start_ms = 0;
  int64_t width_ms = 0;

  int64_t requests = 0;
  int64_t ok = 0;
  int64_t shed = 0;
  int64_t expired = 0;
  int64_t errors = 0;  // invalid / no-epoch / other
  int64_t degraded = 0;

  double latency_sum_ms = 0.0;
  // LatencyBucketsMs() counts (+1 overflow bucket), same grid as
  // privrec.serve.request_ms.
  std::vector<int64_t> latency_counts;

  // Derived on close.
  double rps = 0.0;
  double shed_rate = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  bool breach = false;
  std::string breach_reason;
};

struct WindowAlert {
  int64_t window_index = 0;
  // Close time of the window that pushed the burn rate over threshold.
  int64_t at_ms = 0;
  double burn_rate = 0.0;
  std::string reason;
};

// A closed-window trajectory plus the alerts it produced — the unit that
// BENCH_serve.json records and statusz renders.
struct WindowSeries {
  int64_t width_ms = 0;
  std::vector<WindowStats> windows;
  std::vector<WindowAlert> alerts;
  // Oldest windows evicted after the ring filled (alerts are never
  // evicted).
  int64_t dropped_windows = 0;
};

class RollingWindows {
 public:
  explicit RollingWindows(int64_t width_ms, WindowBudget budget = {},
                          size_t max_windows = 4096);

  // Folds one resolved request into the window owning `now_ms`, closing
  // any windows that ended at or before it first. Calls must be
  // monotone in now_ms (the serve telemetry sink serializes them).
  void Observe(int64_t now_ms, RequestOutcome outcome, bool degraded,
               double latency_ms);

  // Closes every window whose end is <= now_ms (empty windows included —
  // an idle window is part of the trajectory and of the burn lookback).
  // Returns the number of windows closed.
  int64_t AdvanceTo(int64_t now_ms);

  // Closes the currently open window, if any (end of run).
  void Flush();

  const WindowSeries& series() const { return series_; }
  // Burn rate over the current lookback ring.
  double burn_rate() const;
  // Total breaching windows closed so far.
  int64_t breaches() const { return breaches_; }
  int64_t observed() const { return observed_; }

 private:
  void CloseCurrent();

  const int64_t width_ms_;
  const size_t max_windows_;
  const WindowBudget budget_;
  const std::vector<double> bounds_;

  bool open_ = false;
  WindowStats current_;
  std::deque<char> breach_ring_;  // 1 = breach, newest at back
  int64_t breaches_ = 0;
  int64_t observed_ = 0;
  WindowSeries series_;
};

// Compact JSON renderers (no latency_counts — the quantiles carry the
// shape) shared by the load report, the telemetry JSONL stream, and
// statusz.
std::string WindowStatsToJson(const WindowStats& window);
std::string WindowAlertToJson(const WindowAlert& alert);
// {"width_ms": W, "dropped_windows": D, "windows": [...], "alerts":
// [...]}.
std::string WindowSeriesToJson(const WindowSeries& series);

}  // namespace privrec::obs

#endif  // PRIVREC_OBS_ROLLING_WINDOW_H_
