#include "obs/trace.h"

#ifndef PRIVREC_NO_OBS

#include <algorithm>

namespace privrec::obs {

namespace internal {

// One per OS thread, owned jointly by the thread (thread_local pointer)
// and the tracer (shared_ptr in the registry), so records survive thread
// exit. `depth` is only touched by the owning thread; `records` is guarded
// by `mu` because Snapshot()/Clear() read it cross-thread.
struct ThreadSpanBuffer {
  int64_t thread_id = 0;
  int64_t depth = 0;
  std::mutex mu;
  std::vector<SpanRecord> records;
};

}  // namespace internal

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Instance() {
  // Leaked: spans on detached worker threads must never race static
  // destruction.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

int64_t Tracer::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

internal::ThreadSpanBuffer& Tracer::BufferForThisThread() {
  thread_local std::shared_ptr<internal::ThreadSpanBuffer> buffer;
  if (!buffer) {
    buffer = std::make_shared<internal::ThreadSpanBuffer>();
    std::lock_guard<std::mutex> lock(mu_);
    buffer->thread_id = static_cast<int64_t>(buffers_.size());
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->records.clear();
  }
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<SpanRecord> spans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      spans.insert(spans.end(), buffer->records.begin(),
                   buffer->records.end());
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.thread_id != b.thread_id) {
                return a.thread_id < b.thread_id;
              }
              return a.start_ns < b.start_ns;
            });
  return spans;
}

SpanScope::SpanScope(const char* name, int64_t chunk) {
  Tracer& tracer = Tracer::Instance();
  if (!tracer.enabled()) return;
  buffer_ = &tracer.BufferForThisThread();
  name_ = name;
  chunk_ = chunk;
  start_ns_ = tracer.NowNs();
  ++buffer_->depth;
}

SpanScope::~SpanScope() {
  if (name_ == nullptr) return;
  Tracer& tracer = Tracer::Instance();
  SpanRecord record;
  record.name = name_;
  record.start_ns = start_ns_;
  record.duration_ns = tracer.NowNs() - start_ns_;
  record.thread_id = buffer_->thread_id;
  record.depth = --buffer_->depth;
  record.chunk = chunk_;
  record.args = std::move(args_);
  std::lock_guard<std::mutex> lock(buffer_->mu);
  buffer_->records.push_back(std::move(record));
}

}  // namespace privrec::obs

#endif  // PRIVREC_NO_OBS
