#include "obs/wide_event.h"

#include "obs/export.h"

namespace privrec::obs {

const char* RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kOk:
      return "ok";
    case RequestOutcome::kShed:
      return "shed";
    case RequestOutcome::kExpired:
      return "expired";
    case RequestOutcome::kInvalid:
      return "invalid";
    case RequestOutcome::kNoEpoch:
      return "no_epoch";
    case RequestOutcome::kError:
      return "error";
  }
  return "error";
}

const char* AdmissionOutcomeName(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kNone:
      return "none";
    case AdmissionOutcome::kImmediate:
      return "immediate";
    case AdmissionOutcome::kQueued:
      return "queued";
    case AdmissionOutcome::kShed:
      return "shed";
    case AdmissionOutcome::kExpired:
      return "expired";
  }
  return "none";
}

uint64_t MixRequestId(uint64_t id) {
  // splitmix64 finalizer. Local copy rather than common/random.h: obs
  // sits below privrec_common in the layering.
  uint64_t z = id + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool SampleWideEvent(const RequestTelemetry& event,
                     const WideEventSampling& sampling) {
  if (event.outcome != RequestOutcome::kOk) return true;
  if (event.degraded) return true;
  if (sampling.slow_ms >= 0.0 && event.latency_ms >= sampling.slow_ms) {
    return true;
  }
  if (sampling.sample_every <= 1) return true;
  return MixRequestId(event.request_id) %
             static_cast<uint64_t>(sampling.sample_every) ==
         0;
}

std::string RequestTelemetryToJson(const RequestTelemetry& event) {
  std::string out = "{\"type\": \"request\"";
  out += ", \"id\": " + std::to_string(event.request_id);
  out += ", \"arrival_ms\": " + std::to_string(event.arrival_ms);
  out += ", \"resolve_ms\": " + std::to_string(event.resolve_ms);
  out += ", \"latency_ms\": " + JsonNumber(event.latency_ms);
  out += std::string(", \"outcome\": \"") +
         RequestOutcomeName(event.outcome) + "\"";
  out += std::string(", \"admission\": \"") +
         AdmissionOutcomeName(event.admission) + "\"";
  out += ", \"queue_ms\": " + std::to_string(event.queue_wait_ms);
  out += ", \"route_ms\": " + JsonNumber(event.route_ms);
  out += ", \"reconstruct_ms\": " + JsonNumber(event.reconstruct_ms);
  out += ", \"epoch\": " + std::to_string(event.epoch);
  out += ", \"artifact_seed\": " + std::to_string(event.artifact_seed);
  out += ", \"shard_count\": " + std::to_string(event.shard_count);
  out += ", \"shards\": [";
  for (size_t i = 0; i < event.shards_touched.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(event.shards_touched[i]);
  }
  out += "]";
  out += ", \"users\": " + std::to_string(event.users);
  out += ", \"top_n\": " + std::to_string(event.top_n);
  out += ", \"deadline_ms\": " + std::to_string(event.deadline_ms);
  out += std::string(", \"degraded\": ") +
         (event.degraded ? "true" : "false");
  out += ", \"users_degraded\": " + std::to_string(event.users_degraded);
  out += ", \"retry_after_ms\": " + std::to_string(event.retry_after_ms);
  out += ", \"batch_requests\": " + std::to_string(event.batch_requests);
  out += ", \"batch_users\": " + std::to_string(event.batch_users);
  out += "}";
  return out;
}

}  // namespace privrec::obs
