// Exporters for metrics snapshots and span traces.
//
// Three formats:
//   MetricsToTable   — human-readable aligned table (typically to stderr)
//   MetricsToJson    — one JSON document: {"counters": {...}, "gauges":
//                      {...}, "histograms": {name: {bounds, counts, count,
//                      sum}}}; doubles printed with %.17g so ε accounting
//                      round-trips exactly
//   SpansToChromeTrace — Chrome trace_event JSON ("X" complete events,
//                      microsecond timestamps), loadable in
//                      chrome://tracing and https://ui.perfetto.dev
//
// These operate on the plain value types of obs/snapshot.h and are always
// compiled, even under PRIVREC_OBS=OFF (a disabled build exports empty
// documents).

#ifndef PRIVREC_OBS_EXPORT_H_
#define PRIVREC_OBS_EXPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "obs/snapshot.h"

namespace privrec::obs {

void MetricsToTable(const MetricsSnapshot& snapshot, std::ostream& out);

// Quantile estimate (q in [0, 1]) from a fixed-bucket histogram sample of
// non-negative observations (latencies), by linear interpolation inside
// the bucket holding the target rank. Observations in the overflow bucket
// cannot be interpolated; a quantile landing there reports the last
// bound. Returns 0 for an empty sample. q is clamped into [0, 1]; a NaN
// q reads as 0 (the minimum) rather than poisoning the scan.
double HistogramQuantile(const HistogramSample& sample, double q);

// The JSON emission conventions every privrec exporter shares, public so
// the wide-event / window / load-report emitters produce byte-identical
// formatting:
//   JsonNumber — shortest-round-trip doubles: integral values print
//     without an exponent, everything else with %.17g (ε accounting must
//     survive the JSON round trip).
//   JsonEscape — escapes quotes, backslashes and control characters for
//     embedding arbitrary strings (span args, alert reasons) in JSON.
std::string JsonNumber(double x);
std::string JsonEscape(const std::string& s);

std::string MetricsToJson(const MetricsSnapshot& snapshot);

std::string SpansToChromeTrace(const std::vector<SpanRecord>& spans);

// Writes `contents` to `path`, returning false (with a diagnostic in
// *error if non-null) on failure.
bool WriteTextFile(const std::string& path, const std::string& contents,
                   std::string* error = nullptr);

}  // namespace privrec::obs

#endif  // PRIVREC_OBS_EXPORT_H_
