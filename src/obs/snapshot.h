// Plain value types shared by the metrics registry, the span tracer and
// the exporters. These survive the PRIVREC_OBS=OFF compile-out (they carry
// no runtime cost), so drivers that export snapshots build in every
// configuration — a disabled build just exports empty data.

#ifndef PRIVREC_OBS_SNAPSHOT_H_
#define PRIVREC_OBS_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace privrec::obs {

struct CounterSample {
  std::string name;
  int64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  // Upper bounds; counts has bounds.size() + 1 entries (the last bucket is
  // the overflow bucket).
  std::vector<double> bounds;
  std::vector<int64_t> counts;
  int64_t count = 0;
  double sum = 0.0;
};

// Every registered metric at one point in time, each section sorted by
// name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  bool Empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

// One completed span from the phase tracer. Timestamps are nanoseconds on
// the steady clock, relative to the tracer's epoch (first enable).
struct SpanRecord {
  std::string name;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  // Small dense id assigned per OS thread in first-span order.
  int64_t thread_id = 0;
  // Nesting depth within the owning thread (0 = top level).
  int64_t depth = 0;
  // Chunk index from the parallel layer, or -1 outside chunked regions.
  int64_t chunk = -1;
  // Key/value annotations attached via SpanScope::Arg (request id, epoch,
  // shard ids, ...), exported verbatim into the Chrome trace "args" block
  // so traces link to the wide-event JSONL stream.
  std::vector<std::pair<std::string, std::string>> args;
};

}  // namespace privrec::obs

#endif  // PRIVREC_OBS_SNAPSHOT_H_
