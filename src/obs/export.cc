#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>

namespace privrec::obs {

std::string JsonNumber(double x) {
  char buf[64];
  if (x == static_cast<double>(static_cast<int64_t>(x)) &&
      x > -1e15 && x < 1e15) {
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<int64_t>(x));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", x);
  }
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          // The cast matters: a plain (signed) char would sign-extend
          // and print "￿ff9f"-style garbage for high-bit bytes.
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(
                            static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double HistogramQuantile(const HistogramSample& sample, double q) {
  if (sample.count <= 0 || sample.counts.empty()) return 0.0;
  // Clamp NaN-safely: !(q >= 0) catches both negatives and NaN.
  if (!(q >= 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based, rounded up: p999 of 1000
  // observations is the 999th).
  const double rank =
      std::max(1.0, std::ceil(q * static_cast<double>(sample.count)));
  int64_t cumulative = 0;
  for (size_t b = 0; b < sample.counts.size(); ++b) {
    const int64_t in_bucket = sample.counts[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (b >= sample.bounds.size()) {
      // Overflow bucket: no upper edge to interpolate toward.
      return sample.bounds.empty() ? 0.0 : sample.bounds.back();
    }
    const double lo = b == 0 ? 0.0 : sample.bounds[b - 1];
    const double hi = sample.bounds[b];
    const double within =
        (rank - static_cast<double>(cumulative)) /
        static_cast<double>(in_bucket);
    return lo + (hi - lo) * within;
  }
  return sample.bounds.empty() ? 0.0 : sample.bounds.back();
}

void MetricsToTable(const MetricsSnapshot& snapshot, std::ostream& out) {
  size_t width = 0;
  for (const CounterSample& c : snapshot.counters) {
    width = std::max(width, c.name.size());
  }
  for (const GaugeSample& g : snapshot.gauges) {
    width = std::max(width, g.name.size());
  }
  for (const HistogramSample& h : snapshot.histograms) {
    width = std::max(width, h.name.size());
  }

  out << "--- metrics ---\n";
  if (snapshot.Empty()) {
    out << "(no metrics registered)\n";
    return;
  }
  for (const CounterSample& c : snapshot.counters) {
    out << std::left << std::setw(static_cast<int>(width)) << c.name
        << "  " << c.value << "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    out << std::left << std::setw(static_cast<int>(width)) << g.name
        << "  " << JsonNumber(g.value) << "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    out << std::left << std::setw(static_cast<int>(width)) << h.name
        << "  count=" << h.count << " sum=" << JsonNumber(h.sum)
        << " mean="
        << JsonNumber(h.count > 0
                                ? h.sum / static_cast<double>(h.count)
                                : 0.0)
        << "\n";
  }
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const CounterSample& c : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(c.name) +
           "\": " + std::to_string(c.value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const GaugeSample& g : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(g.name) +
           "\": " + JsonNumber(g.value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const HistogramSample& h : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(h.name) + "\": {\"bounds\": [";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += JsonNumber(h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.counts[i]);
    }
    out += "], \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + JsonNumber(h.sum) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string SpansToChromeTrace(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const SpanRecord& s : spans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": \"" + JsonEscape(s.name) +
           "\", \"cat\": \"privrec\", \"ph\": \"X\", \"ts\": " +
           JsonNumber(static_cast<double>(s.start_ns) / 1e3) +
           ", \"dur\": " +
           JsonNumber(static_cast<double>(s.duration_ns) / 1e3) +
           ", \"pid\": 1, \"tid\": " + std::to_string(s.thread_id);
    out += ", \"args\": {\"depth\": " + std::to_string(s.depth);
    if (s.chunk >= 0) {
      out += ", \"chunk\": " + std::to_string(s.chunk);
    }
    for (const auto& [key, value] : s.args) {
      out += ", \"" + JsonEscape(key) + "\": \"" + JsonEscape(value) +
             "\"";
    }
    out += "}}";
  }
  out += first ? "],\n" : "\n],\n";
  out += "\"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& contents,
                   std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << contents;
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace privrec::obs
