#include "obs/rolling_window.h"

#include <algorithm>

#include "obs/export.h"
#include "obs/metrics.h"

namespace privrec::obs {

RollingWindows::RollingWindows(int64_t width_ms, WindowBudget budget,
                               size_t max_windows)
    : width_ms_(std::max<int64_t>(1, width_ms)),
      max_windows_(std::max<size_t>(1, max_windows)),
      budget_(budget),
      bounds_(LatencyBucketsMs()) {
  series_.width_ms = width_ms_;
}

void RollingWindows::Observe(int64_t now_ms, RequestOutcome outcome,
                             bool degraded, double latency_ms) {
  AdvanceTo(now_ms);
  if (!open_) {
    // First event ever: open the window owning now_ms, aligned to the
    // width grid so window boundaries are a property of the timeline,
    // not of the first arrival.
    current_ = WindowStats{};
    current_.index = 0;
    current_.start_ms = (now_ms / width_ms_) * width_ms_;
    current_.width_ms = width_ms_;
    current_.latency_counts.assign(bounds_.size() + 1, 0);
    open_ = true;
  }
  ++observed_;
  ++current_.requests;
  switch (outcome) {
    case RequestOutcome::kOk:
      ++current_.ok;
      break;
    case RequestOutcome::kShed:
      ++current_.shed;
      break;
    case RequestOutcome::kExpired:
      ++current_.expired;
      break;
    default:
      ++current_.errors;
      break;
  }
  if (degraded) ++current_.degraded;
  current_.latency_sum_ms += latency_ms;
  const size_t b = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), latency_ms) -
      bounds_.begin());
  ++current_.latency_counts[b];
}

int64_t RollingWindows::AdvanceTo(int64_t now_ms) {
  if (!open_) return 0;
  int64_t closed = 0;
  while (current_.start_ms + width_ms_ <= now_ms) {
    const int64_t next_start = current_.start_ms + width_ms_;
    const int64_t next_index = current_.index + 1;
    CloseCurrent();
    ++closed;
    current_ = WindowStats{};
    current_.index = next_index;
    current_.start_ms = next_start;
    current_.width_ms = width_ms_;
    current_.latency_counts.assign(bounds_.size() + 1, 0);
  }
  return closed;
}

void RollingWindows::Flush() {
  if (!open_) return;
  CloseCurrent();
  open_ = false;
}

double RollingWindows::burn_rate() const {
  if (budget_.lookback <= 0) return 0.0;
  int64_t breaching = 0;
  for (char bit : breach_ring_) breaching += bit;
  return static_cast<double>(breaching) /
         static_cast<double>(budget_.lookback);
}

void RollingWindows::CloseCurrent() {
  WindowStats& w = current_;
  w.rps = static_cast<double>(w.requests) * 1000.0 /
          static_cast<double>(width_ms_);
  w.shed_rate = w.requests > 0 ? static_cast<double>(w.shed) /
                                     static_cast<double>(w.requests)
                               : 0.0;
  HistogramSample sample;
  sample.bounds = bounds_;
  sample.counts = w.latency_counts;
  sample.count = w.requests;
  sample.sum = w.latency_sum_ms;
  w.p50_ms = HistogramQuantile(sample, 0.50);
  w.p99_ms = HistogramQuantile(sample, 0.99);
  w.p999_ms = HistogramQuantile(sample, 0.999);

  if (budget_.p99_ms >= 0.0 && w.p99_ms > budget_.p99_ms) {
    w.breach = true;
    w.breach_reason = "p99 " + JsonNumber(w.p99_ms) +
                      "ms exceeds window budget " +
                      JsonNumber(budget_.p99_ms) + "ms";
  } else if (budget_.max_shed_rate >= 0.0 &&
             w.shed_rate > budget_.max_shed_rate) {
    w.breach = true;
    w.breach_reason = "shed rate " + JsonNumber(w.shed_rate) +
                      " exceeds window budget " +
                      JsonNumber(budget_.max_shed_rate);
  }

  if (w.breach) ++breaches_;
  breach_ring_.push_back(w.breach ? 1 : 0);
  while (budget_.lookback > 0 &&
         breach_ring_.size() > static_cast<size_t>(budget_.lookback)) {
    breach_ring_.pop_front();
  }
  const double burn = burn_rate();
  if (burn > budget_.burn_threshold) {
    WindowAlert alert;
    alert.window_index = w.index;
    alert.at_ms = w.start_ms + width_ms_;
    alert.burn_rate = burn;
    alert.reason = w.breach
                       ? w.breach_reason
                       : "burn rate above threshold from earlier windows";
    series_.alerts.push_back(std::move(alert));
  }

  series_.windows.push_back(std::move(current_));
  if (series_.windows.size() > max_windows_) {
    series_.windows.erase(series_.windows.begin());
    ++series_.dropped_windows;
  }
}

std::string WindowStatsToJson(const WindowStats& window) {
  std::string out = "{\"index\": " + std::to_string(window.index);
  out += ", \"start_ms\": " + std::to_string(window.start_ms);
  out += ", \"requests\": " + std::to_string(window.requests);
  out += ", \"ok\": " + std::to_string(window.ok);
  out += ", \"shed\": " + std::to_string(window.shed);
  out += ", \"expired\": " + std::to_string(window.expired);
  out += ", \"errors\": " + std::to_string(window.errors);
  out += ", \"degraded\": " + std::to_string(window.degraded);
  out += ", \"rps\": " + JsonNumber(window.rps);
  out += ", \"shed_rate\": " + JsonNumber(window.shed_rate);
  out += ", \"p50_ms\": " + JsonNumber(window.p50_ms);
  out += ", \"p99_ms\": " + JsonNumber(window.p99_ms);
  out += ", \"p999_ms\": " + JsonNumber(window.p999_ms);
  out += std::string(", \"breach\": ") +
         (window.breach ? "true" : "false");
  if (window.breach) {
    out += ", \"breach_reason\": \"" + JsonEscape(window.breach_reason) +
           "\"";
  }
  out += "}";
  return out;
}

std::string WindowAlertToJson(const WindowAlert& alert) {
  return "{\"type\": \"alert\", \"window\": " +
         std::to_string(alert.window_index) +
         ", \"at_ms\": " + std::to_string(alert.at_ms) +
         ", \"burn_rate\": " + JsonNumber(alert.burn_rate) +
         ", \"reason\": \"" + JsonEscape(alert.reason) + "\"}";
}

std::string WindowSeriesToJson(const WindowSeries& series) {
  std::string out =
      "{\"width_ms\": " + std::to_string(series.width_ms) +
      ", \"dropped_windows\": " + std::to_string(series.dropped_windows) +
      ", \"windows\": [";
  for (size_t i = 0; i < series.windows.size(); ++i) {
    if (i > 0) out += ", ";
    out += WindowStatsToJson(series.windows[i]);
  }
  out += "], \"alerts\": [";
  for (size_t i = 0; i < series.alerts.size(); ++i) {
    if (i > 0) out += ", ";
    out += WindowAlertToJson(series.alerts[i]);
  }
  out += "]}";
  return out;
}

}  // namespace privrec::obs
