// Per-request wide events for the serving path.
//
// A RequestTelemetry record is the "one event per request" unit of the
// serving telemetry subsystem: every field an operator needs to explain a
// single slow or rejected request — identity (deterministic request id,
// epoch, provenance seed), admission outcome and queue wait, the shards
// touched, the degradation tier, and a queue/route/reconstruct latency
// breakdown. The serve runtime fills one per request and hands it to a
// sink (serve/telemetry.h); this header owns only the plain value type,
// the deterministic sampling rule, and the JSONL rendering, so it is
// always compiled (PRIVREC_OBS=OFF included) and never touches the
// metrics registry or the tracer.
//
// Determinism contract: nothing here reads a clock or draws randomness.
// Sampling is a pure function of the record (keyed off a mixed request
// id), so a virtual-time load run emits a bit-identical JSONL stream on
// every run and at every thread count.

#ifndef PRIVREC_OBS_WIDE_EVENT_H_
#define PRIVREC_OBS_WIDE_EVENT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace privrec::obs {

// Terminal classification of one served request, mirroring the serve
// runtime's status contract (runtime.h): kShed = kResourceExhausted,
// kExpired = kDeadlineExceeded, kInvalid = kInvalidArgument, kNoEpoch =
// kFailedPrecondition (no artifact activated yet), kError = anything
// else.
enum class RequestOutcome {
  kOk,
  kShed,
  kExpired,
  kInvalid,
  kNoEpoch,
  kError,
};

const char* RequestOutcomeName(RequestOutcome outcome);

// How the request got through (or bounced off) admission control.
// kNone = never entered admission (validation error, empty batch, no
// epoch).
enum class AdmissionOutcome {
  kNone,
  kImmediate,
  kQueued,
  kShed,
  kExpired,
};

const char* AdmissionOutcomeName(AdmissionOutcome outcome);

struct RequestTelemetry {
  // Deterministic request id: taken from the request when nonzero,
  // otherwise assigned from the runtime's sequence. The load harness
  // stamps schedule indices so ids are stable across modes and thread
  // counts.
  uint64_t request_id = 0;

  // Timestamps on the runtime's injected clock (virtual time in the load
  // harness). latency_ms = resolve_ms - arrival_ms, i.e. queue wait is
  // charged to the request.
  int64_t arrival_ms = 0;
  int64_t resolve_ms = 0;
  double latency_ms = 0.0;

  RequestOutcome outcome = RequestOutcome::kOk;
  AdmissionOutcome admission = AdmissionOutcome::kNone;

  // Latency breakdown, all on the injected clock: time parked in the
  // admission queue, shard split/scatter overhead (sharded path only),
  // and recommender reconstruction time.
  int64_t queue_wait_ms = 0;
  double route_ms = 0.0;
  double reconstruct_ms = 0.0;

  // Identity of the epoch that served (or would have served) the
  // request.
  int64_t epoch = 0;
  uint64_t artifact_seed = 0;
  int64_t shard_count = 0;
  // Shard ids the routed path actually walked; empty on the delegated /
  // monolithic path.
  std::vector<int64_t> shards_touched;

  // Request shape.
  int64_t users = 0;
  int64_t top_n = 0;
  int64_t deadline_ms = 0;

  // Degradation tier: true when the response carried the global-average
  // fallback ranking.
  bool degraded = false;
  int64_t users_degraded = 0;
  int64_t retry_after_ms = 0;

  // Cross-request batching occupancy: how many requests (and total users)
  // shared the reconstruction call that served this one. 1/users on the
  // unbatched direct path; 0 when the request never reached a
  // recommender (rejection, validation error, fallback).
  int64_t batch_requests = 0;
  int64_t batch_users = 0;
};

// Deterministic sampling policy: every non-OK, degraded, or slow request
// is always kept; OK requests keep 1 in `sample_every` (<= 1 keeps
// everything), selected by a hash of the request id — never by a counter
// or an RNG stream, so the kept set is identical across runs and thread
// counts.
struct WideEventSampling {
  int64_t sample_every = 16;
  // OK requests at or above this latency are always kept; < 0 disables
  // the slow-path override.
  double slow_ms = 100.0;
};

// splitmix64 finalizer: decorrelates sequential request ids so 1-in-K
// selection is unbiased across the id space.
uint64_t MixRequestId(uint64_t id);

bool SampleWideEvent(const RequestTelemetry& event,
                     const WideEventSampling& sampling);

// One JSONL line (no trailing newline): {"type": "request", ...}.
std::string RequestTelemetryToJson(const RequestTelemetry& event);

}  // namespace privrec::obs

#endif  // PRIVREC_OBS_WIDE_EVENT_H_
