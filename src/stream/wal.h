// StreamWal: the crash-safe write-ahead journal for the edge-stream
// ingester (the streaming counterpart of dp/ledger's text journal).
//
// Why a WAL: the streaming pipeline must survive a kill at ANY instant and
// resume to a bit-identical graph state — the re-publication scheduler and
// the ledger's re-derivation discipline both assume the delta prefix is
// exactly reproducible. Every delta is therefore journaled BEFORE it is
// applied; replay on open rebuilds the in-memory state from the journal.
//
// On-disk format (binary, little-endian):
//   header   "PVRECWAL" (8 bytes) + u32 version (= 1)
//   frame    u32 payload_len | u32 crc32(payload) | payload
//   payload  u8 record type | i64 a | i64 b | u64 wbits   (25 bytes)
// Fixed-size payloads keep torn-tail detection trivial: a final frame cut
// at any byte offset either lacks header bytes, lacks payload bytes, or
// fails its CRC — all three are truncated away on open (the record was
// mid-write at the crash; the writer observed the append as failed, so the
// delta was never applied). A CRC mismatch on any NON-final frame is real
// corruption and fails the open with kDataLoss.
//
// Durability: appends go through a POSIX fd; `fsync_every = n` fsyncs
// every nth append (1 = every record, the default; 0 = never, leaving
// durability to the OS — the replay protocol stays correct either way
// because a lost suffix just replays fewer deltas).
//
// Fault points: stream.wal.open (kIoError), stream.wal.append (kIoError:
// the append fails cleanly, nothing written; kShortRead: half the frame
// reaches the file — a crash mid-write — and the call fails), and
// stream.wal.sync (kIoError: the frame is written but the fsync fails).

#ifndef PRIVREC_STREAM_WAL_H_
#define PRIVREC_STREAM_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace privrec::stream {

enum class WalRecordType : uint8_t {
  kAddSocial = 1,         // a = user u, b = user v
  kRemoveSocial = 2,      // a = user u, b = user v
  kAddPreference = 3,     // a = user, b = item, wbits = weight bits
  kRemovePreference = 4,  // a = user, b = item
  // Audit record written AFTER a release commits: a = snapshot index,
  // b = delta records applied so far, wbits = graph fingerprint. Replay
  // uses it to restore the re-publication scheduler's trigger baselines.
  kPublishMark = 5,
};

const char* WalRecordTypeName(WalRecordType type);

struct WalRecord {
  WalRecordType type = WalRecordType::kAddSocial;
  int64_t a = 0;
  int64_t b = 0;
  uint64_t wbits = 0;

  double weight() const;
  void set_weight(double w);

  static WalRecord AddSocial(int64_t u, int64_t v);
  static WalRecord RemoveSocial(int64_t u, int64_t v);
  static WalRecord AddPreference(int64_t user, int64_t item, double weight);
  static WalRecord RemovePreference(int64_t user, int64_t item);
  static WalRecord PublishMark(int64_t snapshot_index, int64_t deltas,
                               uint64_t fingerprint);

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

// Byte sizes of the format, exported so tests can exercise torn-tail
// truncation at every offset within a frame.
inline constexpr uint64_t kWalHeaderBytes = 12;
inline constexpr uint64_t kWalPayloadBytes = 25;
inline constexpr uint64_t kWalFrameBytes = 8 + kWalPayloadBytes;

// Result of parsing a journal file (see StreamWal::Read).
struct WalReplay {
  std::vector<WalRecord> records;
  // A partially-written final frame was dropped.
  bool recovered_torn_tail = false;
  // Byte offset of the end of the last fully-valid frame.
  uint64_t valid_bytes = 0;
};

class StreamWal {
 public:
  StreamWal() = default;
  ~StreamWal();
  StreamWal(StreamWal&& other) noexcept;
  StreamWal& operator=(StreamWal&& other) noexcept;
  StreamWal(const StreamWal&) = delete;
  StreamWal& operator=(const StreamWal&) = delete;

  // Opens `path` for appending, creating it (with a fresh header) if
  // absent. An existing journal is replayed: every frame's CRC must
  // verify, and a torn final frame is truncated away (recoverable crash),
  // while corruption anywhere else fails with kDataLoss.
  static Result<StreamWal> Open(const std::string& path,
                                int64_t fsync_every = 1);

  // Parses a journal without opening it for append and without modifying
  // the file (audit / tooling path; a torn tail is reported, not fixed).
  static Result<WalReplay> Read(const std::string& path);

  // Journals one record (write-ahead: call BEFORE applying the delta).
  Status Append(const WalRecord& record);

  // Forces an fsync regardless of the fsync_every cadence.
  Status Sync();

  const std::string& path() const { return path_; }
  // Records read back at Open() time, in journal order.
  const std::vector<WalRecord>& replayed() const { return replayed_; }
  // True if Open() dropped a partially-written final frame.
  bool recovered_torn_tail() const { return recovered_torn_tail_; }
  // Successful Append() calls since Open().
  int64_t records_appended() const { return records_appended_; }

 private:
  std::string path_;
  int fd_ = -1;
  int64_t fsync_every_ = 1;
  int64_t records_appended_ = 0;
  std::vector<WalRecord> replayed_;
  bool recovered_torn_tail_ = false;
};

}  // namespace privrec::stream

#endif  // PRIVREC_STREAM_WAL_H_
