#include "stream/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/macros.h"
#include "obs/metrics.h"

namespace privrec::stream {

namespace {

constexpr char kMagic[8] = {'P', 'V', 'R', 'E', 'C', 'W', 'A', 'L'};
constexpr uint32_t kVersion = 1;

void PutU32(char* p, uint32_t x) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((x >> (8 * i)) & 0xff);
}

uint32_t GetU32(const char* p) {
  uint32_t x = 0;
  for (int i = 0; i < 4; ++i) {
    x |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return x;
}

void PutU64(char* p, uint64_t x) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((x >> (8 * i)) & 0xff);
}

uint64_t GetU64(const char* p) {
  uint64_t x = 0;
  for (int i = 0; i < 8; ++i) {
    x |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return x;
}

void EncodePayload(const WalRecord& r, char* out) {
  out[0] = static_cast<char>(r.type);
  PutU64(out + 1, static_cast<uint64_t>(r.a));
  PutU64(out + 9, static_cast<uint64_t>(r.b));
  PutU64(out + 17, r.wbits);
}

bool DecodePayload(const char* in, WalRecord* r) {
  const uint8_t type = static_cast<uint8_t>(in[0]);
  if (type < static_cast<uint8_t>(WalRecordType::kAddSocial) ||
      type > static_cast<uint8_t>(WalRecordType::kPublishMark)) {
    return false;
  }
  r->type = static_cast<WalRecordType>(type);
  r->a = static_cast<int64_t>(GetU64(in + 1));
  r->b = static_cast<int64_t>(GetU64(in + 9));
  r->wbits = GetU64(in + 17);
  return true;
}

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("wal append to '" + path +
                             "' failed: " + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

const char* WalRecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kAddSocial:
      return "add_social";
    case WalRecordType::kRemoveSocial:
      return "remove_social";
    case WalRecordType::kAddPreference:
      return "add_preference";
    case WalRecordType::kRemovePreference:
      return "remove_preference";
    case WalRecordType::kPublishMark:
      return "publish_mark";
  }
  return "unknown";
}

double WalRecord::weight() const { return std::bit_cast<double>(wbits); }

void WalRecord::set_weight(double w) { wbits = std::bit_cast<uint64_t>(w); }

WalRecord WalRecord::AddSocial(int64_t u, int64_t v) {
  return {WalRecordType::kAddSocial, u, v, 0};
}

WalRecord WalRecord::RemoveSocial(int64_t u, int64_t v) {
  return {WalRecordType::kRemoveSocial, u, v, 0};
}

WalRecord WalRecord::AddPreference(int64_t user, int64_t item,
                                   double weight) {
  WalRecord r{WalRecordType::kAddPreference, user, item, 0};
  r.set_weight(weight);
  return r;
}

WalRecord WalRecord::RemovePreference(int64_t user, int64_t item) {
  return {WalRecordType::kRemovePreference, user, item, 0};
}

WalRecord WalRecord::PublishMark(int64_t snapshot_index, int64_t deltas,
                                 uint64_t fingerprint) {
  return {WalRecordType::kPublishMark, snapshot_index, deltas, fingerprint};
}

StreamWal::~StreamWal() {
  if (fd_ >= 0) ::close(fd_);
}

StreamWal::StreamWal(StreamWal&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      fsync_every_(other.fsync_every_),
      records_appended_(other.records_appended_),
      replayed_(std::move(other.replayed_)),
      recovered_torn_tail_(other.recovered_torn_tail_) {
  other.fd_ = -1;
}

StreamWal& StreamWal::operator=(StreamWal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    fsync_every_ = other.fsync_every_;
    records_appended_ = other.records_appended_;
    replayed_ = std::move(other.replayed_);
    recovered_torn_tail_ = other.recovered_torn_tail_;
    other.fd_ = -1;
  }
  return *this;
}

Result<WalReplay> StreamWal::Read(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("cannot open wal '" + path + "'");
  const uint64_t size = static_cast<uint64_t>(in.tellg());
  in.seekg(0);
  std::vector<char> bytes(size);
  if (size > 0) {
    in.read(bytes.data(), static_cast<std::streamsize>(size));
    if (!in) return Status::IoError("read of wal '" + path + "' failed");
  }

  WalReplay replay;
  if (size < kWalHeaderBytes) {
    // A header cut short can only happen on a crash during creation; the
    // journal holds no records, so it is recoverable, not corrupt.
    replay.recovered_torn_tail = size > 0;
    replay.valid_bytes = 0;
    return replay;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0 ||
      GetU32(bytes.data() + 8) != kVersion) {
    return Status::ParseError("'" + path + "' is not a privrec stream wal");
  }

  uint64_t off = kWalHeaderBytes;
  while (off < size) {
    const uint64_t remaining = size - off;
    if (remaining < 8) {
      replay.recovered_torn_tail = true;  // torn frame header
      break;
    }
    const uint32_t len = GetU32(bytes.data() + off);
    const uint32_t crc = GetU32(bytes.data() + off + 4);
    const bool is_final_frame = 8 + static_cast<uint64_t>(len) >= remaining;
    if (len != kWalPayloadBytes) {
      // Garbage length: torn header bytes if this is the tail, corruption
      // otherwise.
      if (is_final_frame) {
        replay.recovered_torn_tail = true;
        break;
      }
      return Status::DataLoss("'" + path + "': bad frame length at offset " +
                              std::to_string(off));
    }
    if (remaining < 8 + kWalPayloadBytes) {
      replay.recovered_torn_tail = true;  // torn payload
      break;
    }
    const char* payload = bytes.data() + off + 8;
    WalRecord record;
    if (Crc32(payload, kWalPayloadBytes) != crc ||
        !DecodePayload(payload, &record)) {
      if (off + kWalFrameBytes >= size) {
        replay.recovered_torn_tail = true;  // torn final payload bytes
        break;
      }
      return Status::DataLoss("'" + path +
                              "': frame checksum mismatch at offset " +
                              std::to_string(off) + " (bit corruption)");
    }
    replay.records.push_back(record);
    off += kWalFrameBytes;
  }
  replay.valid_bytes = replay.records.size() * kWalFrameBytes +
                       (size >= kWalHeaderBytes ? kWalHeaderBytes : 0);
  return replay;
}

Result<StreamWal> StreamWal::Open(const std::string& path,
                                  int64_t fsync_every) {
  PRIVREC_CHECK(fsync_every >= 0);
  if (fault::Hit("stream.wal.open") == fault::FaultKind::kIoError) {
    return Status::IoError("cannot open wal " + path + " (injected fault)");
  }

  StreamWal wal;
  wal.path_ = path;
  wal.fsync_every_ = fsync_every;

  std::error_code ec;
  const bool exists = std::filesystem::exists(path, ec);
  if (exists) {
    Result<WalReplay> replay = Read(path);
    if (!replay.ok()) return replay.status();
    wal.replayed_ = std::move(replay->records);
    wal.recovered_torn_tail_ = replay->recovered_torn_tail;
    if (replay->recovered_torn_tail) {
      // Truncate the torn tail so appends start on a clean frame boundary.
      // valid_bytes == 0 means the header itself was torn; rewrite it.
      if (replay->valid_bytes >= kWalHeaderBytes) {
        std::filesystem::resize_file(path, replay->valid_bytes, ec);
        if (ec) {
          return Status::IoError(path + ": cannot truncate torn wal tail");
        }
      } else {
        std::filesystem::remove(path, ec);
      }
      static obs::Counter& torn =
          obs::GetCounter("privrec.stream.wal_torn_tails");
      torn.Increment();
    }
  }

  const bool need_header =
      !std::filesystem::exists(path, ec) ||
      std::filesystem::file_size(path, ec) < kWalHeaderBytes;
  wal.fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                   0644);
  if (wal.fd_ < 0) {
    return Status::IoError("cannot open wal '" + path +
                           "': " + std::strerror(errno));
  }
  if (need_header) {
    char header[kWalHeaderBytes];
    std::memcpy(header, kMagic, sizeof(kMagic));
    PutU32(header + 8, kVersion);
    Status written = WriteAll(wal.fd_, header, sizeof(header), path);
    if (!written.ok()) return written;
    if (::fsync(wal.fd_) != 0) {
      return Status::IoError("cannot sync wal header to '" + path + "'");
    }
  }

  static obs::Counter& opens = obs::GetCounter("privrec.stream.wal_opens");
  static obs::Counter& replayed_records =
      obs::GetCounter("privrec.stream.wal_records_replayed");
  opens.Increment();
  replayed_records.Add(static_cast<int64_t>(wal.replayed_.size()));
  return wal;
}

Status StreamWal::Append(const WalRecord& record) {
  if (fd_ < 0) return Status::FailedPrecondition("wal is not open");

  char frame[kWalFrameBytes];
  char* payload = frame + 8;
  EncodePayload(record, payload);
  PutU32(frame, static_cast<uint32_t>(kWalPayloadBytes));
  PutU32(frame + 4, Crc32(payload, kWalPayloadBytes));

  switch (fault::Hit("stream.wal.append")) {
    case fault::FaultKind::kIoError:
      return Status::IoError("wal append failed (injected fault)");
    case fault::FaultKind::kShortRead: {
      // Crash mid-write: half the frame reaches the disk. Open() must
      // truncate it away and the caller must treat the delta as unapplied.
      Status torn = WriteAll(fd_, frame, kWalFrameBytes / 2, path_);
      if (torn.ok()) ::fsync(fd_);
      return Status::IoError("wal append torn (injected fault)");
    }
    default:
      break;
  }

  Status written = WriteAll(fd_, frame, kWalFrameBytes, path_);
  if (!written.ok()) return written;
  ++records_appended_;

  const bool sync_now =
      fsync_every_ > 0 && (records_appended_ % fsync_every_) == 0;
  if (sync_now) return Sync();
  return Status::Ok();
}

Status StreamWal::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("wal is not open");
  if (fault::Hit("stream.wal.sync") == fault::FaultKind::kIoError) {
    return Status::IoError("wal fsync failed (injected fault)");
  }
  if (::fsync(fd_) != 0) {
    return Status::IoError("wal fsync of '" + path_ +
                           "' failed: " + std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace privrec::stream
