#include "stream/pipeline.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "similarity/common_neighbors.h"
#include "similarity/workload.h"

namespace privrec::stream {

Result<StreamPipeline> StreamPipeline::Open(
    const StreamPipelineOptions& options, serve::ServeRuntime* runtime) {
  StreamPipeline pipeline;
  pipeline.options_ = options;
  pipeline.runtime_ = runtime;
  pipeline.community_ = std::make_unique<community::IncrementalCommunity>(
      options.ingest.num_users, options.community);
  pipeline.scheduler_ =
      std::make_unique<RepublishScheduler>(options.republish);

  // The observer wires every record — replayed and live — into the
  // maintainer and the scheduler, so both are pure functions of the
  // journal prefix. Raw pointers stay valid across pipeline moves (the
  // targets are heap-owned).
  community::IncrementalCommunity* community = pipeline.community_.get();
  RepublishScheduler* scheduler = pipeline.scheduler_.get();
  EdgeStreamIngester::DeltaObserver observer =
      [community, scheduler](const WalRecord& record,
                             const EdgeStreamIngester& ingester) {
        switch (record.type) {
          case WalRecordType::kAddSocial:
            community->AddEdge(record.a, record.b);
            break;
          case WalRecordType::kRemoveSocial:
            community->RemoveEdge(record.a, record.b);
            break;
          default:
            break;
        }
        scheduler->Observe(record, community->modularity(),
                           ingester.social_edges() +
                               ingester.preference_edges());
      };

  Result<EdgeStreamIngester> ingester =
      EdgeStreamIngester::Open(options.ingest, std::move(observer));
  if (!ingester.ok()) return ingester.status();
  pipeline.ingester_ =
      std::make_unique<EdgeStreamIngester>(std::move(ingester).value());

  Result<core::DynamicRecommenderSession> session =
      core::DynamicRecommenderSession::Open(options.session);
  if (!session.ok()) return session.status();
  pipeline.session_.emplace(std::move(session).value());
  pipeline.publishes_ = pipeline.session_->snapshots_processed();
  return pipeline;
}

Status StreamPipeline::AddSocialEdge(graph::NodeId u, graph::NodeId v) {
  return ingester_->AddSocialEdge(u, v);
}

Status StreamPipeline::RemoveSocialEdge(graph::NodeId u, graph::NodeId v) {
  return ingester_->RemoveSocialEdge(u, v);
}

Status StreamPipeline::AddPreference(graph::NodeId user, graph::ItemId item,
                                     double weight) {
  return ingester_->AddPreference(user, item, weight);
}

Status StreamPipeline::RemovePreference(graph::NodeId user,
                                        graph::ItemId item) {
  return ingester_->RemovePreference(user, item);
}

bool StreamPipeline::HasPendingRelease() const {
  const dp::BudgetLedger* ledger = session_->ledger();
  if (ledger == nullptr) return false;
  const int64_t t = session_->snapshots_processed();
  return ledger->HasIntent(t) && !ledger->IsCommitted(t);
}

std::string StreamPipeline::RepublishDue() const {
  if (HasPendingRelease()) {
    return "resume: journaled-but-uncommitted intent for snapshot " +
           std::to_string(session_->snapshots_processed());
  }
  return scheduler_->DueReason();
}

Result<PublishOutcome> StreamPipeline::Republish(
    const std::vector<graph::NodeId>& users, int64_t top_n) {
  PRIVREC_SPAN("stream.republish");
  PublishOutcome outcome;
  outcome.reason = RepublishDue();
  if (outcome.reason.empty()) outcome.reason = "manual";

  // Snapshot the live state. The partition comes from the incremental
  // maintainer — deterministic from the journal prefix, which is what
  // keeps a resumed (paid-but-unreleased) publish bit-identical.
  graph::SocialGraph social = ingester_->BuildSocialGraph();
  graph::PreferenceGraph preferences = ingester_->BuildPreferenceGraph();
  similarity::SimilarityWorkload workload =
      similarity::SimilarityWorkload::Compute(social,
                                              similarity::CommonNeighbors());
  core::RecommenderContext context{&social, &preferences, &workload};
  const community::Partition partition = community_->partition();

  Result<core::SnapshotRelease> release =
      session_->ProcessSnapshot(context, users, top_n, &partition);
  if (!release.ok()) return release.status();
  outcome.release = std::move(release).value();

  static obs::Counter& published =
      obs::GetCounter("privrec.stream.publishes");
  static obs::Counter& stale =
      obs::GetCounter("privrec.stream.stale_replays");
  if (outcome.release.stale) {
    // Budget exhausted: the session replayed the last paid release at zero
    // ε. Stop burning workload computations on automatic triggers.
    stale.Increment();
    scheduler_->MuteExhausted();
    return outcome;
  }
  published.Increment();
  ++publishes_;

  if (!options_.session.artifact_dir.empty()) {
    outcome.artifact_path = options_.session.artifact_dir + "/snapshot_" +
                            std::to_string(outcome.release.snapshot_index) +
                            ".pvra";
    if (runtime_ != nullptr) {
      outcome.swap_status = runtime_->Activate(outcome.artifact_path);
      outcome.swapped = outcome.swap_status.ok();
      if (!outcome.swapped) {
        static obs::Counter& failed_swaps =
            obs::GetCounter("privrec.stream.failed_swaps");
        failed_swaps.Increment();
      }
    }
  }

  // Journal the publish mark AFTER the commit: replay restores the
  // scheduler baselines; a crash landing before this line merely re-arms
  // the trigger (at-least-once publication).
  Status marked = ingester_->MarkPublish(outcome.release.snapshot_index);
  if (!marked.ok()) return marked;
  return outcome;
}

}  // namespace privrec::stream
