#include "stream/ingester.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "obs/metrics.h"

namespace privrec::stream {

namespace {

uint64_t FnvMix(uint64_t h, uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Result<EdgeStreamIngester> EdgeStreamIngester::Open(
    const EdgeStreamOptions& options, DeltaObserver observer) {
  PRIVREC_CHECK(options.num_users > 0);
  PRIVREC_CHECK(options.num_items >= 0);
  EdgeStreamIngester ingester(options);
  ingester.observer_ = std::move(observer);
  if (options.wal_path.empty()) return ingester;

  Result<StreamWal> wal =
      StreamWal::Open(options.wal_path, options.fsync_every);
  if (!wal.ok()) return wal.status();
  ingester.wal_ = std::move(wal).value();
  for (const WalRecord& record : ingester.wal_->replayed()) {
    // Journal contents predate this process; validation failures here mean
    // the journal was written against different dimensions — corruption of
    // the deployment, not a recoverable tail.
    Status valid = ingester.Validate(record);
    if (!valid.ok()) {
      return Status::FailedPrecondition(
          "wal '" + options.wal_path + "' replay rejected a " +
          std::string(WalRecordTypeName(record.type)) +
          " record: " + valid.message());
    }
    ingester.ApplyToState(record);
    if (ingester.observer_) ingester.observer_(record, ingester);
  }
  return ingester;
}

Status EdgeStreamIngester::Validate(const WalRecord& record) const {
  switch (record.type) {
    case WalRecordType::kAddSocial:
    case WalRecordType::kRemoveSocial:
      if (record.a < 0 || record.a >= options_.num_users || record.b < 0 ||
          record.b >= options_.num_users) {
        return Status::InvalidArgument(
            "social edge endpoint out of range [0, " +
            std::to_string(options_.num_users) + ")");
      }
      if (record.a == record.b) {
        return Status::InvalidArgument("social self-loops are not allowed");
      }
      return Status::Ok();
    case WalRecordType::kAddPreference:
    case WalRecordType::kRemovePreference:
      if (record.a < 0 || record.a >= options_.num_users) {
        return Status::InvalidArgument("preference user out of range");
      }
      if (record.b < 0 || record.b >= options_.num_items) {
        return Status::InvalidArgument("preference item out of range");
      }
      if (record.type == WalRecordType::kAddPreference) {
        const double w = record.weight();
        if (!std::isfinite(w) || w <= 0.0) {
          return Status::InvalidArgument(
              "preference weights must be positive and finite");
        }
      }
      return Status::Ok();
    case WalRecordType::kPublishMark:
      if (record.a < 0) {
        return Status::InvalidArgument("publish snapshot index negative");
      }
      return Status::Ok();
  }
  return Status::InvalidArgument("unknown wal record type");
}

void EdgeStreamIngester::ApplyToState(const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kAddSocial: {
      const auto e = std::minmax(record.a, record.b);
      social_.insert({e.first, e.second});
      ++delta_records_;
      break;
    }
    case WalRecordType::kRemoveSocial: {
      const auto e = std::minmax(record.a, record.b);
      social_.erase({e.first, e.second});
      ++delta_records_;
      break;
    }
    case WalRecordType::kAddPreference:
      preferences_[{record.a, record.b}] = record.weight();
      ++delta_records_;
      break;
    case WalRecordType::kRemovePreference:
      preferences_.erase({record.a, record.b});
      ++delta_records_;
      break;
    case WalRecordType::kPublishMark:
      if (record.a > last_publish_index_) last_publish_index_ = record.a;
      break;
  }
}

Status EdgeStreamIngester::Apply(WalRecord record) {
  Status valid = Validate(record);
  if (!valid.ok()) return valid;
  if (wal_) {
    Status journaled = wal_->Append(record);
    if (!journaled.ok()) return journaled;
  }
  ApplyToState(record);
  static obs::Counter& applied =
      obs::GetCounter("privrec.stream.deltas_applied");
  if (record.type != WalRecordType::kPublishMark) applied.Increment();
  if (observer_) observer_(record, *this);
  return Status::Ok();
}

Status EdgeStreamIngester::AddSocialEdge(graph::NodeId u, graph::NodeId v) {
  return Apply(WalRecord::AddSocial(u, v));
}

Status EdgeStreamIngester::RemoveSocialEdge(graph::NodeId u,
                                            graph::NodeId v) {
  return Apply(WalRecord::RemoveSocial(u, v));
}

Status EdgeStreamIngester::AddPreference(graph::NodeId user,
                                         graph::ItemId item, double weight) {
  return Apply(WalRecord::AddPreference(user, item, weight));
}

Status EdgeStreamIngester::RemovePreference(graph::NodeId user,
                                            graph::ItemId item) {
  return Apply(WalRecord::RemovePreference(user, item));
}

Status EdgeStreamIngester::MarkPublish(int64_t snapshot_index) {
  return Apply(WalRecord::PublishMark(snapshot_index, delta_records_,
                                      GraphFingerprint()));
}

graph::SocialGraph EdgeStreamIngester::BuildSocialGraph() const {
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges(social_.begin(),
                                                             social_.end());
  return graph::SocialGraph::FromEdges(options_.num_users, edges);
}

graph::PreferenceGraph EdgeStreamIngester::BuildPreferenceGraph() const {
  std::vector<graph::PreferenceEdge> edges;
  edges.reserve(preferences_.size());
  for (const auto& [key, weight] : preferences_) {
    edges.push_back({key.first, key.second, weight});
  }
  return graph::PreferenceGraph::FromWeightedEdges(
      options_.num_users, options_.num_items, edges);
}

uint64_t EdgeStreamIngester::GraphFingerprint() const {
  uint64_t h = 1469598103934665603ull;
  h = FnvMix(h, static_cast<uint64_t>(options_.num_users));
  h = FnvMix(h, static_cast<uint64_t>(options_.num_items));
  h = FnvMix(h, social_.size());
  for (const auto& [u, v] : social_) {
    h = FnvMix(h, static_cast<uint64_t>(u));
    h = FnvMix(h, static_cast<uint64_t>(v));
  }
  h = FnvMix(h, preferences_.size());
  for (const auto& [key, weight] : preferences_) {
    h = FnvMix(h, static_cast<uint64_t>(key.first));
    h = FnvMix(h, static_cast<uint64_t>(key.second));
    h = FnvMix(h, std::bit_cast<uint64_t>(weight));
  }
  return h;
}

}  // namespace privrec::stream
