// EdgeStreamIngester: journaled ingestion of social/preference deltas — the
// front half of the streaming pipeline (ROADMAP item #4, the paper's E3
// future work taken from batch snapshots to a live stream).
//
// Discipline: every valid delta is journaled to the StreamWal BEFORE it is
// applied to the in-memory edge state (write-ahead, mirroring dp/ledger).
// Replay on Open() rebuilds the state record by record, so a process kill
// at any instant resumes to a bit-identical graph: a record that reached
// the journal is re-applied, a torn record was never observed as applied.
// Application is idempotent — re-adding a present edge or removing an
// absent one is a state no-op — which makes duplicated replay harmless and
// lets the delta schedule of a driver be positioned by delta_records().
//
// The observer hook fires for every record, replayed AND live, after the
// record is applied. Downstream state fed exclusively through the observer
// (incremental community maintenance, the re-publication scheduler's
// trigger baselines) is therefore a pure function of the journal prefix —
// the property the crash-recovery bit-identity tests pin.

#ifndef PRIVREC_STREAM_INGESTER_H_
#define PRIVREC_STREAM_INGESTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "common/status.h"
#include "graph/preference_graph.h"
#include "graph/social_graph.h"
#include "stream/wal.h"

namespace privrec::stream {

struct EdgeStreamOptions {
  graph::NodeId num_users = 0;
  graph::ItemId num_items = 0;
  // Non-empty: journal every delta to this WAL (created if absent,
  // replayed if present). Empty: an unjournaled in-memory stream — the
  // shadow-reference mode the soak uses to cross-check crash recovery.
  std::string wal_path;
  // Fsync cadence of the journal (1 = every record; 0 = never).
  int64_t fsync_every = 1;
};

class EdgeStreamIngester {
 public:
  // Fires after a record is applied; `ingester` is the applying instance
  // (counts and edge totals already reflect the record).
  using DeltaObserver =
      std::function<void(const WalRecord&, const EdgeStreamIngester&)>;

  // Opens the journal (replaying any existing records through the state
  // and the observer) or constructs an empty unjournaled stream.
  static Result<EdgeStreamIngester> Open(const EdgeStreamOptions& options,
                                         DeltaObserver observer = {});

  EdgeStreamIngester(EdgeStreamIngester&&) = default;
  EdgeStreamIngester& operator=(EdgeStreamIngester&&) = default;

  // Journal-then-apply. Validation failures (ids out of range, self loops,
  // non-positive or non-finite weights) reject with kInvalidArgument
  // BEFORE journaling; journal failures reject the delta unapplied.
  Status AddSocialEdge(graph::NodeId u, graph::NodeId v);
  Status RemoveSocialEdge(graph::NodeId u, graph::NodeId v);
  Status AddPreference(graph::NodeId user, graph::ItemId item,
                       double weight = 1.0);
  Status RemovePreference(graph::NodeId user, graph::ItemId item);

  // Journals the audit record for a committed release: snapshot index plus
  // the current delta count and graph fingerprint.
  Status MarkPublish(int64_t snapshot_index);

  // Generic entry point (the four typed wrappers route through this).
  Status Apply(WalRecord record);

  // Materialized snapshots of the live edge state.
  graph::SocialGraph BuildSocialGraph() const;
  graph::PreferenceGraph BuildPreferenceGraph() const;

  // FNV-1a fingerprint of (num_users, num_items, sorted social edges,
  // sorted weighted preference edges) — the bit-identity witness the
  // crash-recovery tests and the publish marks use.
  uint64_t GraphFingerprint() const;

  graph::NodeId num_users() const { return options_.num_users; }
  graph::ItemId num_items() const { return options_.num_items; }
  // Delta records observed (journaled or replayed; publish marks excluded).
  int64_t delta_records() const { return delta_records_; }
  int64_t social_edges() const {
    return static_cast<int64_t>(social_.size());
  }
  int64_t preference_edges() const {
    return static_cast<int64_t>(preferences_.size());
  }
  // Highest snapshot index seen in a publish mark; -1 before any.
  int64_t last_publish_index() const { return last_publish_index_; }
  bool journaled() const { return wal_.has_value(); }
  bool recovered_torn_tail() const {
    return wal_ && wal_->recovered_torn_tail();
  }

 private:
  explicit EdgeStreamIngester(const EdgeStreamOptions& options)
      : options_(options) {}

  Status Validate(const WalRecord& record) const;
  void ApplyToState(const WalRecord& record);

  EdgeStreamOptions options_;
  DeltaObserver observer_;
  std::optional<StreamWal> wal_;
  int64_t delta_records_ = 0;
  int64_t last_publish_index_ = -1;
  // Social edges normalized to u < v; preferences keyed (user, item) with
  // last-write-wins weights. Ordered containers keep the fingerprint and
  // the materialized graphs deterministic.
  std::set<std::pair<graph::NodeId, graph::NodeId>> social_;
  std::map<std::pair<graph::NodeId, graph::ItemId>, double> preferences_;
};

}  // namespace privrec::stream

#endif  // PRIVREC_STREAM_INGESTER_H_
