// RepublishScheduler: decides WHEN a fresh artifact is worth a budget
// charge. Every release costs ε under sequential composition (Theorem 2),
// so the streaming pipeline spends only when the published model has
// measurably decayed (the utility-vs-ε framing of arXiv 1105.4254):
//
//   triggers (checked after the hysteresis floor `min_deltas_between`):
//     periodic   every_deltas > 0 and that many deltas since last publish
//     drift      community modularity fell more than drift_threshold
//                below its value at the last publish
//     growth     live edge count grew by min_growth (fraction) since the
//                last publish
//     initial    nothing published yet and the floor is reached
//
// The scheduler is fed every WAL record through Observe() — replayed and
// live — so its baselines (modularity / edge count / delta count at the
// last publish mark) are a pure function of the journal prefix and survive
// crashes bit-identically. Publish marks are journaled AFTER the ledger
// commit; a crash in between re-arms the trigger on restart, making
// publication at-least-once (an extra *accounted* charge, never a
// double-spend — the ledger is the authority on ε, the WAL on deltas).

#ifndef PRIVREC_STREAM_SCHEDULER_H_
#define PRIVREC_STREAM_SCHEDULER_H_

#include <cstdint>
#include <string>

#include "stream/wal.h"

namespace privrec::stream {

struct RepublishPolicy {
  // Community-drift trigger: modularity at last publish minus current.
  double drift_threshold = 0.05;
  // Growth trigger: fractional increase in live (social + preference)
  // edges since the last publish.
  double min_growth = 0.25;
  // Periodic trigger: publish every N delta records (0 = disabled).
  int64_t every_deltas = 0;
  // Hysteresis floor: no trigger until this many deltas since the last
  // publish (and before the first).
  int64_t min_deltas_between = 8;
};

class RepublishScheduler {
 public:
  explicit RepublishScheduler(const RepublishPolicy& policy)
      : policy_(policy) {}

  // Feed one applied WAL record plus the post-record community modularity
  // and live edge count. Publish marks reset the trigger baselines.
  void Observe(const WalRecord& record, double modularity,
               int64_t live_edges);

  // Non-empty when a publish is due (the reason string names the trigger).
  std::string DueReason() const;

  // Budget exhausted and the session fell back to stale replay: suppress
  // further automatic triggers (manual publishes stay possible). Replay
  // clears this — a restarted session re-discovers exhaustion on its
  // first attempt, cheaply.
  void MuteExhausted() { exhausted_ = true; }
  bool exhausted() const { return exhausted_; }

  int64_t deltas_total() const { return deltas_total_; }
  int64_t deltas_since_publish() const {
    return deltas_total_ - deltas_at_publish_;
  }
  int64_t publish_marks() const { return publish_marks_; }
  double modularity_at_publish() const { return modularity_at_publish_; }
  int64_t edges_at_publish() const { return edges_at_publish_; }

 private:
  RepublishPolicy policy_;
  int64_t deltas_total_ = 0;
  int64_t publish_marks_ = 0;
  int64_t deltas_at_publish_ = 0;
  int64_t edges_at_publish_ = 0;
  double modularity_at_publish_ = 0.0;
  double last_modularity_ = 0.0;
  int64_t last_edges_ = 0;
  bool exhausted_ = false;
};

}  // namespace privrec::stream

#endif  // PRIVREC_STREAM_SCHEDULER_H_
