// StreamPipeline: the long-running streaming service loop — WAL-journaled
// ingestion, incremental community maintenance, budget-disciplined
// re-publication, and live rollout through the serving runtime. This is
// the subsystem that turns the batch-snapshot DynamicRecommenderSession
// into a pipeline where the graph grows continuously, ε is never
// double-spent, and serving never stops (ROADMAP item #4).
//
// Crash model (every arrow is a kill point; all recover on Open):
//
//   delta  → wal append → state apply → community/scheduler observe
//   publish→ ledger intent → build/save artifact → load/serve → ledger
//            commit → runtime Activate (swap) → wal publish mark
//
//   - kill before the wal append lands: the delta never happened.
//   - kill after: replay re-applies it; community + scheduler state are
//     rebuilt from the journal, bit-identically.
//   - kill between ledger intent and commit: the ε is spent; the restarted
//     pipeline MUST Republish() before ingesting new deltas (see
//     HasPendingRelease) so the re-derived release — same graph prefix,
//     same deterministic partition and noise seeds — is bit-identical to
//     the one that crashed. Re-randomizing would be a silent double-spend.
//   - kill between commit and publish mark: the trigger stays armed and the
//     next publish charges a FRESH snapshot's ε — at-least-once
//     publication, fully accounted, never a double-spend.
//   - swap failure: the swapper rolls back and the previous epoch keeps
//     serving; the ε stays spent (audited, not refunded).

#ifndef PRIVREC_STREAM_PIPELINE_H_
#define PRIVREC_STREAM_PIPELINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "community/incremental.h"
#include "core/dynamic_recommender.h"
#include "serve/runtime.h"
#include "stream/ingester.h"
#include "stream/scheduler.h"

namespace privrec::stream {

struct StreamPipelineOptions {
  EdgeStreamOptions ingest;
  community::IncrementalCommunityOptions community;
  RepublishPolicy republish;
  // ledger_path / artifact_dir / allocation / total_epsilon etc.; the
  // session's Louvain options are unused (the incremental maintainer owns
  // clustering), and artifact_dir must be set for live rollout.
  core::DynamicRecommenderOptions session;
};

struct PublishOutcome {
  core::SnapshotRelease release;
  // Path of the published artifact ("" for stale replays).
  std::string artifact_path;
  // The serving runtime adopted the new artifact (false also when no
  // runtime is attached).
  bool swapped = false;
  Status swap_status = Status::Ok();
  std::string reason;
};

class StreamPipeline {
 public:
  // Opens (or resumes) the pipeline: replays the WAL through the community
  // maintainer and the scheduler, then replays the budget ledger into the
  // session. `runtime` is an optional rollout target (not owned; must
  // outlive the pipeline). A crashed publish leaves HasPendingRelease()
  // true — call Republish() before ingesting new deltas.
  static Result<StreamPipeline> Open(const StreamPipelineOptions& options,
                                     serve::ServeRuntime* runtime = nullptr);

  StreamPipeline(StreamPipeline&&) = default;
  StreamPipeline& operator=(StreamPipeline&&) = default;

  Status AddSocialEdge(graph::NodeId u, graph::NodeId v);
  Status RemoveSocialEdge(graph::NodeId u, graph::NodeId v);
  Status AddPreference(graph::NodeId user, graph::ItemId item,
                       double weight = 1.0);
  Status RemovePreference(graph::NodeId user, graph::ItemId item);

  // True when the ledger holds a journaled-but-uncommitted intent for the
  // next snapshot: a previous run paid its ε and crashed before releasing.
  bool HasPendingRelease() const;

  // Non-empty when a publish should happen now (pending release first,
  // then the scheduler's triggers).
  std::string RepublishDue() const;

  // Builds the snapshot graphs and workload from the live edge state, runs
  // one ProcessSnapshot with the incrementally-maintained partition, and —
  // on a paid (non-stale) release with an artifact directory — activates
  // the artifact on the attached runtime and journals the publish mark. A
  // failed swap is reported in the outcome, not an error: the previous
  // epoch keeps serving.
  Result<PublishOutcome> Republish(const std::vector<graph::NodeId>& users,
                                   int64_t top_n);

  const EdgeStreamIngester& ingester() const { return *ingester_; }
  const community::IncrementalCommunity& community() const {
    return *community_;
  }
  const RepublishScheduler& scheduler() const { return *scheduler_; }
  const core::DynamicRecommenderSession& session() const { return *session_; }
  int64_t publishes() const { return publishes_; }

 private:
  StreamPipeline() = default;

  StreamPipelineOptions options_;
  // unique_ptrs so the ingester's observer can hold stable raw pointers
  // across pipeline moves.
  std::unique_ptr<community::IncrementalCommunity> community_;
  std::unique_ptr<RepublishScheduler> scheduler_;
  std::unique_ptr<EdgeStreamIngester> ingester_;
  std::optional<core::DynamicRecommenderSession> session_;
  serve::ServeRuntime* runtime_ = nullptr;
  int64_t publishes_ = 0;
};

}  // namespace privrec::stream

#endif  // PRIVREC_STREAM_PIPELINE_H_
