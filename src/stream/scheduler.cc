#include "stream/scheduler.h"

#include "obs/metrics.h"

namespace privrec::stream {

void RepublishScheduler::Observe(const WalRecord& record, double modularity,
                                 int64_t live_edges) {
  last_modularity_ = modularity;
  last_edges_ = live_edges;
  if (record.type == WalRecordType::kPublishMark) {
    ++publish_marks_;
    deltas_at_publish_ = deltas_total_;
    edges_at_publish_ = live_edges;
    modularity_at_publish_ = modularity;
    return;
  }
  ++deltas_total_;
  static obs::Gauge& drift =
      obs::GetGauge("privrec.stream.publish_drift");
  const double d = modularity_at_publish_ - modularity;
  drift.Set(publish_marks_ > 0 && d > 0.0 ? d : 0.0);
}

std::string RepublishScheduler::DueReason() const {
  if (exhausted_) return "";
  if (deltas_since_publish() < policy_.min_deltas_between) return "";
  if (publish_marks_ == 0) return "initial publication";
  if (policy_.every_deltas > 0 &&
      deltas_since_publish() >= policy_.every_deltas) {
    return "periodic: " + std::to_string(deltas_since_publish()) +
           " deltas since last publish";
  }
  const double drift = modularity_at_publish_ - last_modularity_;
  if (drift > policy_.drift_threshold) {
    return "community drift " + std::to_string(drift) + " > " +
           std::to_string(policy_.drift_threshold);
  }
  if (edges_at_publish_ > 0 &&
      static_cast<double>(last_edges_) >=
          static_cast<double>(edges_at_publish_) *
              (1.0 + policy_.min_growth)) {
    return "graph growth: " + std::to_string(edges_at_publish_) + " -> " +
           std::to_string(last_edges_) + " edges";
  }
  if (edges_at_publish_ == 0 && last_edges_ > 0) {
    return "graph growth from empty";
  }
  return "";
}

}  // namespace privrec::stream
