// The in-memory form of a .pvra model artifact: everything the serve phase
// is allowed to know. Produced by artifact::ModelArtifactBuilder, persisted
// by SaveArtifact/LoadArtifact (model_io), consumed by ServingEngine.
//
// Deliberately NOT here: the social graph and the private PreferenceGraph.
// The cluster path (the paper's main mechanism) serves from the sanitized
// sections alone. The preference CSR section is optional and exists only so
// the four reference baselines (Exact/NOU/NOE/GS) can be served through the
// same container for apples-to-apples accuracy comparisons; a
// production-shaped artifact simply omits it.

#ifndef PRIVREC_ARTIFACT_MODEL_H_
#define PRIVREC_ARTIFACT_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace privrec::serving {

// On-disk container constants (see DESIGN.md for the field-level layout).
inline constexpr uint32_t kArtifactMagic = 0x41525650;  // "PVRA" little-endian
inline constexpr uint32_t kArtifactVersion = 1;

// Section ids. Values are part of the on-disk format; never renumber.
enum class SectionId : uint32_t {
  kGraphMeta = 1,
  kPartition = 2,
  kWorkload = 3,
  kNoisyTable = 4,
  kProvenance = 5,
  kPreferences = 6,  // optional (reference baselines only)
  kLowRank = 7,      // optional (LRM baseline only)
  kNoisyTableF32 = 8,  // optional (f32-quantized mirror of kNoisyTable)
};

// Stable human-readable section name for error messages.
const char* SectionName(SectionId id);

// One similarity-workload record: sim(u, v) = score for neighbor v.
// Mirrors similarity::SimilarityEntry without depending on the similarity
// library (member names must stay `.user` / `.score` — the shared
// reconstruction template reads them generically).
struct WorkloadEntry {
  int64_t user = 0;
  double score = 0.0;

  friend bool operator==(const WorkloadEntry&, const WorkloadEntry&) = default;
};

// Section 1: dataset identity and the dimensions every serve path needs.
struct GraphMetaSection {
  uint64_t graph_hash = 0;  // graph::DatasetFingerprint of (G_s, G_p)
  int64_t num_users = 0;    // |U| = social nodes = preference users
  int64_t num_items = 0;
  int64_t num_social_edges = 0;
  int64_t num_preference_edges = 0;
  double max_weight = 1.0;  // w_max, the per-edge sensitivity bound
  std::string measure_name;  // similarity measure the workload was built with
};

// Section 2: createClusters output (public data only).
struct PartitionSection {
  std::vector<int64_t> cluster_of;  // per user node
  std::vector<int64_t> sizes;       // per cluster
};

// Section 3: the similarity workload CSR (public data only).
struct WorkloadSection {
  std::vector<uint64_t> offsets;  // num_users + 1 entries
  std::vector<WorkloadEntry> entries;
  double max_column_sum = 0.0;
  double max_entry = 0.0;
};

// Section 4: the A_w release — the only artifact content derived from the
// private preference graph, already ε-DP sanitized.
struct NoisyTableSection {
  int64_t num_clusters = 0;
  std::vector<double> values;     // row-major [cluster][item]
  std::vector<uint8_t> sanitized;  // per cluster
  int64_t empty_clusters = 0;
  int64_t singleton_clusters = 0;
  int64_t nonfinite_sanitized = 0;
};

// Section 5: DP provenance — which budget bought this release.
struct ProvenanceSection {
  double epsilon = 0.0;
  double sensitivity = 0.0;  // per-edge bound the noise was calibrated to
  uint64_t seed = 0;         // RNG seed of the publication step
  std::string ledger_id;     // BudgetLedger entry id ("" if unledgered)
};

// Section 6 (optional): raw preference CSR, user-major. Present only when
// the builder is asked for reference baselines; its presence is what the
// ServingEngine checks before constructing Exact/NOU/NOE/GS servers.
struct PreferenceSection {
  std::vector<uint64_t> offsets;  // num_users + 1 entries
  std::vector<int64_t> items;
  std::vector<double> weights;
};

// Section 8 (optional): the same A_w release quantized to f32, written by
// the builder's table_f32 option. Pure post-processing of the released
// table (no additional privacy cost); `source_crc32` is the CRC-32 of the
// f64 value bytes it was quantized from, so a serve path can prove the
// two widths describe the same release. The f64 section stays required —
// global-average fallback and provenance always read full width.
struct NoisyTableF32Section {
  std::vector<float> values;   // row-major [cluster][item]
  uint32_t source_crc32 = 0;   // Crc32 of the f64 values it mirrors
};

// Section 7 (optional): LRM factors W ≈ B L (row-major, dense).
struct LowRankSection {
  int64_t rank = 0;
  std::vector<double> b;  // num_users x rank
  std::vector<double> l;  // rank x num_users
  double noise_sensitivity = 0.0;
  double factorization_error = 0.0;
};

struct ArtifactModel {
  GraphMetaSection meta;
  PartitionSection partition;
  WorkloadSection workload;
  NoisyTableSection noisy;
  ProvenanceSection provenance;
  bool has_preferences = false;
  PreferenceSection preferences;
  bool has_lowrank = false;
  LowRankSection lowrank;
  bool has_noisy_f32 = false;
  NoisyTableF32Section noisy_f32;
};

}  // namespace privrec::serving

#endif  // PRIVREC_ARTIFACT_MODEL_H_
