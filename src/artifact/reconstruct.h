// The A_R reconstruction step of Algorithm 1 (lines 8-20), shared between
// the in-memory ClusterRecommender and the artifact-backed ServingEngine.
//
// Both paths call the same template over the same chunked parallel layer,
// so build→save→load→serve is bit-identical to in-memory by construction:
// there is exactly one FP accumulation order, one fallback rule, and one
// degradation policy, not two copies that could drift.
//
// The math itself lives one layer lower, in src/kernels/: the
// similarity-weighted row sum is kernels::AccumulateRows (cache-blocked,
// runtime-dispatched SIMD, bit-identical to its scalar reference) and the
// top-N cut is kernels::SelectTopN via core::TopNFromDense. This header
// only orchestrates: gather the touched rows and their weights per user,
// hand them to the kernels, apply the fallback/degradation policy.
//
// Reconstruction is pure post-processing of the released noisy table — it
// never reads the preference graph — which is why this header lives in the
// serving layer and depends only on ids, lists, the kernels, and the
// parallel runtime.

#ifndef PRIVREC_ARTIFACT_RECONSTRUCT_H_
#define PRIVREC_ARTIFACT_RECONSTRUCT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "core/degradation.h"
#include "core/recommendation.h"
#include "graph/ids.h"
#include "kernels/accumulate.h"

namespace privrec::serving {

// A non-owning view of one A_w release: everything reconstruction needs,
// whether the backing storage is a live ClusterRecommender or a loaded
// artifact.
struct ReleaseView {
  const double* values = nullptr;        // row-major [cluster][item]
  // Optional per-cluster row table for releases whose rows are not one
  // contiguous block (sharded artifacts). When set it takes precedence
  // over `values`; when the storage IS contiguous the two describe the
  // same addresses, so reconstruction is bit-identical either way.
  const double* const* rows = nullptr;
  // Optional f32-quantized mirror of the same table (the artifact's
  // kNoisyTableF32 / kNoisyRowsF32 sections). When present it is
  // preferred for the per-user accumulation — halving row traffic — and
  // the fig2 sweep gates its NDCG cost. The f64 table is still required
  // (global average and fallback stay full-width).
  const float* values_f32 = nullptr;
  const float* const* rows_f32 = nullptr;
  const uint8_t* sanitized = nullptr;    // per cluster
  const int64_t* cluster_of = nullptr;   // per user node
  const int64_t* cluster_sizes = nullptr;  // per cluster
  int64_t num_clusters = 0;
  int64_t num_items = 0;
  int64_t num_users = 0;  // |U|, the social graph's node count

  const double* Row(int64_t c) const {
    return rows != nullptr ? rows[c] : values + c * num_items;
  }
  bool HasF32() const {
    return rows_f32 != nullptr || values_f32 != nullptr;
  }
  const float* RowF32(int64_t c) const {
    return rows_f32 != nullptr ? rows_f32[c] : values_f32 + c * num_items;
  }
};

// Global-average utilities, the fallback row for users with no similarity
// support: Σ_c |c|·ŵ_c^i / |U| re-weights the released cluster rows back
// into one population-level row. Pure post-processing of the same release,
// so serving it costs no additional privacy. Always computed from the f64
// table: the fallback tier is cold, so it takes accuracy over row traffic.
inline std::vector<double> GlobalAverageUtilities(const ReleaseView& r) {
  const double num_users_d = static_cast<double>(r.num_users);
  std::vector<double> global(static_cast<size_t>(r.num_items), 0.0);
  for (int64_t c = 0; c < r.num_clusters; ++c) {
    double size = static_cast<double>(r.cluster_sizes[c]);
    if (size == 0.0) continue;
    const double* row = r.Row(c);
    for (int64_t i = 0; i < r.num_items; ++i) {
      global[static_cast<size_t>(i)] += size * row[i] / num_users_d;
    }
  }
  return global;
}

// Per-user reconstruction, parallel over fixed chunks of the request batch.
// `row_of(u)` yields u's sparse similarity row as a range of entries with
// `.user` / `.score` members (similarity::SimilarityEntry in-memory, the
// artifact's own record type when serving). `global_fn()` returns the
// GlobalAverageUtilities row for the same view; it is only invoked for
// isolated users, so callers that cache the row lazily (the serving
// engine, which skips the O(C·I) pass across swap storms) never pay for
// it on the personalized path. It must be safe to call from concurrent
// chunks. Lists and diagnostics are written to their slots in `lists` /
// `degradation` (resized here); the return value is the number of
// degraded users, folded in chunk order.
template <typename RowOf, typename GlobalFn>
Result<int64_t> ReconstructTopN(const ReleaseView& release, RowOf&& row_of,
                                GlobalFn&& global_fn,
                                const std::vector<graph::NodeId>& users,
                                int64_t top_n,
                                std::vector<core::RecommendationList>* lists,
                                std::vector<core::DegradationInfo>* degradation) {
  const int64_t num_clusters = release.num_clusters;
  const int64_t num_items = release.num_items;
  const bool use_f32 = release.HasF32();
  lists->resize(users.size());
  degradation->resize(users.size());
  return ParallelReduce(
      static_cast<int64_t>(users.size()), int64_t{0},
      [&](int64_t, int64_t begin, int64_t end) {
        // Worker-local scratch, fully re-zeroed between users (sim_sum via
        // the touched list, utilities via std::fill), so results do not
        // depend on which chunks this worker ran before.
        thread_local std::vector<double> sim_sum;
        thread_local std::vector<int64_t> touched;
        thread_local std::vector<double> utilities;
        thread_local std::vector<double> scales;
        thread_local std::vector<const double*> row_ptrs;
        thread_local std::vector<const float*> row_ptrs_f32;
        if (sim_sum.size() < static_cast<size_t>(num_clusters)) {
          sim_sum.assign(static_cast<size_t>(num_clusters), 0.0);
        }
        utilities.resize(static_cast<size_t>(num_items));
        int64_t chunk_degraded = 0;
        for (int64_t k = begin; k < end; ++k) {
          graph::NodeId u = users[static_cast<size_t>(k)];
          touched.clear();
          for (const auto& e : row_of(u)) {
            int64_t c = release.cluster_of[e.user];
            if (sim_sum[static_cast<size_t>(c)] == 0.0) touched.push_back(c);
            sim_sum[static_cast<size_t>(c)] += e.score;
          }
          core::DegradationInfo info;
          if (touched.empty()) {
            // No similarity support: the reconstruction formula would rank
            // every item 0. Serve the global-average ranking instead of an
            // arbitrary tie-break.
            info.reason = core::DegradationReason::kIsolatedUser;
            (*lists)[static_cast<size_t>(k)] =
                core::TopNFromDense(global_fn(), top_n);
          } else {
            // Gather the touched rows and their weights in first-touch
            // order — the kernel adds them per element in exactly this
            // order, so the FP stream matches the historical loop.
            std::fill(utilities.begin(), utilities.end(), 0.0);
            scales.clear();
            row_ptrs.clear();
            row_ptrs_f32.clear();
            bool touched_sanitized = false;
            for (int64_t c : touched) {
              scales.push_back(sim_sum[static_cast<size_t>(c)]);
              if (release.sanitized[static_cast<size_t>(c)]) {
                touched_sanitized = true;
              }
              if (use_f32) {
                row_ptrs_f32.push_back(release.RowF32(c));
              } else {
                row_ptrs.push_back(release.Row(c));
              }
              sim_sum[static_cast<size_t>(c)] = 0.0;
            }
            const auto num_rows = static_cast<int64_t>(scales.size());
            if (use_f32) {
              kernels::AccumulateRowsF32(row_ptrs_f32.data(), scales.data(),
                                         num_rows, num_items,
                                         utilities.data());
            } else {
              kernels::AccumulateRows(row_ptrs.data(), scales.data(),
                                      num_rows, num_items,
                                      utilities.data());
            }
            if (touched_sanitized) {
              info.reason = core::DegradationReason::kNonFiniteSanitized;
            }
            (*lists)[static_cast<size_t>(k)] =
                core::TopNFromDense(utilities, top_n);
          }
          if (info.degraded()) ++chunk_degraded;
          (*degradation)[static_cast<size_t>(k)] = info;
        }
        return chunk_degraded;
      },
      [](int64_t& acc, int64_t part) { acc += part; });
}

}  // namespace privrec::serving

#endif  // PRIVREC_ARTIFACT_RECONSTRUCT_H_
