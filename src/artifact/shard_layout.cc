#include "artifact/shard_layout.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "artifact/format.h"
#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/macros.h"

namespace privrec::serving {

// The raw-array sections are memcpy'd to and from disk; the format is
// defined as little-endian IEEE-754, which is what every supported target
// is. A big-endian port would need byte-swapping read/write shims here.
static_assert(std::endian::native == std::endian::little,
              "sharded .pvra layout requires a little-endian target");
static_assert(sizeof(WorkloadEntry) == 16 &&
                  offsetof(WorkloadEntry, user) == 0 &&
                  offsetof(WorkloadEntry, score) == 8,
              "WorkloadEntry must match its 16-byte on-disk record layout");
static_assert(sizeof(double) == 8, "f64 storage assumed");
static_assert(sizeof(float) == 4, "f32 storage assumed");

namespace {

constexpr uint64_t kFrameHeaderBytes = 16;
constexpr uint64_t kTableEntryBytes = 32;
// A manifest has at most 9 sections and a shard 5; anything claiming more
// is damage, not data.
constexpr uint32_t kMaxSections = 64;

uint64_t AlignUp(uint64_t v) {
  return (v + kShardAlignment - 1) / kShardAlignment * kShardAlignment;
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

// Atomic publication, same discipline (and same fault points) as
// SaveArtifact: temp file in the destination directory, flush, rename.
Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  if (fault::Hit("artifact.open") == fault::FaultKind::kIoError) {
    return Status::IoError("injected open failure for '" + path + "'");
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open '" + tmp + "' for writing");
    }
    if (fault::Hit("artifact.write") == fault::FaultKind::kIoError) {
      std::remove(tmp.c_str());
      return Status::IoError("injected write failure for '" + path + "'");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IoError("write to '" + tmp + "' failed");
    }
  }
  if (fault::Hit("artifact.rename") == fault::FaultKind::kIoError) {
    std::remove(tmp.c_str());
    return Status::IoError("injected rename failure for '" + path + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status::Ok();
}

std::string RawBytes(const void* data, size_t size) {
  return std::string(static_cast<const char*>(data), size);
}

}  // namespace

const char* ManifestSectionName(ManifestSectionId id) {
  switch (id) {
    case ManifestSectionId::kManifestMeta: return "manifest_meta";
    case ManifestSectionId::kShardTable: return "shard_table";
    case ManifestSectionId::kClusterOf: return "cluster_of";
    case ManifestSectionId::kClusterSizes: return "cluster_sizes";
    case ManifestSectionId::kSanitizedFlags: return "sanitized_flags";
    case ManifestSectionId::kWorkloadOffsets: return "workload_offsets";
    case ManifestSectionId::kPrefOffsets: return "pref_offsets";
    case ManifestSectionId::kLowRankB: return "low_rank_b";
    case ManifestSectionId::kLowRankL: return "low_rank_l";
  }
  return "unknown";
}

const char* ShardSectionName(ShardSectionId id) {
  switch (id) {
    case ShardSectionId::kShardHeader: return "shard_header";
    case ShardSectionId::kNoisyRows: return "noisy_rows";
    case ShardSectionId::kWorkloadEntries: return "workload_entries";
    case ShardSectionId::kPrefItems: return "pref_items";
    case ShardSectionId::kPrefWeights: return "pref_weights";
    case ShardSectionId::kNoisyRowsF32: return "noisy_rows_f32";
  }
  return "unknown";
}

std::string EncodeAlignedContainer(
    uint32_t magic, uint32_t version,
    const std::vector<AlignedSection>& sections) {
  PRIVREC_CHECK(sections.size() <= kMaxSections);
  const uint64_t frame_bytes =
      kFrameHeaderBytes + kTableEntryBytes * sections.size();

  // Lay payloads out at aligned offsets after the frame.
  std::vector<uint64_t> offsets(sections.size());
  uint64_t cursor = AlignUp(frame_bytes);
  for (size_t k = 0; k < sections.size(); ++k) {
    offsets[k] = cursor;
    cursor = AlignUp(cursor + sections[k].payload.size());
  }
  const uint64_t total =
      sections.empty()
          ? frame_bytes
          : offsets.back() + sections.back().payload.size();

  std::string out;
  out.reserve(total);
  PutU32(&out, magic);
  PutU32(&out, version);
  PutU32(&out, static_cast<uint32_t>(sections.size()));
  PutU32(&out, 0);
  for (size_t k = 0; k < sections.size(); ++k) {
    PutU32(&out, sections[k].id);
    PutU32(&out, 0);
    PutU64(&out, offsets[k]);
    PutU64(&out, sections[k].payload.size());
    PutU32(&out, Crc32(sections[k].payload.data(),
                       sections[k].payload.size()));
    PutU32(&out, 0);
  }
  for (size_t k = 0; k < sections.size(); ++k) {
    out.resize(offsets[k], '\0');  // zero padding up to the aligned offset
    out.append(sections[k].payload);
  }
  return out;
}

Result<AlignedContainerView> ParseAlignedContainer(
    const char* data, uint64_t size, uint32_t expected_magic,
    uint32_t expected_version, const std::string& what) {
  auto damaged = [&](const std::string& detail) {
    return Status::ParseError(what + " truncated or corrupt: " + detail);
  };
  if (size < kFrameHeaderBytes) return damaged("shorter than the header");

  auto u32_at = [&](uint64_t off) {
    uint32_t v = 0;
    std::memcpy(&v, data + off, 4);
    return v;
  };
  auto u64_at = [&](uint64_t off) {
    uint64_t v = 0;
    std::memcpy(&v, data + off, 8);
    return v;
  };

  AlignedContainerView view;
  view.magic = u32_at(0);
  view.version = u32_at(4);
  if (view.magic != expected_magic) {
    return damaged("bad magic (not the expected container type)");
  }
  if (view.version != expected_version) {
    return Status::VersionMismatch(
        what + " has format version " + std::to_string(view.version) +
        ", this reader expects " + std::to_string(expected_version));
  }
  const uint32_t count = u32_at(8);
  if (count > kMaxSections) return damaged("absurd section count");
  view.frame_bytes = kFrameHeaderBytes + kTableEntryBytes * count;
  if (size < view.frame_bytes) return damaged("section table truncated");

  view.sections.reserve(count);
  for (uint32_t k = 0; k < count; ++k) {
    const uint64_t base = kFrameHeaderBytes + kTableEntryBytes * k;
    AlignedSectionView s;
    s.id = u32_at(base);
    s.offset = u64_at(base + 8);
    s.size = u64_at(base + 16);
    s.crc32 = u32_at(base + 24);
    if (s.offset < view.frame_bytes || s.offset > size ||
        s.size > size - s.offset) {
      return damaged("section table entry out of the file's byte range");
    }
    if (s.offset % kShardAlignment != 0) {
      return damaged("section payload is misaligned");
    }
    view.sections.push_back(s);
  }
  return view;
}

std::string EncodeManifestMeta(const ManifestMeta& m) {
  ByteWriter w;
  w.U64(m.meta.graph_hash);
  w.I64(m.meta.num_users);
  w.I64(m.meta.num_items);
  w.I64(m.meta.num_social_edges);
  w.I64(m.meta.num_preference_edges);
  w.F64(m.meta.max_weight);
  w.Str(m.meta.measure_name);
  w.F64(m.provenance.epsilon);
  w.F64(m.provenance.sensitivity);
  w.U64(m.provenance.seed);
  w.Str(m.provenance.ledger_id);
  w.F64(m.max_column_sum);
  w.F64(m.max_entry);
  w.I64(m.num_clusters);
  w.I64(m.empty_clusters);
  w.I64(m.singleton_clusters);
  w.I64(m.nonfinite_sanitized);
  w.U8(m.has_preferences ? 1 : 0);
  w.U8(m.has_lowrank ? 1 : 0);
  w.I64(m.lowrank_rank);
  w.F64(m.lowrank_noise_sensitivity);
  w.F64(m.lowrank_factorization_error);
  w.U32(m.shard_count);
  w.U64(m.artifact_token);
  w.U8(m.has_noisy_f32 ? 1 : 0);
  w.U32(m.noisy_f32_source_crc32);
  return w.Take();
}

Status DecodeManifestMeta(const std::string& payload, ManifestMeta* m) {
  ByteReader r(payload, ManifestSectionName(ManifestSectionId::kManifestMeta));
  uint8_t has_prefs = 0, has_lowrank = 0, has_f32 = 0;
  if (!r.U64(&m->meta.graph_hash) || !r.I64(&m->meta.num_users) ||
      !r.I64(&m->meta.num_items) || !r.I64(&m->meta.num_social_edges) ||
      !r.I64(&m->meta.num_preference_edges) || !r.F64(&m->meta.max_weight) ||
      !r.Str(&m->meta.measure_name) || !r.F64(&m->provenance.epsilon) ||
      !r.F64(&m->provenance.sensitivity) || !r.U64(&m->provenance.seed) ||
      !r.Str(&m->provenance.ledger_id) || !r.F64(&m->max_column_sum) ||
      !r.F64(&m->max_entry) || !r.I64(&m->num_clusters) ||
      !r.I64(&m->empty_clusters) || !r.I64(&m->singleton_clusters) ||
      !r.I64(&m->nonfinite_sanitized) || !r.U8(&has_prefs) ||
      !r.U8(&has_lowrank) || !r.I64(&m->lowrank_rank) ||
      !r.F64(&m->lowrank_noise_sensitivity) ||
      !r.F64(&m->lowrank_factorization_error) || !r.U32(&m->shard_count) ||
      !r.U64(&m->artifact_token) || !r.U8(&has_f32) ||
      !r.U32(&m->noisy_f32_source_crc32) || !r.AtEnd()) {
    return r.Truncated();
  }
  m->has_preferences = has_prefs != 0;
  m->has_lowrank = has_lowrank != 0;
  m->has_noisy_f32 = has_f32 != 0;
  if (m->meta.num_users < 0 || m->meta.num_items < 0) return r.Truncated();
  return Status::Ok();
}

std::string EncodeShardTable(const std::vector<ShardTableEntry>& t) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(t.size()));
  for (const ShardTableEntry& e : t) {
    w.Str(e.file);
    w.I64(e.cluster_begin);
    w.I64(e.cluster_end);
    w.U64(e.file_size);
    w.U32(e.frame_crc32);
    w.U64(e.noisy_values);
    w.U64(e.workload_entries);
    w.U64(e.pref_edges);
  }
  return w.Take();
}

Status DecodeShardTable(const std::string& payload,
                        std::vector<ShardTableEntry>* t) {
  ByteReader r(payload, ManifestSectionName(ManifestSectionId::kShardTable));
  uint32_t count = 0;
  if (!r.U32(&count) || !r.FitsCount(count, 8)) return r.Truncated();
  t->resize(count);
  for (ShardTableEntry& e : *t) {
    if (!r.Str(&e.file) || !r.I64(&e.cluster_begin) ||
        !r.I64(&e.cluster_end) || !r.U64(&e.file_size) ||
        !r.U32(&e.frame_crc32) || !r.U64(&e.noisy_values) ||
        !r.U64(&e.workload_entries) || !r.U64(&e.pref_edges)) {
      return r.Truncated();
    }
  }
  if (!r.AtEnd()) return r.Truncated();
  return Status::Ok();
}

std::string EncodeShardHeader(const ShardHeader& h) {
  ByteWriter w;
  w.U64(h.graph_hash);
  w.U64(h.artifact_token);
  w.U32(h.shard_index);
  w.U32(h.shard_count);
  w.I64(h.cluster_begin);
  w.I64(h.cluster_end);
  w.I64(h.num_items);
  w.U64(h.workload_entries);
  w.U64(h.pref_edges);
  return w.Take();
}

Status DecodeShardHeader(const std::string& payload, ShardHeader* h) {
  ByteReader r(payload, ShardSectionName(ShardSectionId::kShardHeader));
  if (!r.U64(&h->graph_hash) || !r.U64(&h->artifact_token) ||
      !r.U32(&h->shard_index) || !r.U32(&h->shard_count) ||
      !r.I64(&h->cluster_begin) || !r.I64(&h->cluster_end) ||
      !r.I64(&h->num_items) || !r.U64(&h->workload_entries) ||
      !r.U64(&h->pref_edges) || !r.AtEnd()) {
    return r.Truncated();
  }
  return Status::Ok();
}

uint64_t ArtifactToken(const ArtifactModel& model) {
  // splitmix64-style mixing of the identity-bearing scalars. Deterministic
  // across runs and platforms; never persisted anywhere but here.
  auto mix = [](uint64_t h, uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    uint64_t z = h;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  uint64_t h = 0x50565241ull;  // "PVRA"
  h = mix(h, model.meta.graph_hash);
  h = mix(h, model.provenance.seed);
  h = mix(h, std::bit_cast<uint64_t>(model.provenance.epsilon));
  h = mix(h, static_cast<uint64_t>(model.noisy.num_clusters));
  h = mix(h, static_cast<uint64_t>(model.meta.num_items));
  return h;
}

std::vector<int64_t> ShardClusterBounds(const ArtifactModel& model,
                                        int64_t shards) {
  const int64_t num_clusters = model.noisy.num_clusters;
  const int64_t k_max = std::max<int64_t>(num_clusters, 1);
  const int64_t k = std::clamp<int64_t>(shards, 1, k_max);

  // Estimated bytes a cluster contributes to its shard: its noisy row
  // plus the workload records of its users (the dominant payloads).
  std::vector<uint64_t> weight(static_cast<size_t>(num_clusters), 0);
  for (size_t u = 0; u < model.partition.cluster_of.size(); ++u) {
    const int64_t c = model.partition.cluster_of[u];
    weight[static_cast<size_t>(c)] +=
        (model.workload.offsets[u + 1] - model.workload.offsets[u]) *
        sizeof(WorkloadEntry);
  }
  uint64_t total = 0;
  for (int64_t c = 0; c < num_clusters; ++c) {
    weight[static_cast<size_t>(c)] +=
        static_cast<uint64_t>(model.meta.num_items) * sizeof(double);
    total += weight[static_cast<size_t>(c)];
  }

  // Greedy balanced cuts: close shard s once its cumulative weight crosses
  // the s-th ideal boundary, but always leave one cluster per open shard.
  std::vector<int64_t> bounds;
  bounds.reserve(static_cast<size_t>(k) + 1);
  bounds.push_back(0);
  uint64_t cum = 0;
  int64_t c = 0;
  for (int64_t s = 0; s + 1 < k; ++s) {
    const uint64_t target = total * static_cast<uint64_t>(s + 1) /
                            static_cast<uint64_t>(k);
    const int64_t last_start = num_clusters - (k - s - 1);
    do {
      cum += weight[static_cast<size_t>(c)];
      ++c;
    } while (c < last_start && cum < target);
    bounds.push_back(c);
  }
  bounds.push_back(num_clusters);
  return bounds;
}

Status SaveShardedArtifact(const ArtifactModel& model,
                           const std::string& manifest_path,
                           const ShardingOptions& options) {
  const std::vector<int64_t> bounds = ShardClusterBounds(model, options.shards);
  const auto shard_count = static_cast<uint32_t>(bounds.size() - 1);
  const uint64_t token = ArtifactToken(model);
  const size_t num_users = model.partition.cluster_of.size();
  const auto num_items = static_cast<uint64_t>(model.meta.num_items);

  // Shard owning each cluster.
  std::vector<uint32_t> shard_of_cluster(
      static_cast<size_t>(model.noisy.num_clusters), 0);
  for (uint32_t s = 0; s < shard_count; ++s) {
    for (int64_t c = bounds[s]; c < bounds[s + 1]; ++c) {
      shard_of_cluster[static_cast<size_t>(c)] = s;
    }
  }

  const std::string dir_sep = manifest_path.find('/') != std::string::npos
                                  ? manifest_path.substr(
                                        0, manifest_path.rfind('/') + 1)
                                  : std::string();
  const std::string base_name = manifest_path.substr(dir_sep.size());

  std::vector<ShardTableEntry> table(shard_count);
  for (uint32_t s = 0; s < shard_count; ++s) {
    const int64_t cb = bounds[s], ce = bounds[s + 1];

    // Concatenate the shard's users' workload / preference rows in
    // ascending user order — the order the loader rebuilds its per-user
    // row pointers in, so round-tripping is exact.
    std::string workload_blob, pref_items_blob, pref_weights_blob;
    uint64_t entry_count = 0, pref_count = 0;
    for (size_t u = 0; u < num_users; ++u) {
      const uint32_t us =
          shard_of_cluster[static_cast<size_t>(model.partition.cluster_of[u])];
      if (us != s) continue;
      const uint64_t begin = model.workload.offsets[u];
      const uint64_t end = model.workload.offsets[u + 1];
      workload_blob.append(RawBytes(model.workload.entries.data() + begin,
                                    (end - begin) * sizeof(WorkloadEntry)));
      entry_count += end - begin;
      if (model.has_preferences) {
        const uint64_t pb = model.preferences.offsets[u];
        const uint64_t pe = model.preferences.offsets[u + 1];
        pref_items_blob.append(RawBytes(model.preferences.items.data() + pb,
                                        (pe - pb) * sizeof(int64_t)));
        pref_weights_blob.append(
            RawBytes(model.preferences.weights.data() + pb,
                     (pe - pb) * sizeof(double)));
        pref_count += pe - pb;
      }
    }

    ShardHeader header;
    header.graph_hash = model.meta.graph_hash;
    header.artifact_token = token;
    header.shard_index = s;
    header.shard_count = shard_count;
    header.cluster_begin = cb;
    header.cluster_end = ce;
    header.num_items = model.meta.num_items;
    header.workload_entries = entry_count;
    header.pref_edges = pref_count;

    std::vector<AlignedSection> sections;
    sections.push_back({static_cast<uint32_t>(ShardSectionId::kShardHeader),
                        EncodeShardHeader(header)});
    sections.push_back(
        {static_cast<uint32_t>(ShardSectionId::kNoisyRows),
         RawBytes(model.noisy.values.data() +
                      static_cast<uint64_t>(cb) * num_items,
                  static_cast<uint64_t>(ce - cb) * num_items *
                      sizeof(double))});
    if (model.has_noisy_f32) {
      sections.push_back(
          {static_cast<uint32_t>(ShardSectionId::kNoisyRowsF32),
           RawBytes(model.noisy_f32.values.data() +
                        static_cast<uint64_t>(cb) * num_items,
                    static_cast<uint64_t>(ce - cb) * num_items *
                        sizeof(float))});
    }
    sections.push_back(
        {static_cast<uint32_t>(ShardSectionId::kWorkloadEntries),
         std::move(workload_blob)});
    if (model.has_preferences) {
      sections.push_back({static_cast<uint32_t>(ShardSectionId::kPrefItems),
                          std::move(pref_items_blob)});
      sections.push_back(
          {static_cast<uint32_t>(ShardSectionId::kPrefWeights),
           std::move(pref_weights_blob)});
    }

    const std::string bytes =
        EncodeAlignedContainer(kShardMagic, kShardFormatVersion, sections);
    const std::string shard_file = base_name + ".shard" + std::to_string(s);
    Status written = WriteFileAtomic(dir_sep + shard_file, bytes);
    if (!written.ok()) return written;

    ShardTableEntry& e = table[s];
    e.file = shard_file;
    e.cluster_begin = cb;
    e.cluster_end = ce;
    e.file_size = bytes.size();
    const uint64_t frame =
        kFrameHeaderBytes + kTableEntryBytes * sections.size();
    e.frame_crc32 = Crc32(bytes.data(), frame);
    e.noisy_values = static_cast<uint64_t>(ce - cb) * num_items;
    e.workload_entries = entry_count;
    e.pref_edges = pref_count;
  }

  ManifestMeta meta;
  meta.meta = model.meta;
  meta.provenance = model.provenance;
  meta.max_column_sum = model.workload.max_column_sum;
  meta.max_entry = model.workload.max_entry;
  meta.num_clusters = model.noisy.num_clusters;
  meta.empty_clusters = model.noisy.empty_clusters;
  meta.singleton_clusters = model.noisy.singleton_clusters;
  meta.nonfinite_sanitized = model.noisy.nonfinite_sanitized;
  meta.has_preferences = model.has_preferences;
  meta.has_lowrank = model.has_lowrank;
  meta.lowrank_rank = model.lowrank.rank;
  meta.lowrank_noise_sensitivity = model.lowrank.noise_sensitivity;
  meta.lowrank_factorization_error = model.lowrank.factorization_error;
  meta.shard_count = shard_count;
  meta.artifact_token = token;
  meta.has_noisy_f32 = model.has_noisy_f32;
  meta.noisy_f32_source_crc32 = model.noisy_f32.source_crc32;

  std::vector<AlignedSection> sections;
  sections.push_back({static_cast<uint32_t>(ManifestSectionId::kManifestMeta),
                      EncodeManifestMeta(meta)});
  sections.push_back({static_cast<uint32_t>(ManifestSectionId::kShardTable),
                      EncodeShardTable(table)});
  sections.push_back(
      {static_cast<uint32_t>(ManifestSectionId::kClusterOf),
       RawBytes(model.partition.cluster_of.data(),
                model.partition.cluster_of.size() * sizeof(int64_t))});
  sections.push_back(
      {static_cast<uint32_t>(ManifestSectionId::kClusterSizes),
       RawBytes(model.partition.sizes.data(),
                model.partition.sizes.size() * sizeof(int64_t))});
  sections.push_back(
      {static_cast<uint32_t>(ManifestSectionId::kSanitizedFlags),
       RawBytes(model.noisy.sanitized.data(), model.noisy.sanitized.size())});
  sections.push_back(
      {static_cast<uint32_t>(ManifestSectionId::kWorkloadOffsets),
       RawBytes(model.workload.offsets.data(),
                model.workload.offsets.size() * sizeof(uint64_t))});
  if (model.has_preferences) {
    sections.push_back(
        {static_cast<uint32_t>(ManifestSectionId::kPrefOffsets),
         RawBytes(model.preferences.offsets.data(),
                  model.preferences.offsets.size() * sizeof(uint64_t))});
  }
  if (model.has_lowrank) {
    sections.push_back(
        {static_cast<uint32_t>(ManifestSectionId::kLowRankB),
         RawBytes(model.lowrank.b.data(),
                  model.lowrank.b.size() * sizeof(double))});
    sections.push_back(
        {static_cast<uint32_t>(ManifestSectionId::kLowRankL),
         RawBytes(model.lowrank.l.data(),
                  model.lowrank.l.size() * sizeof(double))});
  }

  return WriteFileAtomic(
      manifest_path,
      EncodeAlignedContainer(kManifestMagic, kShardFormatVersion, sections));
}

}  // namespace privrec::serving
