#include "artifact/format.h"

#include <bit>
#include <string>

#include "artifact/model.h"
#include "common/crc32.h"

namespace privrec::serving {

const char* SectionName(SectionId id) {
  switch (id) {
    case SectionId::kGraphMeta:
      return "graph_meta";
    case SectionId::kPartition:
      return "partition";
    case SectionId::kWorkload:
      return "workload";
    case SectionId::kNoisyTable:
      return "noisy_table";
    case SectionId::kProvenance:
      return "provenance";
    case SectionId::kPreferences:
      return "preferences";
    case SectionId::kLowRank:
      return "low_rank";
    case SectionId::kNoisyTableF32:
      return "noisy_table_f32";
  }
  return "unknown";
}

void ByteWriter::F64(double v) { PutLe(std::bit_cast<uint64_t>(v)); }

void ByteWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

void ByteWriter::Bytes(const void* data, size_t size) {
  buf_.append(static_cast<const char*>(data), size);
}

bool ByteReader::U8(uint8_t* out) { return GetLe(out); }
bool ByteReader::U32(uint32_t* out) { return GetLe(out); }
bool ByteReader::U64(uint64_t* out) { return GetLe(out); }

bool ByteReader::I64(int64_t* out) {
  uint64_t v;
  if (!GetLe(&v)) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ByteReader::F64(double* out) {
  uint64_t v;
  if (!GetLe(&v)) return false;
  *out = std::bit_cast<double>(v);
  return true;
}

bool ByteReader::Str(std::string* out) {
  uint32_t size;
  if (!U32(&size)) return false;
  if (remaining() < size) return false;
  out->assign(p_, size);
  p_ += size;
  return true;
}

Status ByteReader::Truncated() const {
  return Status::ParseError("artifact section '" + context_ +
                            "' truncated or corrupt");
}

std::string EncodeContainer(uint32_t version,
                            const std::vector<RawSection>& sections) {
  ByteWriter w;
  w.U32(kArtifactMagic);
  w.U32(version);
  w.U32(static_cast<uint32_t>(sections.size()));
  for (const RawSection& s : sections) {
    w.U32(s.id);
    w.U64(s.payload.size());
    w.U32(Crc32(s.payload.data(), s.payload.size()));
    w.Bytes(s.payload.data(), s.payload.size());
  }
  return w.Take();
}

Result<std::vector<RawSection>> DecodeContainer(std::string_view bytes,
                                                uint32_t expected_version) {
  ByteReader r(bytes, "header");
  uint32_t magic, version, count;
  if (!r.U32(&magic) || !r.U32(&version) || !r.U32(&count)) {
    return Status::ParseError("artifact header truncated: not a .pvra file");
  }
  if (magic != kArtifactMagic) {
    return Status::ParseError("bad artifact magic: not a .pvra file");
  }
  if (version != expected_version) {
    return Status::VersionMismatch(
        "artifact format version " + std::to_string(version) +
        " != supported version " + std::to_string(expected_version));
  }
  // A sane artifact has single-digit section counts; anything large is a
  // corrupt header, and trusting it would mean a runaway loop below.
  if (count > 1024) {
    return Status::ParseError(
        "artifact header corrupt: implausible section count " +
        std::to_string(count));
  }
  std::vector<RawSection> sections;
  sections.reserve(count);
  for (uint32_t k = 0; k < count; ++k) {
    uint32_t id, crc;
    uint64_t size;
    if (!r.U32(&id) || !r.U64(&size) || !r.U32(&crc)) {
      return Status::ParseError(
          "artifact section table truncated at section " + std::to_string(k));
    }
    const std::string name = SectionName(static_cast<SectionId>(id));
    if (size > r.remaining()) {
      return Status::ParseError(
          "artifact section '" + name + "' truncated: payload of " +
          std::to_string(size) + " bytes exceeds the " +
          std::to_string(r.remaining()) + " bytes remaining");
    }
    RawSection s;
    s.id = id;
    s.payload.assign(r.pos(), static_cast<size_t>(size));
    (void)r.Skip(static_cast<size_t>(size));
    if (Crc32(s.payload.data(), s.payload.size()) != crc) {
      return Status::ParseError("artifact section '" + name +
                                "' failed its CRC32 check");
    }
    sections.push_back(std::move(s));
  }
  if (!r.AtEnd()) {
    return Status::ParseError("artifact has " + std::to_string(r.remaining()) +
                              " trailing bytes after the last section");
  }
  return sections;
}

}  // namespace privrec::serving
