// ModelArtifactBuilder: the offline half of the build/serve split.
//
// Runs the Fit() phase of every mechanism — createClusters on the public
// social graph, similarity-workload materialization, the ε-DP A_w
// publication, and optionally the LRM factorization — and assembles the
// result into a serving::ArtifactModel ready for SaveArtifact.
//
// This is the ONLY place in the two-phase pipeline that touches the
// private PreferenceGraph; everything downstream of the returned model is
// post-processing. Repeated Build() calls with the same (epsilon, seed)
// reuse one internal publisher whose invocation counter advances per call,
// so the k-th build releases exactly the noise the k-th in-memory
// Recommend would have drawn — the property the round-trip bit-identity
// tests (and repeated-trial benches) rely on.

#ifndef PRIVREC_ARTIFACT_BUILDER_H_
#define PRIVREC_ARTIFACT_BUILDER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "artifact/model.h"
#include "common/status.h"
#include "community/louvain.h"
#include "community/partition.h"
#include "core/cluster_recommender.h"
#include "core/low_rank_recommender.h"
#include "graph/preference_graph.h"
#include "graph/social_graph.h"
#include "similarity/similarity_measure.h"
#include "similarity/workload.h"

namespace privrec::artifact {

struct BuildOptions {
  // Privacy parameter of the A_w publication (dp::kEpsilonInfinity for the
  // paper's noiseless reference runs) and its RNG seed.
  double epsilon = 1.0;
  uint64_t seed = 100;
  // Similarity measure for the workload when none was injected via
  // SetWorkload (defaults to common neighbors, the paper's CN).
  const similarity::SimilarityMeasure* measure = nullptr;
  // createClusters configuration when no partition was injected.
  community::LouvainOptions louvain;
  // Persist the raw preference CSR so the reference baselines
  // (Exact/NOU/NOE/GS) can serve from the artifact. A production-shaped
  // artifact should turn this off: the sanitized sections alone serve the
  // paper's mechanism.
  bool include_reference_sections = true;
  // Also emit the f32-quantized kNoisyTableF32 mirror of the release.
  // Pure post-processing of the sanitized table (no extra privacy cost);
  // the serve path prefers it for row accumulation when present.
  bool table_f32 = false;
  // Additionally run the LRM factorization and persist B/L.
  bool include_lowrank = false;
  int64_t lrm_target_rank = 200;
  uint64_t lrm_seed = 500;
  // BudgetLedger entry id recorded in the provenance section ("" when the
  // release is not ledgered).
  std::string ledger_id;
};

class ModelArtifactBuilder {
 public:
  // Both graphs must outlive the builder.
  ModelArtifactBuilder(const graph::SocialGraph* social,
                       const graph::PreferenceGraph* preferences);

  // Inject a precomputed partition / workload (must outlive the builder);
  // otherwise Build computes and caches its own.
  void SetPartition(const community::Partition* partition);
  void SetWorkload(const similarity::SimilarityWorkload* workload);

  // Runs the build phase and returns the assembled model. Fresh noise per
  // call (see the class comment); everything else is cached across calls.
  Result<serving::ArtifactModel> Build(const BuildOptions& options);

  // The dataset fingerprint stamped into every model this builder emits —
  // what a caller passes as ServeSpec::expected_graph_hash.
  uint64_t graph_hash();

 private:
  const community::Partition& EnsurePartition(const BuildOptions& options);
  const similarity::SimilarityWorkload& EnsureWorkload(
      const BuildOptions& options);

  const graph::SocialGraph* social_;
  const graph::PreferenceGraph* preferences_;
  const community::Partition* partition_ = nullptr;
  const similarity::SimilarityWorkload* workload_ = nullptr;
  std::optional<community::Partition> owned_partition_;
  std::optional<similarity::SimilarityWorkload> owned_workload_;
  std::optional<uint64_t> graph_hash_;
  // Cached A_w publisher, keyed on the options that shape its noise.
  std::unique_ptr<core::ClusterRecommender> publisher_;
  double publisher_epsilon_ = 0.0;
  uint64_t publisher_seed_ = 0;
  // Cached LRM factorization (the SVD is the expensive part).
  std::unique_ptr<core::LowRankRecommender> lowrank_;
  int64_t lowrank_rank_ = 0;
  uint64_t lowrank_seed_ = 0;
};

}  // namespace privrec::artifact

#endif  // PRIVREC_ARTIFACT_BUILDER_H_
