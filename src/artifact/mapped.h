// Zero-copy access to a sharded .pvra artifact (.pvram manifest + shard
// files, see artifact/shard_layout.h).
//
// MappedFile maps a file read-only with mmap(2) and falls back to a plain
// read-into-buffer when mapping is unavailable or disabled
// (PRIVREC_NO_MMAP=1 / MapOptions::use_mmap=false) — the two paths expose
// the same bytes at the same alignment, so everything above them is
// byte-identical either way; sharded_artifact_test pins that.
//
// MappedArtifact opens the manifest, then every shard, and validates the
// whole set BEFORE exposing a single pointer: frame + payload CRCs
// (kDataLoss on mismatch), section byte ranges against the counts their
// headers claim (kParseError — a count may never size a read the section's
// actual bytes can't back), the dataset fingerprint (kGraphMismatch), the
// build token (kProvenanceMismatch), and the shard-set geometry
// (kFailedPrecondition for a missing/foreign/mis-sized shard set member;
// kNotFound when a referenced shard file does not exist). There is no
// partial load: Open either returns a fully-validated artifact or a typed
// error.
//
// Lifetime: the serving engine holds the MappedArtifact by shared_ptr and
// epoch snapshots hold the engine, so an mmap lives exactly as long as
// the last in-flight request pinned to its epoch — hot swap never unmaps
// bytes a reader could still touch.

#ifndef PRIVREC_ARTIFACT_MAPPED_H_
#define PRIVREC_ARTIFACT_MAPPED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "artifact/shard_layout.h"
#include "common/status.h"

namespace privrec::serving {

struct MapOptions {
  // mmap(2) the files; false reads them into heap buffers instead (the
  // portable fallback — same bytes, same semantics, RSS equal to file
  // size).
  bool use_mmap = true;
  // Verify every payload CRC at open. Leaving this on is the default —
  // with the slicing-by-8 CRC the full pass is still an order of
  // magnitude cheaper than a monolithic deserialize.
  bool verify_crc = true;
};

// use_mmap = false iff PRIVREC_NO_MMAP is set to a nonempty value other
// than "0".
MapOptions MapOptionsFromEnv();

// A read-only byte view of one file, mmap- or buffer-backed. Move-only.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  // kNotFound when the file does not exist; kIoError for open/map/read
  // failures.
  static Result<MappedFile> Open(const std::string& path, bool use_mmap);

  const char* data() const { return data_; }
  uint64_t size() const { return size_; }
  bool mmap_backed() const { return mapped_; }

 private:
  const char* data_ = nullptr;
  uint64_t size_ = 0;
  bool mapped_ = false;
  std::unique_ptr<char[]> owned_;  // fallback storage
};

// A fully validated, immutable view of one sharded artifact.
class MappedArtifact {
 public:
  struct Shard {
    ShardHeader header;
    const double* noisy_rows = nullptr;           // (ce-cb) x num_items
    const float* noisy_rows_f32 = nullptr;        // null without f32 mirror
    const WorkloadEntry* workload_entries = nullptr;
    const int64_t* pref_items = nullptr;          // null without prefs
    const double* pref_weights = nullptr;
  };

  // Opens manifest + shards with the full validation contract above.
  static Result<std::shared_ptr<const MappedArtifact>> Open(
      const std::string& manifest_path, const MapOptions& options);

  const ManifestMeta& meta() const { return meta_; }
  const std::vector<ShardTableEntry>& shard_table() const { return table_; }
  const std::vector<Shard>& shards() const { return shards_; }
  uint32_t shard_count() const { return meta_.shard_count; }

  const int64_t* cluster_of() const { return cluster_of_; }
  const int64_t* cluster_sizes() const { return cluster_sizes_; }
  const uint8_t* sanitized() const { return sanitized_; }
  const uint64_t* workload_offsets() const { return workload_offsets_; }
  const uint64_t* pref_offsets() const { return pref_offsets_; }
  const double* lowrank_b() const { return lowrank_b_; }
  const double* lowrank_l() const { return lowrank_l_; }

  bool mmap_backed() const { return manifest_.mmap_backed(); }
  uint64_t total_bytes() const { return total_bytes_; }

 private:
  ManifestMeta meta_;
  std::vector<ShardTableEntry> table_;
  std::vector<Shard> shards_;
  const int64_t* cluster_of_ = nullptr;
  const int64_t* cluster_sizes_ = nullptr;
  const uint8_t* sanitized_ = nullptr;
  const uint64_t* workload_offsets_ = nullptr;
  const uint64_t* pref_offsets_ = nullptr;
  const double* lowrank_b_ = nullptr;
  const double* lowrank_l_ = nullptr;
  uint64_t total_bytes_ = 0;
  MappedFile manifest_;
  std::vector<MappedFile> shard_files_;
};

}  // namespace privrec::serving

#endif  // PRIVREC_ARTIFACT_MAPPED_H_
