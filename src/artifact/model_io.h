// Serialization of ArtifactModel to/from the .pvra container.
//
// Saves are atomic: the container is written to a same-directory temp
// file, flushed, and renamed over the destination, so a crash mid-save
// can never leave a torn artifact where a reader (or the hot-swap
// runtime, src/serve) would pick it up — the previous file survives
// intact until the rename commits.
//
// Save and load are instrumented (privrec.artifact.{bytes,sections,
// save_ms,load_ms} plus artifact.save / artifact.load spans) and faultable
// (points artifact.open / artifact.write / artifact.rename /
// artifact.read; a short_read fault truncates the loaded bytes so the
// section-level robustness path is exercised end to end, and a latency
// fault on artifact.read stalls the load like a slow disk).
//
// Byte determinism: encoding an ArtifactModel is a pure function of its
// contents — no timestamps, pointers, or locale-dependent text — so two
// builds from the same inputs produce identical files. ci/sanitize.sh
// byte-compares artifacts across runs and thread counts to hold this.

#ifndef PRIVREC_ARTIFACT_MODEL_IO_H_
#define PRIVREC_ARTIFACT_MODEL_IO_H_

#include <string>

#include "artifact/model.h"
#include "common/status.h"

namespace privrec::serving {

// The container bytes for a model (no I/O) — what SaveArtifact writes.
std::string EncodeArtifact(const ArtifactModel& model);

// Parses container bytes back into a model. Errors carry the section name
// and come back as kParseError (damage), kVersionMismatch (format skew).
Result<ArtifactModel> DecodeArtifact(const std::string& bytes);

Status SaveArtifact(const ArtifactModel& model, const std::string& path);
Result<ArtifactModel> LoadArtifact(const std::string& path);

}  // namespace privrec::serving

#endif  // PRIVREC_ARTIFACT_MODEL_IO_H_
