#include "artifact/builder.h"

#include <utility>
#include <vector>

#include "common/crc32.h"
#include "core/recommender.h"
#include "graph/metrics.h"
#include "obs/trace.h"
#include "similarity/common_neighbors.h"

namespace privrec::artifact {

ModelArtifactBuilder::ModelArtifactBuilder(
    const graph::SocialGraph* social,
    const graph::PreferenceGraph* preferences)
    : social_(social), preferences_(preferences) {
  PRIVREC_CHECK(social != nullptr && preferences != nullptr);
  PRIVREC_CHECK_MSG(social->num_nodes() == preferences->num_users(),
                    "social and preference graphs disagree on |U|");
}

void ModelArtifactBuilder::SetPartition(
    const community::Partition* partition) {
  partition_ = partition;
  publisher_.reset();  // the publisher is bound to the old partition
}

void ModelArtifactBuilder::SetWorkload(
    const similarity::SimilarityWorkload* workload) {
  workload_ = workload;
  publisher_.reset();
  lowrank_.reset();
}

uint64_t ModelArtifactBuilder::graph_hash() {
  if (!graph_hash_) {
    graph_hash_ = graph::DatasetFingerprint(*social_, *preferences_);
  }
  return *graph_hash_;
}

const community::Partition& ModelArtifactBuilder::EnsurePartition(
    const BuildOptions& options) {
  if (partition_ != nullptr) return *partition_;
  if (!owned_partition_) {
    owned_partition_ =
        community::RunLouvain(*social_, options.louvain).partition;
  }
  return *owned_partition_;
}

const similarity::SimilarityWorkload& ModelArtifactBuilder::EnsureWorkload(
    const BuildOptions& options) {
  if (workload_ != nullptr) return *workload_;
  if (!owned_workload_) {
    static const similarity::CommonNeighbors kDefaultMeasure;
    const similarity::SimilarityMeasure& measure =
        options.measure != nullptr ? *options.measure : kDefaultMeasure;
    owned_workload_ =
        similarity::SimilarityWorkload::Compute(*social_, measure);
  }
  return *owned_workload_;
}

Result<serving::ArtifactModel> ModelArtifactBuilder::Build(
    const BuildOptions& options) {
  PRIVREC_SPAN("artifact.build");
  const community::Partition& partition = EnsurePartition(options);
  const similarity::SimilarityWorkload& workload = EnsureWorkload(options);
  if (partition.num_nodes() != social_->num_nodes()) {
    return Status::InvalidArgument(
        "partition does not cover the social graph's node set");
  }
  if (workload.num_users() != social_->num_nodes()) {
    return Status::InvalidArgument(
        "workload does not cover the social graph's node set");
  }

  core::RecommenderContext context;
  context.social = social_;
  context.preferences = preferences_;
  context.workload = &workload;

  // The A_w publication — the one ε-spending step. The publisher is
  // reused across builds with the same (epsilon, seed) so its invocation
  // counter mirrors an in-memory recommender's repeated Recommend calls.
  if (publisher_ == nullptr || publisher_epsilon_ != options.epsilon ||
      publisher_seed_ != options.seed) {
    core::ClusterRecommenderOptions cluster_options;
    cluster_options.epsilon = options.epsilon;
    cluster_options.seed = options.seed;
    publisher_ = std::make_unique<core::ClusterRecommender>(
        context, partition, cluster_options);
    publisher_epsilon_ = options.epsilon;
    publisher_seed_ = options.seed;
  }
  core::ClusterRelease release = publisher_->ComputeRelease();

  serving::ArtifactModel model;
  model.meta.graph_hash = graph_hash();
  model.meta.num_users = social_->num_nodes();
  model.meta.num_items = preferences_->num_items();
  model.meta.num_social_edges = social_->num_edges();
  model.meta.num_preference_edges = preferences_->num_edges();
  model.meta.max_weight = preferences_->max_weight();
  model.meta.measure_name = workload.measure_name();

  model.partition.cluster_of = partition.cluster_of();
  model.partition.sizes = partition.sizes();

  model.workload.offsets.assign(workload.offsets().begin(),
                                workload.offsets().end());
  model.workload.entries.reserve(workload.entries().size());
  for (const similarity::SimilarityEntry& e : workload.entries()) {
    model.workload.entries.push_back({e.user, e.score});
  }
  model.workload.max_column_sum = workload.MaxColumnSum();
  model.workload.max_entry = workload.MaxEntry();

  model.noisy.num_clusters = partition.num_clusters();
  model.noisy.values = std::move(release.values);
  model.noisy.sanitized = std::move(release.sanitized);
  model.noisy.empty_clusters = release.empty_clusters;
  model.noisy.singleton_clusters = release.singleton_clusters;
  model.noisy.nonfinite_sanitized = release.nonfinite_sanitized;

  if (options.table_f32) {
    // Quantize the released table to f32 and bind the mirror to its f64
    // source by CRC so a serve path can prove the widths agree.
    model.has_noisy_f32 = true;
    model.noisy_f32.values.reserve(model.noisy.values.size());
    for (double v : model.noisy.values) {
      model.noisy_f32.values.push_back(static_cast<float>(v));
    }
    model.noisy_f32.source_crc32 =
        Crc32(model.noisy.values.data(),
              model.noisy.values.size() * sizeof(double));
  }

  model.provenance.epsilon = options.epsilon;
  model.provenance.sensitivity = preferences_->max_weight();
  model.provenance.seed = options.seed;
  model.provenance.ledger_id = options.ledger_id;

  if (options.include_reference_sections) {
    model.has_preferences = true;
    auto& p = model.preferences;
    p.offsets.reserve(static_cast<size_t>(social_->num_nodes()) + 1);
    p.offsets.push_back(0);
    p.items.reserve(static_cast<size_t>(preferences_->num_edges()));
    p.weights.reserve(static_cast<size_t>(preferences_->num_edges()));
    for (graph::NodeId u = 0; u < preferences_->num_users(); ++u) {
      auto items = preferences_->ItemsOf(u);
      auto weights = preferences_->WeightsOf(u);
      p.items.insert(p.items.end(), items.begin(), items.end());
      p.weights.insert(p.weights.end(), weights.begin(), weights.end());
      p.offsets.push_back(p.items.size());
    }
  }

  if (options.include_lowrank) {
    if (lowrank_ == nullptr || lowrank_rank_ != options.lrm_target_rank ||
        lowrank_seed_ != options.lrm_seed) {
      core::LowRankRecommenderOptions lrm_options;
      lrm_options.epsilon = options.epsilon;
      lrm_options.target_rank = options.lrm_target_rank;
      lrm_options.seed = options.lrm_seed;
      lowrank_ = std::make_unique<core::LowRankRecommender>(context,
                                                            lrm_options);
      lowrank_rank_ = options.lrm_target_rank;
      lowrank_seed_ = options.lrm_seed;
    }
    model.has_lowrank = true;
    auto& lr = model.lowrank;
    lr.rank = lowrank_->rank();
    const la::DenseMatrix& b = lowrank_->b();
    const la::DenseMatrix& l = lowrank_->l();
    lr.b.reserve(static_cast<size_t>(b.rows()) *
                 static_cast<size_t>(b.cols()));
    for (int64_t r = 0; r < b.rows(); ++r) {
      const double* row = b.RowPtr(r);
      lr.b.insert(lr.b.end(), row, row + b.cols());
    }
    lr.l.reserve(static_cast<size_t>(l.rows()) *
                 static_cast<size_t>(l.cols()));
    for (int64_t r = 0; r < l.rows(); ++r) {
      const double* row = l.RowPtr(r);
      lr.l.insert(lr.l.end(), row, row + l.cols());
    }
    lr.noise_sensitivity = lowrank_->noise_sensitivity();
    lr.factorization_error = lowrank_->factorization_error();
  }

  return model;
}

}  // namespace privrec::artifact
