#include "artifact/serving.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>
#include <utility>

#include "artifact/model_io.h"
#include "artifact/shard_layout.h"
#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/parallel.h"
#include "common/random.h"
#include "dp/mechanisms.h"
#include "obs/trace.h"

namespace privrec::serving {

namespace {

// ---- Engine validation ----

Status Invalid(const SectionId id, const std::string& what) {
  return Status::ParseError("artifact section '" +
                            std::string(SectionName(id)) + "' invalid: " +
                            what);
}

Status ValidateModel(const ArtifactModel& m) {
  const int64_t num_users = m.meta.num_users;
  const int64_t num_items = m.meta.num_items;
  if (num_users < 0 || num_items < 0) {
    return Invalid(SectionId::kGraphMeta, "negative dimensions");
  }
  const size_t nu = static_cast<size_t>(num_users);

  if (m.partition.cluster_of.size() != nu) {
    return Invalid(SectionId::kPartition, "cluster_of size != num_users");
  }
  const int64_t num_clusters =
      static_cast<int64_t>(m.partition.sizes.size());
  for (int64_t c : m.partition.cluster_of) {
    if (c < 0 || c >= num_clusters) {
      return Invalid(SectionId::kPartition, "cluster id out of range");
    }
  }

  const auto& w = m.workload;
  if (w.offsets.size() != nu + 1 || w.offsets.front() != 0 ||
      w.offsets.back() != w.entries.size()) {
    return Invalid(SectionId::kWorkload, "offsets do not index the entries");
  }
  for (size_t k = 0; k + 1 < w.offsets.size(); ++k) {
    if (w.offsets[k] > w.offsets[k + 1]) {
      return Invalid(SectionId::kWorkload, "offsets not monotone");
    }
  }
  for (const WorkloadEntry& e : w.entries) {
    if (e.user < 0 || e.user >= num_users) {
      return Invalid(SectionId::kWorkload, "entry user out of range");
    }
  }

  if (m.noisy.num_clusters != num_clusters) {
    return Invalid(SectionId::kNoisyTable,
                   "cluster count disagrees with the partition");
  }
  // Checked by division, not by comparing against nc * ni: the counts come
  // from untrusted section headers, and a product in size_t can wrap back
  // to a plausible value (e.g. items = 2^62, clusters = 4) — the classic
  // path to sizing a vector smaller than the loop that fills it.
  const size_t ni = static_cast<size_t>(num_items);
  const bool noisy_sized =
      ni == 0 ? m.noisy.values.empty()
              : m.noisy.values.size() % ni == 0 &&
                    m.noisy.values.size() / ni ==
                        static_cast<size_t>(num_clusters);
  if (!noisy_sized) {
    return Invalid(SectionId::kNoisyTable,
                   "value table is not num_clusters x num_items");
  }
  if (m.noisy.sanitized.size() != static_cast<size_t>(num_clusters)) {
    return Invalid(SectionId::kNoisyTable, "sanitized flags size mismatch");
  }

  if (m.has_noisy_f32) {
    if (m.noisy_f32.values.size() != m.noisy.values.size()) {
      return Invalid(SectionId::kNoisyTableF32,
                     "f32 table size disagrees with the f64 table");
    }
    // The mirror must bind to THIS release: a stale f32 section quantized
    // from an older f64 table would silently change rankings.
    const uint32_t source = Crc32(m.noisy.values.data(),
                                  m.noisy.values.size() * sizeof(double));
    if (m.noisy_f32.source_crc32 != source) {
      return Invalid(SectionId::kNoisyTableF32,
                     "source_crc32 does not match the f64 table it mirrors");
    }
  }

  if (m.has_preferences) {
    const auto& p = m.preferences;
    if (p.offsets.size() != nu + 1 || p.offsets.front() != 0 ||
        p.offsets.back() != p.items.size() ||
        p.items.size() != p.weights.size()) {
      return Invalid(SectionId::kPreferences,
                     "offsets do not index the edges");
    }
    for (size_t k = 0; k + 1 < p.offsets.size(); ++k) {
      if (p.offsets[k] > p.offsets[k + 1]) {
        return Invalid(SectionId::kPreferences, "offsets not monotone");
      }
    }
    for (int64_t i : p.items) {
      if (i < 0 || i >= num_items) {
        return Invalid(SectionId::kPreferences, "item id out of range");
      }
    }
  }

  if (m.has_lowrank) {
    const auto& lr = m.lowrank;
    // Same overflow discipline as the noisy table: a huge untrusted rank
    // must not wrap nu * rank into the size the vectors happen to have.
    const size_t rank = static_cast<size_t>(std::max<int64_t>(lr.rank, 0));
    const bool b_sized = rank == 0 ? lr.b.empty()
                                   : lr.b.size() % rank == 0 &&
                                         lr.b.size() / rank == nu;
    const bool l_sized = rank == 0 ? lr.l.empty()
                                   : lr.l.size() % rank == 0 &&
                                         lr.l.size() / rank == nu;
    if (lr.rank < 0 || !b_sized || !l_sized) {
      return Invalid(SectionId::kLowRank, "factor dimensions inconsistent");
    }
  }
  return Status::Ok();
}

// ---- Serve-side dense accumulator ----
//
// A byte-for-byte replica of similarity::DenseScratch's accumulation
// semantics (zero-slot touch tracking, sorted strictly-positive
// extraction). Replicated rather than reused because linking the
// similarity library would pull the graph containers into the serving
// closure, breaking the isolation guarantee; the artifact_test round-trip
// pins the two implementations together.

class DenseAccumulator {
 public:
  void Resize(int64_t n) {
    if (static_cast<size_t>(n) > values_.size()) {
      values_.assign(static_cast<size_t>(n), 0.0);
    }
  }

  void Accumulate(int64_t v, double x) {
    double& slot = values_[static_cast<size_t>(v)];
    if (slot == 0.0 && x != 0.0) touched_.push_back(v);
    slot += x;
  }

  // Extracts all strictly-positive entries sorted by id, then clears.
  std::vector<std::pair<int64_t, double>> TakeSortedPositive() {
    std::sort(touched_.begin(), touched_.end());
    std::vector<std::pair<int64_t, double>> out;
    out.reserve(touched_.size());
    for (int64_t v : touched_) {
      double x = values_[static_cast<size_t>(v)];
      if (x > 0.0) out.emplace_back(v, x);
      values_[static_cast<size_t>(v)] = 0.0;
    }
    touched_.clear();
    return out;
  }

 private:
  std::vector<double> values_;
  std::vector<int64_t> touched_;
};

// mu_u = sum_{v in sim(u)} sim(u, v) * w(v, ·) over the artifact's
// preference CSR — the serve twin of ExactRecommender::ComputeUtilityRow.
std::vector<std::pair<int64_t, double>> ExactUtilityRow(
    const ServingEngine& engine, graph::NodeId u, DenseAccumulator* scratch) {
  scratch->Resize(engine.num_items());
  for (const WorkloadEntry& e : engine.WorkloadRow(u)) {
    auto items = engine.ItemsOf(e.user);
    auto weights = engine.WeightsOf(e.user);
    for (size_t k = 0; k < items.size(); ++k) {
      scratch->Accumulate(items[k], e.score * weights[k]);
    }
  }
  return scratch->TakeSortedPositive();
}

// ---- Serve mechanisms ----

class ClusterServe final : public ServeRecommender {
 public:
  explicit ClusterServe(const ServingEngine* engine) : engine_(engine) {}

  std::string Name() const override { return "Cluster"; }

  bool ConcurrentSafe() const override { return true; }

  core::RecommendedBatch Recommend(const std::vector<graph::NodeId>& users,
                                   int64_t top_n) override {
    PRIVREC_SPAN("artifact.reconstruction");
    core::RecommendedBatch batch;
    const NoisyTableSection& noisy = engine_->model().noisy;
    batch.report.empty_clusters = noisy.empty_clusters;
    batch.report.singleton_clusters = noisy.singleton_clusters;
    batch.report.nonfinite_sanitized = noisy.nonfinite_sanitized;
    Result<int64_t> degraded = ReconstructTopN(
        engine_->release_view(),
        [this](graph::NodeId u) { return engine_->WorkloadRow(u); },
        [this]() -> const std::vector<double>& {
          return engine_->global_average();
        },
        users, top_n, &batch.lists, &batch.degradation);
    PRIVREC_CHECK_MSG(degraded.ok(), degraded.status().message().c_str());
    batch.report.users_degraded = *degraded;
    core::RecordServingMetrics(batch);
    return batch;
  }

 private:
  const ServingEngine* engine_;
};

class ExactServe final : public ServeRecommender {
 public:
  explicit ExactServe(const ServingEngine* engine) : engine_(engine) {}

  std::string Name() const override { return "Exact"; }

  bool ConcurrentSafe() const override { return true; }

  core::RecommendedBatch Recommend(const std::vector<graph::NodeId>& users,
                                   int64_t top_n) override {
    core::RecommendedBatch batch;
    batch.lists.resize(users.size());
    batch.degradation.resize(users.size());
    Status run = ParallelFor(
        static_cast<int64_t>(users.size()),
        [&](int64_t, int64_t begin, int64_t end) {
          thread_local DenseAccumulator scratch;
          for (int64_t k = begin; k < end; ++k) {
            batch.lists[static_cast<size_t>(k)] = core::TopNFromSparse(
                ExactUtilityRow(*engine_, users[static_cast<size_t>(k)],
                                &scratch),
                top_n);
          }
        });
    PRIVREC_CHECK_MSG(run.ok(), run.message().c_str());
    return batch;
  }

 private:
  const ServingEngine* engine_;
};

class NouServe final : public ServeRecommender {
 public:
  NouServe(const ServingEngine* engine, const ServeSpec& spec)
      : engine_(engine),
        spec_(spec),
        sensitivity_(engine->model().workload.max_column_sum *
                     engine->model().meta.max_weight) {}

  std::string Name() const override { return "NOU"; }

  core::RecommendedBatch Recommend(const std::vector<graph::NodeId>& users,
                                   int64_t top_n) override {
    const int64_t num_items = engine_->num_items();
    dp::LaplaceMechanism laplace(spec_.epsilon,
                                 Rng(spec_.seed).Fork(invocation_++));
    const double sensitivity = std::max(sensitivity_, 1e-12);

    core::RecommendedBatch batch;
    batch.lists.reserve(users.size());
    batch.degradation.resize(users.size());
    std::vector<double> utilities(static_cast<size_t>(num_items));
    for (graph::NodeId u : users) {
      std::fill(utilities.begin(), utilities.end(), 0.0);
      for (auto [item, value] : ExactUtilityRow(*engine_, u, &scratch_)) {
        utilities[static_cast<size_t>(item)] = value;
      }
      for (int64_t i = 0; i < num_items; ++i) {
        utilities[static_cast<size_t>(i)] =
            laplace.Release(utilities[static_cast<size_t>(i)], sensitivity);
      }
      batch.lists.push_back(core::TopNFromDense(utilities, top_n));
    }
    return batch;
  }

 private:
  const ServingEngine* engine_;
  ServeSpec spec_;
  double sensitivity_;
  DenseAccumulator scratch_;
  uint64_t invocation_ = 0;
};

class NoeServe final : public ServeRecommender {
 public:
  NoeServe(const ServingEngine* engine, const ServeSpec& spec)
      : engine_(engine), spec_(spec) {}

  std::string Name() const override { return "NOE"; }

  core::RecommendedBatch Recommend(const std::vector<graph::NodeId>& users,
                                   int64_t top_n) override {
    const int64_t num_users = engine_->num_users();
    const int64_t num_items = engine_->num_items();
    Rng rng = Rng(spec_.seed).Fork(invocation_++);

    const bool noiseless = spec_.epsilon == dp::kEpsilonInfinity;
    const double scale =
        noiseless ? 0.0 : engine_->model().meta.max_weight / spec_.epsilon;
    std::vector<float> sanitized(
        static_cast<size_t>(num_users) * static_cast<size_t>(num_items),
        0.0f);
    if (!noiseless) {
      for (float& w : sanitized) {
        w = static_cast<float>(rng.Laplace(scale));
      }
    }
    for (graph::NodeId v = 0; v < num_users; ++v) {
      float* row = sanitized.data() +
                   static_cast<size_t>(v) * static_cast<size_t>(num_items);
      auto items = engine_->ItemsOf(v);
      auto weights = engine_->WeightsOf(v);
      for (size_t k = 0; k < items.size(); ++k) {
        row[static_cast<size_t>(items[k])] +=
            static_cast<float>(weights[k]);
      }
    }

    core::RecommendedBatch batch;
    batch.lists.reserve(users.size());
    batch.degradation.resize(users.size());
    std::vector<double> utilities(static_cast<size_t>(num_items));
    for (graph::NodeId u : users) {
      std::fill(utilities.begin(), utilities.end(), 0.0);
      for (const WorkloadEntry& e : engine_->WorkloadRow(u)) {
        const float* row =
            sanitized.data() +
            static_cast<size_t>(e.user) * static_cast<size_t>(num_items);
        double s = e.score;
        for (int64_t i = 0; i < num_items; ++i) {
          utilities[static_cast<size_t>(i)] +=
              s * static_cast<double>(row[static_cast<size_t>(i)]);
        }
      }
      batch.lists.push_back(core::TopNFromDense(utilities, top_n));
    }
    return batch;
  }

 private:
  const ServingEngine* engine_;
  ServeSpec spec_;
  uint64_t invocation_ = 0;
};

class GroupSmoothServe final : public ServeRecommender {
 public:
  GroupSmoothServe(const ServingEngine* engine, const ServeSpec& spec)
      : engine_(engine), spec_(spec) {}

  std::string Name() const override { return "GS"; }

  core::RecommendedBatch Recommend(const std::vector<graph::NodeId>& users,
                                   int64_t top_n) override {
    core::RecommendedBatch batch;
    const int64_t num_users = engine_->num_users();
    const int64_t num_items = engine_->num_items();
    const int64_t m = std::min<int64_t>(spec_.gs_group_size, num_users);
    Rng rng = Rng(spec_.seed).Fork(invocation_++);
    const double half_eps = spec_.epsilon == dp::kEpsilonInfinity
                                ? dp::kEpsilonInfinity
                                : spec_.epsilon / 2.0;
    dp::LaplaceMechanism rough_mech(half_eps, rng.Fork(1));
    dp::LaplaceMechanism group_mech(half_eps, rng.Fork(2));
    const double w_max = engine_->model().meta.max_weight;
    const double rough_sensitivity =
        std::max(engine_->model().workload.max_entry * w_max, 1e-12);
    const double group_sensitivity =
        std::max(engine_->model().workload.max_column_sum * w_max, 1e-12) /
        static_cast<double>(m);

    std::vector<int64_t> accumulator_of(static_cast<size_t>(num_users), -1);
    std::vector<core::TopNAccumulator> accumulators;
    accumulators.reserve(users.size());
    for (size_t k = 0; k < users.size(); ++k) {
      PRIVREC_CHECK_MSG(
          accumulator_of[static_cast<size_t>(users[k])] == -1,
          "duplicate user in Recommend batch");
      accumulator_of[static_cast<size_t>(users[k])] =
          static_cast<int64_t>(k);
      accumulators.emplace_back(top_n);
    }

    std::vector<uint8_t> saw_sanitized(users.size(), 0);
    std::vector<double> true_utilities(static_cast<size_t>(num_users));
    std::vector<double> rough(static_cast<size_t>(num_users));
    std::vector<graph::NodeId> order(static_cast<size_t>(num_users));

    for (graph::ItemId i = 0; i < num_items; ++i) {
      std::fill(true_utilities.begin(), true_utilities.end(), 0.0);
      std::fill(rough.begin(), rough.end(), 0.0);

      auto buyers = engine_->UsersOf(i);
      auto buyer_weights = engine_->ItemWeights(i);
      for (size_t b = 0; b < buyers.size(); ++b) {
        graph::NodeId v = buyers[b];
        double w = buyer_weights[b];
        auto row = engine_->WorkloadRow(v);
        for (const WorkloadEntry& e : row) {
          true_utilities[static_cast<size_t>(e.user)] += e.score * w;
        }
        if (!row.empty()) {
          const WorkloadEntry& pick = row[rng.UniformInt(row.size())];
          rough[static_cast<size_t>(pick.user)] += pick.score * w;
        }
      }
      for (graph::NodeId u = 0; u < num_users; ++u) {
        rough[static_cast<size_t>(u)] = rough_mech.Release(
            rough[static_cast<size_t>(u)], rough_sensitivity);
      }

      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(),
                [&](graph::NodeId a, graph::NodeId b) {
                  double ra = rough[static_cast<size_t>(a)];
                  double rb = rough[static_cast<size_t>(b)];
                  if (ra != rb) return ra > rb;
                  return a < b;
                });
      for (int64_t start = 0; start < num_users; start += m) {
        int64_t end = std::min<int64_t>(start + m, num_users);
        double sum = 0.0;
        for (int64_t k = start; k < end; ++k) {
          sum += true_utilities[static_cast<size_t>(
              order[static_cast<size_t>(k)])];
        }
        double mean = sum / static_cast<double>(end - start);
        double released = group_mech.Release(mean, group_sensitivity);
        released = fault::MaybePoison("gs.group_mean", released);
        bool sanitized = false;
        if (!std::isfinite(released)) {
          released = 0.0;
          sanitized = true;
          ++batch.report.nonfinite_sanitized;
        }
        if (end - start == num_users && num_users > 1) {
          ++batch.report.degenerate_groups;
        }
        for (int64_t k = start; k < end; ++k) {
          graph::NodeId u = order[static_cast<size_t>(k)];
          int64_t slot = accumulator_of[static_cast<size_t>(u)];
          if (slot >= 0) {
            accumulators[static_cast<size_t>(slot)].Offer(i, released);
            if (sanitized) saw_sanitized[static_cast<size_t>(slot)] = 1;
          }
        }
      }
    }

    batch.lists.reserve(users.size());
    batch.degradation.reserve(users.size());
    for (size_t k = 0; k < users.size(); ++k) {
      batch.lists.push_back(accumulators[k].Take());
      core::DegradationInfo info;
      if (engine_->WorkloadRow(users[k]).empty()) {
        info.reason = core::DegradationReason::kIsolatedUser;
      } else if (saw_sanitized[k]) {
        info.reason = core::DegradationReason::kNonFiniteSanitized;
      }
      if (info.degraded()) ++batch.report.users_degraded;
      batch.degradation.push_back(info);
    }
    return batch;
  }

 private:
  const ServingEngine* engine_;
  ServeSpec spec_;
  uint64_t invocation_ = 0;
};

class LowRankServe final : public ServeRecommender {
 public:
  LowRankServe(const ServingEngine* engine, const ServeSpec& spec)
      : engine_(engine), spec_(spec) {}

  std::string Name() const override { return "LRM"; }

  core::RecommendedBatch Recommend(const std::vector<graph::NodeId>& users,
                                   int64_t top_n) override {
    const LowRankSection& lr = engine_->model().lowrank;
    const int64_t num_users = engine_->num_users();
    const int64_t num_items = engine_->num_items();
    const int64_t rank = lr.rank;
    dp::LaplaceMechanism laplace(spec_.epsilon,
                                 Rng(spec_.seed).Fork(invocation_++));
    const double sensitivity = std::max(lr.noise_sensitivity, 1e-12);

    std::vector<core::TopNAccumulator> accumulators;
    accumulators.reserve(users.size());
    for (size_t k = 0; k < users.size(); ++k) {
      PRIVREC_CHECK(users[k] >= 0 && users[k] < num_users);
      accumulators.emplace_back(top_n);
    }

    std::vector<double> strategy(static_cast<size_t>(rank));
    for (graph::ItemId i = 0; i < num_items; ++i) {
      std::fill(strategy.begin(), strategy.end(), 0.0);
      auto buyers = engine_->UsersOf(i);
      auto weights = engine_->ItemWeights(i);
      for (size_t b = 0; b < buyers.size(); ++b) {
        graph::NodeId v = buyers[b];
        double w = weights[b];
        // row-major rank x num_users
        const double* l_col = engine_->lowrank_l();
        for (int64_t k = 0; k < rank; ++k) {
          strategy[static_cast<size_t>(k)] +=
              w * l_col[static_cast<size_t>(k) *
                            static_cast<size_t>(num_users) +
                        static_cast<size_t>(v)];
        }
      }
      for (int64_t k = 0; k < rank; ++k) {
        strategy[static_cast<size_t>(k)] =
            laplace.Release(strategy[static_cast<size_t>(k)], sensitivity);
      }
      for (size_t k = 0; k < users.size(); ++k) {
        graph::NodeId u = users[k];
        const double* row = engine_->lowrank_b() + static_cast<size_t>(u) *
                                                       static_cast<size_t>(rank);
        double acc = 0.0;
        for (int64_t r = 0; r < rank; ++r) {
          acc += row[r] * strategy[static_cast<size_t>(r)];
        }
        accumulators[k].Offer(i, acc);
      }
    }

    core::RecommendedBatch batch;
    batch.lists.reserve(users.size());
    batch.degradation.resize(users.size());
    for (core::TopNAccumulator& acc : accumulators) {
      batch.lists.push_back(acc.Take());
    }
    return batch;
  }

 private:
  const ServingEngine* engine_;
  ServeSpec spec_;
  uint64_t invocation_ = 0;
};

}  // namespace

ReleaseView ServingEngine::release_view() const {
  ReleaseView view;
  view.values = mapped_ ? nullptr : model_.noisy.values.data();
  view.rows = cluster_rows_.data();
  if (!cluster_rows_f32_.empty()) {
    view.values_f32 =
        mapped_ ? nullptr : model_.noisy_f32.values.data();
    view.rows_f32 = cluster_rows_f32_.data();
  }
  view.sanitized = sanitized_;
  view.cluster_of = cluster_of_;
  view.cluster_sizes = cluster_sizes_;
  view.num_clusters = num_clusters_;
  view.num_items = model_.meta.num_items;
  view.num_users = model_.meta.num_users;
  return view;
}

void ServingEngine::BuildOwnedViews() {
  const size_t nu = static_cast<size_t>(model_.meta.num_users);
  const size_t ni = static_cast<size_t>(model_.meta.num_items);
  num_clusters_ = model_.noisy.num_clusters;
  const size_t nc = static_cast<size_t>(num_clusters_);

  cluster_of_ = model_.partition.cluster_of.data();
  cluster_sizes_ = model_.partition.sizes.data();
  sanitized_ = model_.noisy.sanitized.data();
  workload_offsets_ = model_.workload.offsets.data();
  shard_count_ = 1;
  shard_of_cluster_.assign(nc, 0);

  cluster_rows_.resize(nc);
  for (size_t c = 0; c < nc; ++c) {
    cluster_rows_[c] = model_.noisy.values.data() + c * ni;
  }
  if (model_.has_noisy_f32) {
    cluster_rows_f32_.resize(nc);
    for (size_t c = 0; c < nc; ++c) {
      cluster_rows_f32_[c] = model_.noisy_f32.values.data() + c * ni;
    }
  }
  workload_row_.resize(nu);
  for (size_t u = 0; u < nu; ++u) {
    workload_row_[u] =
        model_.workload.entries.data() + model_.workload.offsets[u];
  }
  if (model_.has_preferences) {
    const PreferenceSection& p = model_.preferences;
    pref_offsets_ = p.offsets.data();
    pref_items_row_.resize(nu);
    pref_weights_row_.resize(nu);
    for (size_t u = 0; u < nu; ++u) {
      pref_items_row_[u] = p.items.data() + p.offsets[u];
      pref_weights_row_[u] = p.weights.data() + p.offsets[u];
    }
  }
  if (model_.has_lowrank) {
    lowrank_b_ = model_.lowrank.b.data();
    lowrank_l_ = model_.lowrank.l.data();
  }
}

Status ServingEngine::InitFromMapped() {
  const int64_t num_users = model_.meta.num_users;
  const int64_t num_items = model_.meta.num_items;
  if (num_users < 0 || num_items < 0) {
    return Invalid(SectionId::kGraphMeta, "negative dimensions");
  }
  const size_t nu = static_cast<size_t>(num_users);
  const size_t ni = static_cast<size_t>(num_items);
  num_clusters_ = model_.noisy.num_clusters;
  const size_t nc = static_cast<size_t>(num_clusters_);

  cluster_of_ = mapped_->cluster_of();
  cluster_sizes_ = mapped_->cluster_sizes();
  sanitized_ = mapped_->sanitized();
  workload_offsets_ = mapped_->workload_offsets();
  pref_offsets_ = mapped_->pref_offsets();
  lowrank_b_ = mapped_->lowrank_b();
  lowrank_l_ = mapped_->lowrank_l();
  shard_count_ = mapped_->shard_count();

  // Semantic validation — the same checks (and messages) ValidateModel
  // runs on an owned model, rephrased over the mapped views. Everything
  // here must pass BEFORE any pointer table is trusted.
  for (size_t u = 0; u < nu; ++u) {
    const int64_t c = cluster_of_[u];
    if (c < 0 || c >= num_clusters_) {
      return Invalid(SectionId::kPartition, "cluster id out of range");
    }
  }
  const std::vector<ShardTableEntry>& table = mapped_->shard_table();
  uint64_t total_workload = 0;
  uint64_t total_pref = 0;
  shard_of_cluster_.assign(nc, 0);
  for (size_t s = 0; s < table.size(); ++s) {
    for (int64_t c = table[s].cluster_begin; c < table[s].cluster_end; ++c) {
      shard_of_cluster_[static_cast<size_t>(c)] = static_cast<int32_t>(s);
    }
    total_workload += table[s].workload_entries;
    total_pref += table[s].pref_edges;
  }
  if (workload_offsets_[0] != 0 || workload_offsets_[nu] != total_workload) {
    return Invalid(SectionId::kWorkload, "offsets do not index the entries");
  }
  for (size_t u = 0; u < nu; ++u) {
    if (workload_offsets_[u] > workload_offsets_[u + 1]) {
      return Invalid(SectionId::kWorkload, "offsets not monotone");
    }
  }
  if (model_.has_preferences) {
    if (pref_offsets_[0] != 0 || pref_offsets_[nu] != total_pref) {
      return Invalid(SectionId::kPreferences,
                     "offsets do not index the edges");
    }
    for (size_t u = 0; u < nu; ++u) {
      if (pref_offsets_[u] > pref_offsets_[u + 1]) {
        return Invalid(SectionId::kPreferences, "offsets not monotone");
      }
    }
  }
  for (size_t s = 0; s < table.size(); ++s) {
    const MappedArtifact::Shard& sh = mapped_->shards()[s];
    for (uint64_t k = 0; k < table[s].workload_entries; ++k) {
      const int64_t v = sh.workload_entries[k].user;
      if (v < 0 || v >= num_users) {
        return Invalid(SectionId::kWorkload, "entry user out of range");
      }
    }
    if (model_.has_preferences) {
      for (uint64_t k = 0; k < table[s].pref_edges; ++k) {
        const int64_t i = sh.pref_items[k];
        if (i < 0 || i >= num_items) {
          return Invalid(SectionId::kPreferences, "item id out of range");
        }
      }
    }
  }

  // Per-cluster noisy rows, addressed inside their shard's block.
  cluster_rows_.resize(nc);
  if (model_.has_noisy_f32) cluster_rows_f32_.resize(nc);
  for (size_t s = 0; s < table.size(); ++s) {
    const MappedArtifact::Shard& sh = mapped_->shards()[s];
    for (int64_t c = table[s].cluster_begin; c < table[s].cluster_end; ++c) {
      const auto local =
          static_cast<size_t>(c - table[s].cluster_begin) * ni;
      cluster_rows_[static_cast<size_t>(c)] = sh.noisy_rows + local;
      if (model_.has_noisy_f32) {
        cluster_rows_f32_[static_cast<size_t>(c)] =
            sh.noisy_rows_f32 + local;
      }
    }
  }

  // Per-user rows: walk users ascending, advancing one cursor per shard —
  // exactly the order SaveShardedArtifact concatenated them in. If the
  // cursors do not land exactly on the per-shard totals the manifest
  // promised, the shard set is internally inconsistent and nothing built
  // so far may be served.
  workload_row_.resize(nu);
  std::vector<uint64_t> wcursor(table.size(), 0);
  std::vector<uint64_t> pcursor(table.size(), 0);
  if (model_.has_preferences) {
    pref_items_row_.resize(nu);
    pref_weights_row_.resize(nu);
  }
  for (size_t u = 0; u < nu; ++u) {
    const auto s = static_cast<size_t>(
        shard_of_cluster_[static_cast<size_t>(cluster_of_[u])]);
    const MappedArtifact::Shard& sh = mapped_->shards()[s];
    workload_row_[u] = sh.workload_entries + wcursor[s];
    wcursor[s] += workload_offsets_[u + 1] - workload_offsets_[u];
    if (model_.has_preferences) {
      pref_items_row_[u] = sh.pref_items + pcursor[s];
      pref_weights_row_[u] = sh.pref_weights + pcursor[s];
      pcursor[s] += pref_offsets_[u + 1] - pref_offsets_[u];
    }
  }
  for (size_t s = 0; s < table.size(); ++s) {
    if (wcursor[s] != table[s].workload_entries) {
      return Invalid(SectionId::kWorkload,
                     "shard workload rows disagree with the manifest totals");
    }
    if (model_.has_preferences && pcursor[s] != table[s].pref_edges) {
      return Invalid(
          SectionId::kPreferences,
          "shard preference rows disagree with the manifest totals");
    }
  }
  return Status::Ok();
}

void ServingEngine::BuildDerived() {
  // Derive the item-major preference CSR by a stable counting pass over
  // the user-major rows: per item, users come out ascending — identical to
  // PreferenceGraph::UsersOf ordering, which the GS/LRM serve loops need
  // for bit-identical replay. Runs through the accessors, so owned and
  // mapped storage produce the same derived arrays.
  const size_t num_users = static_cast<size_t>(model_.meta.num_users);
  const size_t num_items = static_cast<size_t>(model_.meta.num_items);
  item_offsets_.assign(num_items + 1, 0);
  if (model_.has_preferences) {
    size_t total = 0;
    for (size_t u = 0; u < num_users; ++u) {
      for (int64_t i : ItemsOf(static_cast<graph::NodeId>(u))) {
        ++item_offsets_[static_cast<size_t>(i) + 1];
        ++total;
      }
    }
    for (size_t i = 0; i < num_items; ++i) {
      item_offsets_[i + 1] += item_offsets_[i];
    }
    item_users_.resize(total);
    item_weights_.resize(total);
    std::vector<uint64_t> cursor(item_offsets_.begin(),
                                 item_offsets_.end() - 1);
    for (size_t u = 0; u < num_users; ++u) {
      auto items = ItemsOf(static_cast<graph::NodeId>(u));
      auto weights = WeightsOf(static_cast<graph::NodeId>(u));
      for (size_t k = 0; k < items.size(); ++k) {
        const size_t i = static_cast<size_t>(items[k]);
        const uint64_t slot = cursor[i]++;
        item_users_[slot] = static_cast<int64_t>(u);
        item_weights_[slot] = weights[k];
      }
    }
  }
  // The global-average fallback row is NOT computed here: it is lazy (see
  // global_average()), so constructing an epoch during a swap storm costs
  // no O(C·I) pass unless an isolated user actually arrives.
}

const std::vector<double>& ServingEngine::global_average() const {
  std::call_once(global_->once, [this] {
    PRIVREC_SPAN("artifact.global_average");
    global_->row = GlobalAverageUtilities(release_view());
  });
  return global_->row;
}

Result<ServingEngine> ServingEngine::FromModel(ArtifactModel model) {
  Status valid = ValidateModel(model);
  if (!valid.ok()) return valid;

  ServingEngine engine;
  engine.model_ = std::move(model);
  engine.BuildOwnedViews();
  engine.BuildDerived();
  return engine;
}

Result<ServingEngine> ServingEngine::FromMapped(
    std::shared_ptr<const MappedArtifact> mapped) {
  PRIVREC_CHECK(mapped != nullptr);
  ServingEngine engine;
  engine.mapped_ = std::move(mapped);

  // Scalars live in the manifest's metadata blob; the arrays stay in the
  // mapped files and are reached through the views.
  const ManifestMeta& mm = engine.mapped_->meta();
  engine.model_.meta = mm.meta;
  engine.model_.provenance = mm.provenance;
  engine.model_.workload.max_column_sum = mm.max_column_sum;
  engine.model_.workload.max_entry = mm.max_entry;
  engine.model_.noisy.num_clusters = mm.num_clusters;
  engine.model_.noisy.empty_clusters = mm.empty_clusters;
  engine.model_.noisy.singleton_clusters = mm.singleton_clusters;
  engine.model_.noisy.nonfinite_sanitized = mm.nonfinite_sanitized;
  engine.model_.has_preferences = mm.has_preferences;
  engine.model_.has_lowrank = mm.has_lowrank;
  engine.model_.has_noisy_f32 = mm.has_noisy_f32;
  engine.model_.noisy_f32.source_crc32 = mm.noisy_f32_source_crc32;
  engine.model_.lowrank.rank = mm.lowrank_rank;
  engine.model_.lowrank.noise_sensitivity = mm.lowrank_noise_sensitivity;
  engine.model_.lowrank.factorization_error = mm.lowrank_factorization_error;

  Status init = engine.InitFromMapped();
  if (!init.ok()) return init;
  engine.BuildDerived();
  return engine;
}

Result<ServingEngine> ServingEngine::Load(const std::string& path) {
  // Sniff the container family from the magic so one entry point serves
  // both layouts (and gives a useful error for a shard file).
  uint32_t magic = 0;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  }
  if (magic == kManifestMagic) {
    Result<std::shared_ptr<const MappedArtifact>> mapped =
        MappedArtifact::Open(path, MapOptionsFromEnv());
    if (!mapped.ok()) return mapped.status();
    return FromMapped(std::move(*mapped));
  }
  if (magic == kShardMagic) {
    return Status::InvalidArgument(
        "'" + path +
        "' is a shard file; load its .pvram manifest instead");
  }
  Result<ArtifactModel> model = LoadArtifact(path);
  if (!model.ok()) return model.status();
  return FromModel(std::move(*model));
}

Status ServingEngine::CheckGraph(uint64_t expected_hash) const {
  if (model_.meta.graph_hash != expected_hash) {
    return Status::GraphMismatch(
        "artifact was built from a different dataset (fingerprint " +
        std::to_string(model_.meta.graph_hash) + ", requested " +
        std::to_string(expected_hash) + ")");
  }
  return Status::Ok();
}

Status ServingEngine::CheckEpsilon(double expected_epsilon) const {
  if (model_.provenance.epsilon != expected_epsilon) {
    return Status::ProvenanceMismatch(
        "artifact's DP release paid epsilon = " +
        std::to_string(model_.provenance.epsilon) +
        ", request asked for epsilon = " + std::to_string(expected_epsilon));
  }
  return Status::Ok();
}

Result<std::unique_ptr<ServeRecommender>> MakeServeRecommender(
    const ServingEngine* engine, const ServeSpec& spec) {
  PRIVREC_CHECK(engine != nullptr);
  if (spec.expected_graph_hash != 0) {
    Status gate = engine->CheckGraph(spec.expected_graph_hash);
    if (!gate.ok()) return gate;
  }

  if (spec.mechanism == "Cluster") {
    // The cluster release is frozen in the artifact: serving it under a
    // different ε than it paid would misreport the privacy guarantee.
    Status gate = engine->CheckEpsilon(spec.epsilon);
    if (!gate.ok()) return gate;
    return std::unique_ptr<ServeRecommender>(
        std::make_unique<ClusterServe>(engine));
  }

  if (!dp::IsValidEpsilon(spec.epsilon)) {
    return Status::InvalidArgument("bad epsilon for mechanism '" +
                                   spec.mechanism + "'");
  }

  if (spec.mechanism == "LRM") {
    if (!engine->has_lowrank()) {
      return Status::FailedPrecondition(
          "artifact has no low_rank section; rebuild with LRM factors");
    }
    return std::unique_ptr<ServeRecommender>(
        std::make_unique<LowRankServe>(engine, spec));
  }

  if (spec.mechanism == "Exact" || spec.mechanism == "NOU" ||
      spec.mechanism == "NOE" || spec.mechanism == "GS") {
    if (!engine->has_preferences()) {
      return Status::FailedPrecondition(
          "artifact has no preferences section (reference baselines need "
          "one; rebuild with include_reference_sections)");
    }
    if (spec.mechanism == "Exact") {
      return std::unique_ptr<ServeRecommender>(
          std::make_unique<ExactServe>(engine));
    }
    if (spec.mechanism == "NOU") {
      return std::unique_ptr<ServeRecommender>(
          std::make_unique<NouServe>(engine, spec));
    }
    if (spec.mechanism == "NOE") {
      return std::unique_ptr<ServeRecommender>(
          std::make_unique<NoeServe>(engine, spec));
    }
    if (spec.gs_group_size < 1) {
      return Status::InvalidArgument("gs_group_size must be >= 1");
    }
    return std::unique_ptr<ServeRecommender>(
        std::make_unique<GroupSmoothServe>(engine, spec));
  }

  return Status::InvalidArgument("unknown mechanism '" + spec.mechanism +
                                 "'");
}

}  // namespace privrec::serving
