// ServingEngine: the online half of the build/serve split.
//
// An engine wraps one immutable ArtifactModel (loaded from a .pvra file or
// handed over in memory) and constructs serve-side recommenders that read
// ONLY artifact sections. The private PreferenceGraph type is not merely
// unused here — it is unlinkable: the privrec_serving library must not
// depend on privrec_graph, which CMake asserts and artifact_test verifies
// at the include level. The paper's point (and Machanavajjhala et al.'s):
// after the ε-DP publication, serving is post-processing and must depend
// only on the sanitized release.
//
// Serve-side mechanisms replicate the in-memory recommenders' arithmetic
// exactly (same RNG forks, same invocation counters, same accumulation
// order), so for a fixed seed the k-th serve call is bit-identical to the
// k-th Recommend of a fresh in-memory recommender at any thread count.

#ifndef PRIVREC_ARTIFACT_SERVING_H_
#define PRIVREC_ARTIFACT_SERVING_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "artifact/model.h"
#include "artifact/reconstruct.h"
#include "common/status.h"
#include "core/degradation.h"
#include "core/recommendation.h"
#include "graph/ids.h"

namespace privrec::serving {

class ServingEngine {
 public:
  // Load + validate from a .pvra file (errors: kNotFound, kIoError,
  // kParseError with the damaged section's name, kVersionMismatch).
  static Result<ServingEngine> Load(const std::string& path);

  // Adopt an in-memory model (the no-I/O serve path used by the benches).
  // Validates internal consistency exactly like Load.
  static Result<ServingEngine> FromModel(ArtifactModel model);

  const ArtifactModel& model() const { return model_; }

  // ---- Compatibility gates (distinct codes per gate) ----
  // kGraphMismatch: the model was built from a different (G_s, G_p).
  Status CheckGraph(uint64_t expected_hash) const;
  // kProvenanceMismatch: the request's ε is not the ε this release paid.
  Status CheckEpsilon(double expected_epsilon) const;

  // ---- Read API for serve paths ----
  int64_t num_users() const { return model_.meta.num_users; }
  int64_t num_items() const { return model_.meta.num_items; }

  std::span<const WorkloadEntry> WorkloadRow(graph::NodeId u) const {
    const auto& w = model_.workload;
    return {w.entries.data() + w.offsets[static_cast<size_t>(u)],
            w.entries.data() + w.offsets[static_cast<size_t>(u) + 1]};
  }

  bool has_preferences() const { return model_.has_preferences; }
  bool has_lowrank() const { return model_.has_lowrank; }

  // Preference CSR accessors (only valid when has_preferences()).
  std::span<const int64_t> ItemsOf(graph::NodeId u) const {
    const auto& p = model_.preferences;
    return {p.items.data() + p.offsets[static_cast<size_t>(u)],
            p.items.data() + p.offsets[static_cast<size_t>(u) + 1]};
  }
  std::span<const double> WeightsOf(graph::NodeId u) const {
    const auto& p = model_.preferences;
    return {p.weights.data() + p.offsets[static_cast<size_t>(u)],
            p.weights.data() + p.offsets[static_cast<size_t>(u) + 1]};
  }
  // Item-major view, derived once at construction (users ascending per
  // item — the same order PreferenceGraph::UsersOf yields).
  std::span<const int64_t> UsersOf(graph::ItemId i) const {
    return {item_users_.data() + item_offsets_[static_cast<size_t>(i)],
            item_users_.data() + item_offsets_[static_cast<size_t>(i) + 1]};
  }
  std::span<const double> ItemWeights(graph::ItemId i) const {
    return {item_weights_.data() + item_offsets_[static_cast<size_t>(i)],
            item_weights_.data() + item_offsets_[static_cast<size_t>(i) + 1]};
  }

  // The A_w release as a reconstruction view, plus its cached global-
  // average fallback row.
  ReleaseView release_view() const;
  const std::vector<double>& global_average() const { return global_average_; }

 private:
  ArtifactModel model_;
  // Derived (not persisted): item-major preference CSR and the global
  // fallback row.
  std::vector<uint64_t> item_offsets_;
  std::vector<int64_t> item_users_;
  std::vector<double> item_weights_;
  std::vector<double> global_average_;
};

// What to serve from an engine. `epsilon` is the gate value for the
// Cluster path (noise is already frozen in the artifact) and the
// serve-time noise budget for the reference baselines, which draw fresh
// noise per call from `seed`.
struct ServeSpec {
  std::string mechanism = "Cluster";
  double epsilon = 1.0;
  uint64_t seed = 1;
  int64_t gs_group_size = 128;
  // When nonzero, the engine must match this dataset fingerprint
  // (kGraphMismatch otherwise).
  uint64_t expected_graph_hash = 0;
};

// A recommender over a loaded artifact. Unlike core::Recommender this is
// constructed fallibly (the compatibility gates run at construction) and
// reports degradation with every batch.
class ServeRecommender {
 public:
  virtual ~ServeRecommender() = default;
  virtual std::string Name() const = 0;
  virtual core::RecommendedBatch Recommend(
      const std::vector<graph::NodeId>& users, int64_t top_n) = 0;

  // True when concurrent Recommend calls on one instance are safe (the
  // mechanism keeps no per-call mutable state — Cluster and Exact read the
  // frozen artifact only). The fresh-noise baselines advance an invocation
  // counter per call, so the serving runtime serializes them per epoch.
  virtual bool ConcurrentSafe() const { return false; }
};

// Constructs the serve path for `spec.mechanism` ("Exact", "Cluster",
// "NOU", "NOE", "GS", "LRM"). The engine must outlive the recommender.
// Errors: kGraphMismatch / kProvenanceMismatch per the gates above,
// kFailedPrecondition when the artifact lacks the sections the mechanism
// needs (preferences for the baselines, low-rank factors for LRM),
// kInvalidArgument for an unknown mechanism or bad parameters.
Result<std::unique_ptr<ServeRecommender>> MakeServeRecommender(
    const ServingEngine* engine, const ServeSpec& spec);

}  // namespace privrec::serving

#endif  // PRIVREC_ARTIFACT_SERVING_H_
