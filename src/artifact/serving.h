// ServingEngine: the online half of the build/serve split.
//
// An engine wraps one immutable artifact — either an owned ArtifactModel
// (loaded from a monolithic .pvra file or handed over in memory) or a
// zero-copy MappedArtifact view of a sharded .pvram manifest — and
// constructs serve-side recommenders that read ONLY artifact sections.
// The private PreferenceGraph type is not merely unused here — it is
// unlinkable: the privrec_serving library must not depend on
// privrec_graph, which CMake asserts and artifact_test verifies at the
// include level. The paper's point (and Machanavajjhala et al.'s): after
// the ε-DP publication, serving is post-processing and must depend only
// on the sanitized release.
//
// Both storage modes expose identical accessors through per-row pointer
// tables built once at construction, so every serve mechanism is
// storage-oblivious: for a fixed seed the k-th serve call is bit-identical
// to the k-th Recommend of a fresh in-memory recommender at any thread
// count, whether the bytes live in owned vectors, an mmap, or the
// read-into-buffer fallback. sharded_artifact_test pins the full matrix.

#ifndef PRIVREC_ARTIFACT_SERVING_H_
#define PRIVREC_ARTIFACT_SERVING_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "artifact/mapped.h"
#include "artifact/model.h"
#include "artifact/reconstruct.h"
#include "common/status.h"
#include "core/degradation.h"
#include "core/recommendation.h"
#include "graph/ids.h"

namespace privrec::serving {

class ServingEngine {
 public:
  // Load + validate from a .pvra file or a sharded .pvram manifest — the
  // first four bytes decide which loader runs (errors: kNotFound,
  // kIoError, kParseError with the damaged section's name,
  // kVersionMismatch, and for sharded sets kDataLoss / kGraphMismatch /
  // kProvenanceMismatch / kFailedPrecondition per artifact/mapped.h).
  // Passing a shard file directly is kInvalidArgument: load the manifest.
  static Result<ServingEngine> Load(const std::string& path);

  // Adopt an in-memory model (the no-I/O serve path used by the benches).
  // Validates internal consistency exactly like Load.
  static Result<ServingEngine> FromModel(ArtifactModel model);

  // Adopt a validated mapped artifact and serve its arrays in place. The
  // engine shares ownership, so the mapping outlives every reader that
  // reached it through this engine (epoch pinning — see artifact/mapped.h).
  static Result<ServingEngine> FromMapped(
      std::shared_ptr<const MappedArtifact> mapped);

  // Default-constructed engines are empty placeholders (epoch snapshots
  // fill them by move). Move-only otherwise: accessors hand out pointers
  // into the engine's storage, and vector/mmap storage is stable under
  // move but not under copy.
  ServingEngine() = default;
  ServingEngine(ServingEngine&&) = default;
  ServingEngine& operator=(ServingEngine&&) = default;
  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  // Scalars (meta, provenance, workload bounds, noisy-table counters,
  // low-rank dimensions) are always populated; in mapped mode the bulk
  // arrays inside stay empty — go through the accessors below instead.
  const ArtifactModel& model() const { return model_; }

  bool mapped() const { return mapped_ != nullptr; }
  bool mmap_backed() const { return mapped_ && mapped_->mmap_backed(); }

  // ---- Compatibility gates (distinct codes per gate) ----
  // kGraphMismatch: the model was built from a different (G_s, G_p).
  Status CheckGraph(uint64_t expected_hash) const;
  // kProvenanceMismatch: the request's ε is not the ε this release paid.
  Status CheckEpsilon(double expected_epsilon) const;

  // ---- Read API for serve paths ----
  int64_t num_users() const { return model_.meta.num_users; }
  int64_t num_items() const { return model_.meta.num_items; }
  int64_t num_clusters() const { return num_clusters_; }

  // Sharding topology (1 shard for monolithic/owned artifacts). The
  // sharded runtime routes each user to the shard owning their cluster.
  uint32_t shard_count() const { return shard_count_; }
  int32_t ShardOfUser(graph::NodeId u) const {
    return shard_of_cluster_[static_cast<size_t>(
        cluster_of_[static_cast<size_t>(u)])];
  }

  std::span<const WorkloadEntry> WorkloadRow(graph::NodeId u) const {
    const auto i = static_cast<size_t>(u);
    return {workload_row_[i],
            static_cast<size_t>(workload_offsets_[i + 1] -
                                workload_offsets_[i])};
  }

  bool has_preferences() const { return model_.has_preferences; }
  bool has_lowrank() const { return model_.has_lowrank; }

  // Preference CSR accessors (only valid when has_preferences()).
  std::span<const int64_t> ItemsOf(graph::NodeId u) const {
    const auto i = static_cast<size_t>(u);
    return {pref_items_row_[i],
            static_cast<size_t>(pref_offsets_[i + 1] - pref_offsets_[i])};
  }
  std::span<const double> WeightsOf(graph::NodeId u) const {
    const auto i = static_cast<size_t>(u);
    return {pref_weights_row_[i],
            static_cast<size_t>(pref_offsets_[i + 1] - pref_offsets_[i])};
  }
  // Item-major view, derived once at construction (users ascending per
  // item — the same order PreferenceGraph::UsersOf yields).
  std::span<const int64_t> UsersOf(graph::ItemId i) const {
    return {item_users_.data() + item_offsets_[static_cast<size_t>(i)],
            item_users_.data() + item_offsets_[static_cast<size_t>(i) + 1]};
  }
  std::span<const double> ItemWeights(graph::ItemId i) const {
    return {item_weights_.data() + item_offsets_[static_cast<size_t>(i)],
            item_weights_.data() + item_offsets_[static_cast<size_t>(i) + 1]};
  }

  // Low-rank factors (only valid when has_lowrank()): B is num_users x
  // rank row-major, L is rank x num_users row-major.
  const double* lowrank_b() const { return lowrank_b_; }
  const double* lowrank_l() const { return lowrank_l_; }

  // The A_w release as a reconstruction view. The view carries the f32
  // mirror when the artifact has one, so reconstruction runs half-width.
  ReleaseView release_view() const;

  // The global-average fallback row, computed lazily on first use (it is
  // an O(C·I) pass over the release, and the personalized path never needs
  // it — swap storms should not pay for it per epoch). Safe to call from
  // concurrent serve chunks; the first caller computes under a once_flag.
  const std::vector<double>& global_average() const;

 private:
  // View construction. Owned mode points the tables into model_'s
  // vectors; mapped mode points them into the mapped files and runs the
  // semantic validation ValidateModel would have run on an owned model
  // (same error messages for the same defects). BuildDerived then computes
  // the item-major CSR and the global fallback row through the accessors,
  // identically in both modes.
  void BuildOwnedViews();
  Status InitFromMapped();
  void BuildDerived();

  ArtifactModel model_;
  std::shared_ptr<const MappedArtifact> mapped_;

  // Unified storage views (owned- or mapped-backed).
  const uint64_t* workload_offsets_ = nullptr;  // num_users + 1
  const uint64_t* pref_offsets_ = nullptr;      // num_users + 1 (optional)
  std::vector<const WorkloadEntry*> workload_row_;  // per user
  std::vector<const int64_t*> pref_items_row_;      // per user (optional)
  std::vector<const double*> pref_weights_row_;     // per user (optional)
  std::vector<const double*> cluster_rows_;         // per cluster
  std::vector<const float*> cluster_rows_f32_;      // per cluster (optional)
  const uint8_t* sanitized_ = nullptr;
  const int64_t* cluster_of_ = nullptr;
  const int64_t* cluster_sizes_ = nullptr;
  const double* lowrank_b_ = nullptr;
  const double* lowrank_l_ = nullptr;
  int64_t num_clusters_ = 0;
  uint32_t shard_count_ = 1;
  std::vector<int32_t> shard_of_cluster_;  // per cluster

  // Derived (not persisted): item-major preference CSR and the lazy
  // global fallback row. The row lives behind a shared_ptr because the
  // engine is move-only while std::once_flag is not movable at all.
  std::vector<uint64_t> item_offsets_;
  std::vector<int64_t> item_users_;
  std::vector<double> item_weights_;
  struct LazyGlobal {
    std::once_flag once;
    std::vector<double> row;
  };
  std::shared_ptr<LazyGlobal> global_ = std::make_shared<LazyGlobal>();
};

// What to serve from an engine. `epsilon` is the gate value for the
// Cluster path (noise is already frozen in the artifact) and the
// serve-time noise budget for the reference baselines, which draw fresh
// noise per call from `seed`.
struct ServeSpec {
  std::string mechanism = "Cluster";
  double epsilon = 1.0;
  uint64_t seed = 1;
  int64_t gs_group_size = 128;
  // When nonzero, the engine must match this dataset fingerprint
  // (kGraphMismatch otherwise).
  uint64_t expected_graph_hash = 0;
};

// A recommender over a loaded artifact. Unlike core::Recommender this is
// constructed fallibly (the compatibility gates run at construction) and
// reports degradation with every batch.
class ServeRecommender {
 public:
  virtual ~ServeRecommender() = default;
  virtual std::string Name() const = 0;
  virtual core::RecommendedBatch Recommend(
      const std::vector<graph::NodeId>& users, int64_t top_n) = 0;

  // True when concurrent Recommend calls on one instance are safe (the
  // mechanism keeps no per-call mutable state — Cluster and Exact read the
  // frozen artifact only). The fresh-noise baselines advance an invocation
  // counter per call, so the serving runtime serializes them per epoch.
  virtual bool ConcurrentSafe() const { return false; }
};

// Constructs the serve path for `spec.mechanism` ("Exact", "Cluster",
// "NOU", "NOE", "GS", "LRM"). The engine must outlive the recommender.
// Errors: kGraphMismatch / kProvenanceMismatch per the gates above,
// kFailedPrecondition when the artifact lacks the sections the mechanism
// needs (preferences for the baselines, low-rank factors for LRM),
// kInvalidArgument for an unknown mechanism or bad parameters.
Result<std::unique_ptr<ServeRecommender>> MakeServeRecommender(
    const ServingEngine* engine, const ServeSpec& spec);

}  // namespace privrec::serving

#endif  // PRIVREC_ARTIFACT_SERVING_H_
