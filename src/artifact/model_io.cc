#include "artifact/model_io.h"

#include <bit>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <thread>
#include <utility>
#include <vector>

#include "artifact/format.h"
#include "common/fault_injection.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace privrec::serving {

namespace {

std::string Name(SectionId id) { return SectionName(id); }

// ---- Section payload encoders ----

RawSection Encode(SectionId id, std::string payload) {
  return RawSection{static_cast<uint32_t>(id), std::move(payload)};
}

std::string EncodeGraphMeta(const GraphMetaSection& s) {
  ByteWriter w;
  w.U64(s.graph_hash);
  w.I64(s.num_users);
  w.I64(s.num_items);
  w.I64(s.num_social_edges);
  w.I64(s.num_preference_edges);
  w.F64(s.max_weight);
  w.Str(s.measure_name);
  return w.Take();
}

std::string EncodePartition(const PartitionSection& s) {
  ByteWriter w;
  w.U64(s.cluster_of.size());
  for (int64_t c : s.cluster_of) w.I64(c);
  w.U64(s.sizes.size());
  for (int64_t n : s.sizes) w.I64(n);
  return w.Take();
}

std::string EncodeWorkload(const WorkloadSection& s) {
  ByteWriter w;
  w.U64(s.offsets.size());
  for (uint64_t o : s.offsets) w.U64(o);
  w.U64(s.entries.size());
  for (const WorkloadEntry& e : s.entries) {
    w.I64(e.user);
    w.F64(e.score);
  }
  w.F64(s.max_column_sum);
  w.F64(s.max_entry);
  return w.Take();
}

std::string EncodeNoisyTable(const NoisyTableSection& s) {
  ByteWriter w;
  w.I64(s.num_clusters);
  w.U64(s.values.size());
  for (double v : s.values) w.F64(v);
  w.U64(s.sanitized.size());
  for (uint8_t f : s.sanitized) w.U8(f);
  w.I64(s.empty_clusters);
  w.I64(s.singleton_clusters);
  w.I64(s.nonfinite_sanitized);
  return w.Take();
}

std::string EncodeProvenance(const ProvenanceSection& s) {
  ByteWriter w;
  w.F64(s.epsilon);
  w.F64(s.sensitivity);
  w.U64(s.seed);
  w.Str(s.ledger_id);
  return w.Take();
}

std::string EncodePreferences(const PreferenceSection& s) {
  ByteWriter w;
  w.U64(s.offsets.size());
  for (uint64_t o : s.offsets) w.U64(o);
  w.U64(s.items.size());
  for (int64_t i : s.items) w.I64(i);
  for (double x : s.weights) w.F64(x);
  return w.Take();
}

std::string EncodeNoisyTableF32(const NoisyTableF32Section& s) {
  ByteWriter w;
  w.U64(s.values.size());
  // f32 as its IEEE-754 bit pattern (the container only speaks
  // fixed-width integers), byte-deterministic like F64.
  for (float v : s.values) w.U32(std::bit_cast<uint32_t>(v));
  w.U32(s.source_crc32);
  return w.Take();
}

std::string EncodeLowRank(const LowRankSection& s) {
  ByteWriter w;
  w.I64(s.rank);
  w.U64(s.b.size());
  for (double x : s.b) w.F64(x);
  w.U64(s.l.size());
  for (double x : s.l) w.F64(x);
  w.F64(s.noise_sensitivity);
  w.F64(s.factorization_error);
  return w.Take();
}

// ---- Section payload decoders ----
//
// Each decoder bounds-checks every count against the remaining payload
// before allocating, so a bit-flipped length field fails with a named
// parse error rather than an allocation blowup or a silent short vector.

Status DecodeGraphMeta(const std::string& payload, GraphMetaSection* s) {
  ByteReader r(payload, Name(SectionId::kGraphMeta));
  if (!r.U64(&s->graph_hash) || !r.I64(&s->num_users) ||
      !r.I64(&s->num_items) || !r.I64(&s->num_social_edges) ||
      !r.I64(&s->num_preference_edges) || !r.F64(&s->max_weight) ||
      !r.Str(&s->measure_name) || !r.AtEnd()) {
    return r.Truncated();
  }
  if (s->num_users < 0 || s->num_items < 0) return r.Truncated();
  return Status::Ok();
}

Status DecodePartition(const std::string& payload, PartitionSection* s) {
  ByteReader r(payload, Name(SectionId::kPartition));
  uint64_t n;
  if (!r.U64(&n) || !r.FitsCount(n, 8)) return r.Truncated();
  s->cluster_of.resize(n);
  for (uint64_t k = 0; k < n; ++k) {
    if (!r.I64(&s->cluster_of[k])) return r.Truncated();
  }
  if (!r.U64(&n) || !r.FitsCount(n, 8)) return r.Truncated();
  s->sizes.resize(n);
  for (uint64_t k = 0; k < n; ++k) {
    if (!r.I64(&s->sizes[k])) return r.Truncated();
  }
  if (!r.AtEnd()) return r.Truncated();
  return Status::Ok();
}

Status DecodeWorkload(const std::string& payload, WorkloadSection* s) {
  ByteReader r(payload, Name(SectionId::kWorkload));
  uint64_t n;
  if (!r.U64(&n) || !r.FitsCount(n, 8)) return r.Truncated();
  s->offsets.resize(n);
  for (uint64_t k = 0; k < n; ++k) {
    if (!r.U64(&s->offsets[k])) return r.Truncated();
  }
  if (!r.U64(&n) || !r.FitsCount(n, 16)) return r.Truncated();
  s->entries.resize(n);
  for (uint64_t k = 0; k < n; ++k) {
    if (!r.I64(&s->entries[k].user) || !r.F64(&s->entries[k].score)) {
      return r.Truncated();
    }
  }
  if (!r.F64(&s->max_column_sum) || !r.F64(&s->max_entry) || !r.AtEnd()) {
    return r.Truncated();
  }
  return Status::Ok();
}

Status DecodeNoisyTable(const std::string& payload, NoisyTableSection* s) {
  ByteReader r(payload, Name(SectionId::kNoisyTable));
  uint64_t n;
  if (!r.I64(&s->num_clusters)) return r.Truncated();
  if (!r.U64(&n) || !r.FitsCount(n, 8)) return r.Truncated();
  s->values.resize(n);
  for (uint64_t k = 0; k < n; ++k) {
    if (!r.F64(&s->values[k])) return r.Truncated();
  }
  if (!r.U64(&n) || !r.FitsCount(n, 1)) return r.Truncated();
  s->sanitized.resize(n);
  for (uint64_t k = 0; k < n; ++k) {
    if (!r.U8(&s->sanitized[k])) return r.Truncated();
  }
  if (!r.I64(&s->empty_clusters) || !r.I64(&s->singleton_clusters) ||
      !r.I64(&s->nonfinite_sanitized) || !r.AtEnd()) {
    return r.Truncated();
  }
  return Status::Ok();
}

Status DecodeProvenance(const std::string& payload, ProvenanceSection* s) {
  ByteReader r(payload, Name(SectionId::kProvenance));
  if (!r.F64(&s->epsilon) || !r.F64(&s->sensitivity) || !r.U64(&s->seed) ||
      !r.Str(&s->ledger_id) || !r.AtEnd()) {
    return r.Truncated();
  }
  return Status::Ok();
}

Status DecodePreferences(const std::string& payload, PreferenceSection* s) {
  ByteReader r(payload, Name(SectionId::kPreferences));
  uint64_t n;
  if (!r.U64(&n) || !r.FitsCount(n, 8)) return r.Truncated();
  s->offsets.resize(n);
  for (uint64_t k = 0; k < n; ++k) {
    if (!r.U64(&s->offsets[k])) return r.Truncated();
  }
  if (!r.U64(&n) || !r.FitsCount(n, 16)) return r.Truncated();
  s->items.resize(n);
  s->weights.resize(n);
  for (uint64_t k = 0; k < n; ++k) {
    if (!r.I64(&s->items[k])) return r.Truncated();
  }
  for (uint64_t k = 0; k < n; ++k) {
    if (!r.F64(&s->weights[k])) return r.Truncated();
  }
  if (!r.AtEnd()) return r.Truncated();
  return Status::Ok();
}

Status DecodeNoisyTableF32(const std::string& payload,
                           NoisyTableF32Section* s) {
  ByteReader r(payload, Name(SectionId::kNoisyTableF32));
  uint64_t n;
  if (!r.U64(&n) || !r.FitsCount(n, 4)) return r.Truncated();
  s->values.resize(n);
  for (uint64_t k = 0; k < n; ++k) {
    uint32_t bits;
    if (!r.U32(&bits)) return r.Truncated();
    s->values[k] = std::bit_cast<float>(bits);
  }
  if (!r.U32(&s->source_crc32) || !r.AtEnd()) return r.Truncated();
  return Status::Ok();
}

Status DecodeLowRank(const std::string& payload, LowRankSection* s) {
  ByteReader r(payload, Name(SectionId::kLowRank));
  uint64_t n;
  if (!r.I64(&s->rank)) return r.Truncated();
  if (!r.U64(&n) || !r.FitsCount(n, 8)) return r.Truncated();
  s->b.resize(n);
  for (uint64_t k = 0; k < n; ++k) {
    if (!r.F64(&s->b[k])) return r.Truncated();
  }
  if (!r.U64(&n) || !r.FitsCount(n, 8)) return r.Truncated();
  s->l.resize(n);
  for (uint64_t k = 0; k < n; ++k) {
    if (!r.F64(&s->l[k])) return r.Truncated();
  }
  if (!r.F64(&s->noise_sensitivity) || !r.F64(&s->factorization_error) ||
      !r.AtEnd()) {
    return r.Truncated();
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeArtifact(const ArtifactModel& model) {
  std::vector<RawSection> sections;
  sections.push_back(
      Encode(SectionId::kGraphMeta, EncodeGraphMeta(model.meta)));
  sections.push_back(
      Encode(SectionId::kPartition, EncodePartition(model.partition)));
  sections.push_back(
      Encode(SectionId::kWorkload, EncodeWorkload(model.workload)));
  sections.push_back(
      Encode(SectionId::kNoisyTable, EncodeNoisyTable(model.noisy)));
  sections.push_back(
      Encode(SectionId::kProvenance, EncodeProvenance(model.provenance)));
  if (model.has_preferences) {
    sections.push_back(
        Encode(SectionId::kPreferences, EncodePreferences(model.preferences)));
  }
  if (model.has_lowrank) {
    sections.push_back(
        Encode(SectionId::kLowRank, EncodeLowRank(model.lowrank)));
  }
  if (model.has_noisy_f32) {
    sections.push_back(Encode(SectionId::kNoisyTableF32,
                              EncodeNoisyTableF32(model.noisy_f32)));
  }
  return EncodeContainer(kArtifactVersion, sections);
}

Result<ArtifactModel> DecodeArtifact(const std::string& bytes) {
  Result<std::vector<RawSection>> sections =
      DecodeContainer(bytes, kArtifactVersion);
  if (!sections.ok()) return sections.status();

  ArtifactModel model;
  bool seen[9] = {};
  for (const RawSection& s : *sections) {
    Status st = Status::Ok();
    switch (static_cast<SectionId>(s.id)) {
      case SectionId::kGraphMeta:
        st = DecodeGraphMeta(s.payload, &model.meta);
        break;
      case SectionId::kPartition:
        st = DecodePartition(s.payload, &model.partition);
        break;
      case SectionId::kWorkload:
        st = DecodeWorkload(s.payload, &model.workload);
        break;
      case SectionId::kNoisyTable:
        st = DecodeNoisyTable(s.payload, &model.noisy);
        break;
      case SectionId::kProvenance:
        st = DecodeProvenance(s.payload, &model.provenance);
        break;
      case SectionId::kPreferences:
        st = DecodePreferences(s.payload, &model.preferences);
        model.has_preferences = st.ok();
        break;
      case SectionId::kLowRank:
        st = DecodeLowRank(s.payload, &model.lowrank);
        model.has_lowrank = st.ok();
        break;
      case SectionId::kNoisyTableF32:
        st = DecodeNoisyTableF32(s.payload, &model.noisy_f32);
        model.has_noisy_f32 = st.ok();
        break;
      default:
        // Unknown sections are skipped (forward compatibility within a
        // version is not promised, but choking on an extra section helps
        // nobody — the CRC already vouched for its integrity).
        break;
    }
    if (!st.ok()) return st;
    if (s.id >= 1 && s.id < 9) seen[s.id] = true;
  }
  for (SectionId required :
       {SectionId::kGraphMeta, SectionId::kPartition, SectionId::kWorkload,
        SectionId::kNoisyTable, SectionId::kProvenance}) {
    if (!seen[static_cast<uint32_t>(required)]) {
      return Status::ParseError("artifact is missing required section '" +
                                Name(required) + "'");
    }
  }
  return model;
}

Status SaveArtifact(const ArtifactModel& model, const std::string& path) {
  PRIVREC_SPAN("artifact.save");
  static obs::Histogram& save_ms = obs::GetHistogram(
      "privrec.artifact.save_ms", obs::ExponentialBuckets(0.1, 4.0, 10));
  ScopedTimer timer(&save_ms);

  if (fault::Hit("artifact.open") == fault::FaultKind::kIoError) {
    return Status::IoError("injected open failure for '" + path + "'");
  }
  const std::string bytes = EncodeArtifact(model);

  // Atomic publication: write the container to a sibling temp file, flush
  // and close it, then rename over the destination. A crash (or injected
  // fault) at ANY point before the rename leaves the previous artifact at
  // `path` intact — the swapper can never observe a torn .pvra. The temp
  // file lives in the same directory so the rename never crosses a
  // filesystem boundary.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open '" + tmp + "' for writing");
    }
    if (fault::Hit("artifact.write") == fault::FaultKind::kIoError) {
      std::remove(tmp.c_str());
      return Status::IoError("injected write failure for '" + path + "'");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IoError("write to '" + tmp + "' failed");
    }
  }
  if (fault::Hit("artifact.rename") == fault::FaultKind::kIoError) {
    // A crash between write and rename: the temp file is garbage we clean
    // up, the destination is untouched.
    std::remove(tmp.c_str());
    return Status::IoError("injected rename failure for '" + path + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename '" + tmp + "' to '" + path + "'");
  }

  static obs::Gauge& bytes_gauge = obs::GetGauge("privrec.artifact.bytes");
  static obs::Gauge& sections_gauge =
      obs::GetGauge("privrec.artifact.sections");
  bytes_gauge.Set(static_cast<double>(bytes.size()));
  sections_gauge.Set(5.0 + (model.has_preferences ? 1.0 : 0.0) +
                     (model.has_lowrank ? 1.0 : 0.0) +
                     (model.has_noisy_f32 ? 1.0 : 0.0));
  return Status::Ok();
}

Result<ArtifactModel> LoadArtifact(const std::string& path) {
  PRIVREC_SPAN("artifact.load");
  static obs::Histogram& load_ms = obs::GetHistogram(
      "privrec.artifact.load_ms", obs::ExponentialBuckets(0.1, 4.0, 10));
  ScopedTimer timer(&load_ms);

  if (fault::Hit("artifact.open") == fault::FaultKind::kIoError) {
    return Status::IoError("injected open failure for '" + path + "'");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open artifact '" + path + "'");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IoError("read of artifact '" + path + "' failed");
  }
  const fault::FaultKind k = fault::Hit("artifact.read");
  if (k == fault::FaultKind::kIoError) {
    return Status::IoError("injected read failure for '" + path + "'");
  }
  if (k == fault::FaultKind::kLatency) {
    // Simulated slow disk: the read succeeds but stalls. Wall-clock only —
    // results are unaffected — so reload paths can be soaked against I/O
    // latency without a real slow device.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (k == fault::FaultKind::kShortRead) {
    // Simulated truncation: drop the tail and let the section-level
    // robustness path produce the named error.
    bytes.resize(bytes.size() / 2);
  }

  Result<ArtifactModel> model = DecodeArtifact(bytes);
  if (model.ok()) {
    static obs::Gauge& bytes_gauge = obs::GetGauge("privrec.artifact.bytes");
    bytes_gauge.Set(static_cast<double>(bytes.size()));
  }
  return model;
}

}  // namespace privrec::serving
