#include "artifact/mapped.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace privrec::serving {

namespace {

// count * elem without overflow; the gate behind every "does this header
// count actually fit the section's byte range" check.
bool SizeMatches(uint64_t section_size, uint64_t count, uint64_t elem) {
  if (elem != 0 && count > UINT64_MAX / elem) return false;
  return section_size == count * elem;
}

const AlignedSectionView* FindSection(const AlignedContainerView& view,
                                      uint32_t id) {
  for (const AlignedSectionView& s : view.sections) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

Status VerifySectionCrc(const char* file_data, const AlignedSectionView& s,
                        const std::string& what, const char* name) {
  const uint32_t actual = Crc32(file_data + s.offset, s.size);
  if (actual != s.crc32) {
    return Status::DataLoss(what + " section '" + name +
                           "' failed its CRC check (bit corruption)");
  }
  return Status::Ok();
}

std::string ManifestDir(const std::string& manifest_path) {
  const size_t slash = manifest_path.rfind('/');
  return slash == std::string::npos ? std::string()
                                    : manifest_path.substr(0, slash + 1);
}

}  // namespace

MapOptions MapOptionsFromEnv() {
  MapOptions options;
  const char* no_mmap = std::getenv("PRIVREC_NO_MMAP");
  if (no_mmap != nullptr && no_mmap[0] != '\0' &&
      std::string(no_mmap) != "0") {
    options.use_mmap = false;
  }
  return options;
}

MappedFile::~MappedFile() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      owned_(std::move(other.owned_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (mapped_ && data_ != nullptr) {
      ::munmap(const_cast<char*>(data_), size_);
    }
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    owned_ = std::move(other.owned_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

Result<MappedFile> MappedFile::Open(const std::string& path, bool use_mmap) {
  MappedFile file;
  if (use_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) {
        return Status::NotFound("cannot open '" + path + "'");
      }
      return Status::IoError("cannot open '" + path + "': " +
                             std::strerror(errno));
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IoError("cannot stat '" + path + "'");
    }
    file.size_ = static_cast<uint64_t>(st.st_size);
    if (file.size_ > 0) {
      void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (addr == MAP_FAILED) {
        ::close(fd);
        return Status::IoError("cannot mmap '" + path + "': " +
                               std::strerror(errno));
      }
      file.data_ = static_cast<const char*>(addr);
      file.mapped_ = true;
    }
    ::close(fd);
    return file;
  }

  // Portable fallback: read the whole file into a heap buffer through a
  // plain read(2) loop. operator new returns at-least-16-byte-aligned
  // storage and the format's element types need at most 8, so in-place
  // addressing stays valid. Transient failures — EINTR, a short read from
  // a slow or networked filesystem — are retried a bounded number of
  // times rather than failing the open: artifact swaps happen exactly
  // when the page cache is cold and I/O is at its flakiest. Fault point:
  // artifact.fallback_read (kIoError: transient EINTR-shaped failure,
  // consumed by the retry budget; kShortRead: the next read returns at
  // most one byte, forcing the loop to take another lap).
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("cannot open '" + path + "'");
    }
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat '" + path + "'");
  }
  file.size_ = static_cast<uint64_t>(st.st_size);
  if (file.size_ > 0) {
    file.owned_ = std::make_unique<char[]>(file.size_);
    static obs::Counter& retries =
        obs::GetCounter("privrec.artifact.fallback_read_retries");
    constexpr int kMaxRetries = 64;
    int budget = kMaxRetries;
    uint64_t done = 0;
    while (done < file.size_) {
      size_t want = static_cast<size_t>(file.size_ - done);
      switch (fault::Hit("artifact.fallback_read")) {
        case fault::FaultKind::kIoError:
          if (--budget < 0) {
            ::close(fd);
            return Status::IoError("read of '" + path + "' failed after " +
                                   std::to_string(kMaxRetries) +
                                   " retries (injected fault)");
          }
          retries.Increment();
          continue;
        case fault::FaultKind::kShortRead:
          want = 1;
          break;
        default:
          break;
      }
      const ssize_t n = ::read(fd, file.owned_.get() + done, want);
      if (n < 0) {
        if (errno == EINTR && --budget >= 0) {
          retries.Increment();
          continue;
        }
        ::close(fd);
        return Status::IoError("read of '" + path + "' failed: " +
                               std::strerror(errno));
      }
      if (n == 0) {
        // EOF short of the stat size: the file shrank underneath us or
        // the filesystem returned a spurious zero; bounded retries
        // distinguish a hiccup from real truncation.
        if (--budget >= 0) {
          retries.Increment();
          continue;
        }
        ::close(fd);
        return Status::IoError("unexpected EOF reading '" + path + "' at " +
                               std::to_string(done) + " of " +
                               std::to_string(file.size_) + " bytes");
      }
      done += static_cast<uint64_t>(n);
    }
    file.data_ = file.owned_.get();
  }
  ::close(fd);
  return file;
}

Result<std::shared_ptr<const MappedArtifact>> MappedArtifact::Open(
    const std::string& manifest_path, const MapOptions& options) {
  PRIVREC_SPAN("artifact.map");
  static obs::Histogram& open_ms = obs::GetHistogram(
      "privrec.artifact.mapped_open_ms", obs::ExponentialBuckets(0.1, 4.0, 10));
  ScopedTimer timer(&open_ms);

  if (fault::Hit("artifact.open") == fault::FaultKind::kIoError) {
    return Status::IoError("injected open failure for '" + manifest_path +
                           "'");
  }

  auto artifact = std::make_shared<MappedArtifact>();
  Result<MappedFile> manifest =
      MappedFile::Open(manifest_path, options.use_mmap);
  if (!manifest.ok()) return manifest.status();
  artifact->manifest_ = std::move(*manifest);

  uint64_t manifest_bytes = artifact->manifest_.size();
  const fault::FaultKind read_fault = fault::Hit("artifact.read");
  if (read_fault == fault::FaultKind::kIoError) {
    return Status::IoError("injected read failure for '" + manifest_path +
                           "'");
  }
  if (read_fault == fault::FaultKind::kLatency) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (read_fault == fault::FaultKind::kShortRead) {
    manifest_bytes /= 2;  // simulated truncation of the manifest
  }

  const std::string what = "artifact manifest";
  Result<AlignedContainerView> parsed = ParseAlignedContainer(
      artifact->manifest_.data(), manifest_bytes, kManifestMagic,
      kShardFormatVersion, what);
  if (!parsed.ok()) return parsed.status();

  auto find = [&](ManifestSectionId id) {
    return FindSection(*parsed, static_cast<uint32_t>(id));
  };
  for (ManifestSectionId required :
       {ManifestSectionId::kManifestMeta, ManifestSectionId::kShardTable,
        ManifestSectionId::kClusterOf, ManifestSectionId::kClusterSizes,
        ManifestSectionId::kSanitizedFlags,
        ManifestSectionId::kWorkloadOffsets}) {
    if (find(required) == nullptr) {
      return Status::ParseError(what + " is missing required section '" +
                                ManifestSectionName(required) + "'");
    }
  }
  if (options.verify_crc) {
    for (const AlignedSectionView& s : parsed->sections) {
      Status crc = VerifySectionCrc(
          artifact->manifest_.data(), s, what,
          ManifestSectionName(static_cast<ManifestSectionId>(s.id)));
      if (!crc.ok()) return crc;
    }
  }

  // Decode the two blob sections.
  const AlignedSectionView* meta_section =
      find(ManifestSectionId::kManifestMeta);
  Status decoded = DecodeManifestMeta(
      std::string(artifact->manifest_.data() + meta_section->offset,
                  meta_section->size),
      &artifact->meta_);
  if (!decoded.ok()) return decoded;
  const AlignedSectionView* table_section =
      find(ManifestSectionId::kShardTable);
  decoded = DecodeShardTable(
      std::string(artifact->manifest_.data() + table_section->offset,
                  table_section->size),
      &artifact->table_);
  if (!decoded.ok()) return decoded;

  const ManifestMeta& meta = artifact->meta_;
  const auto num_users = static_cast<uint64_t>(meta.meta.num_users);
  const auto num_items = static_cast<uint64_t>(meta.meta.num_items);
  if (meta.num_clusters < 0) {
    return Status::ParseError(what + ": negative cluster count");
  }
  const auto num_clusters = static_cast<uint64_t>(meta.num_clusters);

  // Structural validation: every raw section's byte range must exactly
  // back the element count the metadata claims for it — resizes and
  // pointer spans are derived from these counts, so the mismatch fails
  // here, closed, instead of at serve time.
  struct RawSpec {
    ManifestSectionId id;
    uint64_t count;
    uint64_t elem;
    bool required;
  };
  if (meta.lowrank_rank < 0 ||
      (meta.lowrank_rank > 0 &&
       num_users > UINT64_MAX / static_cast<uint64_t>(meta.lowrank_rank))) {
    return Status::ParseError(what + ": low-rank factor dimensions overflow");
  }
  const uint64_t lr_count =
      num_users * static_cast<uint64_t>(meta.lowrank_rank);
  const RawSpec specs[] = {
      {ManifestSectionId::kClusterOf, num_users, 8, true},
      {ManifestSectionId::kClusterSizes, num_clusters, 8, true},
      {ManifestSectionId::kSanitizedFlags, num_clusters, 1, true},
      {ManifestSectionId::kWorkloadOffsets, num_users + 1, 8, true},
      {ManifestSectionId::kPrefOffsets, num_users + 1, 8,
       meta.has_preferences},
      {ManifestSectionId::kLowRankB, lr_count, 8, meta.has_lowrank},
      {ManifestSectionId::kLowRankL, lr_count, 8, meta.has_lowrank},
  };
  for (const RawSpec& spec : specs) {
    const AlignedSectionView* s = find(spec.id);
    if (s == nullptr) {
      if (!spec.required) continue;
      return Status::ParseError(what + " is missing required section '" +
                                ManifestSectionName(spec.id) + "'");
    }
    if (!SizeMatches(s->size, spec.count, spec.elem)) {
      return Status::ParseError(
          what + " section '" + ManifestSectionName(spec.id) +
          "' byte range does not back the element count the metadata "
          "claims");
    }
  }
  const char* base = artifact->manifest_.data();
  artifact->cluster_of_ = reinterpret_cast<const int64_t*>(
      base + find(ManifestSectionId::kClusterOf)->offset);
  artifact->cluster_sizes_ = reinterpret_cast<const int64_t*>(
      base + find(ManifestSectionId::kClusterSizes)->offset);
  artifact->sanitized_ = reinterpret_cast<const uint8_t*>(
      base + find(ManifestSectionId::kSanitizedFlags)->offset);
  artifact->workload_offsets_ = reinterpret_cast<const uint64_t*>(
      base + find(ManifestSectionId::kWorkloadOffsets)->offset);
  if (meta.has_preferences) {
    artifact->pref_offsets_ = reinterpret_cast<const uint64_t*>(
        base + find(ManifestSectionId::kPrefOffsets)->offset);
  }
  if (meta.has_lowrank) {
    artifact->lowrank_b_ = reinterpret_cast<const double*>(
        base + find(ManifestSectionId::kLowRankB)->offset);
    artifact->lowrank_l_ = reinterpret_cast<const double*>(
        base + find(ManifestSectionId::kLowRankL)->offset);
  }
  artifact->total_bytes_ = artifact->manifest_.size();

  // Shard-set geometry: the table must partition [0, num_clusters) into
  // contiguous ranges, one per shard.
  if (artifact->table_.size() != meta.shard_count ||
      meta.shard_count == 0) {
    return Status::ParseError(what +
                              ": shard table size disagrees with shard_count");
  }
  for (size_t s = 0; s < artifact->table_.size(); ++s) {
    const ShardTableEntry& e = artifact->table_[s];
    const int64_t expect_begin =
        s == 0 ? 0 : artifact->table_[s - 1].cluster_end;
    if (e.cluster_begin != expect_begin || e.cluster_end < e.cluster_begin ||
        (s + 1 == artifact->table_.size() &&
         e.cluster_end != meta.num_clusters)) {
      return Status::ParseError(
          what + ": shard cluster ranges do not partition the clusters");
    }
  }

  // Open and validate every shard before exposing anything.
  const std::string dir = ManifestDir(manifest_path);
  artifact->shard_files_.reserve(artifact->table_.size());
  artifact->shards_.reserve(artifact->table_.size());
  for (size_t s = 0; s < artifact->table_.size(); ++s) {
    const ShardTableEntry& e = artifact->table_[s];
    const std::string shard_path = dir + e.file;
    const std::string shard_what = "artifact shard '" + e.file + "'";

    const fault::FaultKind shard_fault = fault::Hit("shard.read");
    if (shard_fault == fault::FaultKind::kIoError) {
      return Status::IoError("injected read failure for '" + shard_path +
                             "'");
    }
    if (shard_fault == fault::FaultKind::kLatency) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    Result<MappedFile> opened = MappedFile::Open(shard_path,
                                                 options.use_mmap);
    if (!opened.ok()) {
      if (opened.status().code() == StatusCode::kNotFound) {
        return Status::NotFound("manifest references missing shard file '" +
                                shard_path + "'");
      }
      return opened.status();
    }
    MappedFile file = std::move(*opened);
    if (file.size() != e.file_size) {
      return Status::FailedPrecondition(
          shard_what + " is " + std::to_string(file.size()) +
          " bytes, the manifest expects " + std::to_string(e.file_size) +
          " (foreign or regenerated shard)");
    }

    Result<AlignedContainerView> shard_view = ParseAlignedContainer(
        file.data(), file.size(), kShardMagic, kShardFormatVersion,
        shard_what);
    if (!shard_view.ok()) return shard_view.status();

    auto find_shard = [&](ShardSectionId id) {
      return FindSection(*shard_view, static_cast<uint32_t>(id));
    };
    const AlignedSectionView* header_section =
        find_shard(ShardSectionId::kShardHeader);
    if (header_section == nullptr) {
      return Status::ParseError(shard_what +
                                " is missing its shard_header section");
    }
    // CRC-verify just the header section before trusting its identity
    // fields: a corrupt header must read as corruption, not as a shard
    // from some other dataset.
    Status header_crc = VerifySectionCrc(file.data(), *header_section,
                                         shard_what, "shard_header");
    if (!header_crc.ok()) return header_crc;
    Shard shard;
    Status header_ok = DecodeShardHeader(
        std::string(file.data() + header_section->offset,
                    header_section->size),
        &shard.header);
    if (!header_ok.ok()) return header_ok;

    // Identity gates run BEFORE the frame CRC: a shard mixed in from a
    // different build of the same dataset carries a self-consistent frame
    // that simply isn't the one this manifest recorded, and must report
    // as the mix-up it is (graph/provenance mismatch), not as bit
    // corruption. Most specific first: wrong dataset, then wrong build of
    // the right dataset, then wrong position in the right build.
    if (shard.header.graph_hash != meta.meta.graph_hash) {
      return Status::GraphMismatch(
          shard_what + " was built from a different dataset (fingerprint " +
          std::to_string(shard.header.graph_hash) + ", manifest has " +
          std::to_string(meta.meta.graph_hash) + ")");
    }
    if (shard.header.artifact_token != meta.artifact_token) {
      return Status::ProvenanceMismatch(
          shard_what +
          " belongs to a different build of this dataset (token mismatch)");
    }
    if (shard.header.shard_index != s ||
        shard.header.shard_count != meta.shard_count ||
        shard.header.cluster_begin != e.cluster_begin ||
        shard.header.cluster_end != e.cluster_end ||
        shard.header.num_items != meta.meta.num_items ||
        shard.header.workload_entries != e.workload_entries ||
        shard.header.pref_edges != e.pref_edges) {
      return Status::FailedPrecondition(
          shard_what + " header disagrees with the manifest's shard table");
    }

    // Identity confirmed; now any byte disagreement is corruption.
    if (Crc32(file.data(), shard_view->frame_bytes) != e.frame_crc32) {
      return Status::DataLoss(shard_what +
                              " frame failed its CRC check (bit corruption)");
    }
    if (options.verify_crc) {
      for (const AlignedSectionView& sec : shard_view->sections) {
        Status crc = VerifySectionCrc(
            file.data(), sec, shard_what,
            ShardSectionName(static_cast<ShardSectionId>(sec.id)));
        if (!crc.ok()) return crc;
      }
    }

    // Byte ranges must exactly back the counts (same rule as the
    // manifest's raw sections).
    const auto rows =
        static_cast<uint64_t>(e.cluster_end - e.cluster_begin);
    if (num_items != 0 && rows > UINT64_MAX / num_items) {
      return Status::ParseError(shard_what + ": noisy row count overflows");
    }
    struct ShardSpec {
      ShardSectionId id;
      uint64_t count;
      uint64_t elem;
      bool required;
    };
    const ShardSpec shard_specs[] = {
        {ShardSectionId::kNoisyRows, rows * num_items, 8, true},
        {ShardSectionId::kNoisyRowsF32, rows * num_items, 4,
         meta.has_noisy_f32},
        {ShardSectionId::kWorkloadEntries, e.workload_entries,
         sizeof(WorkloadEntry), true},
        {ShardSectionId::kPrefItems, e.pref_edges, 8, meta.has_preferences},
        {ShardSectionId::kPrefWeights, e.pref_edges, 8,
         meta.has_preferences},
    };
    for (const ShardSpec& spec : shard_specs) {
      const AlignedSectionView* sec = find_shard(spec.id);
      if (sec == nullptr) {
        if (!spec.required) continue;
        return Status::ParseError(shard_what + " is missing section '" +
                                  ShardSectionName(spec.id) + "'");
      }
      if (!SizeMatches(sec->size, spec.count, spec.elem)) {
        return Status::ParseError(
            shard_what + " section '" + ShardSectionName(spec.id) +
            "' byte range does not back the count its header claims");
      }
    }
    shard.noisy_rows = reinterpret_cast<const double*>(
        file.data() + find_shard(ShardSectionId::kNoisyRows)->offset);
    if (meta.has_noisy_f32) {
      const AlignedSectionView* f32 =
          find_shard(ShardSectionId::kNoisyRowsF32);
      if (f32 == nullptr) {
        return Status::ParseError(
            shard_what + " is missing section 'noisy_rows_f32' the "
            "manifest promised");
      }
      shard.noisy_rows_f32 =
          reinterpret_cast<const float*>(file.data() + f32->offset);
    }
    shard.workload_entries = reinterpret_cast<const WorkloadEntry*>(
        file.data() + find_shard(ShardSectionId::kWorkloadEntries)->offset);
    if (meta.has_preferences) {
      shard.pref_items = reinterpret_cast<const int64_t*>(
          file.data() + find_shard(ShardSectionId::kPrefItems)->offset);
      shard.pref_weights = reinterpret_cast<const double*>(
          file.data() + find_shard(ShardSectionId::kPrefWeights)->offset);
    }
    artifact->total_bytes_ += file.size();
    artifact->shards_.push_back(shard);
    artifact->shard_files_.push_back(std::move(file));
  }

  static obs::Gauge& bytes_gauge =
      obs::GetGauge("privrec.artifact.mapped_bytes");
  bytes_gauge.Set(static_cast<double>(artifact->total_bytes_));
  return std::shared_ptr<const MappedArtifact>(std::move(artifact));
}

}  // namespace privrec::serving
