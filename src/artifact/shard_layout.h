// The sharded .pvra layout: one .pvram manifest plus K shard files, all
// framed as "aligned containers" — a fixed header, an up-front section
// table, and section payloads placed at 64-byte-aligned file offsets with
// zero padding between them. The alignment is the point: the noisy-table
// rows, the workload CSR records and the preference CSR arrays are stored
// as raw little-endian fixed-width arrays, so a reader that maps the file
// can serve them in place (artifact/mapped.h) without a deserialize pass.
//
// Sharding axis (and why it is ε-free): the builder partitions the noisy
// table by cluster range, and every user's workload/preference rows land
// in the shard owning the user's cluster. All noise was drawn at build
// time, so splitting the frozen release across files is pure
// post-processing — byte-identical serving is provable, and
// sharded_artifact_test proves it.
//
// File layout (both manifest and shards):
//   u32 magic | u32 version | u32 section_count | u32 reserved
//   section_count x 32-byte table entries:
//     u32 id | u32 reserved | u64 payload_offset | u64 payload_size
//     | u32 crc32(payload) | u32 reserved
//   payloads at kShardAlignment-aligned offsets, zero padding between.
//
// Integrity: every payload carries a CRC32; the manifest's shard table
// additionally records each shard file's byte size and a CRC of its
// frame (header + section table). A flipped bit anywhere therefore fails
// closed — kDataLoss for checksum mismatches, kParseError for structural
// damage — and a shard from a different build fails the fingerprint /
// token gates (kGraphMismatch / kProvenanceMismatch) before any payload
// is trusted.

#ifndef PRIVREC_ARTIFACT_SHARD_LAYOUT_H_
#define PRIVREC_ARTIFACT_SHARD_LAYOUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "artifact/model.h"
#include "common/status.h"

namespace privrec::serving {

// "PVRM" / "PVRS" little-endian. Distinct from kArtifactMagic ("PVRA") so
// ServingEngine::Load can sniff which loader a path needs.
inline constexpr uint32_t kManifestMagic = 0x4D525650;
inline constexpr uint32_t kShardMagic = 0x53525650;
inline constexpr uint32_t kShardFormatVersion = 1;

// Payload alignment. 64 covers every element type in the format (max 8)
// with headroom for cache-line-aligned access.
inline constexpr uint64_t kShardAlignment = 64;

// Manifest section ids. On-disk values; never renumber.
enum class ManifestSectionId : uint32_t {
  kManifestMeta = 1,     // ByteWriter blob (ManifestMeta)
  kShardTable = 2,       // ByteWriter blob (vector<ShardTableEntry>)
  kClusterOf = 3,        // raw i64[num_users]
  kClusterSizes = 4,     // raw i64[num_clusters]
  kSanitizedFlags = 5,   // raw u8[num_clusters]
  kWorkloadOffsets = 6,  // raw u64[num_users + 1]
  kPrefOffsets = 7,      // raw u64[num_users + 1] (optional)
  kLowRankB = 8,         // raw f64[num_users * rank] (optional)
  kLowRankL = 9,         // raw f64[rank * num_users] (optional)
};

// Shard section ids. On-disk values; never renumber.
enum class ShardSectionId : uint32_t {
  kShardHeader = 1,       // ByteWriter blob (ShardHeader)
  kNoisyRows = 2,         // raw f64[(cluster_end-cluster_begin) * num_items]
  kWorkloadEntries = 3,   // raw WorkloadEntry[workload_entries] (16 B each)
  kPrefItems = 4,         // raw i64[pref_edges] (optional)
  kPrefWeights = 5,       // raw f64[pref_edges] (optional)
  kNoisyRowsF32 = 6,      // raw f32, same shape as kNoisyRows (optional)
};

const char* ManifestSectionName(ManifestSectionId id);
const char* ShardSectionName(ShardSectionId id);

// ---- Aligned container framing ----

struct AlignedSection {
  uint32_t id = 0;
  std::string payload;
};

// One parsed section-table row; the payload itself stays in the file.
struct AlignedSectionView {
  uint32_t id = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t crc32 = 0;
};

struct AlignedContainerView {
  uint32_t magic = 0;
  uint32_t version = 0;
  // Bytes covered by the frame (header + section table) — what the
  // manifest's per-shard frame CRC is computed over.
  uint64_t frame_bytes = 0;
  std::vector<AlignedSectionView> sections;
};

// Serializes sections into an aligned container (deterministic bytes).
std::string EncodeAlignedContainer(uint32_t magic, uint32_t version,
                                   const std::vector<AlignedSection>& sections);

// Parses the frame and bounds-checks every table entry against the actual
// file size (payload CRCs are NOT verified here — the mapped reader does
// that per section so it can name the damaged part and return kDataLoss).
// Errors: kParseError (truncated/foreign/structurally damaged),
// kVersionMismatch.
Result<AlignedContainerView> ParseAlignedContainer(const char* data,
                                                   uint64_t size,
                                                   uint32_t expected_magic,
                                                   uint32_t expected_version,
                                                   const std::string& what);

// ---- Manifest / shard metadata blobs ----

// Everything global and scalar-sized: the monolithic sections 1/5 plus the
// scalars of 3/4 and 7 whose arrays moved into shards or raw sections.
struct ManifestMeta {
  GraphMetaSection meta;
  ProvenanceSection provenance;
  double max_column_sum = 0.0;  // WorkloadSection scalars
  double max_entry = 0.0;
  int64_t num_clusters = 0;  // NoisyTableSection scalars
  int64_t empty_clusters = 0;
  int64_t singleton_clusters = 0;
  int64_t nonfinite_sanitized = 0;
  bool has_preferences = false;
  bool has_lowrank = false;
  int64_t lowrank_rank = 0;  // LowRankSection scalars
  double lowrank_noise_sensitivity = 0.0;
  double lowrank_factorization_error = 0.0;
  uint32_t shard_count = 0;
  // Identity of this build: a deterministic mix of the dataset
  // fingerprint and the DP provenance. Every shard repeats it, so a shard
  // spliced in from a different build of the SAME dataset still fails
  // closed (kProvenanceMismatch) instead of serving mixed noise.
  uint64_t artifact_token = 0;
  // Whether every shard carries a kNoisyRowsF32 mirror, and the CRC-32 of
  // the f64 values it was quantized from (NoisyTableF32Section semantics).
  // Appended at the end of the encoded blob, per the meta's
  // append-extensibility discipline.
  bool has_noisy_f32 = false;
  uint32_t noisy_f32_source_crc32 = 0;
};

struct ShardTableEntry {
  std::string file;  // relative to the manifest's directory
  int64_t cluster_begin = 0;
  int64_t cluster_end = 0;
  uint64_t file_size = 0;
  uint32_t frame_crc32 = 0;  // CRC of the shard's header + section table
  uint64_t noisy_values = 0;      // f64 count
  uint64_t workload_entries = 0;  // WorkloadEntry count
  uint64_t pref_edges = 0;        // preference edge count
};

struct ShardHeader {
  uint64_t graph_hash = 0;
  uint64_t artifact_token = 0;
  uint32_t shard_index = 0;
  uint32_t shard_count = 0;
  int64_t cluster_begin = 0;
  int64_t cluster_end = 0;
  int64_t num_items = 0;
  uint64_t workload_entries = 0;
  uint64_t pref_edges = 0;
};

std::string EncodeManifestMeta(const ManifestMeta& m);
Status DecodeManifestMeta(const std::string& payload, ManifestMeta* m);
std::string EncodeShardTable(const std::vector<ShardTableEntry>& t);
Status DecodeShardTable(const std::string& payload,
                        std::vector<ShardTableEntry>* t);
std::string EncodeShardHeader(const ShardHeader& h);
Status DecodeShardHeader(const std::string& payload, ShardHeader* h);

// The build-identity token recorded in the manifest and every shard.
uint64_t ArtifactToken(const ArtifactModel& model);

// ---- Sharded save ----

struct ShardingOptions {
  // Requested shard count; clamped to [1, max(num_clusters, 1)] — a shard
  // must own at least one whole cluster for the noisy rows to stay
  // contiguous.
  int64_t shards = 1;
};

// Cluster-range boundaries for `shards` shards (size effective_K + 1,
// bounds[k]..bounds[k+1] are shard k's clusters), balanced greedily by
// estimated shard bytes (workload records + noisy rows).
std::vector<int64_t> ShardClusterBounds(const ArtifactModel& model,
                                        int64_t shards);

// Writes `manifest_path` plus sibling `<manifest_path>.shard<k>` files.
// Every file is published atomically (same-directory temp + rename) and
// the manifest is written LAST, so a crash mid-save never leaves a
// manifest naming a missing or torn shard. Shares the artifact.open /
// artifact.write / artifact.rename fault points with SaveArtifact.
Status SaveShardedArtifact(const ArtifactModel& model,
                           const std::string& manifest_path,
                           const ShardingOptions& options);

}  // namespace privrec::serving

#endif  // PRIVREC_ARTIFACT_SHARD_LAYOUT_H_
