// Low-level .pvra container framing: little-endian fixed-width primitives
// and the sectioned envelope (magic, version, per-section id + size +
// CRC32). Section *payloads* are encoded/decoded in model_io.cc; this layer
// only guarantees that what comes back out is byte-for-byte what went in,
// and that anything else — truncation, bit flips, foreign files — turns
// into a Status naming the damaged part instead of a crash or a silent
// mis-load.

#ifndef PRIVREC_ARTIFACT_FORMAT_H_
#define PRIVREC_ARTIFACT_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace privrec::serving {

// Appends little-endian fixed-width values to a byte buffer. Doubles are
// stored as their IEEE-754 bit pattern, so encode(decode(x)) is exact and
// the container is byte-deterministic.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { PutLe(v); }
  void U64(uint64_t v) { PutLe(v); }
  void I64(int64_t v) { PutLe(static_cast<uint64_t>(v)); }
  void F64(double v);
  // u32 length prefix + raw bytes.
  void Str(const std::string& s);
  void Bytes(const void* data, size_t size);

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  template <typename T>
  void PutLe(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  std::string buf_;
};

// Bounds-checked little-endian reads over a byte span. Every getter
// returns false once the input is exhausted; Truncated() then produces a
// parse error naming the section being decoded. Element counts read from
// the payload must be validated with FitsCount before resizing — a
// bit-flipped count must fail cleanly, not allocate terabytes.
class ByteReader {
 public:
  ByteReader(std::string_view bytes, std::string context)
      : p_(bytes.data()), end_(bytes.data() + bytes.size()),
        context_(std::move(context)) {}

  bool U8(uint8_t* out);
  bool U32(uint32_t* out);
  bool U64(uint64_t* out);
  bool I64(int64_t* out);
  bool F64(double* out);
  bool Str(std::string* out);

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool AtEnd() const { return p_ == end_; }

  // Current read position and raw skip, for zero-copy payload slicing.
  const char* pos() const { return p_; }
  bool Skip(size_t n) {
    if (remaining() < n) return false;
    p_ += n;
    return true;
  }

  // True iff `count` elements of `elem_size` bytes could still fit in the
  // remaining input (the decode-side sanity gate for counts).
  bool FitsCount(uint64_t count, size_t elem_size) const {
    return elem_size == 0 || count <= remaining() / elem_size;
  }

  // "artifact section '<context>' truncated or corrupt".
  Status Truncated() const;

 private:
  template <typename T>
  bool GetLe(T* out) {
    if (remaining() < sizeof(T)) return false;
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<unsigned char>(p_[i])) << (8 * i);
    }
    p_ += sizeof(T);
    *out = v;
    return true;
  }

  const char* p_;
  const char* end_;
  std::string context_;
};

// One framed section: a format id plus an opaque payload.
struct RawSection {
  uint32_t id = 0;
  std::string payload;
};

// Container layout:
//   u32 magic "PVRA" | u32 version | u32 section_count
//   then per section: u32 id | u64 payload_size | u32 crc32(payload) | payload
std::string EncodeContainer(uint32_t version,
                            const std::vector<RawSection>& sections);

// Parses and CRC-verifies the envelope. Errors: kParseError for a foreign
// or damaged file (message names the first bad section), kVersionMismatch
// when the magic matches but the version is not `expected_version`.
Result<std::vector<RawSection>> DecodeContainer(std::string_view bytes,
                                                uint32_t expected_version);

}  // namespace privrec::serving

#endif  // PRIVREC_ARTIFACT_FORMAT_H_
