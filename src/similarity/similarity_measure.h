// Structural social-similarity measures (Section 2.2).
//
// A measure computes, for a target user u, the sparse row
// { (v, sim(u, v)) : sim(u, v) > 0, v != u } over the *public* social
// graph only — by design no similarity code can touch preference data.
//
// Rows are computed with a caller-provided DenseScratch (a dense
// accumulator plus touched-index list), giving O(neighborhood) work with no
// hashing. Entries are returned sorted by user id.

#ifndef PRIVREC_SIMILARITY_SIMILARITY_MEASURE_H_
#define PRIVREC_SIMILARITY_SIMILARITY_MEASURE_H_

#include <string>
#include <vector>

#include "graph/social_graph.h"

namespace privrec::similarity {

struct SimilarityEntry {
  graph::NodeId user;
  double score;

  friend bool operator==(const SimilarityEntry&,
                         const SimilarityEntry&) = default;
};

// Reusable dense accumulator: values[] stays all-zero between uses; touched
// records which slots are dirty so reset is O(touched).
class DenseScratch {
 public:
  void Resize(graph::NodeId n) {
    if (static_cast<size_t>(n) > values_.size()) {
      values_.assign(static_cast<size_t>(n), 0.0);
    }
  }

  void Accumulate(graph::NodeId v, double x) {
    double& slot = values_[static_cast<size_t>(v)];
    if (slot == 0.0 && x != 0.0) touched_.push_back(v);
    slot += x;
  }

  double Get(graph::NodeId v) const { return values_[static_cast<size_t>(v)]; }

  const std::vector<graph::NodeId>& touched() const { return touched_; }

  // Extracts all strictly-positive entries sorted by id, then clears.
  std::vector<SimilarityEntry> TakeSortedPositive();

  void Clear();

 private:
  std::vector<double> values_;
  std::vector<graph::NodeId> touched_;
};

class SimilarityMeasure {
 public:
  virtual ~SimilarityMeasure() = default;

  // Short identifier used in reports: "CN", "GD", "AA", "KZ".
  virtual std::string Name() const = 0;

  // Computes the similarity row of u. `scratch` must outlive the call and
  // may be reused across calls, but must not be shared between concurrent
  // calls. Implementations must be safe to call concurrently from multiple
  // threads on the same graph with distinct scratches (any internal state
  // must be per-call or thread_local) — the parallel workload
  // materialization (similarity/workload.cc) relies on this.
  virtual std::vector<SimilarityEntry> Row(const graph::SocialGraph& g,
                                           graph::NodeId u,
                                           DenseScratch* scratch) const = 0;
};

}  // namespace privrec::similarity

#endif  // PRIVREC_SIMILARITY_SIMILARITY_MEASURE_H_
