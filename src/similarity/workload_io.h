// SimilarityWorkload serialization. Similarity rows depend only on the
// public social graph, so a deployment computes them once and reuses the
// file across every release — Katz and PPR rows in particular are far
// more expensive to compute than to load.
//
// Format: a '#'-header carrying measure name, user count and the global
// sensitivity statistics, then one "u v score" line per entry.

#ifndef PRIVREC_SIMILARITY_WORKLOAD_IO_H_
#define PRIVREC_SIMILARITY_WORKLOAD_IO_H_

#include <string>

#include "common/status.h"
#include "similarity/workload.h"

namespace privrec::similarity {

Status SaveWorkload(const SimilarityWorkload& workload,
                    const std::string& path);

Result<SimilarityWorkload> LoadWorkload(const std::string& path);

}  // namespace privrec::similarity

#endif  // PRIVREC_SIMILARITY_WORKLOAD_IO_H_
