#include "similarity/adamic_adar.h"

#include <algorithm>
#include <cmath>

namespace privrec::similarity {

std::vector<SimilarityEntry> AdamicAdar::Row(const graph::SocialGraph& g,
                                             graph::NodeId u,
                                             DenseScratch* scratch) const {
  scratch->Resize(g.num_nodes());
  for (graph::NodeId w : g.Neighbors(u)) {
    double denom = std::log(
        std::max<double>(2.0, static_cast<double>(g.Degree(w))));
    double contribution = 1.0 / denom;
    for (graph::NodeId v : g.Neighbors(w)) {
      if (v == u) continue;
      scratch->Accumulate(v, contribution);
    }
  }
  return scratch->TakeSortedPositive();
}

}  // namespace privrec::similarity
