#include "similarity/workload_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace privrec::similarity {

Status SaveWorkload(const SimilarityWorkload& workload,
                    const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  char header[256];
  // `entries=` lets the loader distinguish a file truncated at a line
  // boundary (silently shorter, otherwise undetectable) from a complete one.
  std::snprintf(header, sizeof(header),
                "# privrec workload measure=%s users=%" PRId64
                " entries=%" PRId64
                " max_column_sum=%.17g max_entry=%.17g\n",
                workload.measure_name().c_str(), workload.num_users(),
                workload.TotalEntries(), workload.MaxColumnSum(),
                workload.MaxEntry());
  out << header;
  char line[96];
  for (graph::NodeId u = 0; u < workload.num_users(); ++u) {
    for (const SimilarityEntry& e : workload.Row(u)) {
      std::snprintf(line, sizeof(line),
                    "%" PRId64 "\t%" PRId64 "\t%.17g\n", u, e.user,
                    e.score);
      out << line;
    }
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Result<SimilarityWorkload> LoadWorkload(const std::string& path) {
  if (fault::Hit("workload_io.open") == fault::FaultKind::kIoError) {
    return Status::IoError("cannot open " + path + " (injected fault)");
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);

  std::string line;
  if (!std::getline(in, line) || !StartsWith(line, "# privrec workload")) {
    return Status::ParseError(path + ": missing workload header");
  }
  std::string measure_name;
  graph::NodeId num_users = -1;
  int64_t num_entries = -1;  // absent in files written before the field
  double max_column_sum = -1.0;
  double max_entry = -1.0;
  for (std::string_view field : SplitWhitespace(line)) {
    size_t eq = field.find('=');
    if (eq == std::string_view::npos) continue;
    std::string_view key = field.substr(0, eq);
    std::string_view value = field.substr(eq + 1);
    if (key == "measure") {
      measure_name = std::string(value);
    } else if (key == "users") {
      if (!ParseInt64(value, &num_users)) {
        return Status::ParseError(path + ": bad users field");
      }
    } else if (key == "entries") {
      if (!ParseInt64(value, &num_entries) || num_entries < 0) {
        return Status::ParseError(path + ": bad entries field");
      }
    } else if (key == "max_column_sum") {
      if (!ParseDouble(value, &max_column_sum)) {
        return Status::ParseError(path + ": bad max_column_sum");
      }
    } else if (key == "max_entry") {
      if (!ParseDouble(value, &max_entry)) {
        return Status::ParseError(path + ": bad max_entry");
      }
    }
  }
  if (num_users < 0 || max_column_sum < 0.0 || max_entry < 0.0 ||
      measure_name.empty()) {
    return Status::ParseError(path + ": incomplete workload header");
  }

  std::vector<size_t> offsets = {0};
  offsets.reserve(static_cast<size_t>(num_users) + 1);
  std::vector<SimilarityEntry> entries;
  graph::NodeId current = 0;
  int64_t line_no = 1;
  bool short_read = false;
  while (std::getline(in, line)) {
    ++line_no;
    const fault::FaultKind k = fault::Hit("workload_io.read");
    if (k == fault::FaultKind::kIoError) {
      return Status::IoError("read failed for " + path + " (injected fault)");
    }
    if (k == fault::FaultKind::kShortRead) {
      short_read = true;
      break;
    }
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == '#') continue;
    auto fields = SplitWhitespace(sv);
    int64_t u = 0;
    int64_t v = 0;
    double score = 0.0;
    if (fields.size() < 3 || !ParseInt64(fields[0], &u) ||
        !ParseInt64(fields[1], &v) || !ParseDouble(fields[2], &score)) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": bad entry");
    }
    if (u < current) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": rows out of order");
    }
    if (u >= num_users || v < 0 || v >= num_users) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": id outside header range");
    }
    while (current < u) {
      offsets.push_back(entries.size());
      ++current;
    }
    entries.push_back({v, score});
  }
  while (current < num_users) {
    offsets.push_back(entries.size());
    ++current;
  }
  if (short_read) {
    return Status::ParseError(path + ": truncated workload (short read)");
  }
  if (num_entries >= 0 &&
      num_entries != static_cast<int64_t>(entries.size())) {
    return Status::ParseError(
        path + ": truncated workload (header promises " +
        std::to_string(num_entries) + " entries, got " +
        std::to_string(entries.size()) + ")");
  }
  return SimilarityWorkload::FromParts(num_users, std::move(measure_name),
                                       std::move(offsets),
                                       std::move(entries), max_column_sum,
                                       max_entry);
}

}  // namespace privrec::similarity
