#include "similarity/personalized_pagerank.h"

#include <deque>
#include <vector>

namespace privrec::similarity {

PersonalizedPageRank::PersonalizedPageRank(double restart, double threshold)
    : restart_(restart), threshold_(threshold) {
  PRIVREC_CHECK(restart > 0.0 && restart < 1.0);
  PRIVREC_CHECK(threshold > 0.0);
}

std::vector<SimilarityEntry> PersonalizedPageRank::Row(
    const graph::SocialGraph& g, graph::NodeId u,
    DenseScratch* scratch) const {
  // Forward push (Andersen-Chung-Lang): maintain estimate p and residual
  // r; repeatedly push nodes whose residual exceeds threshold * degree.
  // `scratch` holds the estimates p; the residual lives in a local dense
  // vector sized once per call (touched set is small).
  const graph::NodeId n = g.num_nodes();
  scratch->Resize(n);
  if (g.Degree(u) == 0) return {};

  // Residual map: dense array + queue of active nodes.
  static thread_local std::vector<double> residual;
  if (residual.size() < static_cast<size_t>(n)) {
    residual.assign(static_cast<size_t>(n), 0.0);
  }
  std::deque<graph::NodeId> active;
  std::vector<graph::NodeId> touched;

  auto add_residual = [&](graph::NodeId v, double mass) {
    if (residual[static_cast<size_t>(v)] == 0.0 && mass > 0.0) {
      touched.push_back(v);
    }
    residual[static_cast<size_t>(v)] += mass;
    // Activate when above the push threshold for its degree.
    if (residual[static_cast<size_t>(v)] >
        threshold_ * static_cast<double>(std::max<int64_t>(
                         1, g.Degree(v)))) {
      active.push_back(v);
    }
  };
  add_residual(u, 1.0);

  // Bounded iterations: total pushed mass is <= 1/ (threshold * restart),
  // but guard against pathological re-activation anyway.
  int64_t budget = static_cast<int64_t>(64.0 / (threshold_ * restart_));
  while (!active.empty() && budget-- > 0) {
    graph::NodeId v = active.front();
    active.pop_front();
    double r = residual[static_cast<size_t>(v)];
    int64_t deg = g.Degree(v);
    if (r <= threshold_ * static_cast<double>(std::max<int64_t>(1, deg))) {
      continue;  // stale queue entry
    }
    residual[static_cast<size_t>(v)] = 0.0;
    scratch->Accumulate(v, restart_ * r);
    if (deg == 0) continue;
    double share = (1.0 - restart_) * r / static_cast<double>(deg);
    for (graph::NodeId w : g.Neighbors(v)) {
      add_residual(w, share);
    }
  }

  // Clear residuals for the next call.
  for (graph::NodeId v : touched) residual[static_cast<size_t>(v)] = 0.0;

  // Self-similarity is excluded from similarity sets (sim(u) is over
  // OTHER users); pull it out of the scratch before extraction.
  std::vector<SimilarityEntry> row = scratch->TakeSortedPositive();
  std::erase_if(row,
                [&](const SimilarityEntry& e) { return e.user == u; });
  return row;
}

}  // namespace privrec::similarity
