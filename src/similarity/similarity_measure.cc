#include "similarity/similarity_measure.h"

#include <algorithm>

namespace privrec::similarity {

std::vector<SimilarityEntry> DenseScratch::TakeSortedPositive() {
  std::sort(touched_.begin(), touched_.end());
  std::vector<SimilarityEntry> out;
  out.reserve(touched_.size());
  for (graph::NodeId v : touched_) {
    double x = values_[static_cast<size_t>(v)];
    if (x > 0.0) out.push_back({v, x});
    values_[static_cast<size_t>(v)] = 0.0;
  }
  touched_.clear();
  return out;
}

void DenseScratch::Clear() {
  for (graph::NodeId v : touched_) values_[static_cast<size_t>(v)] = 0.0;
  touched_.clear();
}

}  // namespace privrec::similarity
