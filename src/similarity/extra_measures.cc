#include "similarity/extra_measures.h"

#include <algorithm>
#include <cmath>

namespace privrec::similarity {

namespace {

// All five measures are normalizations of the common-neighbor count:
// accumulate |Γ(u) ∩ Γ(v)| (or the RA-weighted variant) over length-2
// paths, then rescale each touched entry by a (u, v)-dependent factor.
template <typename Rescale>
std::vector<SimilarityEntry> CommonNeighborBased(
    const graph::SocialGraph& g, graph::NodeId u, DenseScratch* scratch,
    bool resource_allocation, Rescale rescale) {
  scratch->Resize(g.num_nodes());
  for (graph::NodeId w : g.Neighbors(u)) {
    double contribution =
        resource_allocation
            ? 1.0 / static_cast<double>(std::max<int64_t>(1, g.Degree(w)))
            : 1.0;
    for (graph::NodeId v : g.Neighbors(w)) {
      if (v == u) continue;
      scratch->Accumulate(v, contribution);
    }
  }
  std::vector<SimilarityEntry> row = scratch->TakeSortedPositive();
  for (SimilarityEntry& e : row) {
    e.score = rescale(e.user, e.score);
  }
  return row;
}

}  // namespace

std::vector<SimilarityEntry> Jaccard::Row(const graph::SocialGraph& g,
                                          graph::NodeId u,
                                          DenseScratch* scratch) const {
  double du = static_cast<double>(g.Degree(u));
  return CommonNeighborBased(
      g, u, scratch, /*resource_allocation=*/false,
      [&](graph::NodeId v, double common) {
        double dv = static_cast<double>(g.Degree(v));
        // |union| = deg(u) + deg(v) - |intersection|.
        return common / (du + dv - common);
      });
}

std::vector<SimilarityEntry> SaltonCosine::Row(const graph::SocialGraph& g,
                                               graph::NodeId u,
                                               DenseScratch* scratch) const {
  double du = static_cast<double>(g.Degree(u));
  return CommonNeighborBased(
      g, u, scratch, /*resource_allocation=*/false,
      [&](graph::NodeId v, double common) {
        return common / std::sqrt(du * static_cast<double>(g.Degree(v)));
      });
}

std::vector<SimilarityEntry> Sorensen::Row(const graph::SocialGraph& g,
                                           graph::NodeId u,
                                           DenseScratch* scratch) const {
  double du = static_cast<double>(g.Degree(u));
  return CommonNeighborBased(
      g, u, scratch, /*resource_allocation=*/false,
      [&](graph::NodeId v, double common) {
        return 2.0 * common / (du + static_cast<double>(g.Degree(v)));
      });
}

std::vector<SimilarityEntry> ResourceAllocation::Row(
    const graph::SocialGraph& g, graph::NodeId u,
    DenseScratch* scratch) const {
  return CommonNeighborBased(g, u, scratch, /*resource_allocation=*/true,
                             [](graph::NodeId, double s) { return s; });
}

std::vector<SimilarityEntry> HubPromoted::Row(const graph::SocialGraph& g,
                                              graph::NodeId u,
                                              DenseScratch* scratch) const {
  double du = static_cast<double>(g.Degree(u));
  return CommonNeighborBased(
      g, u, scratch, /*resource_allocation=*/false,
      [&](graph::NodeId v, double common) {
        return common /
               std::min(du, static_cast<double>(g.Degree(v)));
      });
}

}  // namespace privrec::similarity
