// Katz: sim(u, v) = Σ_{l=1..k} α^l · |paths_uv^l|, where paths are counted
// as walks (entries of A^l, the standard Katz formulation) and α is a small
// damping factor. The paper uses k = 3, α = 0.05.

#ifndef PRIVREC_SIMILARITY_KATZ_H_
#define PRIVREC_SIMILARITY_KATZ_H_

#include <cstdint>

#include "similarity/similarity_measure.h"

namespace privrec::similarity {

class Katz final : public SimilarityMeasure {
 public:
  explicit Katz(int64_t max_length = 3, double damping = 0.05);

  std::string Name() const override { return "KZ"; }
  int64_t max_length() const { return max_length_; }
  double damping() const { return damping_; }

  std::vector<SimilarityEntry> Row(const graph::SocialGraph& g,
                                   graph::NodeId u,
                                   DenseScratch* scratch) const override;

 private:
  int64_t max_length_;
  double damping_;
};

}  // namespace privrec::similarity

#endif  // PRIVREC_SIMILARITY_KATZ_H_
