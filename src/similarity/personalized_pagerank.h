// Personalized PageRank similarity — the random-walk family the paper's
// introduction cites (Konstas et al., SIGIR'09) as the other major school
// of social recommenders, here usable as a sim(u, ·) for the framework.
//
// sim(u, v) = the stationary probability that an α-restarting random walk
// from u is at v, computed by the Andersen-Chung-Lang forward-push
// approximation: deterministic, local (touches only nodes with residual
// above the threshold), and independent of any private data.
//
// Scores are kept only above `threshold` (the push tolerance), which also
// caps the similarity-set size — PPR naturally concentrates on the
// user's community.
//
// Caveat: unlike the paper's four measures, PPR is NOT symmetric
// (degree normalization breaks it). It composes with the row-based
// recommenders (Exact, Cluster, NOU, NOE, LRM) but not with the GS
// adaptation, whose per-item scatter assumes sim(u, v) = sim(v, u).

#ifndef PRIVREC_SIMILARITY_PERSONALIZED_PAGERANK_H_
#define PRIVREC_SIMILARITY_PERSONALIZED_PAGERANK_H_

#include "similarity/similarity_measure.h"

namespace privrec::similarity {

class PersonalizedPageRank final : public SimilarityMeasure {
 public:
  // `restart` is the teleport probability back to u (typical 0.15-0.3);
  // `threshold` is the per-degree push tolerance epsilon_push: smaller =
  // more accurate and larger similarity sets.
  explicit PersonalizedPageRank(double restart = 0.2,
                                double threshold = 1e-4);

  std::string Name() const override { return "PPR"; }
  double restart() const { return restart_; }

  std::vector<SimilarityEntry> Row(const graph::SocialGraph& g,
                                   graph::NodeId u,
                                   DenseScratch* scratch) const override;

 private:
  double restart_;
  double threshold_;
};

}  // namespace privrec::similarity

#endif  // PRIVREC_SIMILARITY_PERSONALIZED_PAGERANK_H_
