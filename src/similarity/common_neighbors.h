// Common Neighbors: sim(u, v) = |Γ(u) ∩ Γ(v)|.

#ifndef PRIVREC_SIMILARITY_COMMON_NEIGHBORS_H_
#define PRIVREC_SIMILARITY_COMMON_NEIGHBORS_H_

#include "similarity/similarity_measure.h"

namespace privrec::similarity {

class CommonNeighbors final : public SimilarityMeasure {
 public:
  std::string Name() const override { return "CN"; }

  std::vector<SimilarityEntry> Row(const graph::SocialGraph& g,
                                   graph::NodeId u,
                                   DenseScratch* scratch) const override;
};

}  // namespace privrec::similarity

#endif  // PRIVREC_SIMILARITY_COMMON_NEIGHBORS_H_
