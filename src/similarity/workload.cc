#include "similarity/workload.h"

#include <algorithm>
#include <utility>

#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace privrec::similarity {

namespace {

// Per-chunk partial of the workload materialization. Folded in chunk-index
// order, so the assembled CSR layout and the FP column sums are identical
// for every thread count (see common/parallel.h).
struct RowChunk {
  // Stored-row sizes for every user in the chunk (0 for masked-out rows).
  std::vector<size_t> stored_sizes;
  // Stored rows concatenated in user order.
  std::vector<SimilarityEntry> entries;
  // Column-sum contributions of ALL the chunk's rows (stored or not),
  // summed within the chunk in user order, extracted sorted by user id.
  std::vector<SimilarityEntry> column_contrib;
  double max_entry = 0.0;
};

}  // namespace

void SimilarityWorkload::FillRows(const graph::SocialGraph& g,
                                  const SimilarityMeasure& measure,
                                  const std::vector<bool>* store_mask,
                                  SimilarityWorkload* w) {
  PRIVREC_SPAN("similarity.workload");
  const graph::NodeId n = g.num_nodes();
  std::vector<double> column_sums(static_cast<size_t>(n), 0.0);

  Result<std::monostate> folded = ParallelReduce(
      static_cast<int64_t>(n), std::monostate{},
      [&](int64_t, int64_t begin, int64_t end) {
        // Row and column scratch are reused across the chunks a worker
        // executes; both are fully drained between chunks, so a chunk's
        // partial depends only on its own [begin, end) slice.
        thread_local DenseScratch row_scratch;
        thread_local DenseScratch col_scratch;
        col_scratch.Resize(n);
        RowChunk chunk;
        chunk.stored_sizes.reserve(static_cast<size_t>(end - begin));
        for (graph::NodeId u = static_cast<graph::NodeId>(begin);
             u < static_cast<graph::NodeId>(end); ++u) {
          std::vector<SimilarityEntry> row =
              measure.Row(g, u, &row_scratch);
          for (const SimilarityEntry& e : row) {
            col_scratch.Accumulate(e.user, e.score);
            chunk.max_entry = std::max(chunk.max_entry, e.score);
          }
          if (store_mask == nullptr ||
              (*store_mask)[static_cast<size_t>(u)]) {
            chunk.stored_sizes.push_back(row.size());
            chunk.entries.insert(chunk.entries.end(), row.begin(),
                                 row.end());
          } else {
            chunk.stored_sizes.push_back(0);
          }
        }
        chunk.column_contrib = col_scratch.TakeSortedPositive();
        return chunk;
      },
      [&](std::monostate&, RowChunk chunk) {
        for (size_t size : chunk.stored_sizes) {
          w->offsets_.push_back(w->offsets_.back() + size);
        }
        w->entries_.insert(w->entries_.end(), chunk.entries.begin(),
                           chunk.entries.end());
        for (const SimilarityEntry& e : chunk.column_contrib) {
          column_sums[static_cast<size_t>(e.user)] += e.score;
        }
        w->max_entry_ = std::max(w->max_entry_, chunk.max_entry);
      });
  PRIVREC_CHECK_MSG(folded.ok(), folded.status().message().c_str());

  for (double s : column_sums) {
    w->max_column_sum_ = std::max(w->max_column_sum_, s);
  }

  static obs::Counter& workloads =
      obs::GetCounter("privrec.similarity.workloads");
  static obs::Counter& rows =
      obs::GetCounter("privrec.similarity.rows_materialized");
  static obs::Counter& stored =
      obs::GetCounter("privrec.similarity.entries_stored");
  workloads.Increment();
  rows.Add(static_cast<int64_t>(n));
  stored.Add(static_cast<int64_t>(w->entries_.size()));
}

SimilarityWorkload SimilarityWorkload::Compute(
    const graph::SocialGraph& g, const SimilarityMeasure& measure) {
  SimilarityWorkload w;
  w.num_users_ = g.num_nodes();
  w.measure_name_ = measure.Name();
  w.offsets_.reserve(static_cast<size_t>(g.num_nodes()) + 1);
  FillRows(g, measure, nullptr, &w);
  return w;
}

SimilarityWorkload SimilarityWorkload::ComputeForUsers(
    const graph::SocialGraph& g, const SimilarityMeasure& measure,
    const std::vector<graph::NodeId>& store_users) {
  SimilarityWorkload w;
  w.num_users_ = g.num_nodes();
  w.measure_name_ = measure.Name();
  w.offsets_.reserve(static_cast<size_t>(g.num_nodes()) + 1);
  std::vector<bool> mask(static_cast<size_t>(g.num_nodes()), false);
  for (graph::NodeId u : store_users) {
    PRIVREC_CHECK(u >= 0 && u < g.num_nodes());
    mask[static_cast<size_t>(u)] = true;
  }
  FillRows(g, measure, &mask, &w);
  return w;
}

SimilarityWorkload SimilarityWorkload::FromParts(
    graph::NodeId num_users, std::string measure_name,
    std::vector<size_t> offsets, std::vector<SimilarityEntry> entries,
    double max_column_sum, double max_entry) {
  PRIVREC_CHECK(offsets.size() == static_cast<size_t>(num_users) + 1);
  PRIVREC_CHECK(offsets.front() == 0);
  PRIVREC_CHECK(offsets.back() == entries.size());
  for (size_t k = 1; k < offsets.size(); ++k) {
    PRIVREC_CHECK(offsets[k - 1] <= offsets[k]);
  }
  SimilarityWorkload w;
  w.num_users_ = num_users;
  w.measure_name_ = std::move(measure_name);
  w.offsets_ = std::move(offsets);
  w.entries_ = std::move(entries);
  w.max_column_sum_ = max_column_sum;
  w.max_entry_ = max_entry;
  return w;
}

double SimilarityWorkload::RowSum(graph::NodeId u) const {
  double acc = 0.0;
  for (const SimilarityEntry& e : Row(u)) acc += e.score;
  return acc;
}

double SimilarityWorkload::AverageRowSize() const {
  if (num_users_ == 0) return 0.0;
  return static_cast<double>(entries_.size()) /
         static_cast<double>(num_users_);
}

}  // namespace privrec::similarity
