#include "similarity/workload.h"

#include <algorithm>

namespace privrec::similarity {

void SimilarityWorkload::FillRows(const graph::SocialGraph& g,
                                  const SimilarityMeasure& measure,
                                  const std::vector<bool>* store_mask,
                                  SimilarityWorkload* w) {
  DenseScratch scratch;
  std::vector<double> column_sums(static_cast<size_t>(g.num_nodes()), 0.0);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<SimilarityEntry> row = measure.Row(g, u, &scratch);
    for (const SimilarityEntry& e : row) {
      column_sums[static_cast<size_t>(e.user)] += e.score;
      w->max_entry_ = std::max(w->max_entry_, e.score);
    }
    if (store_mask == nullptr || (*store_mask)[static_cast<size_t>(u)]) {
      w->entries_.insert(w->entries_.end(), row.begin(), row.end());
    }
    w->offsets_.push_back(w->entries_.size());
  }
  for (double s : column_sums) {
    w->max_column_sum_ = std::max(w->max_column_sum_, s);
  }
}

SimilarityWorkload SimilarityWorkload::Compute(
    const graph::SocialGraph& g, const SimilarityMeasure& measure) {
  SimilarityWorkload w;
  w.num_users_ = g.num_nodes();
  w.measure_name_ = measure.Name();
  w.offsets_.reserve(static_cast<size_t>(g.num_nodes()) + 1);
  FillRows(g, measure, nullptr, &w);
  return w;
}

SimilarityWorkload SimilarityWorkload::ComputeForUsers(
    const graph::SocialGraph& g, const SimilarityMeasure& measure,
    const std::vector<graph::NodeId>& store_users) {
  SimilarityWorkload w;
  w.num_users_ = g.num_nodes();
  w.measure_name_ = measure.Name();
  w.offsets_.reserve(static_cast<size_t>(g.num_nodes()) + 1);
  std::vector<bool> mask(static_cast<size_t>(g.num_nodes()), false);
  for (graph::NodeId u : store_users) {
    PRIVREC_CHECK(u >= 0 && u < g.num_nodes());
    mask[static_cast<size_t>(u)] = true;
  }
  FillRows(g, measure, &mask, &w);
  return w;
}

SimilarityWorkload SimilarityWorkload::FromParts(
    graph::NodeId num_users, std::string measure_name,
    std::vector<size_t> offsets, std::vector<SimilarityEntry> entries,
    double max_column_sum, double max_entry) {
  PRIVREC_CHECK(offsets.size() == static_cast<size_t>(num_users) + 1);
  PRIVREC_CHECK(offsets.front() == 0);
  PRIVREC_CHECK(offsets.back() == entries.size());
  for (size_t k = 1; k < offsets.size(); ++k) {
    PRIVREC_CHECK(offsets[k - 1] <= offsets[k]);
  }
  SimilarityWorkload w;
  w.num_users_ = num_users;
  w.measure_name_ = std::move(measure_name);
  w.offsets_ = std::move(offsets);
  w.entries_ = std::move(entries);
  w.max_column_sum_ = max_column_sum;
  w.max_entry_ = max_entry;
  return w;
}

double SimilarityWorkload::RowSum(graph::NodeId u) const {
  double acc = 0.0;
  for (const SimilarityEntry& e : Row(u)) acc += e.score;
  return acc;
}

double SimilarityWorkload::AverageRowSize() const {
  if (num_users_ == 0) return 0.0;
  return static_cast<double>(entries_.size()) /
         static_cast<double>(num_users_);
}

}  // namespace privrec::similarity
