// Graph Distance: sim(u, v) = 1 / d(u, v) for shortest-path distance d up
// to a cutoff (the paper limits d to 2, citing the small-world blowup
// beyond two hops).

#ifndef PRIVREC_SIMILARITY_GRAPH_DISTANCE_H_
#define PRIVREC_SIMILARITY_GRAPH_DISTANCE_H_

#include <cstdint>

#include "similarity/similarity_measure.h"

namespace privrec::similarity {

class GraphDistance final : public SimilarityMeasure {
 public:
  explicit GraphDistance(int64_t max_distance = 2);

  std::string Name() const override { return "GD"; }
  int64_t max_distance() const { return max_distance_; }

  std::vector<SimilarityEntry> Row(const graph::SocialGraph& g,
                                   graph::NodeId u,
                                   DenseScratch* scratch) const override;

 private:
  int64_t max_distance_;
};

}  // namespace privrec::similarity

#endif  // PRIVREC_SIMILARITY_GRAPH_DISTANCE_H_
