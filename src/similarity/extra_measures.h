// Additional structural similarity measures beyond the paper's four —
// its future work asks to "evaluate the framework for a larger variety of
// social similarity measures". All are classics from the link-prediction
// survey the paper cites (Lü & Zhou 2011), are symmetric, operate only on
// the public social graph, and are supported on 2-hop neighborhoods (so
// they plug into the framework with no other change):
//
//   Jaccard        |Γ(u) ∩ Γ(v)| / |Γ(u) ∪ Γ(v)|
//   Salton/cosine  |Γ(u) ∩ Γ(v)| / sqrt(|Γ(u)| · |Γ(v)|)
//   Sørensen       2|Γ(u) ∩ Γ(v)| / (|Γ(u)| + |Γ(v)|)
//   Resource Alloc Σ_{x ∈ Γ(u) ∩ Γ(v)} 1 / |Γ(x)|
//   Hub Promoted   |Γ(u) ∩ Γ(v)| / min(|Γ(u)|, |Γ(v)|)

#ifndef PRIVREC_SIMILARITY_EXTRA_MEASURES_H_
#define PRIVREC_SIMILARITY_EXTRA_MEASURES_H_

#include "similarity/similarity_measure.h"

namespace privrec::similarity {

class Jaccard final : public SimilarityMeasure {
 public:
  std::string Name() const override { return "JC"; }
  std::vector<SimilarityEntry> Row(const graph::SocialGraph& g,
                                   graph::NodeId u,
                                   DenseScratch* scratch) const override;
};

class SaltonCosine final : public SimilarityMeasure {
 public:
  std::string Name() const override { return "SC"; }
  std::vector<SimilarityEntry> Row(const graph::SocialGraph& g,
                                   graph::NodeId u,
                                   DenseScratch* scratch) const override;
};

class Sorensen final : public SimilarityMeasure {
 public:
  std::string Name() const override { return "SO"; }
  std::vector<SimilarityEntry> Row(const graph::SocialGraph& g,
                                   graph::NodeId u,
                                   DenseScratch* scratch) const override;
};

class ResourceAllocation final : public SimilarityMeasure {
 public:
  std::string Name() const override { return "RA"; }
  std::vector<SimilarityEntry> Row(const graph::SocialGraph& g,
                                   graph::NodeId u,
                                   DenseScratch* scratch) const override;
};

class HubPromoted final : public SimilarityMeasure {
 public:
  std::string Name() const override { return "HP"; }
  std::vector<SimilarityEntry> Row(const graph::SocialGraph& g,
                                   graph::NodeId u,
                                   DenseScratch* scratch) const override;
};

}  // namespace privrec::similarity

#endif  // PRIVREC_SIMILARITY_EXTRA_MEASURES_H_
