#include "similarity/katz.h"

#include <utility>

namespace privrec::similarity {

Katz::Katz(int64_t max_length, double damping)
    : max_length_(max_length), damping_(damping) {
  PRIVREC_CHECK(max_length >= 1);
  PRIVREC_CHECK(damping > 0.0 && damping < 1.0);
}

std::vector<SimilarityEntry> Katz::Row(const graph::SocialGraph& g,
                                       graph::NodeId u,
                                       DenseScratch* scratch) const {
  scratch->Resize(g.num_nodes());
  // Iterated sparse vector-matrix products: walks_l = A * walks_{l-1},
  // starting from the indicator of u. The accumulator collects
  // Σ_l α^l * walks_l[v].
  std::vector<std::pair<graph::NodeId, double>> walks = {{u, 1.0}};
  // Reused across rows (and safe under the parallel workload layer, which
  // runs one row per thread at a time): the loop below drains `step` every
  // iteration, so it is all-zero again when the call returns.
  thread_local DenseScratch step;
  step.Resize(g.num_nodes());
  double alpha_pow = 1.0;
  for (int64_t l = 1; l <= max_length_; ++l) {
    alpha_pow *= damping_;
    for (auto [w, count] : walks) {
      for (graph::NodeId v : g.Neighbors(w)) {
        step.Accumulate(v, count);
      }
    }
    walks.clear();
    for (graph::NodeId v : step.touched()) {
      double count = step.Get(v);
      walks.emplace_back(v, count);
      if (v != u) scratch->Accumulate(v, alpha_pow * count);
    }
    step.Clear();
  }
  return scratch->TakeSortedPositive();
}

}  // namespace privrec::similarity
