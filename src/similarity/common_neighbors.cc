#include "similarity/common_neighbors.h"

namespace privrec::similarity {

std::vector<SimilarityEntry> CommonNeighbors::Row(
    const graph::SocialGraph& g, graph::NodeId u,
    DenseScratch* scratch) const {
  scratch->Resize(g.num_nodes());
  // Every length-2 path u - w - v contributes one common neighbor (w) to
  // sim(u, v).
  for (graph::NodeId w : g.Neighbors(u)) {
    for (graph::NodeId v : g.Neighbors(w)) {
      if (v == u) continue;
      scratch->Accumulate(v, 1.0);
    }
  }
  return scratch->TakeSortedPositive();
}

}  // namespace privrec::similarity
