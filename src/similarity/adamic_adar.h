// Adamic/Adar: sim(u, v) = Σ_{x in Γ(u) ∩ Γ(v)} 1 / log |Γ(x)|.
//
// Common neighbors with degree 1 cannot exist (they would have to neighbor
// both u and v); degree-2 neighbors contribute 1/log 2. For robustness the
// denominator is floored at log 2 so a malformed input cannot divide by
// zero.

#ifndef PRIVREC_SIMILARITY_ADAMIC_ADAR_H_
#define PRIVREC_SIMILARITY_ADAMIC_ADAR_H_

#include "similarity/similarity_measure.h"

namespace privrec::similarity {

class AdamicAdar final : public SimilarityMeasure {
 public:
  std::string Name() const override { return "AA"; }

  std::vector<SimilarityEntry> Row(const graph::SocialGraph& g,
                                   graph::NodeId u,
                                   DenseScratch* scratch) const override;
};

}  // namespace privrec::similarity

#endif  // PRIVREC_SIMILARITY_ADAMIC_ADAR_H_
