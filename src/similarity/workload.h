// SimilarityWorkload: all similarity rows of a graph under one measure,
// computed once and stored in CSR layout. This is the workload matrix W of
// the paper (W[u][v] = sim(u, v)); the recommenders, the NOU/GS sensitivity
// Δ_A = max_v Σ_u sim(u, v), and the LRM factorization all read from it.

#ifndef PRIVREC_SIMILARITY_WORKLOAD_H_
#define PRIVREC_SIMILARITY_WORKLOAD_H_

#include <span>
#include <string>
#include <vector>

#include "graph/social_graph.h"
#include "similarity/similarity_measure.h"

namespace privrec::similarity {

class SimilarityWorkload {
 public:
  // Computes every row of the measure over g. O(Σ_u |row(u)| log) time.
  // Runs on the deterministic parallel layer (common/parallel.h): rows are
  // computed in fixed user chunks and assembled in chunk order, so the
  // workload — including the FP column-sum statistics — is bit-identical
  // for every thread count.
  static SimilarityWorkload Compute(const graph::SocialGraph& g,
                                    const SimilarityMeasure& measure);

  // Memory-bounded variant for large graphs: all rows are *computed* (the
  // global column-sum statistics still cover every user) but only the rows
  // of `store_users` are retained; Row(u) for any other user returns an
  // empty span. Sufficient for mechanisms that read rows only for the
  // users being evaluated (Exact, Cluster, NOE); NOT sufficient for GS,
  // which samples from every user's row.
  static SimilarityWorkload ComputeForUsers(
      const graph::SocialGraph& g, const SimilarityMeasure& measure,
      const std::vector<graph::NodeId>& store_users);

  // Reassembles a workload from externally produced parts (the
  // serialization layer in workload_io.h). `offsets` must have
  // num_users + 1 monotone entries indexing into `entries`, each row
  // sorted by user id; the global statistics are taken as given.
  static SimilarityWorkload FromParts(graph::NodeId num_users,
                                      std::string measure_name,
                                      std::vector<size_t> offsets,
                                      std::vector<SimilarityEntry> entries,
                                      double max_column_sum,
                                      double max_entry);

  graph::NodeId num_users() const { return num_users_; }
  const std::string& measure_name() const { return measure_name_; }

  // sim(u) as a sparse sorted row.
  std::span<const SimilarityEntry> Row(graph::NodeId u) const {
    PRIVREC_DCHECK(u >= 0 && u < num_users_);
    return {entries_.data() + offsets_[static_cast<size_t>(u)],
            entries_.data() + offsets_[static_cast<size_t>(u) + 1]};
  }

  int64_t RowSize(graph::NodeId u) const {
    return static_cast<int64_t>(Row(u).size());
  }

  // Row sum Σ_v sim(u, v).
  double RowSum(graph::NodeId u) const;

  // The paper's sensitivity for NOU-style mechanisms:
  // Δ_A = max_v Σ_u sim(u, v) — the largest total similarity mass any one
  // user contributes across all rows.
  double MaxColumnSum() const { return max_column_sum_; }

  // Largest single score in column v's perspective — the GS rough-estimate
  // sensitivity max_{v in sim(u)} sim(u, v) maximized over all entries.
  double MaxEntry() const { return max_entry_; }

  double AverageRowSize() const;
  int64_t TotalEntries() const { return static_cast<int64_t>(entries_.size()); }

  // Raw CSR parts, for serialization (workload_io, the artifact builder).
  // offsets() has num_users + 1 entries; entries() holds the concatenated
  // rows in user order.
  const std::vector<size_t>& offsets() const { return offsets_; }
  const std::vector<SimilarityEntry>& entries() const { return entries_; }

 private:
  // Shared implementation: computes all rows, storing only those allowed
  // by `store_mask` (null = store all).
  static void FillRows(const graph::SocialGraph& g,
                       const SimilarityMeasure& measure,
                       const std::vector<bool>* store_mask,
                       SimilarityWorkload* w);

  graph::NodeId num_users_ = 0;
  std::string measure_name_;
  std::vector<size_t> offsets_ = {0};
  std::vector<SimilarityEntry> entries_;
  double max_column_sum_ = 0.0;
  double max_entry_ = 0.0;
};

}  // namespace privrec::similarity

#endif  // PRIVREC_SIMILARITY_WORKLOAD_H_
