#include "similarity/graph_distance.h"

#include "graph/components.h"

namespace privrec::similarity {

GraphDistance::GraphDistance(int64_t max_distance)
    : max_distance_(max_distance) {
  PRIVREC_CHECK(max_distance >= 1);
}

std::vector<SimilarityEntry> GraphDistance::Row(const graph::SocialGraph& g,
                                                graph::NodeId u,
                                                DenseScratch* scratch) const {
  scratch->Resize(g.num_nodes());
  // Truncated BFS; scratch holds 1/d for discovered nodes.
  // The frontier-based loop avoids allocating a full distance array per row
  // beyond the shared scratch.
  scratch->Accumulate(u, -1.0);  // mark source as visited (negative sentinel)
  std::vector<graph::NodeId> frontier = {u};
  for (int64_t d = 1; d <= max_distance_ && !frontier.empty(); ++d) {
    std::vector<graph::NodeId> next;
    double score = 1.0 / static_cast<double>(d);
    for (graph::NodeId w : frontier) {
      for (graph::NodeId v : g.Neighbors(w)) {
        if (scratch->Get(v) != 0.0) continue;  // already visited
        scratch->Accumulate(v, score);
        next.push_back(v);
      }
    }
    frontier = std::move(next);
  }
  // TakeSortedPositive drops the negative source sentinel.
  return scratch->TakeSortedPositive();
}

}  // namespace privrec::similarity
