#include "data/dataset.h"

#include <cmath>

namespace privrec::data {

DatasetSummary Summarize(const Dataset& dataset) {
  DatasetSummary s;
  s.num_users = dataset.social.num_nodes();
  s.num_social_edges = dataset.social.num_edges();
  s.avg_user_degree = dataset.social.AverageDegree();
  s.user_degree_stddev = dataset.social.DegreeStddev();
  s.num_items = dataset.preferences.num_items();
  s.num_preference_edges = dataset.preferences.num_edges();
  s.avg_prefs_per_user = dataset.preferences.AverageUserDegree();
  // Std of per-user preference counts.
  double mean = s.avg_prefs_per_user;
  double acc = 0.0;
  for (graph::NodeId u = 0; u < dataset.preferences.num_users(); ++u) {
    double d = static_cast<double>(dataset.preferences.UserDegree(u)) - mean;
    acc += d * d;
  }
  s.prefs_per_user_stddev =
      s.num_users > 0
          ? std::sqrt(acc / static_cast<double>(s.num_users))
          : 0.0;
  s.sparsity = dataset.preferences.Sparsity();
  return s;
}

bool IsAligned(const Dataset& dataset) {
  return dataset.social.num_nodes() == dataset.preferences.num_users();
}

}  // namespace privrec::data
