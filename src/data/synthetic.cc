#include "data/synthetic.h"

#include <algorithm>

#include "common/random.h"
#include "graph/generators/planted_partition.h"
#include "graph/generators/preference_generator.h"

namespace privrec::data {

namespace {

Dataset Build(const std::string& name, graph::PlantedPartitionOptions social,
              graph::PreferenceGeneratorOptions prefs) {
  graph::PlantedPartitionResult planted =
      graph::GeneratePlantedPartition(social);
  Dataset out;
  out.name = name;
  // Preferences follow the FINE taste groups; modularity clustering only
  // recovers the coarse level, which is what produces realistic
  // approximation error in the cluster averages.
  out.preferences =
      graph::GeneratePreferences(planted.sub_community_of, prefs);
  out.social = std::move(planted.graph);
  return out;
}

}  // namespace

Dataset MakeSyntheticLastFm(const SyntheticLastFmOptions& options) {
  graph::PlantedPartitionOptions social;
  social.num_nodes = options.num_users;
  social.num_communities = options.num_communities;
  social.community_size_skew = 0.75;  // largest cluster ~ 25-30% of users
  social.mean_degree = options.mean_degree;
  social.degree_exponent = 2.2;  // std ~ 17 at mean 13.4
  social.max_degree_factor = 9.0;
  social.mixing = options.mixing;
  social.sub_communities_per_community = options.taste_groups_per_community;
  social.sub_mixing = options.sub_mixing;
  social.num_small_components = options.num_small_components;
  social.seed = options.seed;

  graph::PreferenceGeneratorOptions prefs;
  prefs.num_items = options.num_items;
  prefs.mean_prefs_per_user = options.mean_prefs;
  prefs.stddev_prefs_per_user = 6.9;
  prefs.homophily = options.homophily;
  prefs.personal_taste = options.personal_taste;
  prefs.popularity_skew = 1.05;
  prefs.seed = options.seed ^ 0xabcdef;
  return Build("lastfm-synth", social, prefs);
}

Dataset MakeSyntheticFlixster(const SyntheticFlixsterOptions& options) {
  graph::PlantedPartitionOptions social;
  social.num_nodes = options.num_users;
  social.num_communities = options.num_communities;
  social.community_size_skew = 0.6;  // largest cluster ~ 18% of users
  social.mean_degree = options.mean_degree;
  social.degree_exponent = 2.0;  // heavier tail: std ~ 31 at mean 18.5
  social.max_degree_factor = 14.0;
  social.mixing = options.mixing;
  social.sub_communities_per_community = options.taste_groups_per_community;
  social.sub_mixing = options.sub_mixing;
  social.num_small_components = 0;  // main component only (Section 6.1)
  social.seed = options.seed;

  graph::PreferenceGeneratorOptions prefs;
  prefs.num_items = options.num_items;
  prefs.mean_prefs_per_user = options.mean_prefs;
  prefs.stddev_prefs_per_user = 20.0;  // Flixster rating counts vary widely
  prefs.homophily = options.homophily;
  prefs.personal_taste = options.personal_taste;
  prefs.popularity_skew = 1.1;
  prefs.seed = options.seed ^ 0xfedcba;
  return Build("flixster-synth", social, prefs);
}

Dataset MakeTinyDataset(int64_t num_users, int64_t num_items, uint64_t seed) {
  graph::PlantedPartitionOptions social;
  social.num_nodes = num_users;
  social.num_communities = 6;
  social.community_size_skew = 0.5;
  social.mean_degree = 10.0;
  social.degree_exponent = 2.5;
  social.mixing = 0.1;
  social.sub_communities_per_community = 1;
  social.sub_mixing = 0.55;
  social.num_small_components = 2;
  social.seed = seed;

  graph::PreferenceGeneratorOptions prefs;
  prefs.num_items = num_items;
  prefs.mean_prefs_per_user = 20.0;
  prefs.stddev_prefs_per_user = 5.0;
  prefs.homophily = 0.85;
  prefs.personal_taste = 0.15;
  prefs.popularity_skew = 1.05;
  prefs.seed = seed ^ 0x1234;
  return Build("tiny", social, prefs);
}

std::vector<graph::PreferenceGraph> GrowingPreferenceSnapshots(
    const graph::PreferenceGraph& full, int64_t count, uint64_t seed) {
  PRIVREC_CHECK(count >= 1);
  std::vector<graph::PreferenceEdge> edges = full.WeightedEdges();
  Rng rng(seed);
  rng.Shuffle(edges);

  std::vector<graph::PreferenceGraph> snapshots;
  snapshots.reserve(static_cast<size_t>(count));
  for (int64_t t = 0; t < count; ++t) {
    size_t upto = static_cast<size_t>(
        static_cast<double>(edges.size()) * static_cast<double>(t + 1) /
        static_cast<double>(count));
    upto = std::min(upto, edges.size());
    std::vector<graph::PreferenceEdge> prefix(edges.begin(),
                                              edges.begin() + upto);
    snapshots.push_back(
        full.is_weighted()
            ? graph::PreferenceGraph::FromWeightedEdges(
                  full.num_users(), full.num_items(), prefix)
            : graph::PreferenceGraph::FromEdges(
                  full.num_users(), full.num_items(),
                  [&] {
                    std::vector<std::pair<graph::NodeId, graph::ItemId>> e;
                    e.reserve(prefix.size());
                    for (const auto& edge : prefix) {
                      e.emplace_back(edge.user, edge.item);
                    }
                    return e;
                  }()));
  }
  return snapshots;
}

}  // namespace privrec::data
