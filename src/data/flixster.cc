#include "data/flixster.h"

#include <fstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "graph/components.h"
#include "obs/trace.h"

namespace privrec::data {

namespace {

Result<Dataset> LoadOnce(const std::string& dir,
                         const FlixsterOptions& options) {
  const bool lenient = options.parse_mode == ParseMode::kLenient;
  Dataset out;

  // Pass 1: ratings — collect users with >= 1 kept rating and raw edges.
  struct RawRating {
    int64_t user;
    int64_t movie;
    double rating;
  };
  std::vector<RawRating> kept_ratings;
  std::unordered_set<int64_t> rated_users;
  {
    const std::string path = dir + "/ratings.txt";
    if (fault::Hit("data.flixster.open") == fault::FaultKind::kIoError) {
      return Status::IoError("cannot open " + path + " (injected fault)");
    }
    std::ifstream in(path);
    if (!in) return Status::IoError("cannot open " + path);
    std::string line;
    int64_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (fault::Hit("data.flixster.read") ==
          fault::FaultKind::kShortRead) {
        out.report.truncated = true;
        break;
      }
      std::string_view sv = Trim(line);
      if (sv.empty() || sv[0] == '#') continue;
      ++out.report.lines_scanned;
      auto fields = SplitWhitespace(sv);
      if (fields.size() < 3) {
        if (lenient) {
          ++out.report.skipped_malformed;
          continue;
        }
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": expected user movie rating");
      }
      int64_t user = 0;
      int64_t movie = 0;
      double rating = 0.0;
      if (!ParseInt64(fields[0], &user) || !ParseInt64(fields[1], &movie) ||
          !ParseDouble(fields[2], &rating)) {
        if (lenient) {
          ++out.report.skipped_malformed;
          continue;
        }
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": bad fields");
      }
      if (user < 0 || movie < 0) {
        if (lenient) {
          ++out.report.skipped_out_of_range;
          continue;
        }
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": negative id");
      }
      if (rating < options.min_rating) continue;
      kept_ratings.push_back({user, movie, rating});
      rated_users.insert(user);
      ++out.report.records_loaded;
    }
    if (in.bad()) out.report.truncated = true;
  }

  // Pass 2: social links among rated users.
  std::vector<std::pair<int64_t, int64_t>> raw_links;
  {
    const std::string path = dir + "/links.txt";
    if (fault::Hit("data.flixster.open") == fault::FaultKind::kIoError) {
      return Status::IoError("cannot open " + path + " (injected fault)");
    }
    std::ifstream in(path);
    if (!in) return Status::IoError("cannot open " + path);
    std::string line;
    int64_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (fault::Hit("data.flixster.read") ==
          fault::FaultKind::kShortRead) {
        out.report.truncated = true;
        break;
      }
      std::string_view sv = Trim(line);
      if (sv.empty() || sv[0] == '#') continue;
      ++out.report.lines_scanned;
      auto fields = SplitWhitespace(sv);
      if (fields.size() < 2) {
        if (lenient) {
          ++out.report.skipped_malformed;
          continue;
        }
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": expected two user ids");
      }
      int64_t a = 0;
      int64_t b = 0;
      if (!ParseInt64(fields[0], &a) || !ParseInt64(fields[1], &b)) {
        if (lenient) {
          ++out.report.skipped_malformed;
          continue;
        }
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": bad fields");
      }
      if (a < 0 || b < 0) {
        if (lenient) {
          ++out.report.skipped_out_of_range;
          continue;
        }
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": negative id");
      }
      if (a == b) {
        ++out.report.skipped_self_loops;
        continue;
      }
      if (rated_users.count(a) && rated_users.count(b)) {
        raw_links.emplace_back(a, b);
        ++out.report.records_loaded;
      }
    }
    if (in.bad()) out.report.truncated = true;
  }

  if (out.report.truncated && !lenient) {
    return Status::IoError("short read under " + dir);
  }
  out.report.empty_input = out.report.lines_scanned == 0;

  // Densify the induced user set and build the full induced social graph.
  std::unordered_map<int64_t, graph::NodeId> user_index;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> social_edges;
  std::unordered_set<uint64_t> seen_links;
  auto user_id = [&](int64_t raw) {
    auto [it, inserted] =
        user_index.try_emplace(raw, static_cast<graph::NodeId>(
                                        user_index.size()));
    return it->second;
  };
  for (auto [a, b] : raw_links) {
    graph::NodeId ua = user_id(a);
    graph::NodeId ub = user_id(b);
    if (lenient) {
      uint64_t lo = static_cast<uint64_t>(ua < ub ? ua : ub);
      uint64_t hi = static_cast<uint64_t>(ua < ub ? ub : ua);
      if (!seen_links.insert((lo << 32) | hi).second) {
        ++out.report.skipped_duplicates;
        continue;
      }
    }
    social_edges.emplace_back(ua, ub);
  }
  graph::SocialGraph induced = graph::SocialGraph::FromEdges(
      static_cast<graph::NodeId>(user_index.size()), social_edges);

  // Keep the main connected component only.
  graph::ComponentInfo comps = graph::ConnectedComponents(induced);
  std::vector<graph::NodeId> keep;
  for (graph::NodeId u = 0; u < induced.num_nodes(); ++u) {
    if (comps.component_of[static_cast<size_t>(u)] == 0) keep.push_back(u);
  }
  graph::Subgraph main = graph::InducedSubgraph(induced, std::move(keep));

  // Final user id = position in main component; map raw -> final.
  std::unordered_map<int64_t, graph::NodeId> final_user;
  {
    // Invert user_index to recover raw ids of induced nodes.
    std::vector<int64_t> raw_of_induced(user_index.size());
    for (const auto& [raw, idx] : user_index) {
      raw_of_induced[static_cast<size_t>(idx)] = raw;
    }
    for (size_t k = 0; k < main.old_of_new.size(); ++k) {
      final_user[raw_of_induced[static_cast<size_t>(main.old_of_new[k])]] =
          static_cast<graph::NodeId>(k);
    }
  }

  std::unordered_map<int64_t, graph::ItemId> item_index;
  std::vector<graph::PreferenceEdge> pref_edges;
  std::unordered_set<uint64_t> seen_ratings;
  for (const RawRating& r : kept_ratings) {
    auto uit = final_user.find(r.user);
    if (uit == final_user.end()) continue;
    auto [iit, inserted] = item_index.try_emplace(
        r.movie, static_cast<graph::ItemId>(item_index.size()));
    if (lenient) {
      uint64_t key = (static_cast<uint64_t>(uit->second) << 32) |
                     static_cast<uint64_t>(iit->second);
      if (!seen_ratings.insert(key).second) {
        ++out.report.skipped_duplicates;
        continue;
      }
    }
    pref_edges.push_back(
        {uit->second, iit->second, options.binarize ? 1.0 : r.rating});
  }

  out.name = "flixster";
  out.social = std::move(main.graph);
  out.preferences =
      options.binarize
          ? graph::PreferenceGraph::FromEdges(
                out.social.num_nodes(),
                static_cast<graph::ItemId>(item_index.size()),
                [&] {
                  std::vector<std::pair<graph::NodeId, graph::ItemId>> e;
                  e.reserve(pref_edges.size());
                  for (const auto& edge : pref_edges) {
                    e.emplace_back(edge.user, edge.item);
                  }
                  return e;
                }())
          : graph::PreferenceGraph::FromWeightedEdges(
                out.social.num_nodes(),
                static_cast<graph::ItemId>(item_index.size()), pref_edges);
  return out;
}

}  // namespace

Result<Dataset> LoadFlixster(const std::string& dir,
                             const FlixsterOptions& options) {
  PRIVREC_SPAN("data.load_flixster");
  RetryOptions retry = options.retry;
  retry.max_attempts = options.max_attempts;
  RetryStats stats;
  auto result = RetryWithBackoff([&] { return LoadOnce(dir, options); },
                                 retry, &stats);
  if (result.ok()) {
    result->report.io_retries = stats.attempts - 1;
    RecordLoadMetrics(result->report);
  }
  return result;
}

}  // namespace privrec::data
