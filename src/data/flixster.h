// Loader for the Flixster dataset (Jamali & Ester), applying the paper's
// Section 6.1 preprocessing:
//   1. restrict to users with at least one rating,
//   2. take the main connected component of the induced social graph,
//   3. discard ratings with value < 2 ("likely to indicate dislike"),
//   4. binarize the remaining ratings to w = 1.
//
// Expected files inside `dir`:
//   links.txt     "userID\tfriendID" per line (undirected)
//   ratings.txt   "userID\tmovieID\trating" per line (rating may be x.5)
//
// `MakeSyntheticFlixster` in data/synthetic.h provides a statistically
// matched substitute when the raw dump is unavailable.

#ifndef PRIVREC_DATA_FLIXSTER_H_
#define PRIVREC_DATA_FLIXSTER_H_

#include <string>

#include "common/load_report.h"
#include "common/retry.h"
#include "common/status.h"
#include "data/dataset.h"

namespace privrec::data {

struct FlixsterOptions {
  // Ratings below this value are discarded (paper uses 2.0).
  double min_rating = 2.0;
  // The paper binarizes surviving ratings to weight 1. Setting false keeps
  // the raw rating as the edge weight (the weighted-edge extension); the
  // recommenders then calibrate noise to max_weight().
  bool binarize = true;
  // kStrict aborts on the first malformed record; kLenient counts-and-skips
  // defects into Dataset::report and loads the valid subset.
  ParseMode parse_mode = ParseMode::kStrict;
  // Total attempts for transient I/O failures (1 = no retrying).
  int max_attempts = 1;
  RetryOptions retry{};  // max_attempts above overrides retry.max_attempts
};

Result<Dataset> LoadFlixster(const std::string& dir,
                             const FlixsterOptions& options = {});

}  // namespace privrec::data

#endif  // PRIVREC_DATA_FLIXSTER_H_
