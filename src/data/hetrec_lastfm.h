// Loader for the HetRec 2011 Last.fm dataset (Cantador et al.), applying
// the preprocessing of Section 6.1: listened-to edges with weight < 2 are
// discarded and the rest binarized to w = 1.
//
// Expected files inside `dir`:
//   user_friends.dat   header line, then "userID\tfriendID"
//   user_artists.dat   header line, then "userID\tartistID\tweight"
//
// The dataset itself is not redistributed with this repository; see
// http://ir.ii.uam.es/hetrec2011/. `MakeSyntheticLastFm` in
// data/synthetic.h provides a statistically matched substitute.

#ifndef PRIVREC_DATA_HETREC_LASTFM_H_
#define PRIVREC_DATA_HETREC_LASTFM_H_

#include <string>

#include "common/load_report.h"
#include "common/retry.h"
#include "common/status.h"
#include "data/dataset.h"

namespace privrec::data {

struct LastFmOptions {
  // Preference edges with listen count below this are discarded (the paper
  // uses 2: "listening to an artist only once is unlikely to indicate a
  // positive preference").
  int64_t min_weight = 2;
  // kStrict aborts on the first malformed record; kLenient counts-and-skips
  // defects (non-numeric fields, negative ids, duplicate edges, truncated
  // tails) into Dataset::report and loads the valid subset.
  ParseMode parse_mode = ParseMode::kStrict;
  // Total attempts for transient I/O failures (1 = no retrying).
  int max_attempts = 1;
  RetryOptions retry{};  // max_attempts above overrides retry.max_attempts
};

Result<Dataset> LoadHetRecLastFm(const std::string& dir,
                                 const LastFmOptions& options = {});

}  // namespace privrec::data

#endif  // PRIVREC_DATA_HETREC_LASTFM_H_
