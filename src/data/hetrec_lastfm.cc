#include "data/hetrec_lastfm.h"

#include <fstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/string_util.h"

namespace privrec::data {

namespace {

// Reads a HetRec .dat file: a header line followed by tab-separated integer
// columns. Returns rows of `width` integers.
Result<std::vector<std::vector<int64_t>>> ReadDat(const std::string& path,
                                                  size_t width) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<std::vector<int64_t>> rows;
  std::string line;
  bool first = true;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (sv.empty()) continue;
    if (first) {
      first = false;  // header
      continue;
    }
    auto fields = SplitWhitespace(sv);
    if (fields.size() < width) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": expected " + std::to_string(width) +
                                " fields");
    }
    std::vector<int64_t> row(width);
    for (size_t k = 0; k < width; ++k) {
      if (!ParseInt64(fields[k], &row[k])) {
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": non-integer field");
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

Result<Dataset> LoadHetRecLastFm(const std::string& dir,
                                 const LastFmOptions& options) {
  auto friends = ReadDat(dir + "/user_friends.dat", 2);
  if (!friends.ok()) return friends.status();
  auto artists = ReadDat(dir + "/user_artists.dat", 3);
  if (!artists.ok()) return artists.status();

  // Users are the union of ids in the friendship file (the paper keeps the
  // full social graph, including its 19 tiny components).
  std::unordered_map<int64_t, graph::NodeId> user_index;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> social_edges;
  auto user_id = [&](int64_t raw) {
    auto [it, inserted] =
        user_index.try_emplace(raw, static_cast<graph::NodeId>(
                                        user_index.size()));
    return it->second;
  };
  for (const auto& row : *friends) {
    if (row[0] == row[1]) continue;
    social_edges.emplace_back(user_id(row[0]), user_id(row[1]));
  }

  std::unordered_map<int64_t, graph::ItemId> item_index;
  std::vector<std::pair<graph::NodeId, graph::ItemId>> pref_edges;
  for (const auto& row : *artists) {
    if (row[2] < options.min_weight) continue;
    auto uit = user_index.find(row[0]);
    if (uit == user_index.end()) continue;  // user with no social presence
    auto [iit, inserted] = item_index.try_emplace(
        row[1], static_cast<graph::ItemId>(item_index.size()));
    pref_edges.emplace_back(uit->second, iit->second);
  }

  Dataset out;
  out.name = "lastfm";
  out.social = graph::SocialGraph::FromEdges(
      static_cast<graph::NodeId>(user_index.size()), social_edges);
  out.preferences = graph::PreferenceGraph::FromEdges(
      static_cast<graph::NodeId>(user_index.size()),
      static_cast<graph::ItemId>(item_index.size()), pref_edges);
  return out;
}

}  // namespace privrec::data
