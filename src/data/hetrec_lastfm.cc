#include "data/hetrec_lastfm.h"

#include <fstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/retry.h"
#include "common/string_util.h"
#include "obs/trace.h"

namespace privrec::data {

namespace {

// Strips a UTF-8 byte-order mark (Windows exports of the HetRec files
// sometimes carry one).
bool StripBom(std::string_view* sv) {
  constexpr std::string_view kBom = "\xEF\xBB\xBF";
  if (StartsWith(*sv, kBom)) {
    sv->remove_prefix(kBom.size());
    return true;
  }
  return false;
}

// Reads a HetRec .dat file: a header line followed by tab-separated integer
// columns. Returns rows of `width` integers. In lenient mode malformed rows
// are counted into `*report` and skipped; strict mode errors on the first.
Result<std::vector<std::vector<int64_t>>> ReadDat(const std::string& path,
                                                  size_t width,
                                                  ParseMode mode,
                                                  LoadReport* report) {
  if (fault::Hit("data.lastfm.open") == fault::FaultKind::kIoError) {
    return Status::IoError("cannot open " + path + " (injected fault)");
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<std::vector<int64_t>> rows;
  std::string line;
  bool first = true;
  bool at_eof = false;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (fault::Hit("data.lastfm.read") == fault::FaultKind::kShortRead) {
      report->truncated = true;
      break;
    }
    at_eof = in.eof();
    std::string_view sv = Trim(line);
    if (line_no == 1 && StripBom(&sv)) report->bom_stripped = true;
    if (sv.empty()) continue;
    if (first) {
      first = false;  // header
      continue;
    }
    ++report->lines_scanned;
    auto fields = SplitWhitespace(sv);
    std::vector<int64_t> row(width);
    bool parsed = fields.size() >= width;
    for (size_t k = 0; parsed && k < width; ++k) {
      parsed = ParseInt64(fields[k], &row[k]);
    }
    if (!parsed) {
      // A short final line with no trailing newline reads as truncation,
      // not malformation.
      if (at_eof && fields.size() < width) {
        report->truncated = true;
        if (mode == ParseMode::kLenient) continue;
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": short record (file appears truncated)");
      }
      if (mode == ParseMode::kLenient) {
        ++report->skipped_malformed;
        continue;
      }
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": expected " + std::to_string(width) +
                                " integer fields");
    }
    bool negative = false;
    for (size_t k = 0; k < width; ++k) negative = negative || row[k] < 0;
    if (negative) {
      if (mode == ParseMode::kLenient) {
        ++report->skipped_out_of_range;
        continue;
      }
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": negative id");
    }
    rows.push_back(std::move(row));
  }
  if (in.bad()) report->truncated = true;
  if (report->truncated && mode == ParseMode::kStrict) {
    return Status::IoError("short read on " + path);
  }
  report->empty_input = report->lines_scanned == 0;
  return rows;
}

Result<Dataset> LoadOnce(const std::string& dir,
                         const LastFmOptions& options) {
  LoadReport friends_report;
  auto friends = ReadDat(dir + "/user_friends.dat", 2, options.parse_mode,
                         &friends_report);
  if (!friends.ok()) return friends.status();
  LoadReport artists_report;
  auto artists = ReadDat(dir + "/user_artists.dat", 3, options.parse_mode,
                         &artists_report);
  if (!artists.ok()) return artists.status();

  Dataset out;
  out.report = friends_report;
  out.report.Merge(artists_report);

  // Users are the union of ids in the friendship file (the paper keeps the
  // full social graph, including its 19 tiny components).
  std::unordered_map<int64_t, graph::NodeId> user_index;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> social_edges;
  std::unordered_set<uint64_t> seen_social;
  auto user_id = [&](int64_t raw) {
    auto [it, inserted] =
        user_index.try_emplace(raw, static_cast<graph::NodeId>(
                                        user_index.size()));
    return it->second;
  };
  for (const auto& row : *friends) {
    if (row[0] == row[1]) {
      // Historically dropped silently; now accounted for.
      ++out.report.skipped_self_loops;
      continue;
    }
    graph::NodeId a = user_id(row[0]);
    graph::NodeId b = user_id(row[1]);
    if (options.parse_mode == ParseMode::kLenient) {
      uint64_t lo = static_cast<uint64_t>(a < b ? a : b);
      uint64_t hi = static_cast<uint64_t>(a < b ? b : a);
      if (!seen_social.insert((lo << 32) | hi).second) {
        ++out.report.skipped_duplicates;
        continue;
      }
    }
    social_edges.emplace_back(a, b);
    ++out.report.records_loaded;
  }

  std::unordered_map<int64_t, graph::ItemId> item_index;
  std::vector<std::pair<graph::NodeId, graph::ItemId>> pref_edges;
  std::unordered_set<uint64_t> seen_pref;
  for (const auto& row : *artists) {
    if (row[2] < options.min_weight) continue;
    auto uit = user_index.find(row[0]);
    if (uit == user_index.end()) continue;  // user with no social presence
    auto [iit, inserted] = item_index.try_emplace(
        row[1], static_cast<graph::ItemId>(item_index.size()));
    if (options.parse_mode == ParseMode::kLenient) {
      uint64_t key = (static_cast<uint64_t>(uit->second) << 32) |
                     static_cast<uint64_t>(iit->second);
      if (!seen_pref.insert(key).second) {
        ++out.report.skipped_duplicates;
        continue;
      }
    }
    pref_edges.emplace_back(uit->second, iit->second);
    ++out.report.records_loaded;
  }

  out.name = "lastfm";
  out.social = graph::SocialGraph::FromEdges(
      static_cast<graph::NodeId>(user_index.size()), social_edges);
  out.preferences = graph::PreferenceGraph::FromEdges(
      static_cast<graph::NodeId>(user_index.size()),
      static_cast<graph::ItemId>(item_index.size()), pref_edges);
  return out;
}

}  // namespace

Result<Dataset> LoadHetRecLastFm(const std::string& dir,
                                 const LastFmOptions& options) {
  PRIVREC_SPAN("data.load_hetrec_lastfm");
  RetryOptions retry = options.retry;
  retry.max_attempts = options.max_attempts;
  RetryStats stats;
  auto result = RetryWithBackoff([&] { return LoadOnce(dir, options); },
                                 retry, &stats);
  if (result.ok()) {
    result->report.io_retries = stats.attempts - 1;
    RecordLoadMetrics(result->report);
  }
  return result;
}

}  // namespace privrec::data
