// Dataset directory serialization: one directory holds social.tsv,
// preferences.tsv and meta.txt. Unlike the raw graph_io loaders (which
// densify arbitrary ids by first appearance), this format preserves the
// exact node/item universe — users or items with no edges survive the
// round trip — so a saved synthetic dataset reproduces experiments
// bit-for-bit elsewhere.

#ifndef PRIVREC_DATA_EXPORT_H_
#define PRIVREC_DATA_EXPORT_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace privrec::data {

// Creates `dir` if needed and writes social.tsv (undirected edges),
// preferences.tsv (user item [weight]) and meta.txt (name + sizes).
Status SaveDataset(const Dataset& dataset, const std::string& dir);

// Loads a directory written by SaveDataset.
Result<Dataset> LoadDataset(const std::string& dir);

}  // namespace privrec::data

#endif  // PRIVREC_DATA_EXPORT_H_
