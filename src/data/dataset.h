// Dataset: a social graph plus an aligned preference graph, with the
// summary statistics reported in the paper's Table 1.

#ifndef PRIVREC_DATA_DATASET_H_
#define PRIVREC_DATA_DATASET_H_

#include <string>

#include "common/load_report.h"
#include "graph/preference_graph.h"
#include "graph/social_graph.h"

namespace privrec::data {

struct Dataset {
  std::string name;
  graph::SocialGraph social;
  graph::PreferenceGraph preferences;
  // Ingestion diagnostics (what was scanned/skipped); default-clean for
  // synthetic datasets, filled by the file loaders.
  LoadReport report;
};

// The row of Table 1 for one dataset. Note the paper's "avg. item degree"
// is |E_p| / |U| (preferences per user): 92,198 / 1,892 = 48.7 for Last.fm
// and 7,527,931 / 137,372 = 54.8 for Flixster both match that reading, not
// |E_p| / |I|.
struct DatasetSummary {
  int64_t num_users = 0;
  int64_t num_social_edges = 0;
  double avg_user_degree = 0.0;
  double user_degree_stddev = 0.0;
  int64_t num_items = 0;
  int64_t num_preference_edges = 0;
  double avg_prefs_per_user = 0.0;
  double prefs_per_user_stddev = 0.0;
  double sparsity = 0.0;
};

DatasetSummary Summarize(const Dataset& dataset);

// Validates the invariant the recommenders rely on: the preference graph's
// user set is the social graph's node set.
bool IsAligned(const Dataset& dataset);

}  // namespace privrec::data

#endif  // PRIVREC_DATA_DATASET_H_
