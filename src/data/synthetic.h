// Synthetic datasets statistically matched to the paper's Table 1.
//
// The raw Last.fm / Flixster dumps are not redistributable; per DESIGN.md
// these factories generate substitutes that preserve the properties the
// framework's behaviour depends on: community structure (planted
// partition), heavy-tailed degrees at the published means, tiny extra
// components (Last.fm), community-correlated preferences at the published
// per-user rates, and preference-matrix sparsity.

#ifndef PRIVREC_DATA_SYNTHETIC_H_
#define PRIVREC_DATA_SYNTHETIC_H_

#include <cstdint>

#include "data/dataset.h"

namespace privrec::data {

struct SyntheticLastFmOptions {
  // Published scale; reduce for fast tests.
  int64_t num_users = 1892;
  int64_t num_items = 17632;
  double mean_degree = 13.4;       // Table 1: 13.4 (std 17.3)
  double mean_prefs = 48.7;        // Table 1: 48.7 (std 6.9)
  int64_t num_communities = 16;    // Section 6.2: 16 main-component clusters
  int64_t num_small_components = 19;  // Section 6.1: 19 components of 2-7
  double mixing = 0.12;
  // Taste sub-communities per graph community: finer than Louvain's
  // resolution, so cluster averages blend several taste groups. 1 keeps
  // tastes aligned with graph communities (the default — it reproduces
  // the paper's flat plateau best); larger values trade plateau flatness
  // for a bigger eps = inf approximation-error gap (see the A3 bench).
  int64_t taste_groups_per_community = 1;
  double sub_mixing = 0.55;
  double homophily = 0.8;
  // Fraction of preferences that are the user's private taste (invisible
  // to cluster averages); nudges the framework's eps = inf approximation
  // error toward the paper's Figure 1 anchor.
  double personal_taste = 0.25;
  uint64_t seed = 1;
};

struct SyntheticFlixsterOptions {
  // The paper's real Table-1 scale: 137,372 users, ~1.27M social edges at
  // mean degree 18.5, ~7.5M preference edges at 54.8 per user. Generating
  // this takes seconds and the artifact bench serves it whole; tests and
  // benches that want the old small substitute pass explicit sizes.
  int64_t num_users = 137372;
  int64_t num_items = 48756;
  double mean_degree = 18.5;       // Table 1: 18.5 (std 31.1)
  double mean_prefs = 54.8;        // Table 1: 54.8 per user
  int64_t num_communities = 46;    // Section 6.2: 46 clusters
  double mixing = 0.12;
  // Flixster's approximation error is smaller than Last.fm's (< 0.1 vs
  // 0.13-0.19): less personal taste, tastes aligned with communities.
  int64_t taste_groups_per_community = 1;
  double sub_mixing = 0.6;
  double homophily = 0.8;
  // Lower than Last.fm: the paper reports < 0.1 approximation-error loss
  // on Flixster vs 0.13-0.19 on Last.fm.
  double personal_taste = 0.15;
  uint64_t seed = 2;
};

Dataset MakeSyntheticLastFm(const SyntheticLastFmOptions& options = {});
Dataset MakeSyntheticFlixster(const SyntheticFlixsterOptions& options = {});

// Small dataset for unit/integration tests: a few hundred users, strong
// communities, deterministic.
Dataset MakeTinyDataset(int64_t num_users = 300, int64_t num_items = 400,
                        uint64_t seed = 3);

// Turns a static preference graph into `count` growing snapshots for the
// dynamic-graph extension: snapshot t contains a random (t+1)/count
// fraction of the edges, and snapshots are nested (edges only arrive,
// never depart). The last snapshot is the full graph.
std::vector<graph::PreferenceGraph> GrowingPreferenceSnapshots(
    const graph::PreferenceGraph& full, int64_t count, uint64_t seed);

}  // namespace privrec::data

#endif  // PRIVREC_DATA_SYNTHETIC_H_
