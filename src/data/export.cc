#include "data/export.h"

#include <filesystem>
#include <fstream>

#include "common/string_util.h"
#include "graph/graph_io.h"

namespace privrec::data {

Status SaveDataset(const Dataset& dataset, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create " + dir);

  Status s = graph::SaveSocialGraph(dataset.social, dir + "/social.tsv");
  if (!s.ok()) return s;
  s = graph::SavePreferenceGraph(dataset.preferences,
                                 dir + "/preferences.tsv");
  if (!s.ok()) return s;

  std::ofstream meta(dir + "/meta.txt");
  if (!meta) return Status::IoError("cannot open " + dir + "/meta.txt");
  meta << "name\t" << dataset.name << '\n'
       << "num_users\t" << dataset.social.num_nodes() << '\n'
       << "num_items\t" << dataset.preferences.num_items() << '\n'
       << "weighted\t" << (dataset.preferences.is_weighted() ? 1 : 0)
       << '\n';
  if (!meta) return Status::IoError("write failed for meta.txt");
  return Status::Ok();
}

Result<Dataset> LoadDataset(const std::string& dir) {
  // Meta first: it fixes the node/item universe.
  std::ifstream meta(dir + "/meta.txt");
  if (!meta) return Status::IoError("cannot open " + dir + "/meta.txt");
  std::string name;
  int64_t num_users = -1;
  int64_t num_items = -1;
  std::string line;
  while (std::getline(meta, line)) {
    auto fields = SplitWhitespace(line);
    if (fields.size() < 2) continue;
    if (fields[0] == "name") {
      name = std::string(fields[1]);
    } else if (fields[0] == "num_users") {
      if (!ParseInt64(fields[1], &num_users)) {
        return Status::ParseError(dir + "/meta.txt: bad num_users");
      }
    } else if (fields[0] == "num_items") {
      if (!ParseInt64(fields[1], &num_items)) {
        return Status::ParseError(dir + "/meta.txt: bad num_items");
      }
    }
  }
  if (num_users < 0 || num_items < 0) {
    return Status::ParseError(dir + "/meta.txt: missing sizes");
  }

  // Social edges: ids in the saved format are already dense in
  // [0, num_users).
  auto read_social = [&]() -> Result<graph::SocialGraph> {
    std::ifstream in(dir + "/social.tsv");
    if (!in) return Status::IoError("cannot open " + dir + "/social.tsv");
    std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
    std::string edge_line;
    int64_t line_no = 0;
    while (std::getline(in, edge_line)) {
      ++line_no;
      std::string_view sv = Trim(edge_line);
      if (sv.empty() || sv[0] == '#') continue;
      auto fields = SplitWhitespace(sv);
      int64_t a = 0;
      int64_t b = 0;
      if (fields.size() < 2 || !ParseInt64(fields[0], &a) ||
          !ParseInt64(fields[1], &b)) {
        return Status::ParseError(dir + "/social.tsv:" +
                                  std::to_string(line_no) + ": bad edge");
      }
      if (a < 0 || a >= num_users || b < 0 || b >= num_users) {
        return Status::ParseError(dir + "/social.tsv:" +
                                  std::to_string(line_no) +
                                  ": node outside meta range");
      }
      edges.emplace_back(a, b);
    }
    return graph::SocialGraph::FromEdges(num_users, edges);
  };

  auto read_prefs = [&]() -> Result<graph::PreferenceGraph> {
    std::ifstream in(dir + "/preferences.tsv");
    if (!in) {
      return Status::IoError("cannot open " + dir + "/preferences.tsv");
    }
    std::vector<graph::PreferenceEdge> edges;
    bool weighted = false;
    std::string edge_line;
    int64_t line_no = 0;
    while (std::getline(in, edge_line)) {
      ++line_no;
      std::string_view sv = Trim(edge_line);
      if (sv.empty() || sv[0] == '#') continue;
      auto fields = SplitWhitespace(sv);
      int64_t u = 0;
      int64_t i = 0;
      double w = 1.0;
      if (fields.size() < 2 || !ParseInt64(fields[0], &u) ||
          !ParseInt64(fields[1], &i)) {
        return Status::ParseError(dir + "/preferences.tsv:" +
                                  std::to_string(line_no) + ": bad edge");
      }
      if (fields.size() >= 3) {
        if (!ParseDouble(fields[2], &w) || w <= 0.0) {
          return Status::ParseError(dir + "/preferences.tsv:" +
                                    std::to_string(line_no) +
                                    ": bad weight");
        }
        weighted = true;
      }
      if (u < 0 || u >= num_users || i < 0 || i >= num_items) {
        return Status::ParseError(dir + "/preferences.tsv:" +
                                  std::to_string(line_no) +
                                  ": id outside meta range");
      }
      edges.push_back({u, i, w});
    }
    if (weighted) {
      return graph::PreferenceGraph::FromWeightedEdges(num_users,
                                                       num_items, edges);
    }
    std::vector<std::pair<graph::NodeId, graph::ItemId>> plain;
    plain.reserve(edges.size());
    for (const auto& e : edges) plain.emplace_back(e.user, e.item);
    return graph::PreferenceGraph::FromEdges(num_users, num_items, plain);
  };

  auto social = read_social();
  if (!social.ok()) return social.status();
  auto prefs = read_prefs();
  if (!prefs.ok()) return prefs.status();

  Dataset out;
  out.name = name;
  out.social = std::move(*social);
  out.preferences = std::move(*prefs);
  return out;
}

}  // namespace privrec::data
