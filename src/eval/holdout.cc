#include "eval/holdout.h"

#include <algorithm>

#include "common/random.h"

namespace privrec::eval {

HoldoutSplit SplitHoldout(const graph::PreferenceGraph& full,
                          const HoldoutOptions& options) {
  PRIVREC_CHECK(options.fraction >= 0.0 && options.fraction < 1.0);
  Rng rng(options.seed);

  HoldoutSplit split;
  split.held_out.resize(static_cast<size_t>(full.num_users()));
  std::vector<graph::PreferenceEdge> train_edges;
  train_edges.reserve(static_cast<size_t>(full.num_edges()));
  for (graph::NodeId u = 0; u < full.num_users(); ++u) {
    auto items = full.ItemsOf(u);
    auto weights = full.WeightsOf(u);
    int64_t n = static_cast<int64_t>(items.size());
    int64_t hide = static_cast<int64_t>(options.fraction *
                                        static_cast<double>(n));
    hide = std::min(hide, n - 1);  // keep at least one training edge
    if (hide <= 0) {
      for (size_t k = 0; k < items.size(); ++k) {
        train_edges.push_back({u, items[k], weights[k]});
      }
      continue;
    }
    std::vector<uint64_t> hidden = rng.SampleWithoutReplacement(
        static_cast<uint64_t>(n), static_cast<uint64_t>(hide));
    std::vector<bool> is_hidden(static_cast<size_t>(n), false);
    for (uint64_t idx : hidden) is_hidden[static_cast<size_t>(idx)] = true;
    for (size_t k = 0; k < items.size(); ++k) {
      if (is_hidden[k]) {
        split.held_out[static_cast<size_t>(u)].push_back(items[k]);
      } else {
        train_edges.push_back({u, items[k], weights[k]});
      }
    }
    std::sort(split.held_out[static_cast<size_t>(u)].begin(),
              split.held_out[static_cast<size_t>(u)].end());
  }
  split.train =
      full.is_weighted()
          ? graph::PreferenceGraph::FromWeightedEdges(
                full.num_users(), full.num_items(), train_edges)
          : graph::PreferenceGraph::FromEdges(
                full.num_users(), full.num_items(),
                [&] {
                  std::vector<std::pair<graph::NodeId, graph::ItemId>> e;
                  e.reserve(train_edges.size());
                  for (const auto& edge : train_edges) {
                    e.emplace_back(edge.user, edge.item);
                  }
                  return e;
                }());
  return split;
}

namespace {

int64_t CountHits(const core::RecommendationList& list,
                  const std::vector<graph::ItemId>& held_out) {
  int64_t hits = 0;
  for (const core::Recommendation& r : list) {
    if (std::binary_search(held_out.begin(), held_out.end(), r.item)) {
      ++hits;
    }
  }
  return hits;
}

}  // namespace

double HoldoutRecall(const std::vector<core::RecommendationList>& lists,
                     const std::vector<graph::NodeId>& users,
                     const HoldoutSplit& split) {
  PRIVREC_CHECK(lists.size() == users.size());
  double total = 0.0;
  int64_t counted = 0;
  for (size_t k = 0; k < users.size(); ++k) {
    const auto& held = split.held_out[static_cast<size_t>(users[k])];
    if (held.empty()) continue;
    total += static_cast<double>(CountHits(lists[k], held)) /
             static_cast<double>(held.size());
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

double HoldoutHitRate(const std::vector<core::RecommendationList>& lists,
                      const std::vector<graph::NodeId>& users,
                      const HoldoutSplit& split) {
  PRIVREC_CHECK(lists.size() == users.size());
  int64_t hits = 0;
  int64_t counted = 0;
  for (size_t k = 0; k < users.size(); ++k) {
    const auto& held = split.held_out[static_cast<size_t>(users[k])];
    if (held.empty()) continue;
    if (CountHits(lists[k], held) > 0) ++hits;
    ++counted;
  }
  return counted > 0
             ? static_cast<double>(hits) / static_cast<double>(counted)
             : 0.0;
}

}  // namespace privrec::eval
