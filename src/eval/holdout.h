// Held-out evaluation: hide a fraction of each user's preference edges,
// recommend from the rest, and score how many hidden edges the top-N
// recovers. This is the standard recommender-quality protocol and the
// right yardstick for mechanisms with *different* utility functions
// (e.g. the hybrid social + item-CF extension), where NDCG against any
// single mechanism's exact ranking would be circular.

#ifndef PRIVREC_EVAL_HOLDOUT_H_
#define PRIVREC_EVAL_HOLDOUT_H_

#include <cstdint>
#include <vector>

#include "core/recommendation.h"
#include "graph/preference_graph.h"

namespace privrec::eval {

struct HoldoutSplit {
  // The graph with held-out edges removed (what recommenders see).
  graph::PreferenceGraph train;
  // held_out[u] = the user's hidden items, sorted ascending.
  std::vector<std::vector<graph::ItemId>> held_out;
};

struct HoldoutOptions {
  // Fraction of each user's edges hidden (rounded down; users keep at
  // least one edge and need at least two to participate).
  double fraction = 0.2;
  uint64_t seed = 11;
};

HoldoutSplit SplitHoldout(const graph::PreferenceGraph& full,
                          const HoldoutOptions& options = {});

// Mean recall@|list| of the held-out items over users with a non-empty
// holdout: |list ∩ held_out| / |held_out|, averaged.
double HoldoutRecall(const std::vector<core::RecommendationList>& lists,
                     const std::vector<graph::NodeId>& users,
                     const HoldoutSplit& split);

// Mean hit rate: fraction of users with a non-empty holdout for whom at
// least one held-out item appears in the list.
double HoldoutHitRate(const std::vector<core::RecommendationList>& lists,
                      const std::vector<graph::NodeId>& users,
                      const HoldoutSplit& split);

}  // namespace privrec::eval

#endif  // PRIVREC_EVAL_HOLDOUT_H_
