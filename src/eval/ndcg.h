// NDCG@N (Section 2.4, Equation 2).
//
// DCG(X, u) = Σ_{i ∈ X} μ_u^i / max(1, log2 p(i) + 1), with p(i) the
// 1-based rank of i in X and μ_u^i the IDEAL utility (computed by the
// non-private recommender) — the private list is scored by where it placed
// the truly useful items.
//
// Edge case: when the user's ideal DCG is 0 (no item has positive
// utility), every ranking is equally perfect and NDCG is defined as 1.0.

#ifndef PRIVREC_EVAL_NDCG_H_
#define PRIVREC_EVAL_NDCG_H_

#include <cstdint>
#include <functional>

#include "core/recommendation.h"

namespace privrec::eval {

// The rank discount max(1, log2(p) + 1) for 1-based position p.
double RankDiscount(int64_t position);

// DCG of `list` where each item's gain is looked up through
// `ideal_utility` (return 0 for items with no true utility).
double Dcg(const core::RecommendationList& list,
           const std::function<double(graph::ItemId)>& ideal_utility);

// NDCG = dcg / ideal_dcg with the 0/0 -> 1 convention.
double NdcgFromDcg(double dcg, double ideal_dcg);

// Precision@N and Recall@N against a ground-truth relevant set — provided
// to reproduce the paper's Section 2.4 argument for preferring NDCG.
double PrecisionAtN(const core::RecommendationList& recommended,
                    const core::RecommendationList& relevant);
double RecallAtN(const core::RecommendationList& recommended,
                 const core::RecommendationList& relevant);

}  // namespace privrec::eval

#endif  // PRIVREC_EVAL_NDCG_H_
