#include "eval/exact_reference.h"

#include <algorithm>

#include "common/parallel.h"
#include "core/exact_recommender.h"
#include "eval/ndcg.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace privrec::eval {

ExactReference ExactReference::Compute(
    const core::RecommenderContext& context,
    const std::vector<graph::NodeId>& users, int64_t max_n) {
  PRIVREC_SPAN("eval.exact_reference");
  PRIVREC_CHECK(max_n >= 1);
  ExactReference ref;
  ref.users_ = users;
  ref.max_n_ = max_n;
  ref.rows_.resize(users.size());
  ref.ideal_lists_.resize(users.size());
  ref.ideal_dcg_prefix_.resize(users.size());
  for (size_t k = 0; k < users.size(); ++k) {
    ref.index_[users[k]] = static_cast<int64_t>(k);
  }

  // Per-user rows/lists/prefix DCGs are independent; each slot is written
  // exactly once by the chunk that owns it.
  Status run = ParallelFor(
      static_cast<int64_t>(users.size()),
      [&](int64_t, int64_t begin, int64_t end) {
        thread_local similarity::DenseScratch scratch;
        for (int64_t k = begin; k < end; ++k) {
          graph::NodeId u = users[static_cast<size_t>(k)];
          auto row =
              core::ExactRecommender::ComputeUtilityRow(context, u, &scratch);
          core::RecommendationList ideal = core::TopNFromSparse(row, max_n);
          std::vector<double> prefix(static_cast<size_t>(max_n) + 1, 0.0);
          for (size_t p = 0; p < ideal.size(); ++p) {
            prefix[p + 1] =
                prefix[p] +
                ideal[p].utility / RankDiscount(static_cast<int64_t>(p) + 1);
          }
          // Lists shorter than max_n extend with zero gain.
          for (size_t p = ideal.size(); p < static_cast<size_t>(max_n);
               ++p) {
            prefix[p + 1] = prefix[p];
          }
          ref.rows_[static_cast<size_t>(k)] = std::move(row);
          ref.ideal_lists_[static_cast<size_t>(k)] = std::move(ideal);
          ref.ideal_dcg_prefix_[static_cast<size_t>(k)] = std::move(prefix);
        }
      });
  PRIVREC_CHECK_MSG(run.ok(), run.message().c_str());
  return ref;
}

int64_t ExactReference::IndexOf(graph::NodeId u) const {
  auto it = index_.find(u);
  PRIVREC_CHECK_MSG(it != index_.end(), "user not precomputed");
  return it->second;
}

double ExactReference::IdealUtility(graph::NodeId u, graph::ItemId i) const {
  const auto& row = rows_[static_cast<size_t>(IndexOf(u))];
  auto it = std::lower_bound(
      row.begin(), row.end(), i,
      [](const std::pair<graph::ItemId, double>& e, graph::ItemId key) {
        return e.first < key;
      });
  if (it == row.end() || it->first != i) return 0.0;
  return it->second;
}

core::RecommendationList ExactReference::IdealList(graph::NodeId u,
                                                   int64_t n) const {
  const core::RecommendationList& full =
      ideal_lists_[static_cast<size_t>(IndexOf(u))];
  int64_t keep = std::min<int64_t>(n, static_cast<int64_t>(full.size()));
  return core::RecommendationList(full.begin(), full.begin() + keep);
}

double ExactReference::IdealDcg(graph::NodeId u, int64_t n) const {
  PRIVREC_CHECK(n >= 0 && n <= max_n_);
  return ideal_dcg_prefix_[static_cast<size_t>(IndexOf(u))]
                          [static_cast<size_t>(n)];
}

double ExactReference::Ndcg(
    graph::NodeId u, const core::RecommendationList& private_list) const {
  int64_t idx = IndexOf(u);
  const auto& row = rows_[static_cast<size_t>(idx)];
  double dcg = 0.0;
  for (size_t p = 0; p < private_list.size(); ++p) {
    graph::ItemId item = private_list[p].item;
    auto it = std::lower_bound(
        row.begin(), row.end(), item,
        [](const std::pair<graph::ItemId, double>& e, graph::ItemId key) {
          return e.first < key;
        });
    double gain = (it != row.end() && it->first == item) ? it->second : 0.0;
    dcg += gain / RankDiscount(static_cast<int64_t>(p) + 1);
  }
  int64_t n = std::min<int64_t>(static_cast<int64_t>(private_list.size()),
                                max_n_);
  return NdcgFromDcg(dcg, ideal_dcg_prefix_[static_cast<size_t>(idx)]
                                           [static_cast<size_t>(n)]);
}

double ExactReference::MeanNdcg(
    const std::vector<core::RecommendationList>& lists) const {
  PRIVREC_SPAN("eval.ndcg");
  PRIVREC_CHECK(lists.size() == users_.size());
  if (lists.empty()) return 0.0;
  static obs::Counter& evaluations =
      obs::GetCounter("privrec.eval.ndcg_evaluations");
  static obs::Counter& lists_scored =
      obs::GetCounter("privrec.eval.lists_scored");
  evaluations.Increment();
  lists_scored.Add(static_cast<int64_t>(lists.size()));
  // Ordered chunked sum: same value at every thread count (Equation 2's
  // average over U is a fixed summation tree; see common/parallel.h).
  double acc = ParallelSum(static_cast<int64_t>(lists.size()), [&](int64_t k) {
    return Ndcg(users_[static_cast<size_t>(k)], lists[static_cast<size_t>(k)]);
  });
  return acc / static_cast<double>(lists.size());
}

}  // namespace privrec::eval
