// Experiment driver: runs a (ε × N × trial) sweep of any Recommender
// factory against a precomputed ExactReference and aggregates NDCG —
// the machinery behind the Figure 1 / Figure 2 benches.
//
// Each trial draws one set of noise (one Recommend call at the largest N);
// NDCG@n for smaller n is computed on the prefix of that list, exactly as
// a deployed system would truncate a single ranking.

#ifndef PRIVREC_EVAL_EXPERIMENT_H_
#define PRIVREC_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/recommender.h"
#include "eval/exact_reference.h"

namespace privrec::eval {

// Builds a fresh recommender for one (epsilon, trial) cell; `seed` is
// unique per cell so trials are independent and reproducible.
using RecommenderFactory =
    std::function<std::unique_ptr<core::Recommender>(double epsilon,
                                                     uint64_t seed)>;

struct SweepCell {
  double epsilon = 0.0;
  int64_t n = 0;
  double mean_ndcg = 0.0;
  double stddev_ndcg = 0.0;  // across trials
  int trials = 0;
};

struct SweepOptions {
  std::vector<double> epsilons;
  std::vector<int64_t> ns;  // NDCG cutoffs; max element drives the run
  int trials = 10;
  uint64_t seed = 1000;
};

std::vector<SweepCell> RunNdcgSweep(const RecommenderFactory& factory,
                                    const ExactReference& reference,
                                    const SweepOptions& options);

// Truncates a batch of lists to their first n entries.
std::vector<core::RecommendationList> TruncateLists(
    const std::vector<core::RecommendationList>& lists, int64_t n);

}  // namespace privrec::eval

#endif  // PRIVREC_EVAL_EXPERIMENT_H_
