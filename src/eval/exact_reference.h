// ExactReference: the non-private recommender's answers, precomputed once
// per (dataset, measure) and reused across every ε / trial — the ideal
// utilities μ_u^i, the ideal top-N lists R_u^N, and the ideal DCG@N
// denominators of Equation 2.

#ifndef PRIVREC_EVAL_EXACT_REFERENCE_H_
#define PRIVREC_EVAL_EXACT_REFERENCE_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/recommendation.h"
#include "core/recommender.h"

namespace privrec::eval {

class ExactReference {
 public:
  // Precomputes rows / lists / DCGs for `users`, with ideal lists kept up
  // to length `max_n` (use the largest N of the experiment).
  static ExactReference Compute(const core::RecommenderContext& context,
                                const std::vector<graph::NodeId>& users,
                                int64_t max_n);

  const std::vector<graph::NodeId>& users() const { return users_; }
  int64_t max_n() const { return max_n_; }

  // Ideal utility μ_u^i; 0 for items outside u's utility row. u must be
  // one of the precomputed users.
  double IdealUtility(graph::NodeId u, graph::ItemId i) const;

  // The ideal (non-private) top-min(n, max_n) list of u.
  core::RecommendationList IdealList(graph::NodeId u, int64_t n) const;

  // Ideal DCG@n (denominator of Equation 2).
  double IdealDcg(graph::NodeId u, int64_t n) const;

  // NDCG of a private list for u; N is the list's size.
  double Ndcg(graph::NodeId u,
              const core::RecommendationList& private_list) const;

  // Mean NDCG over aligned (users()[k], lists[k]) pairs — Equation 2's
  // average over U. `lists` must be parallel to the precomputed users.
  double MeanNdcg(const std::vector<core::RecommendationList>& lists) const;

 private:
  int64_t IndexOf(graph::NodeId u) const;

  std::vector<graph::NodeId> users_;
  std::unordered_map<graph::NodeId, int64_t> index_;
  int64_t max_n_ = 0;
  // Per user: sparse ideal utility row sorted by item id.
  std::vector<std::vector<std::pair<graph::ItemId, double>>> rows_;
  // Per user: ideal list (length <= max_n).
  std::vector<core::RecommendationList> ideal_lists_;
  // Per user: prefix DCGs of the ideal list; ideal_dcg_[u][n] = DCG@n,
  // n in [0, max_n].
  std::vector<std::vector<double>> ideal_dcg_prefix_;
};

}  // namespace privrec::eval

#endif  // PRIVREC_EVAL_EXACT_REFERENCE_H_
