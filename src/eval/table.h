// Fixed-width plain-text table printer for the bench reports.

#ifndef PRIVREC_EVAL_TABLE_H_
#define PRIVREC_EVAL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace privrec::eval {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Cells beyond the header count are dropped; missing cells print empty.
  void AddRow(std::vector<std::string> cells);

  // Renders with a header rule, columns padded to the widest cell.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace privrec::eval

#endif  // PRIVREC_EVAL_TABLE_H_
