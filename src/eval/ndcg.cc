#include "eval/ndcg.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace privrec::eval {

double RankDiscount(int64_t position) {
  PRIVREC_DCHECK(position >= 1);
  return std::max(1.0, std::log2(static_cast<double>(position)) + 1.0);
}

double Dcg(const core::RecommendationList& list,
           const std::function<double(graph::ItemId)>& ideal_utility) {
  double acc = 0.0;
  for (size_t k = 0; k < list.size(); ++k) {
    acc += ideal_utility(list[k].item) /
           RankDiscount(static_cast<int64_t>(k) + 1);
  }
  return acc;
}

double NdcgFromDcg(double dcg, double ideal_dcg) {
  if (ideal_dcg <= 0.0) return 1.0;
  return dcg / ideal_dcg;
}

double PrecisionAtN(const core::RecommendationList& recommended,
                    const core::RecommendationList& relevant) {
  if (recommended.empty()) return 0.0;
  std::unordered_set<graph::ItemId> truth;
  for (const core::Recommendation& r : relevant) truth.insert(r.item);
  int64_t hits = 0;
  for (const core::Recommendation& r : recommended) {
    if (truth.count(r.item)) ++hits;
  }
  return static_cast<double>(hits) /
         static_cast<double>(recommended.size());
}

double RecallAtN(const core::RecommendationList& recommended,
                 const core::RecommendationList& relevant) {
  if (relevant.empty()) return 0.0;
  std::unordered_set<graph::ItemId> truth;
  for (const core::Recommendation& r : relevant) truth.insert(r.item);
  int64_t hits = 0;
  for (const core::Recommendation& r : recommended) {
    if (truth.count(r.item)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(relevant.size());
}

}  // namespace privrec::eval
