#include "eval/table.h"

#include <algorithm>
#include <utility>

namespace privrec::eval {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> width(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c];
      for (size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace privrec::eval
