// Error decomposition for the cluster framework and the strawmen —
// Section 5.1 of the paper, made computable.
//
// For a utility estimate μ̂_u^i the paper separates (Equation 5):
//   - approximation error AE_u^i (Equation 6):
//       Σ_c Σ_{v ∈ sim(u) ∩ c} sim(u,v) · (w(v,i) − c̄)
//     — what averaging costs even without noise; and
//   - perturbation error:
//       Σ_c (√2 · w_max / (ε·|c|)) · Σ_{v ∈ sim(u) ∩ c} sim(u,v)
//     — the expected (std) Laplace noise after reconstruction.
// The strawmen's expected errors (§5.1.1) are
//   NOU: √2 · Δ_A / ε with Δ_A = w_max · max_v Σ_u sim(u,v), and
//   NOE: (√2 · w_max / ε) · Σ_{v ∈ sim(u)} sim(u,v).
//
// Comparing these against the scale of the true top-N utilities is the
// paper's §5.1 argument in numbers: the bench_error_decomposition binary
// prints exactly that table.

#ifndef PRIVREC_EVAL_ERROR_DECOMPOSITION_H_
#define PRIVREC_EVAL_ERROR_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "community/partition.h"
#include "core/recommender.h"

namespace privrec::eval {

struct UserErrorDecomposition {
  graph::NodeId user = -1;
  // Mean true utility of the user's exact top-N items (signal scale).
  double mean_top_utility = 0.0;
  // Mean |AE_u^i| over the exact top-N items (Equation 6).
  double approximation_error = 0.0;
  // Equation 5's perturbation term at the given ε (0 when ε = ∞).
  double cluster_perturbation_error = 0.0;
  // §5.1.1 expected errors for the strawmen at the same ε.
  double nou_expected_error = 0.0;
  double noe_expected_error = 0.0;
};

struct ErrorDecompositionOptions {
  double epsilon = 0.1;
  int64_t top_n = 50;
};

// Per-user decomposition for every requested user. The context workload
// must contain rows for the requested users; Δ_A uses the workload's
// global column-sum statistic.
std::vector<UserErrorDecomposition> DecomposeErrors(
    const core::RecommenderContext& context,
    const community::Partition& partition,
    const std::vector<graph::NodeId>& users,
    const ErrorDecompositionOptions& options);

// Aggregate (mean over users) of each field.
UserErrorDecomposition MeanDecomposition(
    const std::vector<UserErrorDecomposition>& per_user);

}  // namespace privrec::eval

#endif  // PRIVREC_EVAL_ERROR_DECOMPOSITION_H_
