#include "eval/experiment.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/stats.h"
#include "common/timer.h"
#include "dp/budget.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace privrec::eval {

std::vector<core::RecommendationList> TruncateLists(
    const std::vector<core::RecommendationList>& lists, int64_t n) {
  std::vector<core::RecommendationList> out;
  out.reserve(lists.size());
  for (const core::RecommendationList& list : lists) {
    int64_t keep = std::min<int64_t>(n, static_cast<int64_t>(list.size()));
    out.emplace_back(list.begin(), list.begin() + keep);
  }
  return out;
}

std::vector<SweepCell> RunNdcgSweep(const RecommenderFactory& factory,
                                    const ExactReference& reference,
                                    const SweepOptions& options) {
  PRIVREC_CHECK(!options.epsilons.empty());
  PRIVREC_CHECK(!options.ns.empty());
  PRIVREC_CHECK(options.trials >= 1);
  const int64_t max_n =
      *std::max_element(options.ns.begin(), options.ns.end());
  PRIVREC_CHECK(max_n <= reference.max_n());

  PRIVREC_SPAN("eval.sweep");
  static obs::Counter& sweeps = obs::GetCounter("privrec.eval.sweeps");
  static obs::Counter& trials_run =
      obs::GetCounter("privrec.eval.trials");
  static obs::Histogram& trial_ms = obs::GetHistogram(
      "privrec.eval.trial_ms", obs::ExponentialBuckets(1.0, 4.0, 10));
  sweeps.Increment();

  // Sequential-composition accounting for the whole sweep (Theorem 2):
  // every trial at a finite ε is an independent release over the same
  // data, so the sweep as a whole is (Σ ε_i · trials)-differentially
  // private. Charging each trial through a PrivacyBudget keeps the
  // process-wide privrec.dp.epsilon_spent gauge in sync with what the
  // sweep actually released; ∞ cells (the non-private reference curve)
  // release the exact averages and are excluded from the DP ledger.
  double sweep_total = 0.0;
  for (double epsilon : options.epsilons) {
    if (std::isfinite(epsilon)) {
      sweep_total += epsilon * static_cast<double>(options.trials);
    }
  }
  dp::PrivacyBudget sweep_budget(sweep_total);

  std::vector<SweepCell> cells;
  uint64_t cell_seed = options.seed;
  for (double epsilon : options.epsilons) {
    // One RunningStats per N, accumulated across trials. The (ε, trial)
    // loop stays serial — the cell_seed sequence and each recommender's
    // invocation counter are part of the reproducibility contract — while
    // the per-user work inside Recommend() and MeanNdcg() runs on the
    // deterministic parallel layer (common/parallel.h), so sweep results
    // are bit-identical for every --threads value.
    std::vector<RunningStats> stats(options.ns.size());
    for (int trial = 0; trial < options.trials; ++trial) {
      PRIVREC_SPAN_CHUNK("eval.trial", trial);
      ScopedTimer timer(&trial_ms);
      trials_run.Increment();
      if (std::isfinite(epsilon)) {
        // Spends are accumulated in the same order the budget total was
        // summed, so the charge can only fail on a genuine overspend.
        PRIVREC_CHECK(sweep_budget.Charge("sweep", epsilon));
      }
      std::unique_ptr<core::Recommender> rec =
          factory(epsilon, SplitMix64(cell_seed++));
      std::vector<core::RecommendationList> lists =
          rec->Recommend(reference.users(), max_n);
      for (size_t k = 0; k < options.ns.size(); ++k) {
        stats[k].Add(
            reference.MeanNdcg(TruncateLists(lists, options.ns[k])));
      }
    }
    for (size_t k = 0; k < options.ns.size(); ++k) {
      SweepCell cell;
      cell.epsilon = epsilon;
      cell.n = options.ns[k];
      cell.mean_ndcg = stats[k].mean();
      cell.stddev_ndcg = stats[k].stddev();
      cell.trials = options.trials;
      cells.push_back(cell);
    }
  }
  return cells;
}

}  // namespace privrec::eval
