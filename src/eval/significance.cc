#include "eval/significance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "common/random.h"
#include "common/stats.h"

namespace privrec::eval {

namespace {

// Regularized incomplete beta function I_x(a, b) by the continued
// fraction of Numerical Recipes (Lentz's algorithm).
double BetaContinuedFraction(double a, double b, double x) {
  const double kEps = 1e-12;
  const double kTiny = 1e-300;
  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= 300; ++m) {
    double m_d = static_cast<double>(m);
    double aa = m_d * (b - m_d) * x / ((qam + 2.0 * m_d) * (a + 2.0 * m_d));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m_d) * (qab + m_d) * x /
         ((a + 2.0 * m_d) * (qap + 2.0 * m_d));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                    a * std::log(x) + b * std::log1p(-x);
  double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

}  // namespace

double StudentTTwoSidedPValue(double t, double df) {
  PRIVREC_CHECK(df > 0.0);
  double x = df / (df + t * t);
  // P(|T| >= |t|) = I_x(df/2, 1/2).
  return RegularizedIncompleteBeta(df / 2.0, 0.5, x);
}

WelchResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b) {
  PRIVREC_CHECK(a.size() >= 2 && b.size() >= 2);
  RunningStats sa;
  RunningStats sb;
  for (double x : a) sa.Add(x);
  for (double x : b) sb.Add(x);
  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());
  // Sample (n-1) variances.
  double va = sa.variance() * na / (na - 1.0);
  double vb = sb.variance() * nb / (nb - 1.0);

  WelchResult result;
  result.mean_difference = sa.mean() - sb.mean();
  double se2 = va / na + vb / nb;
  if (se2 <= 0.0) {
    // Identical constant samples: difference is exact.
    result.t_statistic =
        result.mean_difference == 0.0
            ? 0.0
            : std::numeric_limits<double>::infinity();
    result.degrees_of_freedom = na + nb - 2.0;
    result.p_value = result.mean_difference == 0.0 ? 1.0 : 0.0;
    return result;
  }
  result.t_statistic = result.mean_difference / std::sqrt(se2);
  double num = se2 * se2;
  double den = (va / na) * (va / na) / (na - 1.0) +
               (vb / nb) * (vb / nb) / (nb - 1.0);
  result.degrees_of_freedom = num / den;
  result.p_value = StudentTTwoSidedPValue(result.t_statistic,
                                          result.degrees_of_freedom);
  return result;
}

BootstrapInterval BootstrapMeanInterval(const std::vector<double>& samples,
                                        double confidence,
                                        int64_t resamples, uint64_t seed) {
  PRIVREC_CHECK(!samples.empty());
  PRIVREC_CHECK(confidence > 0.0 && confidence < 1.0);
  PRIVREC_CHECK(resamples >= 10);
  Rng rng(seed);
  std::vector<double> means;
  means.reserve(static_cast<size_t>(resamples));
  double total = 0.0;
  for (double x : samples) total += x;
  for (int64_t r = 0; r < resamples; ++r) {
    double acc = 0.0;
    for (size_t k = 0; k < samples.size(); ++k) {
      acc += samples[rng.UniformInt(samples.size())];
    }
    means.push_back(acc / static_cast<double>(samples.size()));
  }
  double alpha = (1.0 - confidence) / 2.0;
  BootstrapInterval interval;
  interval.mean = total / static_cast<double>(samples.size());
  interval.lower = Percentile(means, 100.0 * alpha);
  interval.upper = Percentile(means, 100.0 * (1.0 - alpha));
  return interval;
}

}  // namespace privrec::eval
