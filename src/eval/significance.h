// Statistical significance helpers for mechanism comparisons: Welch's
// unequal-variance t-test and a seeded bootstrap confidence interval.
// Used by the benches to say "A beats B" with error bars instead of bare
// means (the paper reports means of 10 trials; these make the trial
// variance explicit).

#ifndef PRIVREC_EVAL_SIGNIFICANCE_H_
#define PRIVREC_EVAL_SIGNIFICANCE_H_

#include <cstdint>
#include <vector>

namespace privrec::eval {

struct WelchResult {
  double t_statistic = 0.0;
  // Welch-Satterthwaite degrees of freedom.
  double degrees_of_freedom = 0.0;
  // Two-sided p-value (normal approximation for df > 30, otherwise a
  // t-distribution tail via the incomplete beta function).
  double p_value = 1.0;
  double mean_difference = 0.0;  // mean(a) - mean(b)
};

// Requires at least two samples per side.
WelchResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b);

struct BootstrapInterval {
  double lower = 0.0;
  double upper = 0.0;
  double mean = 0.0;
};

// Percentile bootstrap CI for the mean of `samples` at the given
// confidence (e.g. 0.95). Deterministic given the seed.
BootstrapInterval BootstrapMeanInterval(const std::vector<double>& samples,
                                        double confidence,
                                        int64_t resamples, uint64_t seed);

// Student-t two-sided tail probability P(|T_df| >= |t|). Exposed for
// tests; exact via the regularized incomplete beta function.
double StudentTTwoSidedPValue(double t, double df);

}  // namespace privrec::eval

#endif  // PRIVREC_EVAL_SIGNIFICANCE_H_
