#include "eval/error_decomposition.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/exact_recommender.h"
#include "dp/mechanisms.h"

namespace privrec::eval {

std::vector<UserErrorDecomposition> DecomposeErrors(
    const core::RecommenderContext& context,
    const community::Partition& partition,
    const std::vector<graph::NodeId>& users,
    const ErrorDecompositionOptions& options) {
  context.CheckValid();
  PRIVREC_CHECK(partition.num_nodes() == context.social->num_nodes());
  PRIVREC_CHECK(options.top_n >= 1);
  PRIVREC_CHECK(dp::IsValidEpsilon(options.epsilon));

  const int64_t num_clusters = partition.num_clusters();
  const graph::ItemId num_items = context.preferences->num_items();
  const double w_max = context.preferences->max_weight();
  const bool noiseless = options.epsilon == dp::kEpsilonInfinity;
  const double sqrt2 = std::sqrt(2.0);

  // Exact (noise-free) cluster averages — the c̄ of Equation 6.
  std::vector<double> averages(
      static_cast<size_t>(num_clusters * num_items), 0.0);
  for (graph::NodeId v = 0; v < context.preferences->num_users(); ++v) {
    int64_t c = partition.ClusterOf(v);
    double* row = averages.data() + c * num_items;
    auto items = context.preferences->ItemsOf(v);
    auto weights = context.preferences->WeightsOf(v);
    for (size_t k = 0; k < items.size(); ++k) {
      row[items[k]] += weights[k];
    }
  }
  for (int64_t c = 0; c < num_clusters; ++c) {
    double size = static_cast<double>(partition.ClusterSize(c));
    double* row = averages.data() + c * num_items;
    for (graph::ItemId i = 0; i < num_items; ++i) row[i] /= size;
  }

  const double delta_nou = w_max * context.workload->MaxColumnSum();

  core::ExactRecommender exact(context);
  std::vector<UserErrorDecomposition> out;
  out.reserve(users.size());
  std::vector<double> sim_sum(static_cast<size_t>(num_clusters), 0.0);
  std::vector<int64_t> touched;
  for (graph::NodeId u : users) {
    UserErrorDecomposition d;
    d.user = u;

    // Per-cluster similarity mass and the total row sum.
    touched.clear();
    double row_sum = 0.0;
    for (const similarity::SimilarityEntry& e : context.workload->Row(u)) {
      int64_t c = partition.ClusterOf(e.user);
      if (sim_sum[static_cast<size_t>(c)] == 0.0) touched.push_back(c);
      sim_sum[static_cast<size_t>(c)] += e.score;
      row_sum += e.score;
    }

    if (!noiseless) {
      // Equation 5's noise term and the §5.1.1 expected errors.
      for (int64_t c : touched) {
        d.cluster_perturbation_error +=
            sqrt2 * w_max /
            (options.epsilon * static_cast<double>(partition.ClusterSize(c))) *
            sim_sum[static_cast<size_t>(c)];
      }
      d.nou_expected_error = sqrt2 * delta_nou / options.epsilon;
      d.noe_expected_error = sqrt2 * w_max / options.epsilon * row_sum;
    }

    // Approximation error over the exact top-N (Equation 6), evaluated as
    // mu - sum_c sim_sum_c * avg_c per item.
    core::RecommendationList top = exact.RecommendOne(u, options.top_n);
    double util_acc = 0.0;
    double ae_acc = 0.0;
    for (const core::Recommendation& r : top) {
      double approx = 0.0;
      for (int64_t c : touched) {
        approx += sim_sum[static_cast<size_t>(c)] *
                  averages[static_cast<size_t>(c * num_items + r.item)];
      }
      util_acc += r.utility;
      ae_acc += std::fabs(r.utility - approx);
    }
    if (!top.empty()) {
      double n = static_cast<double>(top.size());
      d.mean_top_utility = util_acc / n;
      d.approximation_error = ae_acc / n;
    }

    for (int64_t c : touched) sim_sum[static_cast<size_t>(c)] = 0.0;
    out.push_back(d);
  }
  return out;
}

UserErrorDecomposition MeanDecomposition(
    const std::vector<UserErrorDecomposition>& per_user) {
  UserErrorDecomposition mean;
  if (per_user.empty()) return mean;
  for (const UserErrorDecomposition& d : per_user) {
    mean.mean_top_utility += d.mean_top_utility;
    mean.approximation_error += d.approximation_error;
    mean.cluster_perturbation_error += d.cluster_perturbation_error;
    mean.nou_expected_error += d.nou_expected_error;
    mean.noe_expected_error += d.noe_expected_error;
  }
  double n = static_cast<double>(per_user.size());
  mean.mean_top_utility /= n;
  mean.approximation_error /= n;
  mean.cluster_perturbation_error /= n;
  mean.nou_expected_error /= n;
  mean.noe_expected_error /= n;
  return mean;
}

}  // namespace privrec::eval
