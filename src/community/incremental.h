// IncrementalCommunity: Louvain partition maintenance under edge churn.
//
// The streaming pipeline cannot afford a full createClusters(G_s) per
// delta, and the group-maintenance literature (arXiv 1305.0540, PAPERS.md)
// shows local repair suffices between periodic re-clusterings. This class
// keeps the partition and its modularity bookkeeping incrementally:
//
//   - Per delta, the integer sufficient statistics of modularity are
//     updated in O(1): m (edge count), intra_c (intra-cluster edges) and
//     degsum_c (total degree) per cluster. Q is evaluated on demand as
//     Σ_c (intra_c / m − γ (degsum_c / 2m)²) straight from the integers,
//     so replaying the same delta prefix reproduces bit-identical values.
//   - After each delta the two endpoints get a local-moving pass (the
//     inner step of Louvain restricted to the touched nodes): each may
//     move to the neighboring cluster with the highest modularity gain.
//   - `baseline` records Q right after the last full clustering. When the
//     maintained Q drifts more than `drift_threshold` below it, the next
//     delta triggers a full Louvain restart (seeded deterministically from
//     the restart count, so crash-replayed streams restart identically).
//     Note the drift conflates graph change with partition staleness —
//     deliberately: both erode the utility of the published clustering,
//     and both are reasons to spend budget on a fresh release.
//
// A fresh instance is all singletons with baseline 0; the very first edges
// push Q negative, so the first threshold crossing IS the initial
// clustering — no special bootstrap path.
//
// Obs gauges/counters: privrec.stream.community_modularity,
// privrec.stream.community_drift, privrec.stream.community_local_moves,
// privrec.stream.community_restarts.

#ifndef PRIVREC_COMMUNITY_INCREMENTAL_H_
#define PRIVREC_COMMUNITY_INCREMENTAL_H_

#include <cstdint>
#include <set>
#include <vector>

#include "community/louvain.h"
#include "community/partition.h"
#include "graph/social_graph.h"

namespace privrec::community {

struct IncrementalCommunityOptions {
  // Full-restart configuration (resolution also scales the incremental
  // gain formula so local moves optimize the same objective).
  LouvainOptions louvain;
  // Restart full clustering once baseline − Q exceeds this.
  double drift_threshold = 0.05;
  // Minimum gain for a local move to be applied.
  double min_gain = 1e-9;
  // Seed stream for restart r uses SplitMix64(seed ^ r).
  uint64_t seed = 33;
};

class IncrementalCommunity {
 public:
  explicit IncrementalCommunity(graph::NodeId num_nodes,
                                const IncrementalCommunityOptions& options =
                                    IncrementalCommunityOptions());

  // Idempotent: duplicate adds / missing removes are no-ops. Self loops
  // and out-of-range ids are caller bugs (checked).
  void AddEdge(graph::NodeId u, graph::NodeId v);
  void RemoveEdge(graph::NodeId u, graph::NodeId v);

  // The maintained clustering, compacted to dense cluster ids.
  Partition partition() const { return Partition(label_); }
  const std::vector<int64_t>& labels() const { return label_; }

  // Maintained modularity of the current partition on the current graph
  // (0 on an empty graph). Matches community::Modularity() recomputation
  // up to summation order.
  double modularity() const;
  double baseline() const { return baseline_; }
  // How far Q has decayed since the last full clustering (>= 0).
  double drift() const;

  graph::NodeId num_nodes() const {
    return static_cast<graph::NodeId>(adj_.size());
  }
  int64_t num_edges() const { return m_; }
  int64_t full_restarts() const { return full_restarts_; }
  int64_t local_moves() const { return local_moves_; }

  // Materializes the maintained adjacency (restart path; also the
  // invariant the tests recompute modularity against).
  graph::SocialGraph BuildGraph() const;

  // Runs a full Louvain restart now and resets the baseline.
  void ForceRestart();

 private:
  // Links from x into cluster `c`, excluding x itself.
  int64_t LinksInto(graph::NodeId x, int64_t c) const;
  // Modularity gain of moving x from its cluster to `to`.
  double MoveGain(graph::NodeId x, int64_t to) const;
  void ApplyMove(graph::NodeId x, int64_t to);
  // Moves x to its best neighboring cluster if the gain clears min_gain.
  void TryLocalMove(graph::NodeId x);
  void MaybeRestart();
  void PublishGauges() const;

  IncrementalCommunityOptions options_;
  std::vector<std::set<graph::NodeId>> adj_;
  std::vector<int64_t> label_;
  // Modularity sufficient statistics, indexed by label (labels live in
  // [0, num_nodes); local moves reuse existing labels, restarts re-densify).
  std::vector<int64_t> intra_;
  std::vector<int64_t> degsum_;
  int64_t m_ = 0;
  double baseline_ = 0.0;
  int64_t full_restarts_ = 0;
  int64_t local_moves_ = 0;
};

}  // namespace privrec::community

#endif  // PRIVREC_COMMUNITY_INCREMENTAL_H_
