#include "community/incremental.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "common/random.h"
#include "obs/metrics.h"

namespace privrec::community {

IncrementalCommunity::IncrementalCommunity(
    graph::NodeId num_nodes, const IncrementalCommunityOptions& options)
    : options_(options),
      adj_(static_cast<size_t>(num_nodes)),
      label_(static_cast<size_t>(num_nodes)),
      intra_(static_cast<size_t>(num_nodes), 0),
      degsum_(static_cast<size_t>(num_nodes), 0) {
  PRIVREC_CHECK(num_nodes > 0);
  PRIVREC_CHECK(options.drift_threshold > 0.0);
  for (size_t i = 0; i < label_.size(); ++i) {
    label_[i] = static_cast<int64_t>(i);
  }
}

double IncrementalCommunity::modularity() const {
  if (m_ == 0) return 0.0;
  const double m = static_cast<double>(m_);
  const double gamma = options_.louvain.resolution;
  double q = 0.0;
  for (size_t c = 0; c < intra_.size(); ++c) {
    if (degsum_[c] == 0 && intra_[c] == 0) continue;
    const double frac = static_cast<double>(degsum_[c]) / (2.0 * m);
    q += static_cast<double>(intra_[c]) / m - gamma * frac * frac;
  }
  return q;
}

double IncrementalCommunity::drift() const {
  const double d = baseline_ - modularity();
  return d > 0.0 ? d : 0.0;
}

int64_t IncrementalCommunity::LinksInto(graph::NodeId x, int64_t c) const {
  int64_t links = 0;
  for (graph::NodeId y : adj_[static_cast<size_t>(x)]) {
    if (label_[static_cast<size_t>(y)] == c) ++links;
  }
  return links;
}

double IncrementalCommunity::MoveGain(graph::NodeId x, int64_t to) const {
  const int64_t from = label_[static_cast<size_t>(x)];
  if (to == from || m_ == 0) return 0.0;
  const double m = static_cast<double>(m_);
  const double k_x =
      static_cast<double>(adj_[static_cast<size_t>(x)].size());
  const double k_to = static_cast<double>(LinksInto(x, to));
  const double k_from = static_cast<double>(LinksInto(x, from));
  const double dsum_to = static_cast<double>(degsum_[static_cast<size_t>(to)]);
  const double dsum_from =
      static_cast<double>(degsum_[static_cast<size_t>(from)]);
  return (k_to - k_from) / m -
         options_.louvain.resolution * k_x *
             (dsum_to - dsum_from + k_x) / (2.0 * m * m);
}

void IncrementalCommunity::ApplyMove(graph::NodeId x, int64_t to) {
  const int64_t from = label_[static_cast<size_t>(x)];
  intra_[static_cast<size_t>(from)] -= LinksInto(x, from);
  degsum_[static_cast<size_t>(from)] -=
      static_cast<int64_t>(adj_[static_cast<size_t>(x)].size());
  label_[static_cast<size_t>(x)] = to;
  intra_[static_cast<size_t>(to)] += LinksInto(x, to);
  degsum_[static_cast<size_t>(to)] +=
      static_cast<int64_t>(adj_[static_cast<size_t>(x)].size());
  ++local_moves_;
}

void IncrementalCommunity::TryLocalMove(graph::NodeId x) {
  if (m_ == 0 || adj_[static_cast<size_t>(x)].empty()) return;
  // Candidate clusters = neighboring labels, visited in label order so the
  // winner (ties included) is deterministic.
  std::set<int64_t> candidates;
  for (graph::NodeId y : adj_[static_cast<size_t>(x)]) {
    candidates.insert(label_[static_cast<size_t>(y)]);
  }
  int64_t best_to = label_[static_cast<size_t>(x)];
  double best_gain = options_.min_gain;
  for (int64_t c : candidates) {
    const double gain = MoveGain(x, c);
    if (gain > best_gain) {
      best_gain = gain;
      best_to = c;
    }
  }
  if (best_to != label_[static_cast<size_t>(x)]) ApplyMove(x, best_to);
}

void IncrementalCommunity::AddEdge(graph::NodeId u, graph::NodeId v) {
  PRIVREC_CHECK(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  PRIVREC_CHECK(u != v);
  if (!adj_[static_cast<size_t>(u)].insert(v).second) return;
  adj_[static_cast<size_t>(v)].insert(u);
  ++m_;
  ++degsum_[static_cast<size_t>(label_[static_cast<size_t>(u)])];
  ++degsum_[static_cast<size_t>(label_[static_cast<size_t>(v)])];
  if (label_[static_cast<size_t>(u)] == label_[static_cast<size_t>(v)]) {
    ++intra_[static_cast<size_t>(label_[static_cast<size_t>(u)])];
  }
  TryLocalMove(u);
  TryLocalMove(v);
  MaybeRestart();
  PublishGauges();
}

void IncrementalCommunity::RemoveEdge(graph::NodeId u, graph::NodeId v) {
  PRIVREC_CHECK(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  PRIVREC_CHECK(u != v);
  if (adj_[static_cast<size_t>(u)].erase(v) == 0) return;
  adj_[static_cast<size_t>(v)].erase(u);
  --m_;
  --degsum_[static_cast<size_t>(label_[static_cast<size_t>(u)])];
  --degsum_[static_cast<size_t>(label_[static_cast<size_t>(v)])];
  if (label_[static_cast<size_t>(u)] == label_[static_cast<size_t>(v)]) {
    --intra_[static_cast<size_t>(label_[static_cast<size_t>(u)])];
  }
  TryLocalMove(u);
  TryLocalMove(v);
  MaybeRestart();
  PublishGauges();
}

graph::SocialGraph IncrementalCommunity::BuildGraph() const {
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  edges.reserve(static_cast<size_t>(m_));
  for (size_t u = 0; u < adj_.size(); ++u) {
    for (graph::NodeId v : adj_[u]) {
      if (static_cast<graph::NodeId>(u) < v) {
        edges.emplace_back(static_cast<graph::NodeId>(u), v);
      }
    }
  }
  return graph::SocialGraph::FromEdges(num_nodes(), edges);
}

void IncrementalCommunity::ForceRestart() {
  LouvainOptions louvain = options_.louvain;
  louvain.seed =
      SplitMix64(options_.seed ^ static_cast<uint64_t>(full_restarts_));
  const LouvainResult result = RunLouvain(BuildGraph(), louvain);
  label_ = result.partition.cluster_of();
  std::fill(intra_.begin(), intra_.end(), 0);
  std::fill(degsum_.begin(), degsum_.end(), 0);
  for (size_t u = 0; u < adj_.size(); ++u) {
    const int64_t c = label_[u];
    degsum_[static_cast<size_t>(c)] +=
        static_cast<int64_t>(adj_[u].size());
    for (graph::NodeId v : adj_[u]) {
      if (static_cast<graph::NodeId>(u) < v &&
          label_[static_cast<size_t>(v)] == c) {
        ++intra_[static_cast<size_t>(c)];
      }
    }
  }
  baseline_ = modularity();
  ++full_restarts_;
  static obs::Counter& restarts =
      obs::GetCounter("privrec.stream.community_restarts");
  restarts.Increment();
}

void IncrementalCommunity::MaybeRestart() {
  if (m_ == 0) return;
  if (drift() > options_.drift_threshold) ForceRestart();
}

void IncrementalCommunity::PublishGauges() const {
  static obs::Gauge& q = obs::GetGauge("privrec.stream.community_modularity");
  static obs::Gauge& d = obs::GetGauge("privrec.stream.community_drift");
  static obs::Gauge& moves =
      obs::GetGauge("privrec.stream.community_local_moves");
  q.Set(modularity());
  d.Set(drift());
  moves.Set(static_cast<double>(local_moves_));
}

}  // namespace privrec::community
