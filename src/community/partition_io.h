// Partition serialization: save/load cluster assignments as TSV
// ("node<TAB>cluster" per line). Lets a deployment cluster the social
// graph once and reuse the (public, privacy-free) result across many
// recommendation releases — re-running Louvain per release is pure waste
// since the input is the same public graph.

#ifndef PRIVREC_COMMUNITY_PARTITION_IO_H_
#define PRIVREC_COMMUNITY_PARTITION_IO_H_

#include <string>

#include "common/status.h"
#include "community/partition.h"

namespace privrec::community {

Status SavePartition(const Partition& partition, const std::string& path);

// Node ids must be exactly 0..n-1, each appearing once; cluster labels
// are compacted on load.
Result<Partition> LoadPartition(const std::string& path);

}  // namespace privrec::community

#endif  // PRIVREC_COMMUNITY_PARTITION_IO_H_
