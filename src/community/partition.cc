#include "community/partition.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace privrec::community {

Partition::Partition(const std::vector<int64_t>& cluster_of_node) {
  cluster_of_.resize(cluster_of_node.size());
  std::unordered_map<int64_t, int64_t> dense;
  for (size_t u = 0; u < cluster_of_node.size(); ++u) {
    int64_t raw = cluster_of_node[u];
    PRIVREC_CHECK_MSG(raw >= 0, "negative cluster label");
    auto [it, inserted] =
        dense.try_emplace(raw, static_cast<int64_t>(dense.size()));
    cluster_of_[u] = it->second;
  }
  num_clusters_ = static_cast<int64_t>(dense.size());
  sizes_.assign(static_cast<size_t>(num_clusters_), 0);
  for (int64_t c : cluster_of_) ++sizes_[static_cast<size_t>(c)];
}

Partition Partition::Singletons(graph::NodeId n) {
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (graph::NodeId u = 0; u < n; ++u) labels[static_cast<size_t>(u)] = u;
  return Partition(labels);
}

Partition Partition::Whole(graph::NodeId n) {
  return Partition(std::vector<int64_t>(static_cast<size_t>(n), 0));
}

std::vector<std::vector<graph::NodeId>> Partition::Members() const {
  std::vector<std::vector<graph::NodeId>> members(
      static_cast<size_t>(num_clusters_));
  for (size_t c = 0; c < members.size(); ++c) {
    members[c].reserve(static_cast<size_t>(sizes_[c]));
  }
  for (graph::NodeId u = 0; u < num_nodes(); ++u) {
    members[static_cast<size_t>(cluster_of_[static_cast<size_t>(u)])]
        .push_back(u);
  }
  return members;
}

double Partition::AverageClusterSize() const {
  if (num_clusters_ == 0) return 0.0;
  return static_cast<double>(num_nodes()) /
         static_cast<double>(num_clusters_);
}

double Partition::ClusterSizeStddev() const {
  if (num_clusters_ == 0) return 0.0;
  double mean = AverageClusterSize();
  double acc = 0.0;
  for (int64_t s : sizes_) {
    double d = static_cast<double>(s) - mean;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(num_clusters_));
}

int64_t Partition::LargestClusterSize() const {
  int64_t best = 0;
  for (int64_t s : sizes_) best = std::max(best, s);
  return best;
}

bool Partition::SamePartitionAs(const Partition& other) const {
  if (num_nodes() != other.num_nodes()) return false;
  if (num_clusters_ != other.num_clusters_) return false;
  // Two partitions are equal up to relabeling iff the map from this
  // cluster id to the other's is a consistent bijection.
  std::vector<int64_t> fwd(static_cast<size_t>(num_clusters_), -1);
  std::vector<int64_t> bwd(static_cast<size_t>(num_clusters_), -1);
  for (graph::NodeId u = 0; u < num_nodes(); ++u) {
    int64_t a = ClusterOf(u);
    int64_t b = other.ClusterOf(u);
    if (fwd[static_cast<size_t>(a)] == -1) fwd[static_cast<size_t>(a)] = b;
    if (bwd[static_cast<size_t>(b)] == -1) bwd[static_cast<size_t>(b)] = a;
    if (fwd[static_cast<size_t>(a)] != b ||
        bwd[static_cast<size_t>(b)] != a) {
      return false;
    }
  }
  return true;
}

}  // namespace privrec::community
