// Clustering post-processing heuristics — the paper's future-work item
// (2): "investigating post-processing heuristics to clean up the
// clustering by, for example, pruning low-quality clusters".
//
// The dominant quality problem for Algorithm 1 is tiny clusters: a
// cluster of size s receives Laplace noise of scale w_max/(s·ε) on every
// item average, so the 2-7-node components of Last.fm are pure noise at
// small ε. MergeSmallClusters absorbs every cluster below a minimum size
// into the neighboring cluster it shares the most social edges with
// (isolated small clusters, e.g. separate components, are pooled into one
// catch-all cluster). The heuristic reads only the public social graph,
// so the privacy guarantee is untouched.

#ifndef PRIVREC_COMMUNITY_POSTPROCESS_H_
#define PRIVREC_COMMUNITY_POSTPROCESS_H_

#include <cstdint>

#include "community/partition.h"
#include "graph/social_graph.h"

namespace privrec::community {

struct MergeSmallClustersOptions {
  // Clusters strictly smaller than this are merged away. 1 disables.
  int64_t min_size = 8;
  // Safety bound on merge rounds (a merge can create a new small cluster
  // only by pooling isolated ones, so a few rounds always suffice).
  int max_rounds = 16;
};

// Returns a partition in which every cluster has at least
// min(min_size, num_nodes) members. Merging priority: the neighbor
// cluster with the largest edge cut to the small cluster; small clusters
// with no external edges are pooled together (and with the smallest
// normal cluster if the pool itself stays too small).
Partition MergeSmallClusters(const graph::SocialGraph& g,
                             const Partition& partition,
                             const MergeSmallClustersOptions& options = {});

}  // namespace privrec::community

#endif  // PRIVREC_COMMUNITY_POSTPROCESS_H_
