#include "community/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/random.h"

namespace privrec::community {

namespace {

double SquaredDistance(const la::DenseMatrix& points, int64_t row,
                       const std::vector<double>& center) {
  const double* p = points.RowPtr(row);
  double acc = 0.0;
  for (size_t j = 0; j < center.size(); ++j) {
    double d = p[j] - center[j];
    acc += d * d;
  }
  return acc;
}

}  // namespace

KMeansResult RunKMeans(const la::DenseMatrix& points,
                       const KMeansOptions& options) {
  const int64_t n = points.rows();
  const int64_t d = points.cols();
  const int64_t k = options.k;
  PRIVREC_CHECK(k >= 1 && k <= n);
  Rng rng(options.seed);

  // k-means++ seeding.
  std::vector<std::vector<double>> centers;
  centers.reserve(static_cast<size_t>(k));
  auto row_vec = [&](int64_t r) {
    return std::vector<double>(points.RowPtr(r), points.RowPtr(r) + d);
  };
  centers.push_back(row_vec(static_cast<int64_t>(
      rng.UniformInt(static_cast<uint64_t>(n)))));
  std::vector<double> min_dist(static_cast<size_t>(n),
                               std::numeric_limits<double>::max());
  while (static_cast<int64_t>(centers.size()) < k) {
    double total = 0.0;
    for (int64_t r = 0; r < n; ++r) {
      double dist = SquaredDistance(points, r, centers.back());
      min_dist[static_cast<size_t>(r)] =
          std::min(min_dist[static_cast<size_t>(r)], dist);
      total += min_dist[static_cast<size_t>(r)];
    }
    if (total <= 0.0) {
      // All points coincide with existing centers; pick uniformly.
      centers.push_back(row_vec(static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(n)))));
      continue;
    }
    double pick = rng.UniformDouble() * total;
    int64_t chosen = n - 1;
    double acc = 0.0;
    for (int64_t r = 0; r < n; ++r) {
      acc += min_dist[static_cast<size_t>(r)];
      if (acc >= pick) {
        chosen = r;
        break;
      }
    }
    centers.push_back(row_vec(chosen));
  }

  // Lloyd iterations.
  std::vector<int64_t> assignment(static_cast<size_t>(n), 0);
  KMeansResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    result.inertia = 0.0;
    for (int64_t r = 0; r < n; ++r) {
      int64_t best = 0;
      double best_dist = std::numeric_limits<double>::max();
      for (int64_t c = 0; c < k; ++c) {
        double dist =
            SquaredDistance(points, r, centers[static_cast<size_t>(c)]);
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      result.inertia += best_dist;
      if (assignment[static_cast<size_t>(r)] != best) {
        assignment[static_cast<size_t>(r)] = best;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;

    // Recompute centers; re-seed empty clusters from the farthest point.
    std::vector<int64_t> counts(static_cast<size_t>(k), 0);
    for (auto& c : centers) std::fill(c.begin(), c.end(), 0.0);
    for (int64_t r = 0; r < n; ++r) {
      int64_t c = assignment[static_cast<size_t>(r)];
      ++counts[static_cast<size_t>(c)];
      const double* p = points.RowPtr(r);
      for (int64_t j = 0; j < d; ++j) {
        centers[static_cast<size_t>(c)][static_cast<size_t>(j)] += p[j];
      }
    }
    for (int64_t c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] > 0) {
        for (double& x : centers[static_cast<size_t>(c)]) {
          x /= static_cast<double>(counts[static_cast<size_t>(c)]);
        }
      } else {
        // Empty cluster: re-seed at the point farthest from its center.
        int64_t far = 0;
        double far_dist = -1.0;
        for (int64_t r = 0; r < n; ++r) {
          double dist = SquaredDistance(
              points, r,
              centers[static_cast<size_t>(
                  assignment[static_cast<size_t>(r)])]);
          if (dist > far_dist) {
            far_dist = dist;
            far = r;
          }
        }
        centers[static_cast<size_t>(c)] = row_vec(far);
      }
    }
  }
  result.partition = Partition(assignment);
  return result;
}

la::DenseMatrix SpectralEmbedding(const graph::SocialGraph& g,
                                  const SpectralEmbeddingOptions& options) {
  const int64_t n = g.num_nodes();
  const int64_t d = std::min<int64_t>(options.dimensions, n);
  PRIVREC_CHECK(d >= 1);
  Rng rng(options.seed);

  std::vector<double> inv_sqrt_degree(static_cast<size_t>(n), 0.0);
  for (graph::NodeId u = 0; u < n; ++u) {
    int64_t deg = g.Degree(u);
    if (deg > 0) {
      inv_sqrt_degree[static_cast<size_t>(u)] =
          1.0 / std::sqrt(static_cast<double>(deg));
    }
  }

  // Block power iteration on M = D^{-1/2} A D^{-1/2} (+ small identity
  // shift so eigenvalues are positive and iteration converges to the top
  // eigenvectors).
  la::DenseMatrix block(n, d);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) block(i, j) = rng.Normal();
  }
  block = la::HouseholderQ(block);
  la::DenseMatrix next(n, d);
  for (int iter = 0; iter < options.power_iterations; ++iter) {
    // next = (M + 0.5 I) * block.
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < d; ++j) {
        next(i, j) = 0.5 * block(i, j);
      }
    }
    for (graph::NodeId u = 0; u < n; ++u) {
      double su = inv_sqrt_degree[static_cast<size_t>(u)];
      if (su == 0.0) continue;
      double* out = next.RowPtr(u);
      for (graph::NodeId v : g.Neighbors(u)) {
        double w = su * inv_sqrt_degree[static_cast<size_t>(v)];
        const double* in = block.RowPtr(v);
        for (int64_t j = 0; j < d; ++j) out[j] += w * in[j];
      }
    }
    block = la::HouseholderQ(next);
  }

  // Ng-Jordan-Weiss row normalization.
  for (int64_t i = 0; i < n; ++i) {
    double* row = block.RowPtr(i);
    double norm = 0.0;
    for (int64_t j = 0; j < d; ++j) norm += row[j] * row[j];
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (int64_t j = 0; j < d; ++j) row[j] /= norm;
    }
  }
  return block;
}

Partition SpectralKMeans(const graph::SocialGraph& g, int64_t k,
                         uint64_t seed) {
  SpectralEmbeddingOptions embed_opt;
  embed_opt.dimensions = k;
  embed_opt.seed = seed;
  la::DenseMatrix embedding = SpectralEmbedding(g, embed_opt);
  KMeansOptions km_opt;
  km_opt.k = k;
  km_opt.seed = seed ^ 0x51ec;
  return RunKMeans(embedding, km_opt).partition;
}

}  // namespace privrec::community
