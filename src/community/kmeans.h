// K-means clustering over node embeddings, plus a spectral embedding of
// the social graph.
//
// The paper's Section 5 remark explains why the framework does NOT use
// matrix clustering: k must be fixed a priori (and cannot be tuned
// against the private data without paying ε), and scalability suffers on
// large graphs. These implementations exist to test that remark head-on —
// the A1 ablation bench runs "spectral embedding + k-means" as a
// createClusters strategy next to Louvain. Both read only the public
// social graph, so they are privacy-valid strategies; the question is
// pure utility.
//
// KMeans: Lloyd's algorithm with k-means++ seeding and an empty-cluster
// re-seed rule. Deterministic given the seed.
//
// SpectralEmbedding: the top-d eigenvectors of the normalized adjacency
// D^{-1/2} A D^{-1/2}, computed by block power iteration with QR
// re-orthonormalization (the standard spectral-clustering embedding;
// rows are L2-normalized as in Ng-Jordan-Weiss).

#ifndef PRIVREC_COMMUNITY_KMEANS_H_
#define PRIVREC_COMMUNITY_KMEANS_H_

#include <cstdint>
#include <vector>

#include "community/partition.h"
#include "graph/social_graph.h"
#include "la/dense_matrix.h"

namespace privrec::community {

struct KMeansOptions {
  int64_t k = 8;
  int max_iterations = 50;
  uint64_t seed = 19;
};

struct KMeansResult {
  Partition partition;
  // Sum of squared distances to assigned centroids.
  double inertia = 0.0;
  int iterations = 0;
};

// Clusters the rows of `points` (n x d) into k groups. Requires
// 1 <= k <= n.
KMeansResult RunKMeans(const la::DenseMatrix& points,
                       const KMeansOptions& options);

struct SpectralEmbeddingOptions {
  int64_t dimensions = 8;
  int power_iterations = 60;
  uint64_t seed = 20;
};

// Returns an n x d embedding of the graph's nodes. Isolated nodes embed
// at the origin.
la::DenseMatrix SpectralEmbedding(const graph::SocialGraph& g,
                                  const SpectralEmbeddingOptions& options);

// Convenience: spectral embedding + k-means, the matrix-clustering
// strategy of the paper's Section 5 remark.
Partition SpectralKMeans(const graph::SocialGraph& g, int64_t k,
                         uint64_t seed);

}  // namespace privrec::community

#endif  // PRIVREC_COMMUNITY_KMEANS_H_
