#include "community/postprocess.h"

#include <algorithm>
#include <vector>

namespace privrec::community {

Partition MergeSmallClusters(const graph::SocialGraph& g,
                             const Partition& partition,
                             const MergeSmallClustersOptions& options) {
  PRIVREC_CHECK(partition.num_nodes() == g.num_nodes());
  PRIVREC_CHECK(options.min_size >= 1);
  const int64_t min_size =
      std::min<int64_t>(options.min_size, g.num_nodes());

  std::vector<int64_t> label = partition.cluster_of();
  for (int round = 0; round < options.max_rounds; ++round) {
    Partition current(label);
    label = current.cluster_of();
    const int64_t k = current.num_clusters();

    // Identify the small clusters.
    std::vector<bool> small(static_cast<size_t>(k), false);
    bool any_small = false;
    for (int64_t c = 0; c < k; ++c) {
      if (current.ClusterSize(c) < min_size) {
        small[static_cast<size_t>(c)] = true;
        any_small = true;
      }
    }
    if (!any_small || k == 1) break;

    // Edge cut from each small cluster to every other cluster.
    std::vector<std::vector<int64_t>> cut(
        static_cast<size_t>(k), std::vector<int64_t>());
    for (int64_t c = 0; c < k; ++c) {
      if (small[static_cast<size_t>(c)]) {
        cut[static_cast<size_t>(c)].assign(static_cast<size_t>(k), 0);
      }
    }
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      int64_t cu = label[static_cast<size_t>(u)];
      if (!small[static_cast<size_t>(cu)]) continue;
      for (graph::NodeId v : g.Neighbors(u)) {
        int64_t cv = label[static_cast<size_t>(v)];
        if (cv != cu) ++cut[static_cast<size_t>(cu)][static_cast<size_t>(cv)];
      }
    }

    // Merge each small cluster into its best-connected neighbor; those
    // with no external edges pool into a shared catch-all. Union-find
    // keeps mutual/chained merges well-defined.
    std::vector<int64_t> parent(static_cast<size_t>(k));
    for (int64_t c = 0; c < k; ++c) parent[static_cast<size_t>(c)] = c;
    auto find = [&](int64_t c) {
      while (parent[static_cast<size_t>(c)] != c) {
        parent[static_cast<size_t>(c)] =
            parent[static_cast<size_t>(parent[static_cast<size_t>(c)])];
        c = parent[static_cast<size_t>(c)];
      }
      return c;
    };
    bool changed = false;
    int64_t catch_all = -1;
    for (int64_t c = 0; c < k; ++c) {
      if (!small[static_cast<size_t>(c)]) continue;
      int64_t best = -1;
      int64_t best_cut = 0;
      for (int64_t other = 0; other < k; ++other) {
        if (other == c) continue;
        int64_t w = cut[static_cast<size_t>(c)][static_cast<size_t>(other)];
        if (w > best_cut) {
          best_cut = w;
          best = other;
        }
      }
      if (best < 0) {
        // Isolated: pool into the catch-all.
        if (catch_all == -1) {
          catch_all = c;
          continue;
        }
        best = catch_all;
      }
      int64_t ra = find(c);
      int64_t rb = find(best);
      if (ra != rb) {
        parent[static_cast<size_t>(ra)] = rb;
        changed = true;
      }
    }
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      label[static_cast<size_t>(u)] =
          find(label[static_cast<size_t>(u)]);
    }
    if (!changed) {
      // Only an under-sized catch-all pool can remain; fold it into the
      // smallest regular cluster and stop.
      Partition pooled(label);
      int64_t smallest = -1;
      int64_t undersized = -1;
      for (int64_t c = 0; c < pooled.num_clusters(); ++c) {
        if (pooled.ClusterSize(c) < min_size) {
          undersized = c;
        } else if (smallest == -1 ||
                   pooled.ClusterSize(c) < pooled.ClusterSize(smallest)) {
          smallest = c;
        }
      }
      if (undersized >= 0 && smallest >= 0) {
        std::vector<int64_t> relabeled = pooled.cluster_of();
        for (int64_t& l : relabeled) {
          if (l == undersized) l = smallest;
        }
        label = std::move(relabeled);
      }
      break;
    }
  }
  return Partition(label);
}

}  // namespace privrec::community
