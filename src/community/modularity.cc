#include "community/modularity.h"

namespace privrec::community {

double Modularity(const graph::SocialGraph& g, const Partition& partition) {
  return GeneralizedModularity(g, partition, 1.0);
}

double GeneralizedModularity(const graph::SocialGraph& g,
                             const Partition& partition, double resolution) {
  PRIVREC_CHECK(partition.num_nodes() == g.num_nodes());
  const double m = static_cast<double>(g.num_edges());
  if (m == 0.0) return 0.0;

  std::vector<double> intra(static_cast<size_t>(partition.num_clusters()),
                            0.0);
  std::vector<double> degree_sum(
      static_cast<size_t>(partition.num_clusters()), 0.0);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    int64_t cu = partition.ClusterOf(u);
    degree_sum[static_cast<size_t>(cu)] +=
        static_cast<double>(g.Degree(u));
    for (graph::NodeId v : g.Neighbors(u)) {
      if (u < v && partition.ClusterOf(v) == cu) {
        intra[static_cast<size_t>(cu)] += 1.0;
      }
    }
  }
  double q = 0.0;
  for (int64_t c = 0; c < partition.num_clusters(); ++c) {
    double frac_intra = intra[static_cast<size_t>(c)] / m;
    double frac_degree = degree_sum[static_cast<size_t>(c)] / (2.0 * m);
    q += frac_intra - resolution * frac_degree * frac_degree;
  }
  return q;
}

}  // namespace privrec::community
