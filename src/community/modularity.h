// Modularity (Equation 8): the quality function maximized by Louvain,
//   Q(Φ) = Σ_c [ e_c / m − (d_c / 2m)² ]
// where m = |E_s|, e_c = number of intra-cluster edges and d_c = total
// degree of cluster c. Q ∈ [-1/2, 1).

#ifndef PRIVREC_COMMUNITY_MODULARITY_H_
#define PRIVREC_COMMUNITY_MODULARITY_H_

#include "community/partition.h"
#include "graph/social_graph.h"

namespace privrec::community {

double Modularity(const graph::SocialGraph& g, const Partition& partition);

// Generalized modularity (Reichardt & Bornholdt) with resolution γ:
//   Q_γ(Φ) = Σ_c [ e_c / m − γ (d_c / 2m)² ].
// γ = 1 recovers the standard definition.
double GeneralizedModularity(const graph::SocialGraph& g,
                             const Partition& partition, double resolution);

}  // namespace privrec::community

#endif  // PRIVREC_COMMUNITY_MODULARITY_H_
