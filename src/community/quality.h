// Partition quality metrics beyond modularity: conductance and coverage.
// Used by the clustering benches to characterize why a clustering works
// for Algorithm 1 — low-conductance clusters keep similarity sets inside
// one cluster (small approximation error), and cluster sizes set the
// noise scale.

#ifndef PRIVREC_COMMUNITY_QUALITY_H_
#define PRIVREC_COMMUNITY_QUALITY_H_

#include <vector>

#include "community/partition.h"
#include "graph/social_graph.h"

namespace privrec::community {

// Conductance of one cluster: cut(c) / min(vol(c), vol(complement)),
// where vol is total degree and cut counts edges leaving the cluster.
// 0 = perfectly separated; clusters with zero volume return 0.
double ClusterConductance(const graph::SocialGraph& g,
                          const Partition& partition, int64_t cluster);

struct PartitionQuality {
  // Fraction of all edges that are intra-cluster.
  double coverage = 0.0;
  // Mean / max conductance over clusters with nonzero volume.
  double mean_conductance = 0.0;
  double max_conductance = 0.0;
  // Standard modularity, for convenience.
  double modularity = 0.0;
};

PartitionQuality EvaluatePartitionQuality(const graph::SocialGraph& g,
                                          const Partition& partition);

}  // namespace privrec::community

#endif  // PRIVREC_COMMUNITY_QUALITY_H_
