#include "community/quality.h"

#include <algorithm>

#include "community/modularity.h"

namespace privrec::community {

namespace {

// Per-cluster cut and volume in one pass.
struct CutVolume {
  std::vector<double> cut;
  std::vector<double> volume;
  double total_volume = 0.0;
  int64_t intra_edges = 0;
};

CutVolume ComputeCutVolume(const graph::SocialGraph& g,
                           const Partition& partition) {
  CutVolume cv;
  cv.cut.assign(static_cast<size_t>(partition.num_clusters()), 0.0);
  cv.volume.assign(static_cast<size_t>(partition.num_clusters()), 0.0);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    int64_t cu = partition.ClusterOf(u);
    cv.volume[static_cast<size_t>(cu)] += static_cast<double>(g.Degree(u));
    for (graph::NodeId v : g.Neighbors(u)) {
      if (partition.ClusterOf(v) != cu) {
        cv.cut[static_cast<size_t>(cu)] += 1.0;  // each direction once
      } else if (u < v) {
        ++cv.intra_edges;
      }
    }
  }
  cv.total_volume = 2.0 * static_cast<double>(g.num_edges());
  return cv;
}

}  // namespace

double ClusterConductance(const graph::SocialGraph& g,
                          const Partition& partition, int64_t cluster) {
  PRIVREC_CHECK(partition.num_nodes() == g.num_nodes());
  PRIVREC_CHECK(cluster >= 0 && cluster < partition.num_clusters());
  CutVolume cv = ComputeCutVolume(g, partition);
  double vol = cv.volume[static_cast<size_t>(cluster)];
  double other = cv.total_volume - vol;
  double denom = std::min(vol, other);
  if (denom <= 0.0) return 0.0;
  return cv.cut[static_cast<size_t>(cluster)] / denom;
}

PartitionQuality EvaluatePartitionQuality(const graph::SocialGraph& g,
                                          const Partition& partition) {
  PRIVREC_CHECK(partition.num_nodes() == g.num_nodes());
  PartitionQuality q;
  q.modularity = Modularity(g, partition);
  if (g.num_edges() == 0) return q;
  CutVolume cv = ComputeCutVolume(g, partition);
  q.coverage = static_cast<double>(cv.intra_edges) /
               static_cast<double>(g.num_edges());
  double acc = 0.0;
  int64_t counted = 0;
  for (int64_t c = 0; c < partition.num_clusters(); ++c) {
    double vol = cv.volume[static_cast<size_t>(c)];
    double denom = std::min(vol, cv.total_volume - vol);
    if (denom <= 0.0) continue;
    double conductance = cv.cut[static_cast<size_t>(c)] / denom;
    acc += conductance;
    q.max_conductance = std::max(q.max_conductance, conductance);
    ++counted;
  }
  q.mean_conductance = counted > 0 ? acc / static_cast<double>(counted)
                                   : 0.0;
  return q;
}

}  // namespace privrec::community
