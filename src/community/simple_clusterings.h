// Degenerate clustering strategies used as baselines and in ablations.
//
// All of these operate only on public information (node count / seed), so
// plugging any of them into Algorithm 1 preserves the privacy guarantee —
// they only change the approximation/perturbation trade-off:
//   - Singletons: clusters of size 1; Algorithm 1 degenerates to NOE.
//   - Whole: one giant cluster; maximal smoothing, minimal noise.
//   - RandomClusters: k random equal-size clusters, ignoring graph
//     structure (isolates the value of community detection).

#ifndef PRIVREC_COMMUNITY_SIMPLE_CLUSTERINGS_H_
#define PRIVREC_COMMUNITY_SIMPLE_CLUSTERINGS_H_

#include <cstdint>

#include "community/partition.h"

namespace privrec::community {

// k clusters of (near-)equal size with uniformly random membership.
// Requires 1 <= k <= n.
Partition RandomClusters(graph::NodeId num_nodes, int64_t k, uint64_t seed);

}  // namespace privrec::community

#endif  // PRIVREC_COMMUNITY_SIMPLE_CLUSTERINGS_H_
