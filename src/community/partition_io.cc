#include "community/partition_io.h"

#include <fstream>
#include <vector>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace privrec::community {

Status SavePartition(const Partition& partition, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# privrec partition: " << partition.num_nodes() << " nodes, "
      << partition.num_clusters() << " clusters\n";
  for (graph::NodeId u = 0; u < partition.num_nodes(); ++u) {
    out << u << '\t' << partition.ClusterOf(u) << '\n';
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Result<Partition> LoadPartition(const std::string& path) {
  if (fault::Hit("partition_io.open") == fault::FaultKind::kIoError) {
    return Status::IoError("cannot open " + path + " (injected fault)");
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<int64_t> labels;
  std::vector<bool> seen;
  std::string line;
  int64_t line_no = 0;
  int64_t expected_nodes = -1;  // from the "# privrec partition:" header
  bool short_read = false;
  while (std::getline(in, line)) {
    ++line_no;
    const fault::FaultKind k = fault::Hit("partition_io.read");
    if (k == fault::FaultKind::kIoError) {
      return Status::IoError("read failed for " + path + " (injected fault)");
    }
    if (k == fault::FaultKind::kShortRead) {
      short_read = true;
      break;
    }
    std::string_view sv = Trim(line);
    if (StartsWith(sv, "# privrec partition:")) {
      // "# privrec partition: <N> nodes, <K> clusters" — N guards against
      // files truncated at a line boundary, which lose trailing nodes
      // without tripping any per-line check.
      auto fields = SplitWhitespace(sv);
      if (fields.size() < 4 || !ParseInt64(fields[3], &expected_nodes) ||
          expected_nodes < 0) {
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": bad partition header");
      }
      continue;
    }
    if (sv.empty() || sv[0] == '#') continue;
    auto fields = SplitWhitespace(sv);
    if (fields.size() < 2) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": expected node and cluster");
    }
    int64_t node = 0;
    int64_t cluster = 0;
    if (!ParseInt64(fields[0], &node) || !ParseInt64(fields[1], &cluster)) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": non-integer field");
    }
    if (node < 0 || cluster < 0) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": negative id");
    }
    if (node >= static_cast<int64_t>(labels.size())) {
      labels.resize(static_cast<size_t>(node) + 1, -1);
      seen.resize(static_cast<size_t>(node) + 1, false);
    }
    if (seen[static_cast<size_t>(node)]) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": duplicate node " + std::to_string(node));
    }
    seen[static_cast<size_t>(node)] = true;
    labels[static_cast<size_t>(node)] = cluster;
  }
  if (short_read) {
    return Status::ParseError(path + ": truncated partition (short read)");
  }
  if (expected_nodes >= 0 &&
      expected_nodes != static_cast<int64_t>(labels.size())) {
    return Status::ParseError(
        path + ": truncated partition (header promises " +
        std::to_string(expected_nodes) + " nodes, got " +
        std::to_string(labels.size()) + ")");
  }
  for (size_t u = 0; u < labels.size(); ++u) {
    if (!seen[u]) {
      return Status::ParseError(path + ": missing assignment for node " +
                                std::to_string(u));
    }
  }
  return Partition(labels);
}

}  // namespace privrec::community
