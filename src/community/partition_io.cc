#include "community/partition_io.h"

#include <fstream>
#include <vector>

#include "common/string_util.h"

namespace privrec::community {

Status SavePartition(const Partition& partition, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# privrec partition: " << partition.num_nodes() << " nodes, "
      << partition.num_clusters() << " clusters\n";
  for (graph::NodeId u = 0; u < partition.num_nodes(); ++u) {
    out << u << '\t' << partition.ClusterOf(u) << '\n';
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Result<Partition> LoadPartition(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<int64_t> labels;
  std::vector<bool> seen;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == '#') continue;
    auto fields = SplitWhitespace(sv);
    if (fields.size() < 2) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": expected node and cluster");
    }
    int64_t node = 0;
    int64_t cluster = 0;
    if (!ParseInt64(fields[0], &node) || !ParseInt64(fields[1], &cluster)) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": non-integer field");
    }
    if (node < 0 || cluster < 0) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": negative id");
    }
    if (node >= static_cast<int64_t>(labels.size())) {
      labels.resize(static_cast<size_t>(node) + 1, -1);
      seen.resize(static_cast<size_t>(node) + 1, false);
    }
    if (seen[static_cast<size_t>(node)]) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": duplicate node " + std::to_string(node));
    }
    seen[static_cast<size_t>(node)] = true;
    labels[static_cast<size_t>(node)] = cluster;
  }
  for (size_t u = 0; u < labels.size(); ++u) {
    if (!seen[u]) {
      return Status::ParseError(path + ": missing assignment for node " +
                                std::to_string(u));
    }
  }
  return Partition(labels);
}

}  // namespace privrec::community
