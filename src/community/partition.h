// Partition: a disjoint clustering of user nodes — the Φ of Algorithm 1.
// Cluster ids are dense in [0, num_clusters) and every node belongs to
// exactly one cluster, which is exactly the property the privacy proof
// (Theorem 4) relies on for parallel composition across clusters.

#ifndef PRIVREC_COMMUNITY_PARTITION_H_
#define PRIVREC_COMMUNITY_PARTITION_H_

#include <cstdint>
#include <vector>

#include "graph/social_graph.h"

namespace privrec::community {

class Partition {
 public:
  Partition() = default;

  // Builds from per-node labels (any non-negative values); labels are
  // compacted to dense ids in first-appearance order.
  explicit Partition(const std::vector<int64_t>& cluster_of_node);

  // The all-singletons partition of n nodes.
  static Partition Singletons(graph::NodeId n);
  // The single-cluster partition of n nodes.
  static Partition Whole(graph::NodeId n);

  graph::NodeId num_nodes() const {
    return static_cast<graph::NodeId>(cluster_of_.size());
  }
  int64_t num_clusters() const { return num_clusters_; }

  int64_t ClusterOf(graph::NodeId u) const {
    PRIVREC_DCHECK(u >= 0 && u < num_nodes());
    return cluster_of_[static_cast<size_t>(u)];
  }

  int64_t ClusterSize(int64_t c) const {
    PRIVREC_DCHECK(c >= 0 && c < num_clusters_);
    return sizes_[static_cast<size_t>(c)];
  }

  const std::vector<int64_t>& cluster_of() const { return cluster_of_; }
  const std::vector<int64_t>& sizes() const { return sizes_; }

  // Members of each cluster (computed on demand, cached nowhere).
  std::vector<std::vector<graph::NodeId>> Members() const;

  double AverageClusterSize() const;
  double ClusterSizeStddev() const;
  int64_t LargestClusterSize() const;

  // True if `other` assigns two nodes together exactly when this one does
  // (i.e. equal up to cluster relabeling).
  bool SamePartitionAs(const Partition& other) const;

 private:
  std::vector<int64_t> cluster_of_;
  std::vector<int64_t> sizes_;
  int64_t num_clusters_ = 0;
};

}  // namespace privrec::community

#endif  // PRIVREC_COMMUNITY_PARTITION_H_
