#include "community/simple_clusterings.h"

#include <numeric>
#include <vector>

#include "common/random.h"

namespace privrec::community {

Partition RandomClusters(graph::NodeId num_nodes, int64_t k, uint64_t seed) {
  PRIVREC_CHECK(k >= 1 && k <= num_nodes);
  Rng rng(seed);
  std::vector<int64_t> slots(static_cast<size_t>(num_nodes));
  // Round-robin labels, then shuffle for random membership of equal sizes.
  for (graph::NodeId u = 0; u < num_nodes; ++u) {
    slots[static_cast<size_t>(u)] = u % k;
  }
  rng.Shuffle(slots);
  return Partition(slots);
}

}  // namespace privrec::community
