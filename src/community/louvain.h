// Louvain community detection (Blondel et al. 2008) with multi-level
// refinement (Rotta & Noack 2011) and best-of-R restarts — the
// createClusters(G_s) of Algorithm 1, configured exactly as Section 6.2
// describes (10 restarts with different random node orders, keep the
// clustering with the highest modularity).
//
// The algorithm alternates two steps until modularity stops improving:
//   1. Local moving: scan nodes in random order, moving each into the
//      neighboring community with the largest modularity gain.
//   2. Contraction: collapse each community into a super-node (intra-
//      community weight becomes a self loop) and recurse.
// Refinement then walks the hierarchy back down, re-running local moving
// at every level seeded with the projected partition, which both improves
// Q and stabilizes the output across node orderings.

#ifndef PRIVREC_COMMUNITY_LOUVAIN_H_
#define PRIVREC_COMMUNITY_LOUVAIN_H_

#include <cstdint>

#include "community/partition.h"
#include "graph/social_graph.h"

namespace privrec::community {

struct LouvainOptions {
  // Independent runs with different random node orders; the run with the
  // highest modularity wins (Section 6.2 uses 10).
  int restarts = 10;
  // Enables the multi-level refinement pass.
  bool refine = true;
  // Resolution parameter gamma of generalized modularity (Reichardt &
  // Bornholdt): > 1 favors more, smaller communities (useful against the
  // resolution limit); < 1 favors fewer, larger ones. 1 is the paper's
  // standard modularity.
  double resolution = 1.0;
  // Local-moving terminates a pass sweep when no move improves Q by more
  // than this.
  double min_gain = 1e-9;
  // Safety cap on local-moving sweeps per level.
  int max_sweeps = 64;
  uint64_t seed = 17;
};

struct LouvainResult {
  Partition partition;
  // Standard modularity (resolution 1) of the winning partition; restart
  // selection uses the configured resolution's generalized modularity.
  double modularity = 0.0;
  // Hierarchy depth of the winning run.
  int levels = 0;
};

LouvainResult RunLouvain(const graph::SocialGraph& g,
                         const LouvainOptions& options = {});

}  // namespace privrec::community

#endif  // PRIVREC_COMMUNITY_LOUVAIN_H_
