// Label propagation (Raghavan et al. 2007): a fast clustering baseline for
// the A1 ablation. Each node repeatedly adopts the most frequent label
// among its neighbors (ties broken uniformly at random) until stable.

#ifndef PRIVREC_COMMUNITY_LABEL_PROPAGATION_H_
#define PRIVREC_COMMUNITY_LABEL_PROPAGATION_H_

#include <cstdint>

#include "community/partition.h"
#include "graph/social_graph.h"

namespace privrec::community {

struct LabelPropagationOptions {
  int max_iterations = 100;
  uint64_t seed = 23;
};

Partition RunLabelPropagation(const graph::SocialGraph& g,
                              const LabelPropagationOptions& options = {});

}  // namespace privrec::community

#endif  // PRIVREC_COMMUNITY_LABEL_PROPAGATION_H_
