#include "community/label_propagation.h"

#include <numeric>
#include <vector>

#include "common/random.h"

namespace privrec::community {

Partition RunLabelPropagation(const graph::SocialGraph& g,
                              const LabelPropagationOptions& options) {
  const graph::NodeId n = g.num_nodes();
  Rng rng(options.seed);
  std::vector<int64_t> label(static_cast<size_t>(n));
  std::iota(label.begin(), label.end(), 0);

  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  // Dense scratch for label frequencies.
  std::vector<int64_t> freq(static_cast<size_t>(n), 0);
  std::vector<int64_t> touched;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    rng.Shuffle(order);
    bool changed = false;
    for (graph::NodeId u : order) {
      auto nbrs = g.Neighbors(u);
      if (nbrs.empty()) continue;
      touched.clear();
      for (graph::NodeId v : nbrs) {
        int64_t lv = label[static_cast<size_t>(v)];
        if (freq[static_cast<size_t>(lv)] == 0) touched.push_back(lv);
        ++freq[static_cast<size_t>(lv)];
      }
      // Argmax with uniform tie breaking (reservoir over ties).
      int64_t best = -1;
      int64_t best_count = 0;
      int64_t num_ties = 0;
      for (int64_t l : touched) {
        int64_t c = freq[static_cast<size_t>(l)];
        if (c > best_count) {
          best_count = c;
          best = l;
          num_ties = 1;
        } else if (c == best_count) {
          ++num_ties;
          if (rng.UniformInt(static_cast<uint64_t>(num_ties)) == 0) best = l;
        }
      }
      for (int64_t l : touched) freq[static_cast<size_t>(l)] = 0;
      if (best != label[static_cast<size_t>(u)]) {
        label[static_cast<size_t>(u)] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return Partition(label);
}

}  // namespace privrec::community
