#include "community/louvain.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "community/modularity.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace privrec::community {

namespace {

// Weighted multigraph used for the contracted levels. Self loops are kept
// separately; a self loop of weight w contributes 2w to the node's degree.
struct WeightedGraph {
  int64_t n = 0;
  std::vector<std::vector<std::pair<int64_t, double>>> adj;
  std::vector<double> self_loop;
  double two_m = 0.0;  // Σ_u k_u

  double NodeDegree(int64_t u) const {
    double k = 2.0 * self_loop[static_cast<size_t>(u)];
    for (auto [v, w] : adj[static_cast<size_t>(u)]) k += w;
    return k;
  }
};

WeightedGraph FromSocialGraph(const graph::SocialGraph& g) {
  WeightedGraph wg;
  wg.n = g.num_nodes();
  wg.adj.resize(static_cast<size_t>(wg.n));
  wg.self_loop.assign(static_cast<size_t>(wg.n), 0.0);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nbrs = g.Neighbors(u);
    wg.adj[static_cast<size_t>(u)].reserve(nbrs.size());
    for (graph::NodeId v : nbrs) {
      wg.adj[static_cast<size_t>(u)].emplace_back(v, 1.0);
    }
  }
  wg.two_m = 2.0 * static_cast<double>(g.num_edges());
  return wg;
}

// One round of local moving. `comm` is the in/out community assignment
// (labels in [0, n)); returns the total modularity gain achieved.
double LocalMove(const WeightedGraph& g, std::vector<int64_t>* comm,
                 Rng* rng, double resolution, double min_gain,
                 int max_sweeps) {
  const int64_t n = g.n;
  if (n == 0 || g.two_m == 0.0) return 0.0;
  const double two_m = g.two_m;

  std::vector<double> degree(static_cast<size_t>(n));
  std::vector<double> sigma_tot(static_cast<size_t>(n), 0.0);
  for (int64_t u = 0; u < n; ++u) {
    degree[static_cast<size_t>(u)] = g.NodeDegree(u);
    sigma_tot[static_cast<size_t>((*comm)[static_cast<size_t>(u)])] +=
        degree[static_cast<size_t>(u)];
  }

  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(order);

  // Dense scratch for neighbor-community weights.
  std::vector<double> weight_to(static_cast<size_t>(n), 0.0);
  std::vector<int64_t> touched;

  double total_gain = 0.0;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool moved = false;
    for (int64_t idx = 0; idx < n; ++idx) {
      int64_t u = order[static_cast<size_t>(idx)];
      int64_t cu = (*comm)[static_cast<size_t>(u)];
      double ku = degree[static_cast<size_t>(u)];

      // Accumulate edge weight from u to each adjacent community.
      touched.clear();
      for (auto [v, w] : g.adj[static_cast<size_t>(u)]) {
        if (v == u) continue;
        int64_t cv = (*comm)[static_cast<size_t>(v)];
        if (weight_to[static_cast<size_t>(cv)] == 0.0) touched.push_back(cv);
        weight_to[static_cast<size_t>(cv)] += w;
      }

      // Detach u from its community for the gain comparison.
      sigma_tot[static_cast<size_t>(cu)] -= ku;
      double best_gain =
          weight_to[static_cast<size_t>(cu)] -
          resolution * sigma_tot[static_cast<size_t>(cu)] * ku / two_m;
      int64_t best_comm = cu;
      for (int64_t c : touched) {
        if (c == cu) continue;
        double gain =
            weight_to[static_cast<size_t>(c)] -
            resolution * sigma_tot[static_cast<size_t>(c)] * ku / two_m;
        if (gain > best_gain + min_gain) {
          best_gain = gain;
          best_comm = c;
        }
      }
      sigma_tot[static_cast<size_t>(best_comm)] += ku;
      if (best_comm != cu) {
        double old_gain =
            weight_to[static_cast<size_t>(cu)] -
            resolution * sigma_tot[static_cast<size_t>(cu)] * ku / two_m;
        (*comm)[static_cast<size_t>(u)] = best_comm;
        moved = true;
        total_gain += 2.0 * (best_gain - old_gain) / two_m;
      }
      for (int64_t c : touched) weight_to[static_cast<size_t>(c)] = 0.0;
    }
    if (!moved) break;
  }
  return total_gain;
}

// Compacts community labels to [0, k) and returns k.
int64_t CompactLabels(std::vector<int64_t>* comm) {
  std::unordered_map<int64_t, int64_t> dense;
  for (int64_t& c : *comm) {
    auto [it, inserted] =
        dense.try_emplace(c, static_cast<int64_t>(dense.size()));
    c = it->second;
  }
  return static_cast<int64_t>(dense.size());
}

// Contracts communities into super-nodes.
WeightedGraph Contract(const WeightedGraph& g,
                       const std::vector<int64_t>& comm,
                       int64_t num_comms) {
  WeightedGraph out;
  out.n = num_comms;
  out.adj.resize(static_cast<size_t>(num_comms));
  out.self_loop.assign(static_cast<size_t>(num_comms), 0.0);
  out.two_m = g.two_m;

  // Aggregate with per-row dense scratch.
  std::vector<double> weight_to(static_cast<size_t>(num_comms), 0.0);
  std::vector<int64_t> touched;
  std::vector<std::vector<int64_t>> members(static_cast<size_t>(num_comms));
  for (int64_t u = 0; u < g.n; ++u) {
    members[static_cast<size_t>(comm[static_cast<size_t>(u)])].push_back(u);
  }
  for (int64_t c = 0; c < num_comms; ++c) {
    double self = 0.0;
    touched.clear();
    for (int64_t u : members[static_cast<size_t>(c)]) {
      self += g.self_loop[static_cast<size_t>(u)];
      for (auto [v, w] : g.adj[static_cast<size_t>(u)]) {
        int64_t cv = comm[static_cast<size_t>(v)];
        if (cv == c) {
          self += w * 0.5;  // each intra edge visited from both endpoints
        } else {
          if (weight_to[static_cast<size_t>(cv)] == 0.0) {
            touched.push_back(cv);
          }
          weight_to[static_cast<size_t>(cv)] += w;
        }
      }
    }
    out.self_loop[static_cast<size_t>(c)] = self;
    for (int64_t cv : touched) {
      out.adj[static_cast<size_t>(c)].emplace_back(
          cv, weight_to[static_cast<size_t>(cv)]);
      weight_to[static_cast<size_t>(cv)] = 0.0;
    }
  }
  return out;
}

struct SingleRunResult {
  std::vector<int64_t> assignment;  // per original node
  int levels = 0;
};

SingleRunResult RunOnce(const graph::SocialGraph& g,
                        const LouvainOptions& options, Rng rng) {
  WeightedGraph level_graph = FromSocialGraph(g);
  // Level graphs and the node->community maps between consecutive levels,
  // kept for the refinement walk back down.
  std::vector<WeightedGraph> graphs;
  std::vector<std::vector<int64_t>> level_comms;

  // Per-level gain of the local-moving pass: the modularity improvement
  // each contraction level contributed (observation only — never feeds
  // back into the optimization).
  static obs::Histogram& level_gain_hist = obs::GetHistogram(
      "privrec.community.level_gain",
      std::vector<double>{0.0, 0.001, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0});
  static obs::Counter& passes =
      obs::GetCounter("privrec.community.local_move_passes");

  SingleRunResult result;
  while (true) {
    PRIVREC_SPAN_CHUNK("community.louvain.level", result.levels);
    std::vector<int64_t> comm(static_cast<size_t>(level_graph.n));
    std::iota(comm.begin(), comm.end(), 0);
    double gain =
        LocalMove(level_graph, &comm, &rng, options.resolution,
                  options.min_gain, options.max_sweeps);
    level_gain_hist.Observe(gain);
    passes.Increment();
    int64_t k = CompactLabels(&comm);
    graphs.push_back(level_graph);
    level_comms.push_back(comm);
    ++result.levels;
    if (k == level_graph.n || gain <= options.min_gain) break;
    level_graph = Contract(level_graph, comm, k);
  }

  if (options.refine) {
    // Walk the hierarchy top-down: project the partition of level l+1 onto
    // level l's graph and re-run local moving there.
    for (int64_t l = static_cast<int64_t>(level_comms.size()) - 2; l >= 0;
         --l) {
      std::vector<int64_t>& lower = level_comms[static_cast<size_t>(l)];
      const std::vector<int64_t>& upper =
          level_comms[static_cast<size_t>(l) + 1];
      for (int64_t& c : lower) {
        c = upper[static_cast<size_t>(c)];
      }
      CompactLabels(&lower);
      LocalMove(graphs[static_cast<size_t>(l)], &lower, &rng,
                options.resolution, options.min_gain, options.max_sweeps);
      CompactLabels(&lower);
      // The refined labels at this level already incorporate every level
      // above; truncate so the composition below does not re-apply them.
      level_comms.resize(static_cast<size_t>(l) + 1);
    }
  }

  // Compose assignments down to the original nodes.
  std::vector<int64_t> assignment = level_comms[0];
  for (size_t l = 1; l < level_comms.size(); ++l) {
    for (int64_t& c : assignment) {
      c = level_comms[l][static_cast<size_t>(c)];
    }
  }
  CompactLabels(&assignment);
  result.assignment = std::move(assignment);
  return result;
}

}  // namespace

LouvainResult RunLouvain(const graph::SocialGraph& g,
                         const LouvainOptions& options) {
  PRIVREC_SPAN("community.louvain");
  PRIVREC_CHECK(options.restarts >= 1);
  Rng master(options.seed);

  LouvainResult best;
  best.modularity = -2.0;  // below the Q >= -1/2 lower bound
  for (int r = 0; r < options.restarts; ++r) {
    PRIVREC_SPAN_CHUNK("community.louvain.restart", r);
    SingleRunResult run =
        RunOnce(g, options, master.Fork(static_cast<uint64_t>(r)));
    Partition partition(run.assignment);
    // Restarts compete on the configured objective; the reported
    // `modularity` is always the standard (resolution 1) value.
    double q = GeneralizedModularity(g, partition, options.resolution);
    if (q > best.modularity) {
      best.modularity = q;
      best.partition = std::move(partition);
      best.levels = run.levels;
    }
  }
  best.modularity = Modularity(g, best.partition);

  static obs::Counter& runs =
      obs::GetCounter("privrec.community.louvain_runs");
  static obs::Counter& levels =
      obs::GetCounter("privrec.community.levels");
  static obs::Gauge& modularity =
      obs::GetGauge("privrec.community.modularity");
  static obs::Gauge& clusters =
      obs::GetGauge("privrec.community.clusters");
  runs.Increment();
  levels.Add(best.levels);
  modularity.Set(best.modularity);
  clusters.Set(static_cast<double>(best.partition.num_clusters()));
  return best;
}

}  // namespace privrec::community
