#include "la/dense_matrix.h"

#include <cmath>

namespace privrec::la {

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& other) const {
  PRIVREC_CHECK(cols_ == other.rows());
  DenseMatrix out(rows_, other.cols());
  // i-k-j loop order keeps the inner loop contiguous in both inputs.
  for (int64_t i = 0; i < rows_; ++i) {
    const double* a_row = RowPtr(i);
    double* o_row = out.RowPtr(i);
    for (int64_t k = 0; k < cols_; ++k) {
      double a = a_row[k];
      if (a == 0.0) continue;
      const double* b_row = other.RowPtr(k);
      for (int64_t j = 0; j < other.cols(); ++j) {
        o_row[j] += a * b_row[j];
      }
    }
  }
  return out;
}

DenseMatrix DenseMatrix::TransposeMultiply(const DenseMatrix& other) const {
  PRIVREC_CHECK(rows_ == other.rows());
  DenseMatrix out(cols_, other.cols());
  for (int64_t k = 0; k < rows_; ++k) {
    const double* a_row = RowPtr(k);
    const double* b_row = other.RowPtr(k);
    for (int64_t i = 0; i < cols_; ++i) {
      double a = a_row[i];
      if (a == 0.0) continue;
      double* o_row = out.RowPtr(i);
      for (int64_t j = 0; j < other.cols(); ++j) {
        o_row[j] += a * b_row[j];
      }
    }
  }
  return out;
}

std::vector<double> DenseMatrix::MultiplyVector(
    const std::vector<double>& v) const {
  PRIVREC_CHECK(static_cast<int64_t>(v.size()) == cols_);
  std::vector<double> out(static_cast<size_t>(rows_), 0.0);
  for (int64_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    double acc = 0.0;
    for (int64_t j = 0; j < cols_; ++j) acc += row[j] * v[j];
    out[static_cast<size_t>(i)] = acc;
  }
  return out;
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix out(cols_, rows_);
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

double DenseMatrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

double DenseMatrix::MaxColumnL1Norm() const {
  std::vector<double> col_sums(static_cast<size_t>(cols_), 0.0);
  for (int64_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    for (int64_t j = 0; j < cols_; ++j) {
      col_sums[static_cast<size_t>(j)] += std::fabs(row[j]);
    }
  }
  double best = 0.0;
  for (double s : col_sums) best = std::max(best, s);
  return best;
}

DenseMatrix HouseholderQ(const DenseMatrix& a) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  PRIVREC_CHECK(m >= n);
  // Work on a copy; accumulate the reflectors, then form Q by applying them
  // to the first n columns of the identity.
  DenseMatrix r = a;
  std::vector<std::vector<double>> reflectors;
  reflectors.reserve(static_cast<size_t>(n));

  for (int64_t k = 0; k < n; ++k) {
    // Build the Householder vector for column k below the diagonal.
    double norm = 0.0;
    for (int64_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    std::vector<double> v(static_cast<size_t>(m - k), 0.0);
    if (norm > 0.0) {
      double alpha = (r(k, k) >= 0.0) ? -norm : norm;
      for (int64_t i = k; i < m; ++i) v[static_cast<size_t>(i - k)] = r(i, k);
      v[0] -= alpha;
      double vnorm = 0.0;
      for (double x : v) vnorm += x * x;
      vnorm = std::sqrt(vnorm);
      if (vnorm > 1e-300) {
        for (double& x : v) x /= vnorm;
        // Apply I - 2vv^T to the trailing submatrix of r.
        for (int64_t j = k; j < n; ++j) {
          double dot = 0.0;
          for (int64_t i = k; i < m; ++i) {
            dot += v[static_cast<size_t>(i - k)] * r(i, j);
          }
          for (int64_t i = k; i < m; ++i) {
            r(i, j) -= 2.0 * v[static_cast<size_t>(i - k)] * dot;
          }
        }
      } else {
        v.assign(v.size(), 0.0);
      }
    }
    reflectors.push_back(std::move(v));
  }

  // Q = H_0 H_1 ... H_{n-1} * I_{m x n}; apply reflectors in reverse.
  DenseMatrix q(m, n);
  for (int64_t j = 0; j < n; ++j) q(j, j) = 1.0;
  for (int64_t k = n - 1; k >= 0; --k) {
    const std::vector<double>& v = reflectors[static_cast<size_t>(k)];
    for (int64_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (int64_t i = k; i < m; ++i) {
        dot += v[static_cast<size_t>(i - k)] * q(i, j);
      }
      if (dot == 0.0) continue;
      for (int64_t i = k; i < m; ++i) {
        q(i, j) -= 2.0 * v[static_cast<size_t>(i - k)] * dot;
      }
    }
  }
  return q;
}

}  // namespace privrec::la
