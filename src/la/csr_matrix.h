// Compressed sparse row matrix used for similarity workloads and
// preference matrices. Immutable after construction; built from triplets.

#ifndef PRIVREC_LA_CSR_MATRIX_H_
#define PRIVREC_LA_CSR_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"

namespace privrec::la {

// One (row, col, value) entry used during construction.
struct Triplet {
  int64_t row;
  int64_t col;
  double value;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  // Builds from triplets; duplicates (same row/col) are summed. Triplets
  // may be in any order.
  static CsrMatrix FromTriplets(int64_t rows, int64_t cols,
                                std::vector<Triplet> triplets);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  // Column indices of nonzeros in row r (sorted ascending).
  std::span<const int64_t> RowIndices(int64_t r) const {
    PRIVREC_DCHECK(r >= 0 && r < rows_);
    return {cols_idx_.data() + offsets_[static_cast<size_t>(r)],
            cols_idx_.data() + offsets_[static_cast<size_t>(r) + 1]};
  }
  std::span<const double> RowValues(int64_t r) const {
    PRIVREC_DCHECK(r >= 0 && r < rows_);
    return {values_.data() + offsets_[static_cast<size_t>(r)],
            values_.data() + offsets_[static_cast<size_t>(r) + 1]};
  }
  int64_t RowNnz(int64_t r) const {
    return static_cast<int64_t>(offsets_[static_cast<size_t>(r) + 1] -
                                offsets_[static_cast<size_t>(r)]);
  }

  // y = A x. Requires x.size() == cols().
  std::vector<double> MultiplyVector(const std::vector<double>& x) const;

  // y = A^T x. Requires x.size() == rows().
  std::vector<double> TransposeMultiplyVector(
      const std::vector<double>& x) const;

  // Value at (r, c); 0 if absent. Binary search within the row.
  double At(int64_t r, int64_t c) const;

  CsrMatrix Transpose() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<size_t> offsets_ = {0};  // rows_ + 1 entries
  std::vector<int64_t> cols_idx_;
  std::vector<double> values_;
};

}  // namespace privrec::la

#endif  // PRIVREC_LA_CSR_MATRIX_H_
