// Truncated singular value decomposition via randomized range finding
// (Halko, Martinsson & Tropp 2011) with subspace power iterations, followed
// by a one-sided Jacobi SVD of the small projected matrix.
//
// Used by the Low-Rank Mechanism adaptation (Section 6.4 of the paper) to
// factor the similarity workload W ~= B * L.

#ifndef PRIVREC_LA_SVD_H_
#define PRIVREC_LA_SVD_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "la/dense_matrix.h"

namespace privrec::la {

struct SvdResult {
  DenseMatrix u;                        // m x r, orthonormal columns
  std::vector<double> singular_values;  // r, descending
  DenseMatrix vt;                       // r x n, orthonormal rows
};

struct SvdOptions {
  int64_t rank = 0;          // target rank r (required, > 0)
  int64_t oversampling = 8;  // extra random probes for range accuracy
  int power_iterations = 2;  // subspace iterations (improves spectra decay)
  uint64_t seed = 1;
};

// Computes a rank-`options.rank` approximation of `a`. The effective rank
// is min(rank, rows, cols). Deterministic given the seed.
SvdResult RandomizedSvd(const DenseMatrix& a, const SvdOptions& options);

// Exact one-sided Jacobi SVD for small dense matrices (used internally and
// directly by tests). O(m n^2) per sweep.
SvdResult JacobiSvd(const DenseMatrix& a);

// Numerical rank: number of singular values > tol * max singular value.
int64_t NumericalRank(const std::vector<double>& singular_values, double tol);

}  // namespace privrec::la

#endif  // PRIVREC_LA_SVD_H_
