#include "la/csr_matrix.h"

#include <algorithm>

namespace privrec::la {

CsrMatrix CsrMatrix::FromTriplets(int64_t rows, int64_t cols,
                                  std::vector<Triplet> triplets) {
  PRIVREC_CHECK(rows >= 0 && cols >= 0);
  for (const Triplet& t : triplets) {
    PRIVREC_CHECK(t.row >= 0 && t.row < rows);
    PRIVREC_CHECK(t.col >= 0 && t.col < cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.offsets_.assign(static_cast<size_t>(rows) + 1, 0);
  m.cols_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  size_t i = 0;
  while (i < triplets.size()) {
    // Sum duplicates.
    int64_t r = triplets[i].row;
    int64_t c = triplets[i].col;
    double v = triplets[i].value;
    size_t j = i + 1;
    while (j < triplets.size() && triplets[j].row == r &&
           triplets[j].col == c) {
      v += triplets[j].value;
      ++j;
    }
    m.cols_idx_.push_back(c);
    m.values_.push_back(v);
    m.offsets_[static_cast<size_t>(r) + 1] = m.values_.size();
    i = j;
  }
  // Fill gaps for empty rows: prefix maximum.
  for (size_t r = 1; r < m.offsets_.size(); ++r) {
    m.offsets_[r] = std::max(m.offsets_[r], m.offsets_[r - 1]);
  }
  return m;
}

std::vector<double> CsrMatrix::MultiplyVector(
    const std::vector<double>& x) const {
  PRIVREC_CHECK(static_cast<int64_t>(x.size()) == cols_);
  std::vector<double> y(static_cast<size_t>(rows_), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    auto idx = RowIndices(r);
    auto val = RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      acc += val[k] * x[static_cast<size_t>(idx[k])];
    }
    y[static_cast<size_t>(r)] = acc;
  }
  return y;
}

std::vector<double> CsrMatrix::TransposeMultiplyVector(
    const std::vector<double>& x) const {
  PRIVREC_CHECK(static_cast<int64_t>(x.size()) == rows_);
  std::vector<double> y(static_cast<size_t>(cols_), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    double xr = x[static_cast<size_t>(r)];
    if (xr == 0.0) continue;
    auto idx = RowIndices(r);
    auto val = RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      y[static_cast<size_t>(idx[k])] += val[k] * xr;
    }
  }
  return y;
}

double CsrMatrix::At(int64_t r, int64_t c) const {
  auto idx = RowIndices(r);
  auto it = std::lower_bound(idx.begin(), idx.end(), c);
  if (it == idx.end() || *it != c) return 0.0;
  return RowValues(r)[static_cast<size_t>(it - idx.begin())];
}

CsrMatrix CsrMatrix::Transpose() const {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(nnz()));
  for (int64_t r = 0; r < rows_; ++r) {
    auto idx = RowIndices(r);
    auto val = RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      triplets.push_back({idx[k], r, val[k]});
    }
  }
  return FromTriplets(cols_, rows_, std::move(triplets));
}

}  // namespace privrec::la
