#include "la/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace privrec::la {

namespace {

// Sorts the SVD factors by descending singular value.
void SortByDescendingSigma(SvdResult* svd) {
  int64_t r = static_cast<int64_t>(svd->singular_values.size());
  std::vector<int64_t> order(static_cast<size_t>(r));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return svd->singular_values[static_cast<size_t>(a)] >
           svd->singular_values[static_cast<size_t>(b)];
  });
  DenseMatrix u(svd->u.rows(), r);
  DenseMatrix vt(r, svd->vt.cols());
  std::vector<double> sigma(static_cast<size_t>(r));
  for (int64_t k = 0; k < r; ++k) {
    int64_t src = order[static_cast<size_t>(k)];
    sigma[static_cast<size_t>(k)] =
        svd->singular_values[static_cast<size_t>(src)];
    for (int64_t i = 0; i < u.rows(); ++i) u(i, k) = svd->u(i, src);
    for (int64_t j = 0; j < vt.cols(); ++j) vt(k, j) = svd->vt(src, j);
  }
  svd->u = std::move(u);
  svd->vt = std::move(vt);
  svd->singular_values = std::move(sigma);
}

}  // namespace

SvdResult JacobiSvd(const DenseMatrix& a) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  PRIVREC_CHECK(m >= n);
  // One-sided Jacobi: orthogonalize the columns of G = A * V by plane
  // rotations; at convergence G's columns are sigma_i * u_i.
  DenseMatrix g = a;
  DenseMatrix v(n, n);
  for (int64_t i = 0; i < n; ++i) v(i, i) = 1.0;

  const double kTol = 1e-13;
  const int kMaxSweeps = 60;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (int64_t i = 0; i < m; ++i) {
          app += g(i, p) * g(i, p);
          aqq += g(i, q) * g(i, q);
          apq += g(i, p) * g(i, q);
        }
        if (std::fabs(apq) <= kTol * std::sqrt(app * aqq) || apq == 0.0) {
          continue;
        }
        off = std::max(off, std::fabs(apq) / std::sqrt(app * aqq + 1e-300));
        double tau = (aqq - app) / (2.0 * apq);
        double t = (tau >= 0 ? 1.0 : -1.0) /
                   (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        double c = 1.0 / std::sqrt(1.0 + t * t);
        double s = c * t;
        for (int64_t i = 0; i < m; ++i) {
          double gp = g(i, p);
          double gq = g(i, q);
          g(i, p) = c * gp - s * gq;
          g(i, q) = s * gp + c * gq;
        }
        for (int64_t i = 0; i < n; ++i) {
          double vp = v(i, p);
          double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (off < kTol) break;
  }

  SvdResult out;
  out.u = DenseMatrix(m, n);
  out.vt = v.Transpose();
  out.singular_values.resize(static_cast<size_t>(n));
  for (int64_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (int64_t i = 0; i < m; ++i) norm += g(i, j) * g(i, j);
    norm = std::sqrt(norm);
    out.singular_values[static_cast<size_t>(j)] = norm;
    if (norm > 1e-300) {
      for (int64_t i = 0; i < m; ++i) out.u(i, j) = g(i, j) / norm;
    }
  }
  SortByDescendingSigma(&out);
  return out;
}

SvdResult RandomizedSvd(const DenseMatrix& a, const SvdOptions& options) {
  PRIVREC_CHECK(options.rank > 0);
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  const int64_t r = std::min({options.rank, m, n});
  const int64_t p = std::min(r + options.oversampling, std::min(m, n));

  // Stage A: find an orthonormal basis Q for the range of A using random
  // Gaussian probes, with power iterations to sharpen the spectrum.
  Rng rng(options.seed);
  DenseMatrix omega(n, p);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < p; ++j) omega(i, j) = rng.Normal();
  }
  DenseMatrix y = a.Multiply(omega);  // m x p
  DenseMatrix q = HouseholderQ(y);
  for (int it = 0; it < options.power_iterations; ++it) {
    DenseMatrix z = a.TransposeMultiply(q);  // n x p
    DenseMatrix qz = HouseholderQ(z);
    y = a.Multiply(qz);  // m x p
    q = HouseholderQ(y);
  }

  // Stage B: project, SVD the small matrix, lift back.
  DenseMatrix b = q.TransposeMultiply(a).Transpose();  // n x p; b^T = Q^T A
  SvdResult small = JacobiSvd(b);  // b = Us S Vs^T, so Q^T A = Vs S Us^T
  // A ~= (Q Vs) S Us^T  => u = Q * Vs, vt = Us^T.
  DenseMatrix vs(small.vt.cols(), small.vt.rows());
  vs = small.vt.Transpose();

  SvdResult out;
  out.u = q.Multiply(vs);           // m x p
  out.vt = small.u.Transpose();     // p x n
  out.singular_values = small.singular_values;

  // Truncate to rank r.
  if (p > r) {
    DenseMatrix u(m, r);
    DenseMatrix vt(r, n);
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t k = 0; k < r; ++k) u(i, k) = out.u(i, k);
    }
    for (int64_t k = 0; k < r; ++k) {
      for (int64_t j = 0; j < n; ++j) vt(k, j) = out.vt(k, j);
    }
    out.u = std::move(u);
    out.vt = std::move(vt);
    out.singular_values.resize(static_cast<size_t>(r));
  }
  return out;
}

int64_t NumericalRank(const std::vector<double>& singular_values,
                      double tol) {
  if (singular_values.empty()) return 0;
  double max_sv = *std::max_element(singular_values.begin(),
                                    singular_values.end());
  int64_t rank = 0;
  for (double sv : singular_values) {
    if (sv > tol * max_sv) ++rank;
  }
  return rank;
}

}  // namespace privrec::la
