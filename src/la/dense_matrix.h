// Dense row-major matrix with the operations needed by the low-rank
// mechanism: mat-mat / mat-vec products, transpose, Householder QR, and
// Frobenius norms. Not a general BLAS; sized for workloads of a few
// thousand rows.

#ifndef PRIVREC_LA_DENSE_MATRIX_H_
#define PRIVREC_LA_DENSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace privrec::la {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0) {
    PRIVREC_CHECK(rows >= 0 && cols >= 0);
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  double& operator()(int64_t r, int64_t c) {
    PRIVREC_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  double operator()(int64_t r, int64_t c) const {
    PRIVREC_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  double* RowPtr(int64_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(int64_t r) const { return data_.data() + r * cols_; }

  // this * other. Requires cols() == other.rows().
  DenseMatrix Multiply(const DenseMatrix& other) const;

  // this^T * other. Requires rows() == other.rows().
  DenseMatrix TransposeMultiply(const DenseMatrix& other) const;

  // this * v. Requires v.size() == cols().
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;

  DenseMatrix Transpose() const;

  double FrobeniusNorm() const;

  // Maximum column L1 norm: max_j sum_i |a_ij|. This is the sensitivity
  // measure used when Laplace noise is added to L * x with x varying by one
  // unit coordinate.
  double MaxColumnL1Norm() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> data_;
};

// Reduced QR factorization via Householder reflections: A (m x n, m >= n)
// = Q (m x n, orthonormal columns) * R (n x n upper triangular). Only Q is
// returned (all the randomized SVD needs).
DenseMatrix HouseholderQ(const DenseMatrix& a);

}  // namespace privrec::la

#endif  // PRIVREC_LA_DENSE_MATRIX_H_
