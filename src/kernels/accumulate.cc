#include "kernels/accumulate.h"

#include <algorithm>

#include "kernels/dispatch.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define PRIVREC_KERNELS_HAVE_AVX2 1
#endif

#if defined(__GNUC__) && !defined(__clang__)
// Keep the reference genuinely scalar (see accumulate.h): without this,
// -O3 auto-vectorizes the same loop and "scalar vs SIMD" stops naming
// two distinct code paths.
#define PRIVREC_KERNEL_SCALAR \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define PRIVREC_KERNEL_SCALAR
#endif

namespace privrec::kernels {

namespace {

PRIVREC_KERNEL_SCALAR
void ScalarBody(const double* const* rows, const double* scales,
                int64_t num_rows, int64_t num_items, double* out) {
  for (int64_t b = 0; b < num_items; b += kAccumulateBlockItems) {
    const int64_t e = std::min(num_items, b + kAccumulateBlockItems);
    for (int64_t k = 0; k < num_rows; ++k) {
      const double s = scales[k];
      const double* row = rows[k];
      for (int64_t i = b; i < e; ++i) out[i] += s * row[i];
    }
  }
}

PRIVREC_KERNEL_SCALAR
void ScalarBodyF32(const float* const* rows, const double* scales,
                   int64_t num_rows, int64_t num_items, double* out) {
  for (int64_t b = 0; b < num_items; b += kAccumulateBlockItems) {
    const int64_t e = std::min(num_items, b + kAccumulateBlockItems);
    for (int64_t k = 0; k < num_rows; ++k) {
      const double s = scales[k];
      const float* row = rows[k];
      for (int64_t i = b; i < e; ++i) {
        out[i] += s * static_cast<double>(row[i]);
      }
    }
  }
}

#if defined(PRIVREC_KERNELS_HAVE_AVX2)

// 4-wide f64 lanes across items, four rows fused per pass. Separate
// mul + add (the target lacks the fma feature, so GCC cannot contract
// them) and in-row-order adds into each lane: per element the rounding
// sequence is ((out + s0*r0) + s1*r1) + ... — exactly what the scalar
// body's row-at-a-time loop produces — so fusing rows only changes how
// often `out` crosses the cache hierarchy (once per four rows instead
// of once per row), never a bit of the result.
__attribute__((target("avx2"))) void Avx2Body(const double* const* rows,
                                              const double* scales,
                                              int64_t num_rows,
                                              int64_t num_items,
                                              double* out) {
  for (int64_t b = 0; b < num_items; b += kAccumulateBlockItems) {
    const int64_t e = std::min(num_items, b + kAccumulateBlockItems);
    const int64_t vec_end = b + ((e - b) & ~int64_t{3});
    int64_t k = 0;
    for (; k + 4 <= num_rows; k += 4) {
      const double* r0 = rows[k];
      const double* r1 = rows[k + 1];
      const double* r2 = rows[k + 2];
      const double* r3 = rows[k + 3];
      const __m256d s0 = _mm256_set1_pd(scales[k]);
      const __m256d s1 = _mm256_set1_pd(scales[k + 1]);
      const __m256d s2 = _mm256_set1_pd(scales[k + 2]);
      const __m256d s3 = _mm256_set1_pd(scales[k + 3]);
      for (int64_t i = b; i < vec_end; i += 4) {
        __m256d acc = _mm256_loadu_pd(out + i);
        acc = _mm256_add_pd(acc,
                            _mm256_mul_pd(s0, _mm256_loadu_pd(r0 + i)));
        acc = _mm256_add_pd(acc,
                            _mm256_mul_pd(s1, _mm256_loadu_pd(r1 + i)));
        acc = _mm256_add_pd(acc,
                            _mm256_mul_pd(s2, _mm256_loadu_pd(r2 + i)));
        acc = _mm256_add_pd(acc,
                            _mm256_mul_pd(s3, _mm256_loadu_pd(r3 + i)));
        _mm256_storeu_pd(out + i, acc);
      }
      for (int64_t i = vec_end; i < e; ++i) {
        double acc = out[i];
        acc += scales[k] * r0[i];
        acc += scales[k + 1] * r1[i];
        acc += scales[k + 2] * r2[i];
        acc += scales[k + 3] * r3[i];
        out[i] = acc;
      }
    }
    for (; k < num_rows; ++k) {
      const double s = scales[k];
      const double* row = rows[k];
      const __m256d vs = _mm256_set1_pd(s);
      for (int64_t i = b; i < vec_end; i += 4) {
        __m256d acc = _mm256_loadu_pd(out + i);
        __m256d prod = _mm256_mul_pd(vs, _mm256_loadu_pd(row + i));
        _mm256_storeu_pd(out + i, _mm256_add_pd(acc, prod));
      }
      for (int64_t i = vec_end; i < e; ++i) out[i] += s * row[i];
    }
  }
}

__attribute__((target("avx2"))) void Avx2BodyF32(const float* const* rows,
                                                 const double* scales,
                                                 int64_t num_rows,
                                                 int64_t num_items,
                                                 double* out) {
  for (int64_t b = 0; b < num_items; b += kAccumulateBlockItems) {
    const int64_t e = std::min(num_items, b + kAccumulateBlockItems);
    const int64_t vec_end = b + ((e - b) & ~int64_t{3});
    int64_t k = 0;
    // Same two-level structure as Avx2Body: fuse four rows per pass over
    // the block (out traffic /4), f32 -> f64 widening exact per lane.
    for (; k + 4 <= num_rows; k += 4) {
      const float* r0 = rows[k];
      const float* r1 = rows[k + 1];
      const float* r2 = rows[k + 2];
      const float* r3 = rows[k + 3];
      const __m256d s0 = _mm256_set1_pd(scales[k]);
      const __m256d s1 = _mm256_set1_pd(scales[k + 1]);
      const __m256d s2 = _mm256_set1_pd(scales[k + 2]);
      const __m256d s3 = _mm256_set1_pd(scales[k + 3]);
      for (int64_t i = b; i < vec_end; i += 4) {
        __m256d acc = _mm256_loadu_pd(out + i);
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(s0, _mm256_cvtps_pd(_mm_loadu_ps(r0 + i))));
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(s1, _mm256_cvtps_pd(_mm_loadu_ps(r1 + i))));
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(s2, _mm256_cvtps_pd(_mm_loadu_ps(r2 + i))));
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(s3, _mm256_cvtps_pd(_mm_loadu_ps(r3 + i))));
        _mm256_storeu_pd(out + i, acc);
      }
      for (int64_t i = vec_end; i < e; ++i) {
        double acc = out[i];
        acc += scales[k] * static_cast<double>(r0[i]);
        acc += scales[k + 1] * static_cast<double>(r1[i]);
        acc += scales[k + 2] * static_cast<double>(r2[i]);
        acc += scales[k + 3] * static_cast<double>(r3[i]);
        out[i] = acc;
      }
    }
    for (; k < num_rows; ++k) {
      const double s = scales[k];
      const float* row = rows[k];
      const __m256d vs = _mm256_set1_pd(s);
      for (int64_t i = b; i < vec_end; i += 4) {
        // f32 -> f64 widening is exact, so lanes match the scalar cast.
        __m256d wide = _mm256_cvtps_pd(_mm_loadu_ps(row + i));
        __m256d acc = _mm256_loadu_pd(out + i);
        _mm256_storeu_pd(out + i,
                         _mm256_add_pd(acc, _mm256_mul_pd(vs, wide)));
      }
      for (int64_t i = vec_end; i < e; ++i) {
        out[i] += s * static_cast<double>(row[i]);
      }
    }
  }
}

#endif  // PRIVREC_KERNELS_HAVE_AVX2

}  // namespace

void AccumulateRowsScalar(const double* const* rows, const double* scales,
                          int64_t num_rows, int64_t num_items,
                          double* out) {
  if (num_rows <= 0 || num_items <= 0) return;
  ScalarBody(rows, scales, num_rows, num_items, out);
}

void AccumulateRowsF32Scalar(const float* const* rows,
                             const double* scales, int64_t num_rows,
                             int64_t num_items, double* out) {
  if (num_rows <= 0 || num_items <= 0) return;
  ScalarBodyF32(rows, scales, num_rows, num_items, out);
}

void AccumulateRows(const double* const* rows, const double* scales,
                    int64_t num_rows, int64_t num_items, double* out) {
  if (num_rows <= 0 || num_items <= 0) return;
#if defined(PRIVREC_KERNELS_HAVE_AVX2)
  if (ActiveDispatchLevel() == DispatchLevel::kAvx2) {
    Avx2Body(rows, scales, num_rows, num_items, out);
    return;
  }
#endif
  ScalarBody(rows, scales, num_rows, num_items, out);
}

void AccumulateRowsF32(const float* const* rows, const double* scales,
                       int64_t num_rows, int64_t num_items, double* out) {
  if (num_rows <= 0 || num_items <= 0) return;
#if defined(PRIVREC_KERNELS_HAVE_AVX2)
  if (ActiveDispatchLevel() == DispatchLevel::kAvx2) {
    Avx2BodyF32(rows, scales, num_rows, num_items, out);
    return;
  }
#endif
  ScalarBodyF32(rows, scales, num_rows, num_items, out);
}

}  // namespace privrec::kernels
