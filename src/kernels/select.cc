#include "kernels/select.h"

#include <numeric>

namespace privrec::kernels {

void SelectTopNIndicesDense(const double* values, int64_t num_values,
                            int64_t n, std::vector<int64_t>* out) {
  out->clear();
  const int64_t keep = std::min<int64_t>(n, num_values);
  if (keep <= 0) return;

  // Worker-local scratch: one index per item, rebuilt (iota) per call so
  // results never depend on what this worker selected before.
  thread_local std::vector<int64_t> scratch;
  scratch.resize(static_cast<size_t>(num_values));
  std::iota(scratch.begin(), scratch.end(), int64_t{0});

  // Index comparison under (value desc, index asc) — the same total
  // order as RankOrderBetter on materialized pairs, since the dense
  // item id IS the index.
  auto better = [values](int64_t a, int64_t b) {
    if (values[a] != values[b]) return values[a] > values[b];
    return a < b;
  };
  // Same crossover as SelectTopNInPlace (see kHeapSelectRatio): the
  // reconstruction shape keeps the bounded heap, a near-full selection
  // keeps the linear partition.
  if (keep * kHeapSelectRatio <= num_values) {
    std::partial_sort(scratch.begin(), scratch.begin() + keep,
                      scratch.end(), better);
  } else {
    if (keep < num_values) {
      std::nth_element(scratch.begin(), scratch.begin() + keep,
                       scratch.end(), better);
    }
    std::sort(scratch.begin(), scratch.begin() + keep, better);
  }
  out->assign(scratch.begin(), scratch.begin() + keep);
}

}  // namespace privrec::kernels
