// AccumulateRows: the dense similarity-weighted row sum at the heart of
// the A_R reconstruction (Algorithm 1 lines 8-20) —
//
//     out[i] += scales[k] * rows[k][i]    for k in row order, all items i
//
// factored out of artifact/reconstruct.h so the in-memory recommender,
// the artifact serving engine, and the LRM/item-based engines share one
// kernel instead of re-welding the loop per caller.
//
// Determinism contract: for each item i the terms are added in row order
// k = 0..num_rows-1, exactly one rounding per multiply and one per add —
// the FP accumulation order of the original scalar loop. The AVX2 path
// vectorizes across *items* (independent accumulators) with separate
// mul/add intrinsics (no FMA contraction), so it is bit-identical to the
// scalar path; kernels_test pins exact equality at every tail length.
// The scalar path is compiled with auto-vectorization off so it stays a
// genuinely scalar reference: an exact-equality failure bisects to the
// SIMD lanes, never to the autovectorizer.
//
// Both paths walk items in cache-sized blocks (all rows visit a block
// before moving on), which keeps the out[] block resident across the
// whole row set; per-element order over k is unchanged by blocking.

#ifndef PRIVREC_KERNELS_ACCUMULATE_H_
#define PRIVREC_KERNELS_ACCUMULATE_H_

#include <cstdint>

namespace privrec::kernels {

// Items per cache block: 2048 doubles = 16 KiB, so an out[] block plus
// one row block stay L1/L2-resident while every row streams through.
inline constexpr int64_t kAccumulateBlockItems = 2048;

// out[i] += scales[k] * rows[k][i], dispatched (ActiveDispatchLevel).
// `out` must hold num_items finite doubles (callers zero-fill first);
// num_rows == 0 is a no-op. Rows are f64 [num_items] each.
void AccumulateRows(const double* const* rows, const double* scales,
                    int64_t num_rows, int64_t num_items, double* out);

// Same accumulation from f32-quantized rows: each element is widened to
// f64 (exact) before the f64 multiply/add, so scalar and SIMD agree
// bitwise here too.
void AccumulateRowsF32(const float* const* rows, const double* scales,
                       int64_t num_rows, int64_t num_items, double* out);

// The scalar reference paths, exposed so tests and benches can compare
// against the dispatched entry points directly.
void AccumulateRowsScalar(const double* const* rows, const double* scales,
                          int64_t num_rows, int64_t num_items, double* out);
void AccumulateRowsF32Scalar(const float* const* rows,
                             const double* scales, int64_t num_rows,
                             int64_t num_items, double* out);

}  // namespace privrec::kernels

#endif  // PRIVREC_KERNELS_ACCUMULATE_H_
