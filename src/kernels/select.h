// SelectTopN: partial top-N selection under the library's one ranking
// order — utility descending, item id ascending on ties. Replaces the
// full `std::partial_sort` blocks that were duplicated across
// core::TopNFromDense / TopNFromSparse.
//
// Both entry points pick their algorithm by the keep/size ratio: the
// usual reconstruction shape (n in the tens, items in the thousands) is
// served by partial_sort's bounded-heap scan — one predictable
// comparison per element, heap updates only on the rare element that
// beats the current top-n — while a `keep` that is a large fraction of
// `size` (where the heap would churn) switches to nth_element + sort of
// the prefix. Because the comparator is a strict total order (the item
// id breaks every utility tie), the top-`keep` set and its sorted order
// are unique, so both algorithms produce element-for-element identical
// output; BM_KernelSelectTopN* pins the crossover choice.

#ifndef PRIVREC_KERNELS_SELECT_H_
#define PRIVREC_KERNELS_SELECT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace privrec::kernels {

// The shared ranking order over anything with `.utility` and `.item`
// members (core::Recommendation and friends).
struct RankOrderBetter {
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    if (a.utility != b.utility) return a.utility > b.utility;
    return a.item < b.item;
  }
};

// Selection shape where partial_sort's bounded heap beats nth_element:
// while keep is a small fraction of size, almost every element loses one
// comparison against the heap top and moves on; past this ratio the heap
// churns and nth_element's O(size) partitioning wins.
inline constexpr int64_t kHeapSelectRatio = 8;

// In-place selection: keeps the top min(n, size) entries of `list` in
// rank order and truncates the rest. The single selection helper behind
// every materialized top-N surface; also the scalar SelectTopN
// reference that kernels_test compares the dense path against.
template <typename List>
void SelectTopNInPlace(List& list, int64_t n) {
  const int64_t size = static_cast<int64_t>(list.size());
  const int64_t keep = std::min<int64_t>(n, size);
  if (keep <= 0) {
    list.clear();
    return;
  }
  if (keep * kHeapSelectRatio <= size) {
    std::partial_sort(list.begin(), list.begin() + keep, list.end(),
                      RankOrderBetter{});
  } else {
    if (keep < size) {
      std::nth_element(list.begin(), list.begin() + keep, list.end(),
                       RankOrderBetter{});
    }
    std::sort(list.begin(), list.begin() + keep, RankOrderBetter{});
  }
  list.resize(static_cast<typename List::size_type>(keep));
}

// Dense variant: selects the top min(n, num_values) indices of `values`
// under the same order (value desc, index asc) without materializing a
// (item, utility) pair per item — the index scratch is thread-local and
// reused across calls, which matters in the per-user reconstruction
// loop. Output indices land in `out` in rank order.
void SelectTopNIndicesDense(const double* values, int64_t num_values,
                            int64_t n, std::vector<int64_t>* out);

}  // namespace privrec::kernels

#endif  // PRIVREC_KERNELS_SELECT_H_
