#include "kernels/dispatch.h"

#include <cstdlib>
#include <string>

namespace privrec::kernels {

namespace {

// Same convention as MapOptionsFromEnv's PRIVREC_NO_MMAP: set and not
// "0" disables the SIMD paths for the whole process.
bool NoSimdFromEnv() {
  const char* value = std::getenv("PRIVREC_NO_SIMD");
  return value != nullptr && *value != '\0' && std::string(value) != "0";
}

DispatchLevel DetectLevel() {
  if (NoSimdFromEnv()) return DispatchLevel::kScalar;
#if defined(__x86_64__) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return DispatchLevel::kAvx2;
#endif
  return DispatchLevel::kScalar;
}

}  // namespace

DispatchLevel ActiveDispatchLevel() {
  static const DispatchLevel level = DetectLevel();
  return level;
}

const char* DispatchLevelName(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return "scalar";
    case DispatchLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace privrec::kernels
