// Runtime SIMD dispatch for the reconstruction kernels, following the
// PCLMULQDQ fast path in common/crc32.cc: detect once with
// __builtin_cpu_supports, cache the answer, and gate at the call site.
//
// Two rules keep dispatch out of the determinism story:
//
//   1. The scalar path is the bit-identity reference. Every dispatched
//      path must produce bit-identical output (kernels_test pins
//      exact equality across all SIMD tail lengths), so the dispatch
//      level can never change results — only wall-clock.
//   2. PRIVREC_NO_SIMD (nonempty and not "0") forces kScalar for the
//      whole process, mirroring PRIVREC_NO_MMAP for the mapped reader.
//      ci/sanitize.sh runs the full suite once in this mode.

#ifndef PRIVREC_KERNELS_DISPATCH_H_
#define PRIVREC_KERNELS_DISPATCH_H_

namespace privrec::kernels {

enum class DispatchLevel {
  kScalar = 0,  // portable reference; always available
  kAvx2 = 1,    // 4-wide f64 lanes; x86-64 with AVX2 only
};

// The level the dispatched kernels will take, detected once per process
// (CPU features, then the PRIVREC_NO_SIMD override) and cached.
DispatchLevel ActiveDispatchLevel();

// Stable lowercase name for logs, statusz, and bench context.
const char* DispatchLevelName(DispatchLevel level);

}  // namespace privrec::kernels

#endif  // PRIVREC_KERNELS_DISPATCH_H_
