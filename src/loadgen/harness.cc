#include "loadgen/harness.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>

#include "common/fault_injection.h"
#include "common/random.h"

namespace privrec::loadgen {

namespace {

double WallMsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

LoadHarness::LoadHarness(serve::ServeRuntime* runtime, LoadOracle* oracle,
                         LoadRunOptions options)
    : runtime_(runtime), oracle_(oracle), options_(std::move(options)) {}

int64_t LoadHarness::ServiceMs(size_t index,
                               const serve::ServeRequest& request) const {
  // Keyed by (seed, index) so the virtual service time of request i never
  // depends on execution order.
  Rng rng(SplitMix64(options_.load.seed ^
                     (0x53455256ull << 8) ^  // "SERV"
                     static_cast<uint64_t>(index)));
  const double ms =
      options_.service_base_ms +
      options_.service_per_user_ms *
          static_cast<double>(request.users.size()) +
      rng.UniformDouble() * options_.service_jitter_ms;
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(ms)));
}

void LoadHarness::Record(const serve::ServeRequest& request,
                         const serve::ServeResponse& response,
                         double latency_ms, LoadSummary& summary) {
  summary.latency.Observe(latency_ms);
  switch (response.status.code()) {
    case StatusCode::kOk:
      ++summary.ok;
      summary.ok_latency.Observe(latency_ms);
      break;
    case StatusCode::kResourceExhausted:
      ++summary.shed;
      break;
    case StatusCode::kDeadlineExceeded:
      ++summary.expired;
      break;
    default:
      ++summary.other_errors;
      break;
  }
  if (response.degraded_fallback) ++summary.degraded;
  summary.max_retry_after_ms =
      std::max(summary.max_retry_after_ms, response.retry_after_ms);
  if (oracle_ != nullptr) {
    std::string violation = oracle_->Check(request, response);
    if (!violation.empty()) {
      ++summary.correctness_violations;
      if (summary.first_violation.empty()) {
        summary.first_violation = std::move(violation);
      }
    }
  }
}

void LoadHarness::StormTick(int64_t k, LoadSummary& summary) {
  const SwapStormSpec& storm = options_.storm;
  if (storm.good.empty()) return;
  auto good = [&](int64_t i) {
    return storm.good[static_cast<size_t>(i) % storm.good.size()];
  };
  auto corrupt = [&](int64_t i) -> std::string {
    if (storm.corrupt.empty()) return good(i);
    return storm.corrupt[static_cast<size_t>(i) % storm.corrupt.size()];
  };

  // Six-phase rotation, mirroring the chaos soak: good, corrupt, good,
  // corrupt, armed io_error over a good file, armed latency over a good
  // file. Corrupt phases and the armed io_error MUST be rejected; the
  // armed latency stalls the read of an intact artifact, so the swap may
  // succeed or be breaker-rejected — never publish garbage.
  std::string path;
  bool armed = false;
  switch (k % 6) {
    case 0:
      path = good(k);
      break;
    case 1:
      path = corrupt(k);
      break;
    case 2:
      path = good(k + 1);
      break;
    case 3:
      path = corrupt(k + 1);
      break;
    case 4:
      path = good(k);
      if (storm.arm_faults && fault::kCompiledIn) {
        fault::FaultInjector::Instance().Arm(
            "artifact.read", {fault::FaultKind::kIoError, 1, 1});
        armed = true;
      }
      break;
    case 5:
      path = good(k + 1);
      if (storm.arm_faults && fault::kCompiledIn) {
        fault::FaultInjector::Instance().Arm(
            "artifact.read", {fault::FaultKind::kLatency, 1, 2});
        armed = true;
      }
      break;
  }

  const int64_t rollbacks_before = runtime_->swapper().rollbacks();
  const auto pause_start = std::chrono::steady_clock::now();
  Status swapped = runtime_->Activate(path);
  summary.swap_pause_ms.Observe(WallMsSince(pause_start));
  if (armed) fault::FaultInjector::Instance().Reset();

  ++summary.swap_attempts;
  if (swapped.ok()) {
    ++summary.swap_ok;
  } else {
    ++summary.swap_rejected;
  }
  summary.rollbacks += runtime_->swapper().rollbacks() - rollbacks_before;
}

LoadSummary LoadHarness::RunVirtual(serve::ManualClock* clock) {
  LoadSummary summary;
  const std::vector<ScheduledRequest> schedule =
      BuildSchedule(options_.load);
  summary.scheduled = static_cast<int64_t>(schedule.size());

  // The run's t=0 on the shared runtime clock.
  const int64_t t0 = clock->NowMs();
  constexpr int64_t kNever = INT64_MAX;

  struct Op {
    serve::AsyncServe async;
    int64_t send_ms = 0;  // absolute clock time
  };
  std::vector<Op> ops;
  ops.reserve(schedule.size());

  // (completion time, op index): the index keeps equal-time pops in
  // arrival order, so the event sequence is a total order.
  using Event = std::pair<int64_t, size_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
      completions;
  std::deque<size_t> queued;

  size_t next_arrival = 0;
  int64_t storm_k = 0;
  int64_t next_swap = options_.storm.period_ms > 0
                          ? t0 + options_.storm.period_ms
                          : kNever;

  auto resolve = [&](size_t idx) {
    Op& op = ops[idx];
    const double latency =
        static_cast<double>(clock->NowMs() - op.send_ms);
    Record(op.async.request, op.async.response, latency, summary);
  };

  // Drains the wait queue after anything that can change admission state
  // (a released slot, an advanced clock): admitted ops get a completion
  // event, shed/expired ops resolve now.
  auto poll_queued = [&] {
    for (auto it = queued.begin(); it != queued.end();) {
      Op& op = ops[*it];
      if (!runtime_->PollAsync(op.async)) {
        ++it;
        continue;
      }
      if (op.async.admitted) {
        completions.emplace(
            clock->NowMs() + ServiceMs(*it, op.async.request), *it);
      } else {
        resolve(*it);
      }
      it = queued.erase(it);
    }
  };

  while (next_arrival < schedule.size() || !completions.empty() ||
         !queued.empty()) {
    const int64_t t_completion =
        completions.empty() ? kNever : completions.top().first;
    const int64_t t_arrival = next_arrival < schedule.size()
                                  ? t0 + schedule[next_arrival].send_ms
                                  : kNever;
    // The storm runs only while load is still arriving.
    const int64_t t_swap = next_arrival < schedule.size() ? next_swap
                                                          : kNever;
    // A queued op can expire with no other event pending.
    int64_t t_deadline = kNever;
    for (size_t idx : queued) {
      t_deadline = std::min(
          t_deadline, ops[idx].send_ms + ops[idx].async.request.deadline_ms);
    }
    const int64_t t =
        std::min(std::min(t_completion, t_arrival),
                 std::min(t_swap, t_deadline));
    if (t > clock->NowMs()) clock->Set(t);

    // At one instant: finish running requests first (their slots free
    // before anything new happens), then swap, then admit arrivals.
    while (!completions.empty() && completions.top().first <= t) {
      const size_t idx = completions.top().second;
      completions.pop();
      runtime_->FinishAsync(ops[idx].async);
      resolve(idx);
      poll_queued();  // the released slot may have been handed on
    }

    if (t == next_swap && t_swap != kNever) {
      StormTick(storm_k++, summary);
      next_swap += options_.storm.period_ms;
    }

    while (next_arrival < schedule.size() &&
           t0 + schedule[next_arrival].send_ms <= t) {
      const ScheduledRequest& scheduled = schedule[next_arrival];
      ++next_arrival;
      const size_t idx = ops.size();
      ops.push_back(Op{});
      Op& op = ops.back();
      op.send_ms = t0 + scheduled.send_ms;
      op.async = runtime_->BeginAsync(scheduled.request, op.send_ms);
      if (op.async.done) {
        resolve(idx);
      } else if (op.async.admitted) {
        completions.emplace(
            clock->NowMs() + ServiceMs(idx, op.async.request), idx);
      } else {
        queued.push_back(idx);
      }
    }

    // Deadline-only events (and any clock advance) resolve here.
    poll_queued();
  }

  summary.makespan_ms = static_cast<double>(clock->NowMs() - t0);
  summary.Finalize();
  return summary;
}

LoadSummary LoadHarness::RunWall() {
  LoadSummary summary;
  const std::vector<ScheduledRequest> schedule =
      BuildSchedule(options_.load);
  summary.scheduled = static_cast<int64_t>(schedule.size());
  const int64_t threads =
      std::max<int64_t>(1, options_.wall_threads);

  const auto start = std::chrono::steady_clock::now();
  std::mutex mu;  // guards `summary` merges
  std::atomic<bool> load_done{false};

  auto worker = [&](int64_t me) {
    LoadSummary local;
    for (size_t i = static_cast<size_t>(me); i < schedule.size();
         i += static_cast<size_t>(threads)) {
      const ScheduledRequest& scheduled = schedule[i];
      const auto target =
          start + std::chrono::milliseconds(scheduled.send_ms);
      // Open loop: sleep until the scheduled send; when behind, fire
      // immediately and let the lateness show up in the latency.
      std::this_thread::sleep_until(target);
      serve::ServeResponse response = runtime_->Handle(scheduled.request);
      const double latency =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - target)
              .count();
      Record(scheduled.request, response, std::max(0.0, latency), local);
    }
    std::lock_guard<std::mutex> lock(mu);
    summary.ok += local.ok;
    summary.shed += local.shed;
    summary.expired += local.expired;
    summary.other_errors += local.other_errors;
    summary.degraded += local.degraded;
    summary.correctness_violations += local.correctness_violations;
    if (summary.first_violation.empty()) {
      summary.first_violation = local.first_violation;
    }
    summary.latency.Merge(local.latency);
    summary.ok_latency.Merge(local.ok_latency);
    summary.max_retry_after_ms =
        std::max(summary.max_retry_after_ms, local.max_retry_after_ms);
  };

  std::thread storm([&] {
    if (options_.storm.period_ms <= 0 || options_.storm.good.empty()) {
      return;
    }
    int64_t k = 0;
    while (!load_done.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.storm.period_ms));
      if (load_done.load(std::memory_order_relaxed)) break;
      LoadSummary tick;
      StormTick(k++, tick);
      std::lock_guard<std::mutex> lock(mu);
      summary.swap_attempts += tick.swap_attempts;
      summary.swap_ok += tick.swap_ok;
      summary.swap_rejected += tick.swap_rejected;
      summary.rollbacks += tick.rollbacks;
      summary.swap_pause_ms.Merge(tick.swap_pause_ms);
    }
  });

  std::vector<std::thread> pool;
  for (int64_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (std::thread& t : pool) t.join();
  load_done.store(true, std::memory_order_relaxed);
  storm.join();

  summary.makespan_ms = WallMsSince(start);
  summary.Finalize();
  return summary;
}

}  // namespace privrec::loadgen
