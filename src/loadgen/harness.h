// The open-loop load harness: drives a ServeRuntime with a precomputed
// arrival schedule, optionally under a concurrent swap storm, and
// produces the LoadSummary behind BENCH_serve.json.
//
// Two execution modes over the SAME schedule and the SAME runtime code:
//
//   RunVirtual — a single-threaded discrete-event simulation on an
//     injected ManualClock. Requests enter through the runtime's
//     non-blocking BeginAsync/PollAsync/FinishAsync path, so the REAL
//     admission controller (its FIFO queue, shedding, purging and retry
//     hints) decides every request's fate — but no thread ever parks, and
//     time advances only at event boundaries. Service time is a
//     deterministic function of (seed, request index). Consequence: one
//     (seed, spec) pair produces bit-identical shed/expired/degraded
//     counts and latency histograms on every run and platform. Swap
//     storms tick on the same virtual timeline, so "a swap landed between
//     these two arrivals" is part of the reproducible history (only the
//     wall-clock pause per Activate varies).
//
//   RunWall — real threads, real clock, blocking Handle(): the
//     non-deterministic companion used under TSan to prove the admission
//     queue and epoch pinning are race-free at real concurrency. Each
//     thread serves its residue class of the schedule, sleeping until
//     each request's absolute send time (or issuing immediately when
//     behind — lateness is charged to the response, never allowed to
//     thin the schedule).
//
// In both modes latency is measured from the SCHEDULED send time to
// resolution, which is what makes the harness coordinated-omission-safe:
// a stalled server cannot slow the arrival process down, it can only
// make queues (and the recorded latencies) grow.

#ifndef PRIVREC_LOADGEN_HARNESS_H_
#define PRIVREC_LOADGEN_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "loadgen/oracle.h"
#include "loadgen/report.h"
#include "loadgen/schedule.h"
#include "serve/clock.h"
#include "serve/runtime.h"

namespace privrec::loadgen {

// Hot-swap storm driven alongside the load: every period the harness
// activates the next artifact of a fixed rotation mixing good
// generations, corrupt files (expected to be rejected + rolled back) and
// — in fault-injection builds, when armed — I/O errors and latency on
// the artifact read path.
struct SwapStormSpec {
  // <= 0 disables the storm.
  int64_t period_ms = 0;
  // Known-good artifacts, rotated; must be non-empty when enabled.
  std::vector<std::string> good;
  // Corrupt artifacts (bit flips, truncations); may be empty.
  std::vector<std::string> corrupt;
  // Arm fault::FaultInjector on "artifact.read" for two of every six
  // phases (no-op in builds without fault injection).
  bool arm_faults = false;
};

struct LoadRunOptions {
  LoadSpec load;
  SwapStormSpec storm;
  // Virtual service-time model: a slot is held for
  //   base + per_user * |users| + U[0, jitter)
  // milliseconds, the uniform draw keyed by (seed, request index).
  double service_base_ms = 2.0;
  double service_per_user_ms = 0.5;
  double service_jitter_ms = 1.0;
  // Request threads for RunWall.
  int64_t wall_threads = 4;
};

class LoadHarness {
 public:
  // `oracle` may be null (no correctness checking). Both referents must
  // outlive the harness.
  LoadHarness(serve::ServeRuntime* runtime, LoadOracle* oracle,
              LoadRunOptions options);

  // Deterministic virtual-time run; `clock` must be the clock injected
  // into the runtime. The clock is advanced monotonically from its
  // current value, which becomes the run's t=0.
  LoadSummary RunVirtual(serve::ManualClock* clock);

  // Wall-clock run on real threads (see file comment).
  LoadSummary RunWall();

 private:
  // One storm tick: activates rotation step `k`, records pause/reject/
  // rollback accounting into `summary`.
  void StormTick(int64_t k, LoadSummary& summary);
  int64_t ServiceMs(size_t index,
                    const serve::ServeRequest& request) const;
  void Record(const serve::ServeRequest& request,
              const serve::ServeResponse& response, double latency_ms,
              LoadSummary& summary);

  serve::ServeRuntime* runtime_;
  LoadOracle* oracle_;
  LoadRunOptions options_;
};

}  // namespace privrec::loadgen

#endif  // PRIVREC_LOADGEN_HARNESS_H_
