// Correctness oracle for the load harness: the zero-tolerance check that
// every response the runtime produced under load is exactly the response
// the offline serving engine produces at rest.
//
// Each artifact generation that may become visible during the run is
// loaded once and keyed by its provenance seed (the same generation
// identity ServeResponse carries). Expected rankings are computed lazily
// per (generation, top_n) and memoized, so the oracle never assumes
// anything about prefix stability across top_n values — it compares
// against a ranking computed at exactly the requested depth.
//
// Only stateless serve mechanisms ("Cluster", "Exact") can be checked
// this way: their output is a pure function of (artifact, users, top_n).
// The fresh-noise baselines advance a per-recommender invocation counter,
// so their k-th answer depends on call order and no load-time oracle
// exists for them.

#ifndef PRIVREC_LOADGEN_ORACLE_H_
#define PRIVREC_LOADGEN_ORACLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "artifact/serving.h"
#include "common/status.h"
#include "serve/runtime.h"

namespace privrec::loadgen {

class LoadOracle {
 public:
  // Loads every artifact and indexes it by provenance seed. Fails with
  // kInvalidArgument for a non-stateless mechanism, or with the load
  // error of the first unreadable artifact.
  static Result<std::unique_ptr<LoadOracle>> Build(
      const std::vector<std::string>& artifact_paths,
      const serving::ServeSpec& spec);

  // Returns "" when `response` is consistent with the generation that
  // served it, else a diagnostic. Checks:
  //   - the serving generation is one of the known-good artifacts;
  //   - kOk responses are bit-identical to the offline answer;
  //   - degraded (shed/expired) responses carry the generation's exact
  //     global-average fallback ranking, tagged kLoadShed.
  // Thread-safe (the memo table is mutex-guarded).
  std::string Check(const serve::ServeRequest& request,
                    const serve::ServeResponse& response);

  int64_t generations() const {
    return static_cast<int64_t>(generations_.size());
  }

 private:
  struct Generation {
    std::unique_ptr<serving::ServingEngine> engine;
    std::unique_ptr<serving::ServeRecommender> recommender;
    // top_n -> expected list per user id (index = NodeId).
    std::map<int64_t, std::vector<core::RecommendationList>> lists;
    // top_n -> expected global-average fallback list.
    std::map<int64_t, core::RecommendationList> fallback;
  };

  LoadOracle() = default;
  const std::vector<core::RecommendationList>& ListsFor(Generation& gen,
                                                        int64_t top_n);
  const core::RecommendationList& FallbackFor(Generation& gen,
                                              int64_t top_n);

  std::mutex mu_;
  std::map<uint64_t, Generation> generations_;
  std::vector<graph::NodeId> all_users_;
};

}  // namespace privrec::loadgen

#endif  // PRIVREC_LOADGEN_ORACLE_H_
