#include "loadgen/report.h"

#include <algorithm>

#include "common/version.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace privrec::loadgen {

namespace {

// One JSON scalar policy for the whole tree: the obs exporters own the
// shortest-round-trip number format and the escaping table; the report
// just borrows them under the short local names.
std::string Num(double x) { return obs::JsonNumber(x); }
std::string Escape(const std::string& s) { return obs::JsonEscape(s); }

std::string LatencyBlock(const LatencyRecorder& r) {
  return "{\"count\": " + std::to_string(r.count()) +
         ", \"mean\": " + Num(r.mean()) +
         ", \"p50\": " + Num(r.Quantile(0.50)) +
         ", \"p99\": " + Num(r.Quantile(0.99)) +
         ", \"p999\": " + Num(r.Quantile(0.999)) + "}";
}

std::string BudgetLine(double v) { return v < 0 ? "null" : Num(v); }

}  // namespace

LatencyRecorder::LatencyRecorder()
    : bounds_(obs::LatencyBucketsMs()), counts_(bounds_.size() + 1, 0) {}

void LatencyRecorder::Observe(double ms) {
  const size_t b = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), ms) -
      bounds_.begin());
  ++counts_[b];
  ++count_;
  sum_ += ms;
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  for (size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyRecorder::Quantile(double q) const {
  return obs::HistogramQuantile(Sample(""), q);
}

obs::HistogramSample LatencyRecorder::Sample(
    const std::string& name) const {
  obs::HistogramSample s;
  s.name = name;
  s.bounds = bounds_;
  s.counts = counts_;
  s.count = count_;
  s.sum = sum_;
  return s;
}

void LoadSummary::Finalize() {
  shed_rate = scheduled > 0
                  ? static_cast<double>(shed) /
                        static_cast<double>(scheduled)
                  : 0.0;
  rollback_rate = swap_attempts > 0
                      ? static_cast<double>(rollbacks) /
                            static_cast<double>(swap_attempts)
                      : 0.0;
  achieved_rps = makespan_ms > 0.0
                     ? static_cast<double>(scheduled) * 1000.0 /
                           makespan_ms
                     : 0.0;
}

SloVerdict EvaluateSlo(const SloBudget& budget,
                       const LoadSummary& summary) {
  SloVerdict verdict;
  auto fail = [&](const std::string& line) {
    verdict.pass = false;
    verdict.failures.push_back(line);
  };
  auto check_latency = [&](const char* name, double q, double ceiling) {
    if (ceiling < 0) return;
    const double measured = summary.latency.Quantile(q);
    if (measured > ceiling) {
      fail(std::string(name) + " " + Num(measured) + "ms exceeds budget " +
           Num(ceiling) + "ms");
    }
  };
  check_latency("p50", 0.50, budget.p50_ms);
  check_latency("p99", 0.99, budget.p99_ms);
  check_latency("p999", 0.999, budget.p999_ms);
  if (budget.max_shed_rate >= 0 &&
      summary.shed_rate > budget.max_shed_rate) {
    fail("shed rate " + Num(summary.shed_rate) + " exceeds budget " +
         Num(budget.max_shed_rate));
  }
  if (budget.max_rollback_rate >= 0 &&
      summary.rollback_rate > budget.max_rollback_rate) {
    fail("rollback rate " + Num(summary.rollback_rate) +
         " exceeds budget " + Num(budget.max_rollback_rate));
  }
  if (budget.require_no_violations &&
      summary.correctness_violations > 0) {
    fail(std::to_string(summary.correctness_violations) +
         " correctness violation(s); first: " + summary.first_violation);
  }
  if (summary.ok < budget.min_ok) {
    fail("only " + std::to_string(summary.ok) +
         " request(s) served ok; floor is " +
         std::to_string(budget.min_ok));
  }
  return verdict;
}

std::string LoadReportJson(const LoadSpec& spec, int64_t swap_period_ms,
                           const LoadSummary& summary,
                           const SloBudget& budget,
                           const SloVerdict& verdict,
                           const std::string& mode, int64_t threads,
                           int64_t shards,
                           const TelemetryReport* telemetry) {
  std::string out = "{\n";
  out += "  \"context\": {\"git_revision\": \"" +
         std::string(kGitRevision) + "\", \"privrec_version\": \"" +
         std::string(kVersionString) + "\", \"mode\": \"" + mode +
         "\", \"threads\": " + std::to_string(threads) +
         ", \"artifact_shards\": " + std::to_string(shards) + "},\n";

  out += "  \"spec\": {\"seed\": " + std::to_string(spec.seed) +
         ", \"rps\": " + Num(spec.rps) +
         ", \"duration_ms\": " + std::to_string(spec.duration_ms) +
         ", \"num_users\": " + std::to_string(spec.num_users) +
         ", \"zipf_s\": " + Num(spec.zipf_s) +
         ", \"users_per_request\": " +
         std::to_string(spec.users_per_request) +
         ", \"top_n\": " + std::to_string(spec.top_n) +
         ", \"short_fraction\": " + Num(spec.short_fraction) +
         ", \"deadline_short_ms\": " +
         std::to_string(spec.deadline_short_ms) +
         ", \"deadline_long_ms\": " +
         std::to_string(spec.deadline_long_ms) +
         ", \"burst_factor\": " + Num(spec.burst_factor) +
         ", \"burst_period_ms\": " + std::to_string(spec.burst_period_ms) +
         ", \"burst_duration_ms\": " +
         std::to_string(spec.burst_duration_ms) +
         ", \"swap_period_ms\": " + std::to_string(swap_period_ms) +
         "},\n";

  out += "  \"results\": {\n";
  out += "    \"scheduled\": " + std::to_string(summary.scheduled) +
         ", \"ok\": " + std::to_string(summary.ok) +
         ", \"shed\": " + std::to_string(summary.shed) +
         ", \"expired\": " + std::to_string(summary.expired) +
         ", \"degraded\": " + std::to_string(summary.degraded) +
         ", \"other_errors\": " + std::to_string(summary.other_errors) +
         ",\n";
  out += "    \"correctness_violations\": " +
         std::to_string(summary.correctness_violations) + ",\n";
  out += "    \"latency_ms\": " + LatencyBlock(summary.latency) + ",\n";
  out += "    \"ok_latency_ms\": " + LatencyBlock(summary.ok_latency) +
         ",\n";
  out += "    \"swap\": {\"attempts\": " +
         std::to_string(summary.swap_attempts) +
         ", \"ok\": " + std::to_string(summary.swap_ok) +
         ", \"rejected\": " + std::to_string(summary.swap_rejected) +
         ", \"rollbacks\": " + std::to_string(summary.rollbacks) +
         ", \"pause_ms\": " + LatencyBlock(summary.swap_pause_ms) +
         "},\n";
  out += "    \"shed_rate\": " + Num(summary.shed_rate) +
         ", \"rollback_rate\": " + Num(summary.rollback_rate) +
         ", \"achieved_rps\": " + Num(summary.achieved_rps) +
         ", \"makespan_ms\": " + Num(summary.makespan_ms) +
         ", \"max_retry_after_ms\": " +
         std::to_string(summary.max_retry_after_ms) + "\n";
  out += "  },\n";

  out += "  \"slo\": {\"pass\": ";
  out += verdict.pass ? "true" : "false";
  out += ", \"budgets\": {\"p50_ms\": " + BudgetLine(budget.p50_ms) +
         ", \"p99_ms\": " + BudgetLine(budget.p99_ms) +
         ", \"p999_ms\": " + BudgetLine(budget.p999_ms) +
         ", \"max_shed_rate\": " + BudgetLine(budget.max_shed_rate) +
         ", \"max_rollback_rate\": " +
         BudgetLine(budget.max_rollback_rate) + ", \"min_ok\": " +
         std::to_string(budget.min_ok) + "}, \"failures\": [";
  for (size_t i = 0; i < verdict.failures.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + Escape(verdict.failures[i]) + "\"";
  }
  out += "]},\n";

  out += "  \"telemetry\": ";
  if (telemetry != nullptr) {
    out += "{\"recorded\": " + std::to_string(telemetry->recorded) +
           ", \"sampled\": " + std::to_string(telemetry->sampled) +
           ", \"dropped\": " + std::to_string(telemetry->dropped) +
           ", \"sample_every\": " +
           std::to_string(telemetry->sample_every) +
           ", \"window_ms\": " + std::to_string(telemetry->window_ms) +
           ", \"burn_rate\": " + Num(telemetry->burn_rate) +
           ", \"burn_alerts\": " +
           std::to_string(telemetry->series.alerts.size()) +
           ", \"windows\": " + obs::WindowSeriesToJson(telemetry->series) +
           "}";
  } else {
    out += "null";
  }
  out += "\n}\n";
  return out;
}

}  // namespace privrec::loadgen
