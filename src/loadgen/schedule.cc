#include "loadgen/schedule.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace privrec::loadgen {

namespace {

bool InBurst(const LoadSpec& spec, double t_ms) {
  if (spec.burst_period_ms <= 0 || spec.burst_duration_ms <= 0 ||
      spec.burst_factor <= 1.0) {
    return false;
  }
  const double phase =
      std::fmod(t_ms, static_cast<double>(spec.burst_period_ms));
  return phase < static_cast<double>(spec.burst_duration_ms);
}

}  // namespace

std::vector<ScheduledRequest> BuildSchedule(const LoadSpec& spec) {
  std::vector<ScheduledRequest> schedule;
  if (spec.rps <= 0.0 || spec.duration_ms <= 0 || spec.num_users <= 0 ||
      spec.users_per_request <= 0) {
    return schedule;
  }
  schedule.reserve(static_cast<size_t>(
      spec.rps * static_cast<double>(spec.duration_ms) / 1000.0 * 1.5));

  Rng root(spec.seed);
  Rng arrivals = root.Fork(0x41525256);  // "ARRV"
  Rng shape = root.Fork(0x53485045);     // "SHPE"

  const double duration = static_cast<double>(spec.duration_ms);
  double t = 0.0;
  while (true) {
    // Rate per millisecond at the current point of the burst waveform.
    const double rate =
        spec.rps * (InBurst(spec, t) ? spec.burst_factor : 1.0) / 1000.0;
    t += arrivals.Exponential(rate);
    if (t >= duration) break;

    ScheduledRequest r;
    r.send_ms = static_cast<int64_t>(t);
    r.request.users.reserve(static_cast<size_t>(spec.users_per_request));
    for (int64_t u = 0; u < spec.users_per_request; ++u) {
      r.request.users.push_back(static_cast<graph::NodeId>(
          shape.Zipf(static_cast<uint64_t>(spec.num_users), spec.zipf_s)));
    }
    r.request.top_n =
        shape.UniformInt(static_cast<int64_t>(1),
                         std::max<int64_t>(1, spec.top_n));
    r.request.deadline_ms = shape.Bernoulli(spec.short_fraction)
                                ? spec.deadline_short_ms
                                : spec.deadline_long_ms;
    // Wide-event id = 1-based schedule index: a property of the
    // schedule, not of execution order, so the sampled-event set is
    // identical in virtual and wall mode at every thread count.
    r.request.request_id = static_cast<uint64_t>(schedule.size()) + 1;
    schedule.push_back(std::move(r));
  }
  return schedule;
}

}  // namespace privrec::loadgen
