// Load-run accounting and the BENCH_serve.json emitter.
//
// LatencyRecorder is a plain (non-atomic) histogram over the shared
// obs::LatencyBucketsMs() grid. The harness records into it directly so
// that results are identical whether or not the obs layer is compiled in
// (obs histograms become no-ops under PRIVREC_NO_OBS; the bench report
// must not).
//
// The JSON layout follows the BENCH_parallel.json / BENCH_artifact.json
// convention: a context block (git revision, library version, mode) so a
// committed record identifies the code it measured, the resolved spec,
// the measured results, and the SLO verdict.

#ifndef PRIVREC_LOADGEN_REPORT_H_
#define PRIVREC_LOADGEN_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "loadgen/schedule.h"
#include "obs/rolling_window.h"
#include "obs/snapshot.h"

namespace privrec::loadgen {

class LatencyRecorder {
 public:
  LatencyRecorder();

  void Observe(double ms);
  void Merge(const LatencyRecorder& other);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  // Quantile via obs::HistogramQuantile (linear interpolation within the
  // log-spaced bucket holding the target rank).
  double Quantile(double q) const;

  obs::HistogramSample Sample(const std::string& name) const;

 private:
  std::vector<double> bounds_;
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  double sum_ = 0.0;
};

struct LoadSummary {
  // Request accounting. scheduled = ok + shed + expired + other_errors.
  int64_t scheduled = 0;
  int64_t ok = 0;
  int64_t shed = 0;
  int64_t expired = 0;
  int64_t other_errors = 0;
  // Responses that carried the degraded global-average fallback tier
  // (subset of shed + expired).
  int64_t degraded = 0;

  int64_t correctness_violations = 0;
  std::string first_violation;

  // Scheduled-send -> resolution, for every request (0 for a request shed
  // in the same millisecond it was sent). ok_latency covers kOk only.
  LatencyRecorder latency;
  LatencyRecorder ok_latency;

  // Swap storm accounting. Pauses are wall-clock per Activate() call —
  // the one intentionally non-deterministic section of the report.
  int64_t swap_attempts = 0;
  int64_t swap_ok = 0;
  int64_t swap_rejected = 0;
  int64_t rollbacks = 0;
  LatencyRecorder swap_pause_ms;

  // Largest load-aware retry hint observed on a shed response.
  int64_t max_retry_after_ms = 0;

  // Virtual (or wall) makespan of the run and the derived rates.
  double makespan_ms = 0.0;
  double achieved_rps = 0.0;
  double shed_rate = 0.0;
  double rollback_rate = 0.0;

  // Fills the derived rate fields from the raw tallies.
  void Finalize();
};

struct SloBudget {
  // Latency ceilings over ALL responses, ms; < 0 disables a line.
  double p50_ms = -1.0;
  double p99_ms = -1.0;
  double p999_ms = -1.0;
  // Ceilings on shed / rollback fractions; < 0 disables.
  double max_shed_rate = -1.0;
  double max_rollback_rate = -1.0;
  // Zero-tolerance lines, always on unless explicitly relaxed.
  bool require_no_violations = true;
  int64_t min_ok = 1;
};

struct SloVerdict {
  bool pass = true;
  std::vector<std::string> failures;
};

SloVerdict EvaluateSlo(const SloBudget& budget,
                       const LoadSummary& summary);

// Telemetry side of the report: wide-event accounting plus the
// closed-window trajectory (rps / shed rate / quantiles per window) and
// burn-rate alerts, copied out of a serve::ServeTelemetry sink after the
// run is flushed. Optional — a null pointer renders "telemetry": null.
struct TelemetryReport {
  int64_t recorded = 0;        // every request seen by the sink
  int64_t sampled = 0;         // wide events kept by the sampler
  int64_t dropped = 0;         // events past the in-memory cap
  int64_t sample_every = 16;   // 1-in-K policy the run used
  int64_t window_ms = 250;     // rolling-window width
  double burn_rate = 0.0;      // final burn rate after the last window
  obs::WindowSeries series;    // closed windows + alerts
};

// Renders the full BENCH_serve.json document. `mode` is "virtual" or
// "wall"; `threads` the request-thread count (1 for virtual);
// swap_period_ms <= 0 means the storm was off. `shards` is the
// artifact layout the run served: 0 for monolithic .pvra, K > 0 for a
// K-shard .pvram set over the mmap zero-copy path. `telemetry`, when
// non-null, adds the per-window SLO trajectory and alert list.
std::string LoadReportJson(const LoadSpec& spec, int64_t swap_period_ms,
                           const LoadSummary& summary,
                           const SloBudget& budget,
                           const SloVerdict& verdict,
                           const std::string& mode, int64_t threads,
                           int64_t shards = 0,
                           const TelemetryReport* telemetry = nullptr);

}  // namespace privrec::loadgen

#endif  // PRIVREC_LOADGEN_REPORT_H_
