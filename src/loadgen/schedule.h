// Deterministic open-loop arrival schedules for the serving load harness.
//
// The schedule is computed IN FULL before any request is issued: every
// request gets an absolute send time on the run's virtual timeline, drawn
// from a Poisson process whose instantaneous rate follows the configured
// burst waveform. Because send times never depend on how fast the system
// under test responds, the generator cannot be back-pressured into
// coordinated omission — a slow server makes requests LATE (and the
// lateness is charged to their measured latency), it never makes the
// schedule thinner.
//
// Per-request shape (users, top_n, deadline class) is drawn from forked
// substreams of the same seed, so one (seed, spec) pair names exactly one
// workload, bit-for-bit, on every platform.

#ifndef PRIVREC_LOADGEN_SCHEDULE_H_
#define PRIVREC_LOADGEN_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "serve/runtime.h"

namespace privrec::loadgen {

struct LoadSpec {
  // Base arrival rate, requests per second (open loop, Poisson).
  double rps = 2000.0;
  // Virtual length of the arrival window; the run itself extends past it
  // until every issued request resolves.
  int64_t duration_ms = 2000;
  // Master seed: names the whole workload (arrivals + request shapes).
  uint64_t seed = 1;

  // User popularity: ids in [0, num_users) drawn Zipf(s); s = 0 is
  // uniform, s around 1 concentrates traffic on a hot head.
  int64_t num_users = 60;
  double zipf_s = 1.1;
  int64_t users_per_request = 4;

  // top_n is drawn uniformly in [1, top_n].
  int64_t top_n = 5;

  // Deadline mix: a `short_fraction` slice of traffic runs on the tight
  // budget, the rest on the long one.
  double short_fraction = 0.25;
  int64_t deadline_short_ms = 30;
  int64_t deadline_long_ms = 400;

  // Burst waveform: within every `burst_period_ms` window the first
  // `burst_duration_ms` run at rps * burst_factor. period <= 0 disables
  // bursts.
  double burst_factor = 4.0;
  int64_t burst_period_ms = 500;
  int64_t burst_duration_ms = 50;
};

struct ScheduledRequest {
  // Absolute send time on the virtual timeline (run starts at 0).
  int64_t send_ms = 0;
  serve::ServeRequest request;
};

// Materializes the full schedule, sorted by send time. Empty when
// rps <= 0 or duration_ms <= 0.
std::vector<ScheduledRequest> BuildSchedule(const LoadSpec& spec);

}  // namespace privrec::loadgen

#endif  // PRIVREC_LOADGEN_SCHEDULE_H_
