#include "loadgen/oracle.h"

#include <utility>

#include "core/recommendation.h"

namespace privrec::loadgen {

Result<std::unique_ptr<LoadOracle>> LoadOracle::Build(
    const std::vector<std::string>& artifact_paths,
    const serving::ServeSpec& spec) {
  if (spec.mechanism != "Cluster" && spec.mechanism != "Exact") {
    return Status::InvalidArgument(
        "load oracle requires a stateless serve mechanism (Cluster or "
        "Exact), got " +
        spec.mechanism);
  }
  std::unique_ptr<LoadOracle> oracle(new LoadOracle());
  for (const std::string& path : artifact_paths) {
    auto engine = serving::ServingEngine::Load(path);
    if (!engine.ok()) return engine.status();
    auto holder =
        std::make_unique<serving::ServingEngine>(std::move(*engine));
    auto recommender = serving::MakeServeRecommender(holder.get(), spec);
    if (!recommender.ok()) return recommender.status();
    const uint64_t seed = holder->model().provenance.seed;
    Generation& gen = oracle->generations_[seed];
    if (gen.engine != nullptr) {
      return Status::InvalidArgument(
          "two oracle artifacts share provenance seed " +
          std::to_string(seed) +
          "; generations would be indistinguishable");
    }
    gen.engine = std::move(holder);
    gen.recommender = std::move(*recommender);
    if (oracle->all_users_.empty()) {
      for (graph::NodeId u = 0; u < gen.engine->num_users(); ++u) {
        oracle->all_users_.push_back(u);
      }
    } else if (static_cast<int64_t>(oracle->all_users_.size()) !=
               gen.engine->num_users()) {
      return Status::InvalidArgument(
          "oracle artifacts disagree on user universe size");
    }
  }
  if (oracle->generations_.empty()) {
    return Status::InvalidArgument("load oracle needs >= 1 artifact");
  }
  return oracle;
}

const std::vector<core::RecommendationList>& LoadOracle::ListsFor(
    Generation& gen, int64_t top_n) {
  auto it = gen.lists.find(top_n);
  if (it == gen.lists.end()) {
    it = gen.lists
             .emplace(top_n,
                      gen.recommender->Recommend(all_users_, top_n).lists)
             .first;
  }
  return it->second;
}

const core::RecommendationList& LoadOracle::FallbackFor(Generation& gen,
                                                        int64_t top_n) {
  auto it = gen.fallback.find(top_n);
  if (it == gen.fallback.end()) {
    it = gen.fallback
             .emplace(top_n, core::TopNFromDense(
                                 gen.engine->global_average(), top_n))
             .first;
  }
  return it->second;
}

std::string LoadOracle::Check(const serve::ServeRequest& request,
                              const serve::ServeResponse& response) {
  // Statuses that never carry a ranked answer are out of scope here.
  if (response.status.code() != StatusCode::kOk &&
      response.status.code() != StatusCode::kResourceExhausted &&
      response.status.code() != StatusCode::kDeadlineExceeded) {
    return "";
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = generations_.find(response.artifact_seed);
  if (it == generations_.end()) {
    return "response from unknown artifact generation (seed " +
           std::to_string(response.artifact_seed) +
           "): a corrupt artifact became visible";
  }
  Generation& gen = it->second;

  if (response.status.ok()) {
    if (response.epoch <= 0) return "ok response without an epoch id";
    if (response.batch.lists.size() != request.users.size()) {
      return "ok batch has " + std::to_string(response.batch.lists.size()) +
             " lists for " + std::to_string(request.users.size()) +
             " users";
    }
    const auto& expected = ListsFor(gen, request.top_n);
    for (size_t i = 0; i < request.users.size(); ++i) {
      const auto u = static_cast<size_t>(request.users[i]);
      if (u >= expected.size()) {
        return "response user id out of the oracle universe";
      }
      if (response.batch.lists[i] != expected[u]) {
        return "torn or stale read: user " +
               std::to_string(request.users[i]) +
               " got bits that do not match generation seed " +
               std::to_string(response.artifact_seed);
      }
    }
    return "";
  }

  // Shed / expired: with the degraded fallback on, the answer must be the
  // serving epoch's exact global-average row at the requested depth.
  if (!response.degraded_fallback) return "";
  if (response.batch.lists.size() != request.users.size()) {
    return "fallback batch has wrong shape";
  }
  const core::RecommendationList& fallback =
      FallbackFor(gen, request.top_n);
  for (const core::RecommendationList& list : response.batch.lists) {
    if (list != fallback) {
      return "fallback ranking does not match the serving epoch's "
             "global-average row";
    }
  }
  for (const core::DegradationInfo& info : response.batch.degradation) {
    if (info.reason != core::DegradationReason::kLoadShed) {
      return "shed response missing the kLoadShed degradation tag";
    }
  }
  return "";
}

}  // namespace privrec::loadgen
