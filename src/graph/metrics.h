// Structural graph metrics used to validate the synthetic social graphs
// against the properties the paper leans on: the small-world property
// (Section 2.2's justification for 2-3-hop cutoffs, citing Newman 2001)
// and community-induced transitivity.

#ifndef PRIVREC_GRAPH_METRICS_H_
#define PRIVREC_GRAPH_METRICS_H_

#include <cstdint>

#include "graph/preference_graph.h"
#include "graph/social_graph.h"

namespace privrec::graph {

// Order-sensitive FNV-1a fingerprint of a (social, preference) graph pair:
// dimensions, every social edge, and every weighted preference edge feed
// the hash. Used as the artifact compatibility gate — a model built on one
// dataset must refuse to serve another. Not cryptographic.
uint64_t DatasetFingerprint(const SocialGraph& social,
                            const PreferenceGraph& preferences);

// Global clustering coefficient: 3 * #triangles / #connected-triples.
// 0 on graphs without triples.
double GlobalClusteringCoefficient(const SocialGraph& g);

// Average local clustering coefficient (Watts-Strogatz definition;
// degree < 2 nodes contribute 0).
double AverageLocalClusteringCoefficient(const SocialGraph& g);

struct PathLengthStats {
  // Mean shortest-path distance over sampled connected pairs.
  double average_distance = 0.0;
  // Largest distance observed from the sampled sources (a lower bound on
  // the diameter).
  int64_t observed_diameter = 0;
  int64_t sampled_sources = 0;
};

// BFS from `num_sources` random sources (exact when num_sources >=
// num_nodes); unreachable pairs are excluded.
PathLengthStats SampleShortestPaths(const SocialGraph& g,
                                    int64_t num_sources, uint64_t seed);

// Fraction of nodes within `hops` of u, averaged over sampled sources —
// the "reachable users explode after 2 hops" effect of Section 2.2.
double MeanNeighborhoodCoverage(const SocialGraph& g, int64_t hops,
                                int64_t num_sources, uint64_t seed);

}  // namespace privrec::graph

#endif  // PRIVREC_GRAPH_METRICS_H_
