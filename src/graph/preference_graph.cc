#include "graph/preference_graph.h"

#include <algorithm>
#include <cmath>

namespace privrec::graph {

PreferenceGraph PreferenceGraph::FromEdges(
    NodeId num_users, ItemId num_items,
    const std::vector<std::pair<NodeId, ItemId>>& edges) {
  std::vector<PreferenceEdge> weighted;
  weighted.reserve(edges.size());
  for (auto [u, i] : edges) weighted.push_back({u, i, 1.0});
  return Build(num_users, num_items, std::move(weighted),
               /*weighted=*/false);
}

PreferenceGraph PreferenceGraph::FromWeightedEdges(
    NodeId num_users, ItemId num_items,
    const std::vector<PreferenceEdge>& edges) {
  return Build(num_users, num_items, edges, /*weighted=*/true);
}

PreferenceGraph PreferenceGraph::Build(NodeId num_users, ItemId num_items,
                                       std::vector<PreferenceEdge> edges,
                                       bool weighted) {
  PRIVREC_CHECK(num_users >= 0 && num_items >= 0);
  for (const PreferenceEdge& e : edges) {
    PRIVREC_CHECK(e.user >= 0 && e.user < num_users);
    PRIVREC_CHECK(e.item >= 0 && e.item < num_items);
    PRIVREC_CHECK_MSG(e.weight > 0.0, "non-positive edge weight");
  }
  // Sort by (user, item, weight desc) so duplicates keep the largest
  // weight after unique-by-(user, item).
  std::sort(edges.begin(), edges.end(),
            [](const PreferenceEdge& a, const PreferenceEdge& b) {
              if (a.user != b.user) return a.user < b.user;
              if (a.item != b.item) return a.item < b.item;
              return a.weight > b.weight;
            });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const PreferenceEdge& a,
                             const PreferenceEdge& b) {
                            return a.user == b.user && a.item == b.item;
                          }),
              edges.end());

  PreferenceGraph g;
  g.num_users_ = num_users;
  g.num_items_ = num_items;
  g.weighted_ = weighted;
  g.max_weight_ = 1.0;
  for (const PreferenceEdge& e : edges) {
    g.max_weight_ = std::max(g.max_weight_, e.weight);
  }

  g.user_offsets_.assign(static_cast<size_t>(num_users) + 1, 0);
  g.item_offsets_.assign(static_cast<size_t>(num_items) + 1, 0);
  for (const PreferenceEdge& e : edges) {
    ++g.user_offsets_[static_cast<size_t>(e.user) + 1];
    ++g.item_offsets_[static_cast<size_t>(e.item) + 1];
  }
  for (size_t k = 1; k < g.user_offsets_.size(); ++k) {
    g.user_offsets_[k] += g.user_offsets_[k - 1];
  }
  for (size_t k = 1; k < g.item_offsets_.size(); ++k) {
    g.item_offsets_[k] += g.item_offsets_[k - 1];
  }

  g.user_items_.resize(edges.size());
  g.user_weights_.resize(edges.size());
  g.item_users_.resize(edges.size());
  g.item_weights_.resize(edges.size());
  std::vector<size_t> ucur(g.user_offsets_.begin(), g.user_offsets_.end() - 1);
  std::vector<size_t> icur(g.item_offsets_.begin(), g.item_offsets_.end() - 1);
  for (const PreferenceEdge& e : edges) {
    size_t up = ucur[static_cast<size_t>(e.user)]++;
    g.user_items_[up] = e.item;
    g.user_weights_[up] = e.weight;
    size_t ip = icur[static_cast<size_t>(e.item)]++;
    g.item_users_[ip] = e.user;
    g.item_weights_[ip] = e.weight;
  }
  // User-major sorted input => both orientations already sorted per row
  // (user rows by construction; item rows receive users in ascending order
  // because the outer scan is user-major).
  return g;
}

double PreferenceGraph::Weight(NodeId u, ItemId i) const {
  auto items = ItemsOf(u);
  auto it = std::lower_bound(items.begin(), items.end(), i);
  if (it == items.end() || *it != i) return 0.0;
  return WeightsOf(u)[static_cast<size_t>(it - items.begin())];
}

PreferenceGraph PreferenceGraph::WithEdge(NodeId u, ItemId i,
                                          double w) const {
  auto edges = WeightedEdges();
  std::erase_if(edges, [&](const PreferenceEdge& e) {
    return e.user == u && e.item == i;
  });
  edges.push_back({u, i, w});
  return Build(num_users_, num_items_, std::move(edges),
               weighted_ || w != 1.0);
}

PreferenceGraph PreferenceGraph::WithoutEdge(NodeId u, ItemId i) const {
  auto edges = WeightedEdges();
  std::erase_if(edges, [&](const PreferenceEdge& e) {
    return e.user == u && e.item == i;
  });
  return Build(num_users_, num_items_, std::move(edges), weighted_);
}

std::vector<PreferenceEdge> PreferenceGraph::WeightedEdges() const {
  std::vector<PreferenceEdge> out;
  out.reserve(user_items_.size());
  for (NodeId u = 0; u < num_users_; ++u) {
    auto items = ItemsOf(u);
    auto weights = WeightsOf(u);
    for (size_t k = 0; k < items.size(); ++k) {
      out.push_back({u, items[k], weights[k]});
    }
  }
  return out;
}

std::vector<std::pair<NodeId, ItemId>> PreferenceGraph::Edges() const {
  std::vector<std::pair<NodeId, ItemId>> out;
  out.reserve(user_items_.size());
  for (NodeId u = 0; u < num_users_; ++u) {
    for (ItemId i : ItemsOf(u)) out.emplace_back(u, i);
  }
  return out;
}

double PreferenceGraph::AverageItemDegree() const {
  if (num_items_ == 0) return 0.0;
  return static_cast<double>(num_edges()) / static_cast<double>(num_items_);
}

double PreferenceGraph::ItemDegreeStddev() const {
  if (num_items_ == 0) return 0.0;
  double mean = AverageItemDegree();
  double acc = 0.0;
  for (ItemId i = 0; i < num_items_; ++i) {
    double d = static_cast<double>(ItemDegree(i)) - mean;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(num_items_));
}

double PreferenceGraph::AverageUserDegree() const {
  if (num_users_ == 0) return 0.0;
  return static_cast<double>(num_edges()) / static_cast<double>(num_users_);
}

double PreferenceGraph::Sparsity() const {
  if (num_users_ == 0 || num_items_ == 0) return 1.0;
  return 1.0 - static_cast<double>(num_edges()) /
                   (static_cast<double>(num_users_) *
                    static_cast<double>(num_items_));
}

}  // namespace privrec::graph
