#include "graph/metrics.h"

#include <algorithm>
#include <bit>
#include <vector>

#include "common/random.h"
#include "graph/components.h"

namespace privrec::graph {

namespace {

inline uint64_t FnvMix(uint64_t h, uint64_t v) {
  // FNV-1a over the 8 bytes of v, little-endian.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

uint64_t DatasetFingerprint(const SocialGraph& social,
                            const PreferenceGraph& preferences) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis.
  h = FnvMix(h, static_cast<uint64_t>(social.num_nodes()));
  h = FnvMix(h, static_cast<uint64_t>(social.num_edges()));
  for (NodeId u = 0; u < social.num_nodes(); ++u) {
    for (NodeId v : social.Neighbors(u)) {
      h = FnvMix(h, static_cast<uint64_t>(u));
      h = FnvMix(h, static_cast<uint64_t>(v));
    }
  }
  h = FnvMix(h, static_cast<uint64_t>(preferences.num_users()));
  h = FnvMix(h, static_cast<uint64_t>(preferences.num_items()));
  h = FnvMix(h, static_cast<uint64_t>(preferences.num_edges()));
  for (NodeId u = 0; u < preferences.num_users(); ++u) {
    auto items = preferences.ItemsOf(u);
    auto weights = preferences.WeightsOf(u);
    for (size_t k = 0; k < items.size(); ++k) {
      h = FnvMix(h, static_cast<uint64_t>(items[k]));
      h = FnvMix(h, std::bit_cast<uint64_t>(weights[k]));
    }
  }
  return h;
}

namespace {

// Counts edges among the neighbors of u (each counted once).
int64_t TrianglesAt(const SocialGraph& g, NodeId u) {
  auto nbrs = g.Neighbors(u);
  int64_t links = 0;
  for (size_t a = 0; a < nbrs.size(); ++a) {
    for (size_t b = a + 1; b < nbrs.size(); ++b) {
      if (g.HasEdge(nbrs[a], nbrs[b])) ++links;
    }
  }
  return links;
}

}  // namespace

double GlobalClusteringCoefficient(const SocialGraph& g) {
  // 3 * triangles = sum over nodes of edges-among-neighbors; each triangle
  // is seen from its three corners. Triples = sum of C(deg, 2).
  int64_t closed = 0;
  int64_t triples = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    closed += TrianglesAt(g, u);
    int64_t d = g.Degree(u);
    triples += d * (d - 1) / 2;
  }
  if (triples == 0) return 0.0;
  return static_cast<double>(closed) / static_cast<double>(triples);
}

double AverageLocalClusteringCoefficient(const SocialGraph& g) {
  if (g.num_nodes() == 0) return 0.0;
  double acc = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    int64_t d = g.Degree(u);
    if (d < 2) continue;
    double possible = static_cast<double>(d * (d - 1)) / 2.0;
    acc += static_cast<double>(TrianglesAt(g, u)) / possible;
  }
  return acc / static_cast<double>(g.num_nodes());
}

PathLengthStats SampleShortestPaths(const SocialGraph& g,
                                    int64_t num_sources, uint64_t seed) {
  PathLengthStats stats;
  if (g.num_nodes() == 0) return stats;
  Rng rng(seed);
  std::vector<NodeId> sources;
  if (num_sources >= g.num_nodes()) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) sources.push_back(u);
  } else {
    for (uint64_t raw : rng.SampleWithoutReplacement(
             static_cast<uint64_t>(g.num_nodes()),
             static_cast<uint64_t>(num_sources))) {
      sources.push_back(static_cast<NodeId>(raw));
    }
  }
  double total = 0.0;
  int64_t pairs = 0;
  for (NodeId s : sources) {
    auto dist = BfsDistances(g, s, g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      int64_t d = dist[static_cast<size_t>(v)];
      if (d <= 0) continue;  // unreachable or self
      total += static_cast<double>(d);
      ++pairs;
      stats.observed_diameter = std::max(stats.observed_diameter, d);
    }
  }
  stats.sampled_sources = static_cast<int64_t>(sources.size());
  stats.average_distance =
      pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
  return stats;
}

double MeanNeighborhoodCoverage(const SocialGraph& g, int64_t hops,
                                int64_t num_sources, uint64_t seed) {
  PRIVREC_CHECK(hops >= 0);
  if (g.num_nodes() == 0) return 0.0;
  Rng rng(seed);
  std::vector<NodeId> sources;
  if (num_sources >= g.num_nodes()) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) sources.push_back(u);
  } else {
    for (uint64_t raw : rng.SampleWithoutReplacement(
             static_cast<uint64_t>(g.num_nodes()),
             static_cast<uint64_t>(num_sources))) {
      sources.push_back(static_cast<NodeId>(raw));
    }
  }
  double acc = 0.0;
  for (NodeId s : sources) {
    auto dist = BfsDistances(g, s, hops);
    int64_t reached = 0;
    for (int64_t d : dist) {
      if (d > 0) ++reached;
    }
    acc += static_cast<double>(reached) /
           static_cast<double>(g.num_nodes());
  }
  return acc / static_cast<double>(sources.size());
}

}  // namespace privrec::graph
