// PreferenceGraph: the paper's G_p = (U, I, E_p) — a bipartite graph of
// directed preference edges from users to items (Definition 2).
//
// The paper's main model is unweighted (w(u, i) = 1); its stated
// extension — weighted edges such as ratings — is supported too: build
// with FromWeightedEdges and the recommenders automatically scale their
// sensitivities by max_weight() (one edge can shift any aggregate by at
// most its largest allowed weight).
//
// This is the *private* input: only the DP mechanism stages of the
// recommenders (and the non-private ExactRecommender used as the accuracy
// reference) may read it.
//
// Both orientations are stored: user -> items (for utility queries that
// scan a user's preferences) and item -> users (for per-item aggregation in
// Algorithm 1 and the attack analyses).

#ifndef PRIVREC_GRAPH_PREFERENCE_GRAPH_H_
#define PRIVREC_GRAPH_PREFERENCE_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "graph/ids.h"
#include "graph/social_graph.h"

namespace privrec::graph {

// One weighted preference edge (used by the weighted builder).
struct PreferenceEdge {
  NodeId user;
  ItemId item;
  double weight;

  friend bool operator==(const PreferenceEdge&,
                         const PreferenceEdge&) = default;
};

class PreferenceGraph {
 public:
  PreferenceGraph() = default;

  // Builds an unweighted graph from (user, item) pairs; duplicates are
  // collapsed. Every edge has weight 1 and max_weight() == 1.
  static PreferenceGraph FromEdges(
      NodeId num_users, ItemId num_items,
      const std::vector<std::pair<NodeId, ItemId>>& edges);

  // Builds a weighted graph. Weights must be positive; duplicate (user,
  // item) pairs keep the largest weight. max_weight() is the largest
  // weight present (at least 1 so unweighted-style sensitivities remain
  // valid on empty graphs).
  static PreferenceGraph FromWeightedEdges(
      NodeId num_users, ItemId num_items,
      const std::vector<PreferenceEdge>& edges);

  NodeId num_users() const { return num_users_; }
  ItemId num_items() const { return num_items_; }
  int64_t num_edges() const { return static_cast<int64_t>(user_items_.size()); }

  // Items preferred by user u (sorted ascending).
  std::span<const ItemId> ItemsOf(NodeId u) const {
    PRIVREC_DCHECK(u >= 0 && u < num_users_);
    return {user_items_.data() + user_offsets_[static_cast<size_t>(u)],
            user_items_.data() + user_offsets_[static_cast<size_t>(u) + 1]};
  }

  // Weights aligned with ItemsOf(u).
  std::span<const double> WeightsOf(NodeId u) const {
    PRIVREC_DCHECK(u >= 0 && u < num_users_);
    return {user_weights_.data() + user_offsets_[static_cast<size_t>(u)],
            user_weights_.data() +
                user_offsets_[static_cast<size_t>(u) + 1]};
  }

  // Users who prefer item i (sorted ascending).
  std::span<const NodeId> UsersOf(ItemId i) const {
    PRIVREC_DCHECK(i >= 0 && i < num_items_);
    return {item_users_.data() + item_offsets_[static_cast<size_t>(i)],
            item_users_.data() + item_offsets_[static_cast<size_t>(i) + 1]};
  }

  // Weights aligned with UsersOf(i).
  std::span<const double> ItemWeights(ItemId i) const {
    PRIVREC_DCHECK(i >= 0 && i < num_items_);
    return {item_weights_.data() + item_offsets_[static_cast<size_t>(i)],
            item_weights_.data() +
                item_offsets_[static_cast<size_t>(i) + 1]};
  }

  int64_t UserDegree(NodeId u) const {
    return static_cast<int64_t>(ItemsOf(u).size());
  }
  int64_t ItemDegree(ItemId i) const {
    return static_cast<int64_t>(UsersOf(i).size());
  }

  // w(u, i): the edge weight, or 0 if the edge is absent.
  double Weight(NodeId u, ItemId i) const;

  // The largest edge weight present (>= 1.0 by convention): the per-edge
  // sensitivity bound the DP mechanisms calibrate against.
  double max_weight() const { return max_weight_; }
  bool is_weighted() const { return weighted_; }

  // Returns a copy with edge (u, i) of weight `w` added (replacing any
  // existing weight). Used by privacy tests to build neighboring
  // databases.
  PreferenceGraph WithEdge(NodeId u, ItemId i, double w = 1.0) const;
  // Returns a copy with edge (u, i) removed (no-op if absent).
  PreferenceGraph WithoutEdge(NodeId u, ItemId i) const;

  // All edges in user-major order (weight 1 for unweighted graphs).
  std::vector<PreferenceEdge> WeightedEdges() const;
  // Unweighted view of the edges.
  std::vector<std::pair<NodeId, ItemId>> Edges() const;

  double AverageItemDegree() const;
  double ItemDegreeStddev() const;
  double AverageUserDegree() const;

  // 1 - |E_p| / (|U| * |I|), as reported in Table 1.
  double Sparsity() const;

 private:
  static PreferenceGraph Build(NodeId num_users, ItemId num_items,
                               std::vector<PreferenceEdge> edges,
                               bool weighted);

  NodeId num_users_ = 0;
  ItemId num_items_ = 0;
  bool weighted_ = false;
  double max_weight_ = 1.0;
  std::vector<size_t> user_offsets_ = {0};
  std::vector<ItemId> user_items_;
  std::vector<double> user_weights_;
  std::vector<size_t> item_offsets_ = {0};
  std::vector<NodeId> item_users_;
  std::vector<double> item_weights_;
};

}  // namespace privrec::graph

#endif  // PRIVREC_GRAPH_PREFERENCE_GRAPH_H_
