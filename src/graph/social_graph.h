// SocialGraph: the paper's G_s = (U, E_s) — a simple undirected graph over
// user nodes, stored in CSR form for cache-friendly neighborhood scans.
//
// The social graph is *public* in the paper's threat model: similarity
// measures and the clustering phase read it freely, and no DP noise is ever
// derived from it.

#ifndef PRIVREC_GRAPH_SOCIAL_GRAPH_H_
#define PRIVREC_GRAPH_SOCIAL_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "graph/ids.h"

namespace privrec::graph {

class SocialGraph {
 public:
  // Builds an empty graph with `num_nodes` isolated nodes.
  SocialGraph() = default;

  // Builds from an undirected edge list. Self loops are rejected; duplicate
  // edges (in either orientation) are deduplicated. Endpoints must be in
  // [0, num_nodes).
  static SocialGraph FromEdges(
      NodeId num_nodes, const std::vector<std::pair<NodeId, NodeId>>& edges);

  NodeId num_nodes() const { return num_nodes_; }
  // Number of undirected edges |E_s|.
  int64_t num_edges() const { return static_cast<int64_t>(targets_.size()) / 2; }

  // Sorted neighbor list of u.
  std::span<const NodeId> Neighbors(NodeId u) const {
    PRIVREC_DCHECK(u >= 0 && u < num_nodes_);
    return {targets_.data() + offsets_[static_cast<size_t>(u)],
            targets_.data() + offsets_[static_cast<size_t>(u) + 1]};
  }

  int64_t Degree(NodeId u) const {
    PRIVREC_DCHECK(u >= 0 && u < num_nodes_);
    return static_cast<int64_t>(offsets_[static_cast<size_t>(u) + 1] -
                                offsets_[static_cast<size_t>(u)]);
  }

  // O(log deg(u)) membership test.
  bool HasEdge(NodeId u, NodeId v) const;

  // All undirected edges, each reported once with first < second.
  std::vector<std::pair<NodeId, NodeId>> Edges() const;

  double AverageDegree() const;
  double DegreeStddev() const;
  NodeId MaxDegree() const;

 private:
  NodeId num_nodes_ = 0;
  std::vector<size_t> offsets_ = {0};
  std::vector<NodeId> targets_;
};

}  // namespace privrec::graph

#endif  // PRIVREC_GRAPH_SOCIAL_GRAPH_H_
