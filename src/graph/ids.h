// Identifier types shared across the graph layer and everything above it.
//
// Split out of social_graph.h / preference_graph.h so that code which only
// speaks in ids — notably the serving layer (src/artifact), which must not
// see the private PreferenceGraph even transitively — can name users and
// items without pulling in any graph container.

#ifndef PRIVREC_GRAPH_IDS_H_
#define PRIVREC_GRAPH_IDS_H_

#include <cstdint>

namespace privrec::graph {

// A user node of the social graph G_s (and of the user side of G_p).
using NodeId = int64_t;

// An item node of the bipartite preference graph G_p.
using ItemId = int64_t;

}  // namespace privrec::graph

#endif  // PRIVREC_GRAPH_IDS_H_
