#include "graph/generators/barabasi_albert.h"

#include <unordered_set>
#include <utility>
#include <vector>

#include "common/random.h"

namespace privrec::graph {

SocialGraph GenerateBarabasiAlbert(NodeId num_nodes, int64_t edges_per_node,
                                   uint64_t seed) {
  PRIVREC_CHECK(edges_per_node >= 1);
  PRIVREC_CHECK(num_nodes > edges_per_node);
  Rng rng(seed);

  std::vector<std::pair<NodeId, NodeId>> edges;
  // `targets` holds one entry per edge endpoint, so sampling a uniform
  // element is degree-proportional sampling.
  std::vector<NodeId> endpoints;

  NodeId seed_size = static_cast<NodeId>(edges_per_node) + 1;
  for (NodeId u = 0; u < seed_size; ++u) {
    for (NodeId v = u + 1; v < seed_size; ++v) {
      edges.emplace_back(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  for (NodeId u = seed_size; u < num_nodes; ++u) {
    std::unordered_set<NodeId> chosen;
    while (static_cast<int64_t>(chosen.size()) < edges_per_node) {
      NodeId v = endpoints[rng.UniformInt(endpoints.size())];
      chosen.insert(v);
    }
    for (NodeId v : chosen) {
      edges.emplace_back(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return SocialGraph::FromEdges(num_nodes, edges);
}

}  // namespace privrec::graph
