// Degree-corrected planted-partition generator (LFR-style).
//
// Produces social graphs with (a) a controllable community structure, (b) a
// heavy-tailed degree distribution, and (c) optional tiny extra components
// — the three structural properties of the paper's Last.fm / Flixster
// social graphs that drive the behaviour of the privacy framework
// (community clustering quality, high-degree sensitivity, low-degree
// approximation error).
//
// Model: nodes are assigned to communities with sizes proportional to a
// Zipf weight; each node draws a target degree from a truncated power law
// scaled to the requested mean; edges are realized by degree-proportional
// stub matching, where a fraction (1 - mixing) of each node's stubs attach
// within its community and the rest attach globally. Multi-edges and self
// loops are discarded (the realized mean degree is therefore slightly below
// target; the factory in src/data compensates).

#ifndef PRIVREC_GRAPH_GENERATORS_PLANTED_PARTITION_H_
#define PRIVREC_GRAPH_GENERATORS_PLANTED_PARTITION_H_

#include <cstdint>
#include <vector>

#include "graph/social_graph.h"

namespace privrec::graph {

struct PlantedPartitionOptions {
  NodeId num_nodes = 1000;
  int64_t num_communities = 16;
  // Zipf exponent for community sizes (0 = equal sizes).
  double community_size_skew = 0.6;
  // Target mean degree of the main component.
  double mean_degree = 13.4;
  // Power-law exponent for the degree distribution (larger = lighter tail).
  double degree_exponent = 2.5;
  // Max degree cap as a multiple of the mean (controls the tail).
  double max_degree_factor = 15.0;
  // Fraction of each node's edges that leave its community (the LFR mu).
  double mixing = 0.15;
  // Optional second (finer) level: each community is split into this many
  // sub-communities. Sub-structure is kept weak enough (via sub_mixing)
  // that modularity clustering resolves only the coarse level — real
  // social graphs have taste groups finer than their detectable
  // communities, which is what gives the paper's framework its
  // approximation error.
  int64_t sub_communities_per_community = 1;
  // Among a node's intra-community edges: the fraction that leave its
  // sub-community (only meaningful when sub_communities_per_community
  // > 1; higher = weaker sub-structure).
  double sub_mixing = 0.5;
  // Number of extra tiny components appended after the main graph.
  int64_t num_small_components = 0;
  // Size range for the tiny components (inclusive).
  int64_t small_component_min_size = 2;
  int64_t small_component_max_size = 7;
  uint64_t seed = 42;
};

struct PlantedPartitionResult {
  SocialGraph graph;
  // Ground-truth community of each node; tiny extra components get their
  // own community ids after the planted ones.
  std::vector<int64_t> community_of;
  int64_t num_communities = 0;
  // Fine-level ground truth (== community_of when
  // sub_communities_per_community is 1). Tiny components keep one
  // sub-community each.
  std::vector<int64_t> sub_community_of;
  int64_t num_sub_communities = 0;
};

PlantedPartitionResult GeneratePlantedPartition(
    const PlantedPartitionOptions& options);

}  // namespace privrec::graph

#endif  // PRIVREC_GRAPH_GENERATORS_PLANTED_PARTITION_H_
