#include "graph/generators/preference_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/random.h"

namespace privrec::graph {

namespace {

// A lazily materialized random permutation of [0, n): community popularity
// orderings only ever touch the head of the permutation (Zipf mass is
// concentrated), so we generate prefix elements on demand via Fisher-Yates.
class LazyPermutation {
 public:
  LazyPermutation(int64_t n, Rng rng) : n_(n), rng_(rng) {}

  int64_t Get(int64_t rank) {
    PRIVREC_DCHECK(rank >= 0 && rank < n_);
    while (static_cast<int64_t>(materialized_.size()) <= rank) {
      int64_t k = static_cast<int64_t>(materialized_.size());
      // Choose the k-th element uniformly from the not-yet-used values.
      int64_t pick = static_cast<int64_t>(
          rng_.UniformInt(static_cast<uint64_t>(n_ - k)));
      materialized_.push_back(ValueAt(k, pick));
    }
    return materialized_[static_cast<size_t>(rank)];
  }

 private:
  // Virtual Fisher-Yates: position k holds swaps_[k] if swapped, else k.
  int64_t ValueAt(int64_t k, int64_t pick) {
    int64_t idx = k + pick;
    int64_t value = Lookup(idx);
    // Move the value at position k into slot idx (classic swap).
    swaps_[idx] = Lookup(k);
    return value;
  }
  int64_t Lookup(int64_t idx) {
    auto it = swaps_.find(idx);
    return it == swaps_.end() ? idx : it->second;
  }

  int64_t n_;
  Rng rng_;
  std::vector<int64_t> materialized_;
  std::unordered_map<int64_t, int64_t> swaps_;
};

}  // namespace

PreferenceGraph GeneratePreferences(
    const std::vector<int64_t>& community_of,
    const PreferenceGeneratorOptions& options) {
  PRIVREC_CHECK(options.num_items > 0);
  PRIVREC_CHECK(options.homophily >= 0.0 && options.homophily <= 1.0);
  PRIVREC_CHECK(options.personal_taste >= 0.0 &&
                options.personal_taste <= 1.0);
  const NodeId num_users = static_cast<NodeId>(community_of.size());
  Rng rng(options.seed);

  int64_t num_communities = 0;
  for (int64_t c : community_of) {
    PRIVREC_CHECK(c >= 0);
    num_communities = std::max(num_communities, c + 1);
  }

  // One lazily-built popularity permutation per community. The global
  // ordering is the identity (item 0 is globally most popular).
  std::vector<LazyPermutation> community_order;
  community_order.reserve(static_cast<size_t>(num_communities));
  for (int64_t c = 0; c < num_communities; ++c) {
    community_order.emplace_back(options.num_items,
                                 rng.Fork(0x9000 + static_cast<uint64_t>(c)));
  }

  std::vector<std::pair<NodeId, ItemId>> edges;
  edges.reserve(static_cast<size_t>(
      static_cast<double>(num_users) * options.mean_prefs_per_user));
  std::unordered_set<ItemId> chosen;
  for (NodeId u = 0; u < num_users; ++u) {
    double want = rng.Normal(options.mean_prefs_per_user,
                             options.stddev_prefs_per_user);
    int64_t k = std::clamp<int64_t>(static_cast<int64_t>(std::llround(want)),
                                    1, options.num_items);
    chosen.clear();
    int64_t c = community_of[static_cast<size_t>(u)];
    // The user's private taste ordering (discarded after this user).
    LazyPermutation personal(options.num_items,
                             rng.Fork(0xA000 + static_cast<uint64_t>(u)));
    // Rejection loop with a guard: at most 50x oversampling before falling
    // back to sequential fill (only reachable for k close to num_items).
    int64_t attempts = 0;
    const int64_t max_attempts = 50 * k + 100;
    const int64_t catalog =
        options.community_catalog_size > 0
            ? std::min<int64_t>(options.community_catalog_size,
                                options.num_items)
            : options.num_items;
    while (static_cast<int64_t>(chosen.size()) < k &&
           attempts < max_attempts) {
      ++attempts;
      ItemId item;
      if (rng.Bernoulli(options.personal_taste)) {
        item = personal.Get(static_cast<int64_t>(
            rng.Zipf(static_cast<uint64_t>(options.num_items),
                     options.popularity_skew)));
      } else if (rng.Bernoulli(options.homophily)) {
        item = community_order[static_cast<size_t>(c)].Get(
            static_cast<int64_t>(rng.Zipf(static_cast<uint64_t>(catalog),
                                          options.popularity_skew)));
      } else {
        // Global ordering = identity.
        item = static_cast<int64_t>(
            rng.Zipf(static_cast<uint64_t>(options.num_items),
                     options.popularity_skew));
      }
      chosen.insert(item);
    }
    for (ItemId i = 0; static_cast<int64_t>(chosen.size()) < k &&
                       i < options.num_items;
         ++i) {
      chosen.insert(i);
    }
    for (ItemId i : chosen) edges.emplace_back(u, i);
  }
  if (options.max_rating <= 0) {
    return PreferenceGraph::FromEdges(num_users, options.num_items, edges);
  }
  // Weighted variant: ratings skewed high, as in real rating datasets.
  std::vector<PreferenceEdge> weighted;
  weighted.reserve(edges.size());
  for (auto [u, i] : edges) {
    int64_t a = rng.UniformInt(1, options.max_rating);
    int64_t b = rng.UniformInt(1, options.max_rating);
    weighted.push_back({u, i, static_cast<double>(std::max(a, b))});
  }
  return PreferenceGraph::FromWeightedEdges(num_users, options.num_items,
                                            weighted);
}

}  // namespace privrec::graph
