#include "graph/generators/planted_partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <utility>

#include "common/random.h"

namespace privrec::graph {

namespace {

// Allocates `total` node slots to `parts` communities proportionally to
// Zipf weights 1/(c+1)^skew, with a minimum size of 3, using largest
// remainders.
std::vector<int64_t> CommunitySizes(int64_t total, int64_t parts,
                                    double skew) {
  PRIVREC_CHECK(parts >= 1);
  PRIVREC_CHECK(total >= 3 * parts);
  std::vector<double> weights(static_cast<size_t>(parts));
  double sum = 0.0;
  for (int64_t c = 0; c < parts; ++c) {
    weights[static_cast<size_t>(c)] =
        1.0 / std::pow(static_cast<double>(c + 1), skew);
    sum += weights[static_cast<size_t>(c)];
  }
  std::vector<int64_t> sizes(static_cast<size_t>(parts), 3);
  int64_t remaining = total - 3 * parts;
  std::vector<double> frac(static_cast<size_t>(parts));
  int64_t assigned = 0;
  for (int64_t c = 0; c < parts; ++c) {
    double share =
        weights[static_cast<size_t>(c)] / sum * static_cast<double>(remaining);
    int64_t whole = static_cast<int64_t>(share);
    sizes[static_cast<size_t>(c)] += whole;
    frac[static_cast<size_t>(c)] = share - static_cast<double>(whole);
    assigned += whole;
  }
  // Distribute leftovers by largest fractional part.
  std::vector<int64_t> order(static_cast<size_t>(parts));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return frac[static_cast<size_t>(a)] > frac[static_cast<size_t>(b)];
  });
  for (int64_t k = 0; k < remaining - assigned; ++k) {
    ++sizes[static_cast<size_t>(order[static_cast<size_t>(k) %
                                      order.size()])];
  }
  return sizes;
}

// Pairs up stubs (node ids, one entry per half-edge) into distinct edges.
// Self loops and duplicates are not realized; stubs they would have used
// are re-matched in further rounds so the realized degree sequence stays
// close to the target (plain one-shot matching loses 10-20% of the edges
// on heavy-tailed sequences).
void MatchStubs(std::vector<NodeId> stubs, Rng& rng,
                std::set<std::pair<NodeId, NodeId>>* edges) {
  for (int round = 0; round < 4 && stubs.size() >= 2; ++round) {
    rng.Shuffle(stubs);
    std::vector<NodeId> unmatched;
    for (size_t k = 0; k + 1 < stubs.size(); k += 2) {
      NodeId a = stubs[k];
      NodeId b = stubs[k + 1];
      if (a == b) {
        unmatched.push_back(a);
        unmatched.push_back(b);
        continue;
      }
      auto key = std::make_pair(std::min(a, b), std::max(a, b));
      if (!edges->insert(key).second) {
        unmatched.push_back(a);
        unmatched.push_back(b);
      }
    }
    if (stubs.size() % 2 == 1) unmatched.push_back(stubs.back());
    stubs = std::move(unmatched);
  }
}

}  // namespace

PlantedPartitionResult GeneratePlantedPartition(
    const PlantedPartitionOptions& options) {
  PRIVREC_CHECK(options.num_nodes > 0);
  PRIVREC_CHECK(options.mixing >= 0.0 && options.mixing <= 1.0);
  PRIVREC_CHECK(options.mean_degree >= 1.0);
  PRIVREC_CHECK(options.degree_exponent > 1.0);
  Rng rng(options.seed);

  // Carve out the tiny components first.
  std::vector<int64_t> small_sizes;
  int64_t small_total = 0;
  for (int64_t k = 0; k < options.num_small_components; ++k) {
    int64_t size = rng.UniformInt(options.small_component_min_size,
                                  options.small_component_max_size);
    small_sizes.push_back(size);
    small_total += size;
  }
  int64_t main_nodes = options.num_nodes - small_total;
  PRIVREC_CHECK_MSG(main_nodes >= 3 * options.num_communities,
                    "too many tiny components for the requested size");

  std::vector<int64_t> sizes =
      CommunitySizes(main_nodes, options.num_communities,
                     options.community_size_skew);

  PlantedPartitionResult result;
  result.community_of.resize(static_cast<size_t>(options.num_nodes));
  result.sub_community_of.resize(static_cast<size_t>(options.num_nodes));
  std::vector<std::vector<NodeId>> members(
      static_cast<size_t>(options.num_communities));
  // Fine level: contiguous equal chunks within each community (so sub
  // membership correlates with graph proximity once edges favor subs).
  std::vector<int64_t> sub_sizes;  // size of each sub-community
  {
    PRIVREC_CHECK(options.sub_communities_per_community >= 1);
    PRIVREC_CHECK(options.sub_mixing >= 0.0 && options.sub_mixing <= 1.0);
    NodeId next = 0;
    int64_t next_sub = 0;
    for (int64_t c = 0; c < options.num_communities; ++c) {
      int64_t size = sizes[static_cast<size_t>(c)];
      // Subs of at least 3 members.
      int64_t subs = std::min<int64_t>(
          options.sub_communities_per_community, std::max<int64_t>(1, size / 3));
      for (int64_t k = 0; k < size; ++k) {
        result.community_of[static_cast<size_t>(next)] = c;
        int64_t local_sub = std::min<int64_t>(k * subs / size, subs - 1);
        result.sub_community_of[static_cast<size_t>(next)] =
            next_sub + local_sub;
        members[static_cast<size_t>(c)].push_back(next);
        ++next;
      }
      // Sub sizes by counting (robust to the rounding rule).
      std::vector<int64_t> counts(static_cast<size_t>(subs), 0);
      for (int64_t k = 0; k < size; ++k) {
        ++counts[static_cast<size_t>(
            std::min<int64_t>(k * subs / size, subs - 1))];
      }
      for (int64_t x : counts) sub_sizes.push_back(x);
      next_sub += subs;
    }
    result.num_sub_communities = next_sub;
  }

  // Degree targets: truncated Pareto scaled to the requested mean.
  const double gamma = options.degree_exponent;
  const double dmax =
      std::max(2.0, options.mean_degree * options.max_degree_factor);
  std::vector<double> raw(static_cast<size_t>(main_nodes));
  double raw_sum = 0.0;
  for (int64_t u = 0; u < main_nodes; ++u) {
    double x = std::pow(1.0 - rng.UniformDouble(), -1.0 / (gamma - 1.0));
    x = std::min(x, dmax);
    raw[static_cast<size_t>(u)] = x;
    raw_sum += x;
  }
  // Realize the degree sequence for a given target mean: clamp against
  // community capacity (a node cannot have more in-community neighbors
  // than its community has other members, plus its external budget), split
  // stubs internal/external, and match. Both the clamping and the
  // duplicate-discarding matching lose degree mass, so an outer feedback
  // loop below re-runs with a boosted target until the realized mean is
  // close.
  auto realize = [&](double target_mean) {
    double scale = target_mean * static_cast<double>(main_nodes) / raw_sum;
    std::vector<int64_t> degree(static_cast<size_t>(main_nodes));
    for (int iteration = 0; iteration < 16; ++iteration) {
      int64_t total = 0;
      for (int64_t u = 0; u < main_nodes; ++u) {
        int64_t d = static_cast<int64_t>(
            std::llround(raw[static_cast<size_t>(u)] * scale));
        d = std::max<int64_t>(1, d);
        int64_t comm = result.community_of[static_cast<size_t>(u)];
        int64_t comm_cap =
            sizes[static_cast<size_t>(comm)] - 1 +
            static_cast<int64_t>(options.mixing * static_cast<double>(d)) +
            1;
        degree[static_cast<size_t>(u)] = std::min(d, comm_cap);
        total += degree[static_cast<size_t>(u)];
      }
      double realized =
          static_cast<double>(total) / static_cast<double>(main_nodes);
      double error = realized / target_mean;
      if (error > 0.99 && error < 1.01) break;
      double next = scale * (target_mean / realized);
      // Give up growing once the caps absorb everything.
      if (next > 64.0 * scale || !std::isfinite(next)) break;
      scale = next;
    }

    std::set<std::pair<NodeId, NodeId>> realized_edges;
    std::vector<NodeId> external_stubs;
    // Per-sub stub pools (only used when sub-structure is enabled).
    const bool has_subs = options.sub_communities_per_community > 1;
    std::vector<std::vector<NodeId>> sub_stub_pools(
        has_subs ? static_cast<size_t>(result.num_sub_communities) : 0);
    for (int64_t c = 0; c < options.num_communities; ++c) {
      std::vector<NodeId> internal_stubs;
      for (NodeId u : members[static_cast<size_t>(c)]) {
        int64_t d = degree[static_cast<size_t>(u)];
        int64_t ext = static_cast<int64_t>(
            std::llround(options.mixing * static_cast<double>(d)));
        int64_t internal = d - ext;
        // Clamp internal stubs to what the community can absorb.
        internal = std::min<int64_t>(
            internal, sizes[static_cast<size_t>(c)] - 1);
        int64_t sub_internal = 0;
        if (has_subs) {
          int64_t sub = result.sub_community_of[static_cast<size_t>(u)];
          sub_internal = static_cast<int64_t>(std::llround(
              (1.0 - options.sub_mixing) * static_cast<double>(internal)));
          sub_internal = std::min<int64_t>(
              sub_internal, sub_sizes[static_cast<size_t>(sub)] - 1);
          for (int64_t k = 0; k < sub_internal; ++k) {
            sub_stub_pools[static_cast<size_t>(sub)].push_back(u);
          }
        }
        for (int64_t k = 0; k < internal - sub_internal; ++k) {
          internal_stubs.push_back(u);
        }
        for (int64_t k = 0; k < ext; ++k) external_stubs.push_back(u);
      }
      MatchStubs(std::move(internal_stubs), rng, &realized_edges);
    }
    for (auto& pool : sub_stub_pools) {
      MatchStubs(std::move(pool), rng, &realized_edges);
    }
    MatchStubs(std::move(external_stubs), rng, &realized_edges);
    return realized_edges;
  };

  std::set<std::pair<NodeId, NodeId>> edges = realize(options.mean_degree);
  for (int feedback = 0; feedback < 4; ++feedback) {
    double realized_mean = 2.0 * static_cast<double>(edges.size()) /
                           static_cast<double>(main_nodes);
    double ratio = realized_mean / options.mean_degree;
    if (ratio > 0.97) break;
    edges = realize(options.mean_degree * options.mean_degree /
                    realized_mean);
  }

  // Guarantee no isolated main nodes (stub matching can strand degree-1
  // nodes when their partner duplicates): connect any isolated node to a
  // random member of its community.
  {
    std::vector<int64_t> seen_degree(static_cast<size_t>(main_nodes), 0);
    for (auto [a, b] : edges) {
      if (a < main_nodes) ++seen_degree[static_cast<size_t>(a)];
      if (b < main_nodes) ++seen_degree[static_cast<size_t>(b)];
    }
    for (int64_t u = 0; u < main_nodes; ++u) {
      if (seen_degree[static_cast<size_t>(u)] > 0) continue;
      int64_t c = result.community_of[static_cast<size_t>(u)];
      const auto& comm = members[static_cast<size_t>(c)];
      if (comm.size() < 2) continue;
      NodeId v;
      do {
        v = comm[rng.UniformInt(comm.size())];
      } while (v == u);
      edges.emplace(std::min(u, v), std::max(u, v));
    }
  }

  // Tiny components: random spanning tree plus one extra edge when size
  // permits (mimics the small 2-7 node components in HetRec Last.fm).
  int64_t next_comm = options.num_communities;
  int64_t next_sub_id = result.num_sub_communities;
  NodeId next_node = main_nodes;
  for (int64_t size : small_sizes) {
    NodeId base = next_node;
    for (int64_t k = 0; k < size; ++k) {
      result.community_of[static_cast<size_t>(base + k)] = next_comm;
      result.sub_community_of[static_cast<size_t>(base + k)] = next_sub_id;
    }
    ++next_sub_id;
    for (int64_t k = 1; k < size; ++k) {
      NodeId parent = base + static_cast<NodeId>(rng.UniformInt(
                                 static_cast<uint64_t>(k)));
      edges.emplace(std::min(base + k, parent), std::max(base + k, parent));
    }
    if (size >= 4 && rng.Bernoulli(0.5)) {
      NodeId a = base + static_cast<NodeId>(
                            rng.UniformInt(static_cast<uint64_t>(size)));
      NodeId b = base + static_cast<NodeId>(
                            rng.UniformInt(static_cast<uint64_t>(size)));
      if (a != b) edges.emplace(std::min(a, b), std::max(a, b));
    }
    next_node += size;
    ++next_comm;
  }

  result.graph = SocialGraph::FromEdges(
      options.num_nodes,
      std::vector<std::pair<NodeId, NodeId>>(edges.begin(), edges.end()));
  result.num_communities = next_comm;
  result.num_sub_communities = next_sub_id;
  return result;
}

}  // namespace privrec::graph
