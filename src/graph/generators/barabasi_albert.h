// Barabási–Albert preferential-attachment generator: scale-free degree
// distribution, used in tests and for high-degree-skew ablations.

#ifndef PRIVREC_GRAPH_GENERATORS_BARABASI_ALBERT_H_
#define PRIVREC_GRAPH_GENERATORS_BARABASI_ALBERT_H_

#include <cstdint>

#include "graph/social_graph.h"

namespace privrec::graph {

// Starts from a small clique of `edges_per_node + 1` nodes, then attaches
// each new node to `edges_per_node` distinct existing nodes chosen with
// probability proportional to degree. Requires
// num_nodes > edges_per_node >= 1.
SocialGraph GenerateBarabasiAlbert(NodeId num_nodes, int64_t edges_per_node,
                                   uint64_t seed);

}  // namespace privrec::graph

#endif  // PRIVREC_GRAPH_GENERATORS_BARABASI_ALBERT_H_
