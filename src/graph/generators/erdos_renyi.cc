#include "graph/generators/erdos_renyi.h"

#include <set>
#include <utility>
#include <vector>

#include "common/random.h"

namespace privrec::graph {

SocialGraph GenerateErdosRenyi(NodeId num_nodes, int64_t num_edges,
                               uint64_t seed) {
  PRIVREC_CHECK(num_nodes >= 0);
  int64_t max_edges = num_nodes * (num_nodes - 1) / 2;
  PRIVREC_CHECK(num_edges >= 0 && num_edges <= max_edges);
  Rng rng(seed);
  std::set<std::pair<NodeId, NodeId>> picked;
  while (static_cast<int64_t>(picked.size()) < num_edges) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(
        static_cast<uint64_t>(num_nodes)));
    NodeId v = static_cast<NodeId>(rng.UniformInt(
        static_cast<uint64_t>(num_nodes)));
    if (u == v) continue;
    picked.emplace(std::min(u, v), std::max(u, v));
  }
  std::vector<std::pair<NodeId, NodeId>> edges(picked.begin(), picked.end());
  return SocialGraph::FromEdges(num_nodes, edges);
}

}  // namespace privrec::graph
