// G(n, m) Erdős–Rényi generator: n nodes, m distinct uniform random edges.
// Used as a structureless control in tests and ablations (community
// clustering should give little benefit here).

#ifndef PRIVREC_GRAPH_GENERATORS_ERDOS_RENYI_H_
#define PRIVREC_GRAPH_GENERATORS_ERDOS_RENYI_H_

#include <cstdint>

#include "graph/social_graph.h"

namespace privrec::graph {

// Requires m <= n*(n-1)/2. Deterministic given the seed.
SocialGraph GenerateErdosRenyi(NodeId num_nodes, int64_t num_edges,
                               uint64_t seed);

}  // namespace privrec::graph

#endif  // PRIVREC_GRAPH_GENERATORS_ERDOS_RENYI_H_
