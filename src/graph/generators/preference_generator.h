// Community-correlated preference-graph generator.
//
// Models the homophily that makes the paper's framework effective: users in
// the same social community tend to prefer the same items. Each community
// gets its own Zipf popularity ordering over the item catalog (a seeded
// random permutation); a user draws each preference from their community's
// distribution with probability `homophily`, and from a shared global Zipf
// otherwise. Setting homophily = 0 yields community-agnostic preferences
// (the control for the A3 ablation).

#ifndef PRIVREC_GRAPH_GENERATORS_PREFERENCE_GENERATOR_H_
#define PRIVREC_GRAPH_GENERATORS_PREFERENCE_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "graph/preference_graph.h"

namespace privrec::graph {

struct PreferenceGeneratorOptions {
  ItemId num_items = 10000;
  // Mean preferences per user; per-user counts are Normal(mean, stddev)
  // clamped to [1, num_items] (matching Table 1's per-user averages).
  double mean_prefs_per_user = 48.7;
  double stddev_prefs_per_user = 6.9;
  // Probability that a preference is drawn from the user's OWN private
  // taste distribution (a per-user random permutation). Personal edges
  // are invisible to cluster averages, so this knob directly controls the
  // framework's approximation error — real datasets sit well above 0.
  double personal_taste = 0.0;
  // Among the non-personal preferences: probability of drawing from the
  // user's community distribution rather than the global one.
  double homophily = 0.8;
  // Zipf exponent of item popularity (within both community and global
  // orderings).
  double popularity_skew = 1.05;
  // Community/taste-group draws are restricted to the first
  // `community_catalog_size` ranks of the group's ordering (0 = whole
  // catalog). Real communities concentrate on a few hundred items, which
  // keeps per-item cluster averages well above the Laplace noise floor.
  int64_t community_catalog_size = 0;
  // When > 0, edges carry integer rating weights in [1, max_rating],
  // skewed toward high ratings (the max of two uniform draws, roughly the
  // shape of real rating data); 0 keeps the paper's unweighted model.
  int64_t max_rating = 0;
  uint64_t seed = 7;
};

// `community_of` assigns each user to a community (any labeling; tiny
// components may have their own). Deterministic given the seed.
PreferenceGraph GeneratePreferences(
    const std::vector<int64_t>& community_of,
    const PreferenceGeneratorOptions& options);

}  // namespace privrec::graph

#endif  // PRIVREC_GRAPH_GENERATORS_PREFERENCE_GENERATOR_H_
