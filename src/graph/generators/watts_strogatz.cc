#include "graph/generators/watts_strogatz.h"

#include <set>
#include <utility>
#include <vector>

#include "common/random.h"

namespace privrec::graph {

SocialGraph GenerateWattsStrogatz(NodeId num_nodes, int64_t k, double beta,
                                  uint64_t seed) {
  PRIVREC_CHECK(k >= 1);
  PRIVREC_CHECK(2 * k < num_nodes);
  PRIVREC_CHECK(beta >= 0.0 && beta <= 1.0);
  Rng rng(seed);

  std::set<std::pair<NodeId, NodeId>> edges;
  auto add = [&](NodeId a, NodeId b) {
    if (a == b) return false;
    return edges.emplace(std::min(a, b), std::max(a, b)).second;
  };
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (int64_t j = 1; j <= k; ++j) {
      add(u, (u + j) % num_nodes);
    }
  }
  // Rewire: visit each lattice edge (u, u+j); with prob beta replace by
  // (u, random).
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (int64_t j = 1; j <= k; ++j) {
      if (!rng.Bernoulli(beta)) continue;
      NodeId v = (u + j) % num_nodes;
      auto key = std::make_pair(std::min(u, v), std::max(u, v));
      if (edges.count(key) == 0) continue;  // already rewired away
      // Find a fresh endpoint; bounded retries to avoid pathological loops
      // on dense graphs.
      for (int attempt = 0; attempt < 32; ++attempt) {
        NodeId w = static_cast<NodeId>(
            rng.UniformInt(static_cast<uint64_t>(num_nodes)));
        if (w == u) continue;
        auto cand = std::make_pair(std::min(u, w), std::max(u, w));
        if (edges.count(cand)) continue;
        edges.erase(key);
        edges.insert(cand);
        break;
      }
    }
  }
  std::vector<std::pair<NodeId, NodeId>> edge_list(edges.begin(),
                                                   edges.end());
  return SocialGraph::FromEdges(num_nodes, edge_list);
}

}  // namespace privrec::graph
