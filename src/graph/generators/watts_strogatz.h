// Watts–Strogatz small-world generator: ring lattice with random rewiring.
// Exhibits the small-world property the paper cites (Section 2.2) when
// motivating 2–3-hop cutoffs for GD and Katz.

#ifndef PRIVREC_GRAPH_GENERATORS_WATTS_STROGATZ_H_
#define PRIVREC_GRAPH_GENERATORS_WATTS_STROGATZ_H_

#include <cstdint>

#include "graph/social_graph.h"

namespace privrec::graph {

// Ring of `num_nodes` nodes each linked to `k` nearest neighbors on each
// side (so degree 2k before rewiring); each edge's far endpoint is rewired
// with probability `beta` to a uniform random node. Requires
// 2*k < num_nodes and beta in [0, 1].
SocialGraph GenerateWattsStrogatz(NodeId num_nodes, int64_t k, double beta,
                                  uint64_t seed);

}  // namespace privrec::graph

#endif  // PRIVREC_GRAPH_GENERATORS_WATTS_STROGATZ_H_
