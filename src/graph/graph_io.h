// Plain-text graph I/O.
//
// Format: one edge per line, whitespace-separated integer endpoints;
// '#'-prefixed lines and blank lines are ignored. Node/item ids need not be
// contiguous — they are remapped densely on load and the mapping returned.
//
// Robustness: loads run in strict mode (any malformed record is a
// ParseError, the historical behaviour) or lenient mode (malformed records
// are counted per defect class into the returned LoadReport and skipped;
// the valid subset loads). Transient I/O failures can be retried with
// bounded exponential backoff via GraphIoOptions::max_attempts.
//
// Fault points (see common/fault_injection.h):
//   graph_io.open   kIoError  — the open fails
//   graph_io.read   kShortRead — the stream ends after the current line
//   graph_io.alloc  kBadAlloc — edge-buffer allocation fails
//                               (ResourceExhausted)

#ifndef PRIVREC_GRAPH_GRAPH_IO_H_
#define PRIVREC_GRAPH_GRAPH_IO_H_

#include <string>
#include <vector>

#include "common/load_report.h"
#include "common/retry.h"
#include "common/status.h"
#include "graph/preference_graph.h"
#include "graph/social_graph.h"

namespace privrec::graph {

struct GraphIoOptions {
  ParseMode mode = ParseMode::kStrict;
  // Total attempts for transient I/O failures (1 = no retrying). Backoff is
  // deterministic and never sleeps unless a sleeper is supplied.
  int max_attempts = 1;
  RetryOptions retry{};  // max_attempts above overrides retry.max_attempts
};

struct LoadedSocialGraph {
  SocialGraph graph;
  // original id of node k.
  std::vector<int64_t> original_id;
  LoadReport report;
};

struct LoadedPreferenceGraph {
  PreferenceGraph graph;
  std::vector<int64_t> original_user_id;
  std::vector<int64_t> original_item_id;
  LoadReport report;
};

// Reads an undirected social edge list. Node ids must be non-negative;
// self loops and duplicate edges are defects (error in strict mode,
// counted-and-skipped in lenient mode).
Result<LoadedSocialGraph> LoadSocialGraph(const std::string& path,
                                          const GraphIoOptions& options = {});

// Reads a bipartite user-item edge list. User ids and item ids live in
// separate namespaces (a raw id may appear as both a user and an item).
// Lines may carry an optional third column with a positive edge weight;
// if any line does, the loaded graph is weighted (absent weights read as
// 1).
Result<LoadedPreferenceGraph> LoadPreferenceGraph(
    const std::string& path, const GraphIoOptions& options = {});

// Writers (one edge per line); used by tests and for exporting synthetic
// datasets.
Status SaveSocialGraph(const SocialGraph& g, const std::string& path);
Status SavePreferenceGraph(const PreferenceGraph& g, const std::string& path);

}  // namespace privrec::graph

#endif  // PRIVREC_GRAPH_GRAPH_IO_H_
