// Plain-text graph I/O.
//
// Format: one edge per line, whitespace-separated integer endpoints;
// '#'-prefixed lines and blank lines are ignored. Node/item ids need not be
// contiguous — they are remapped densely on load and the mapping returned.

#ifndef PRIVREC_GRAPH_GRAPH_IO_H_
#define PRIVREC_GRAPH_GRAPH_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/preference_graph.h"
#include "graph/social_graph.h"

namespace privrec::graph {

struct LoadedSocialGraph {
  SocialGraph graph;
  // original id of node k.
  std::vector<int64_t> original_id;
};

struct LoadedPreferenceGraph {
  PreferenceGraph graph;
  std::vector<int64_t> original_user_id;
  std::vector<int64_t> original_item_id;
};

// Reads an undirected social edge list.
Result<LoadedSocialGraph> LoadSocialGraph(const std::string& path);

// Reads a bipartite user-item edge list. User ids and item ids live in
// separate namespaces (a raw id may appear as both a user and an item).
// Lines may carry an optional third column with a positive edge weight;
// if any line does, the loaded graph is weighted (absent weights read as
// 1).
Result<LoadedPreferenceGraph> LoadPreferenceGraph(const std::string& path);

// Writers (one edge per line); used by tests and for exporting synthetic
// datasets.
Status SaveSocialGraph(const SocialGraph& g, const std::string& path);
Status SavePreferenceGraph(const PreferenceGraph& g, const std::string& path);

}  // namespace privrec::graph

#endif  // PRIVREC_GRAPH_GRAPH_IO_H_
