#include "graph/social_graph.h"

#include <algorithm>
#include <cmath>

namespace privrec::graph {

SocialGraph SocialGraph::FromEdges(
    NodeId num_nodes, const std::vector<std::pair<NodeId, NodeId>>& edges) {
  PRIVREC_CHECK(num_nodes >= 0);
  // Normalize to (min, max) pairs, validate, dedup.
  std::vector<std::pair<NodeId, NodeId>> norm;
  norm.reserve(edges.size());
  for (auto [u, v] : edges) {
    PRIVREC_CHECK(u >= 0 && u < num_nodes);
    PRIVREC_CHECK(v >= 0 && v < num_nodes);
    PRIVREC_CHECK_MSG(u != v, "self loop");
    norm.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(norm.begin(), norm.end());
  norm.erase(std::unique(norm.begin(), norm.end()), norm.end());

  SocialGraph g;
  g.num_nodes_ = num_nodes;
  std::vector<size_t> degree(static_cast<size_t>(num_nodes) + 1, 0);
  for (auto [u, v] : norm) {
    ++degree[static_cast<size_t>(u) + 1];
    ++degree[static_cast<size_t>(v) + 1];
  }
  g.offsets_.assign(static_cast<size_t>(num_nodes) + 1, 0);
  for (size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] = g.offsets_[i - 1] + degree[i];
  }
  g.targets_.resize(norm.size() * 2);
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (auto [u, v] : norm) {
    g.targets_[cursor[static_cast<size_t>(u)]++] = v;
    g.targets_[cursor[static_cast<size_t>(v)]++] = u;
  }
  // Counting-sort insertion above preserves per-row sortedness because the
  // normalized edge list is sorted by (u, v) — but the v -> u direction is
  // not, so sort each row.
  for (NodeId u = 0; u < num_nodes; ++u) {
    std::sort(g.targets_.begin() +
                  static_cast<int64_t>(g.offsets_[static_cast<size_t>(u)]),
              g.targets_.begin() +
                  static_cast<int64_t>(g.offsets_[static_cast<size_t>(u) + 1]));
  }
  return g;
}

bool SocialGraph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> SocialGraph::Edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(static_cast<size_t>(num_edges()));
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (NodeId v : Neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

double SocialGraph::AverageDegree() const {
  if (num_nodes_ == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) /
         static_cast<double>(num_nodes_);
}

double SocialGraph::DegreeStddev() const {
  if (num_nodes_ == 0) return 0.0;
  double mean = AverageDegree();
  double acc = 0.0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    double d = static_cast<double>(Degree(u)) - mean;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(num_nodes_));
}

NodeId SocialGraph::MaxDegree() const {
  int64_t best = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) best = std::max(best, Degree(u));
  return best;
}

}  // namespace privrec::graph
