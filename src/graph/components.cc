#include "graph/components.h"

#include <algorithm>
#include <numeric>

namespace privrec::graph {

ComponentInfo ConnectedComponents(const SocialGraph& g) {
  const NodeId n = g.num_nodes();
  std::vector<int64_t> label(static_cast<size_t>(n), -1);
  std::vector<int64_t> raw_sizes;
  std::vector<NodeId> stack;
  int64_t next = 0;
  for (NodeId s = 0; s < n; ++s) {
    if (label[static_cast<size_t>(s)] != -1) continue;
    int64_t size = 0;
    stack.push_back(s);
    label[static_cast<size_t>(s)] = next;
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      ++size;
      for (NodeId v : g.Neighbors(u)) {
        if (label[static_cast<size_t>(v)] == -1) {
          label[static_cast<size_t>(v)] = next;
          stack.push_back(v);
        }
      }
    }
    raw_sizes.push_back(size);
    ++next;
  }

  // Relabel components by decreasing size (stable: ties keep discovery
  // order, i.e. smallest first-node id).
  std::vector<int64_t> order(raw_sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return raw_sizes[static_cast<size_t>(a)] >
           raw_sizes[static_cast<size_t>(b)];
  });
  std::vector<int64_t> new_of_old(raw_sizes.size());
  for (size_t k = 0; k < order.size(); ++k) {
    new_of_old[static_cast<size_t>(order[k])] = static_cast<int64_t>(k);
  }

  ComponentInfo info;
  info.num_components = next;
  info.component_of.resize(static_cast<size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    info.component_of[static_cast<size_t>(u)] =
        new_of_old[static_cast<size_t>(label[static_cast<size_t>(u)])];
  }
  info.sizes.resize(raw_sizes.size());
  for (size_t k = 0; k < order.size(); ++k) {
    info.sizes[k] = raw_sizes[static_cast<size_t>(order[k])];
  }
  return info;
}

std::vector<int64_t> BfsDistances(const SocialGraph& g, NodeId source,
                                  int64_t max_depth) {
  PRIVREC_CHECK(source >= 0 && source < g.num_nodes());
  std::vector<int64_t> dist(static_cast<size_t>(g.num_nodes()), -1);
  std::vector<NodeId> frontier = {source};
  dist[static_cast<size_t>(source)] = 0;
  for (int64_t d = 0; d < max_depth && !frontier.empty(); ++d) {
    std::vector<NodeId> next;
    for (NodeId u : frontier) {
      for (NodeId v : g.Neighbors(u)) {
        if (dist[static_cast<size_t>(v)] == -1) {
          dist[static_cast<size_t>(v)] = d + 1;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }
  return dist;
}

Subgraph InducedSubgraph(const SocialGraph& g, std::vector<NodeId> keep) {
  std::sort(keep.begin(), keep.end());
  keep.erase(std::unique(keep.begin(), keep.end()), keep.end());
  std::vector<NodeId> new_of_old(static_cast<size_t>(g.num_nodes()), -1);
  for (size_t k = 0; k < keep.size(); ++k) {
    PRIVREC_CHECK(keep[k] >= 0 && keep[k] < g.num_nodes());
    new_of_old[static_cast<size_t>(keep[k])] = static_cast<NodeId>(k);
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u : keep) {
    for (NodeId v : g.Neighbors(u)) {
      if (u < v && new_of_old[static_cast<size_t>(v)] != -1) {
        edges.emplace_back(new_of_old[static_cast<size_t>(u)],
                           new_of_old[static_cast<size_t>(v)]);
      }
    }
  }
  Subgraph out;
  out.graph =
      SocialGraph::FromEdges(static_cast<NodeId>(keep.size()), edges);
  out.old_of_new = std::move(keep);
  return out;
}

}  // namespace privrec::graph
