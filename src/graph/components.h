// Connected components and BFS utilities over SocialGraph. Used by the
// dataset preprocessing (main-component extraction, Section 6.1) and the
// Graph Distance similarity measure.

#ifndef PRIVREC_GRAPH_COMPONENTS_H_
#define PRIVREC_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/social_graph.h"

namespace privrec::graph {

struct ComponentInfo {
  // component_of[u] in [0, num_components).
  std::vector<int64_t> component_of;
  // Size of each component, descending (component 0 is the largest).
  std::vector<int64_t> sizes;
  int64_t num_components = 0;
};

// Labels connected components; component ids are assigned in decreasing
// size order (ties broken by smallest contained node id).
ComponentInfo ConnectedComponents(const SocialGraph& g);

// BFS distances from `source` up to `max_depth` hops (inclusive);
// unreached nodes get -1. O(nodes within max_depth).
std::vector<int64_t> BfsDistances(const SocialGraph& g, NodeId source,
                                  int64_t max_depth);

// Induced subgraph on `keep` (sorted or not). Returns the subgraph and the
// mapping old_of_new: new node id -> original node id.
struct Subgraph {
  SocialGraph graph;
  std::vector<NodeId> old_of_new;
};
Subgraph InducedSubgraph(const SocialGraph& g, std::vector<NodeId> keep);

}  // namespace privrec::graph

#endif  // PRIVREC_GRAPH_COMPONENTS_H_
