#include "graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/string_util.h"

namespace privrec::graph {

namespace {

// Parses "<a> <b>" integer pairs, skipping comments/blanks. Returns
// (line_number, error) on failure via status.
Result<std::vector<std::pair<int64_t, int64_t>>> ReadPairs(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::vector<std::pair<int64_t, int64_t>> pairs;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == '#') continue;
    auto fields = SplitWhitespace(sv);
    if (fields.size() < 2) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": expected two fields");
    }
    int64_t a = 0;
    int64_t b = 0;
    if (!ParseInt64(fields[0], &a) || !ParseInt64(fields[1], &b)) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": non-integer endpoint");
    }
    pairs.emplace_back(a, b);
  }
  return pairs;
}

// Densifies raw ids in first-appearance order.
class IdMap {
 public:
  int64_t Map(int64_t raw) {
    auto [it, inserted] = index_.try_emplace(raw, next_);
    if (inserted) {
      original_.push_back(raw);
      ++next_;
    }
    return it->second;
  }
  std::vector<int64_t> TakeOriginals() { return std::move(original_); }
  int64_t size() const { return next_; }

 private:
  std::unordered_map<int64_t, int64_t> index_;
  std::vector<int64_t> original_;
  int64_t next_ = 0;
};

}  // namespace

Result<LoadedSocialGraph> LoadSocialGraph(const std::string& path) {
  auto pairs = ReadPairs(path);
  if (!pairs.ok()) return pairs.status();

  IdMap ids;
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(pairs->size());
  for (auto [a, b] : *pairs) {
    if (a == b) {
      return Status::ParseError(path + ": self loop on node " +
                                std::to_string(a));
    }
    // Sequence the id assignments explicitly (argument evaluation order is
    // unspecified) so ids follow first appearance in the file.
    NodeId ua = ids.Map(a);
    NodeId ub = ids.Map(b);
    edges.emplace_back(ua, ub);
  }
  LoadedSocialGraph out;
  out.graph = SocialGraph::FromEdges(ids.size(), edges);
  out.original_id = ids.TakeOriginals();
  return out;
}

Result<LoadedPreferenceGraph> LoadPreferenceGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);

  IdMap users;
  IdMap items;
  std::vector<PreferenceEdge> edges;
  bool any_weighted = false;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == '#') continue;
    auto fields = SplitWhitespace(sv);
    if (fields.size() < 2) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": expected user and item");
    }
    int64_t raw_user = 0;
    int64_t raw_item = 0;
    if (!ParseInt64(fields[0], &raw_user) ||
        !ParseInt64(fields[1], &raw_item)) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": non-integer endpoint");
    }
    double weight = 1.0;
    if (fields.size() >= 3) {
      if (!ParseDouble(fields[2], &weight) || weight <= 0.0) {
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": bad weight");
      }
      any_weighted = true;
    }
    NodeId user = users.Map(raw_user);
    ItemId item = items.Map(raw_item);
    edges.push_back({user, item, weight});
  }
  LoadedPreferenceGraph out;
  if (any_weighted) {
    out.graph =
        PreferenceGraph::FromWeightedEdges(users.size(), items.size(), edges);
  } else {
    std::vector<std::pair<NodeId, ItemId>> unweighted;
    unweighted.reserve(edges.size());
    for (const PreferenceEdge& e : edges) {
      unweighted.emplace_back(e.user, e.item);
    }
    out.graph = PreferenceGraph::FromEdges(users.size(), items.size(),
                                           unweighted);
  }
  out.original_user_id = users.TakeOriginals();
  out.original_item_id = items.TakeOriginals();
  return out;
}

Status SaveSocialGraph(const SocialGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# privrec social graph: " << g.num_nodes() << " nodes, "
      << g.num_edges() << " edges\n";
  for (auto [u, v] : g.Edges()) out << u << '\t' << v << '\n';
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Status SavePreferenceGraph(const PreferenceGraph& g,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# privrec preference graph: " << g.num_users() << " users, "
      << g.num_items() << " items, " << g.num_edges() << " edges"
      << (g.is_weighted() ? " (weighted)" : "") << '\n';
  if (g.is_weighted()) {
    for (const PreferenceEdge& e : g.WeightedEdges()) {
      out << e.user << '\t' << e.item << '\t' << e.weight << '\n';
    }
  } else {
    for (auto [u, i] : g.Edges()) out << u << '\t' << i << '\n';
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace privrec::graph
