#include "graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace privrec::graph {

namespace {

// Strips a UTF-8 byte-order mark from the head of the first line (files
// exported from Windows tooling often carry one).
bool StripBom(std::string_view* sv) {
  constexpr std::string_view kBom = "\xEF\xBB\xBF";
  if (StartsWith(*sv, kBom)) {
    sv->remove_prefix(kBom.size());
    return true;
  }
  return false;
}

// Densifies raw ids in first-appearance order.
class IdMap {
 public:
  int64_t Map(int64_t raw) {
    auto [it, inserted] = index_.try_emplace(raw, next_);
    if (inserted) {
      original_.push_back(raw);
      ++next_;
    }
    return it->second;
  }
  std::vector<int64_t> TakeOriginals() { return std::move(original_); }
  int64_t size() const { return next_; }

 private:
  std::unordered_map<int64_t, int64_t> index_;
  std::vector<int64_t> original_;
  int64_t next_ = 0;
};

// Shared scanning state for both loaders: iterates record lines, applies
// BOM stripping, fault injection and truncation bookkeeping, and resolves
// defects per the parse mode (strict: first defect is an error; lenient:
// count and skip).
class RecordScanner {
 public:
  RecordScanner(const std::string& path, ParseMode mode, LoadReport* report)
      : path_(path), mode_(mode), report_(report) {}

  Status OpenFile(std::ifstream* in) {
    if (fault::Hit("graph_io.open") == fault::FaultKind::kIoError) {
      return Status::IoError("cannot open " + path_ + " (injected fault)");
    }
    in->open(path_);
    if (!*in) return Status::IoError("cannot open " + path_);
    return Status::Ok();
  }

  // Fetches the next record line (skipping blanks/comments) into `*fields`.
  // Returns false at end of input. Truncation (a short read, injected or
  // real) sets report->truncated and ends the input.
  bool NextRecord(std::ifstream& in,
                  std::vector<std::string_view>* fields) {
    while (std::getline(in, line_)) {
      if (fault::Hit("graph_io.read") == fault::FaultKind::kShortRead) {
        report_->truncated = true;
        return false;
      }
      std::string_view sv = Trim(line_);
      if (first_line_) {
        first_line_ = false;
        if (StripBom(&sv)) report_->bom_stripped = true;
      }
      if (sv.empty() || sv[0] == '#') continue;
      ++line_no_;
      ++report_->lines_scanned;
      *fields = SplitWhitespace(sv);
      at_eof_after_record_ = in.eof();
      return true;
    }
    if (in.bad()) report_->truncated = true;
    return false;
  }

  // Resolves one defective record: strict mode returns the error, lenient
  // mode bumps `*counter` and returns Ok (caller skips the record). A
  // too-short record on the file's final, newline-less line is classified
  // as truncation, not malformation.
  Status Defect(int64_t* counter, const std::string& what) {
    if (counter == &report_->skipped_malformed && at_eof_after_record_) {
      report_->truncated = true;
      if (mode_ == ParseMode::kLenient) return Status::Ok();
      return Status::ParseError(Where() + ": " + what +
                                " (file appears truncated)");
    }
    if (mode_ == ParseMode::kLenient) {
      ++*counter;
      return Status::Ok();
    }
    return Status::ParseError(Where() + ": " + what);
  }

  std::string Where() const {
    return path_ + ":" + std::to_string(line_no_);
  }

 private:
  const std::string& path_;
  ParseMode mode_;
  LoadReport* report_;
  std::string line_;
  int64_t line_no_ = 0;  // counts record lines only
  bool first_line_ = true;
  bool at_eof_after_record_ = false;
};

// Packs a dense id pair for duplicate detection.
uint64_t PackPair(int64_t a, int64_t b) {
  return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
}

Result<LoadedSocialGraph> LoadSocialGraphOnce(const std::string& path,
                                              ParseMode mode) {
  LoadedSocialGraph out;
  RecordScanner scanner(path, mode, &out.report);
  std::ifstream in;
  if (Status s = scanner.OpenFile(&in); !s.ok()) return s;

  if (fault::Hit("graph_io.alloc") == fault::FaultKind::kBadAlloc) {
    return Status::ResourceExhausted("edge buffer allocation failed for " +
                                     path + " (injected fault)");
  }

  IdMap ids;
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::unordered_set<uint64_t> seen;
  std::vector<std::string_view> fields;
  while (scanner.NextRecord(in, &fields)) {
    int64_t a = 0;
    int64_t b = 0;
    if (fields.size() < 2) {
      if (Status s = scanner.Defect(&out.report.skipped_malformed,
                                    "expected two fields");
          !s.ok()) {
        return s;
      }
      continue;
    }
    if (!ParseInt64(fields[0], &a) || !ParseInt64(fields[1], &b)) {
      if (Status s = scanner.Defect(&out.report.skipped_malformed,
                                    "non-integer endpoint");
          !s.ok()) {
        return s;
      }
      continue;
    }
    if (a < 0 || b < 0) {
      if (Status s = scanner.Defect(&out.report.skipped_out_of_range,
                                    "negative node id");
          !s.ok()) {
        return s;
      }
      continue;
    }
    if (a == b) {
      if (Status s = scanner.Defect(&out.report.skipped_self_loops,
                                    "self loop on node " +
                                        std::to_string(a));
          !s.ok()) {
        return s;
      }
      continue;
    }
    // Sequence the id assignments explicitly (argument evaluation order is
    // unspecified) so ids follow first appearance in the file.
    NodeId ua = ids.Map(a);
    NodeId ub = ids.Map(b);
    if (mode == ParseMode::kLenient) {
      // Duplicate edges are only a defect class in lenient mode; strict
      // mode preserves the historical pass-through.
      uint64_t key = ua < ub ? PackPair(ua, ub) : PackPair(ub, ua);
      if (!seen.insert(key).second) {
        ++out.report.skipped_duplicates;
        continue;
      }
    }
    edges.emplace_back(ua, ub);
    ++out.report.records_loaded;
  }
  if (out.report.truncated && mode == ParseMode::kStrict) {
    return Status::IoError("short read on " + path);
  }
  out.report.empty_input = out.report.lines_scanned == 0;
  out.graph = SocialGraph::FromEdges(ids.size(), edges);
  out.original_id = ids.TakeOriginals();
  return out;
}

Result<LoadedPreferenceGraph> LoadPreferenceGraphOnce(
    const std::string& path, ParseMode mode) {
  LoadedPreferenceGraph out;
  RecordScanner scanner(path, mode, &out.report);
  std::ifstream in;
  if (Status s = scanner.OpenFile(&in); !s.ok()) return s;

  if (fault::Hit("graph_io.alloc") == fault::FaultKind::kBadAlloc) {
    return Status::ResourceExhausted("edge buffer allocation failed for " +
                                     path + " (injected fault)");
  }

  IdMap users;
  IdMap items;
  std::vector<PreferenceEdge> edges;
  std::unordered_set<uint64_t> seen;
  bool any_weighted = false;
  std::vector<std::string_view> fields;
  while (scanner.NextRecord(in, &fields)) {
    int64_t raw_user = 0;
    int64_t raw_item = 0;
    if (fields.size() < 2) {
      if (Status s = scanner.Defect(&out.report.skipped_malformed,
                                    "expected user and item");
          !s.ok()) {
        return s;
      }
      continue;
    }
    if (!ParseInt64(fields[0], &raw_user) ||
        !ParseInt64(fields[1], &raw_item)) {
      if (Status s = scanner.Defect(&out.report.skipped_malformed,
                                    "non-integer endpoint");
          !s.ok()) {
        return s;
      }
      continue;
    }
    if (raw_user < 0 || raw_item < 0) {
      if (Status s = scanner.Defect(&out.report.skipped_out_of_range,
                                    "negative id");
          !s.ok()) {
        return s;
      }
      continue;
    }
    double weight = 1.0;
    bool weighted_line = fields.size() >= 3;
    if (weighted_line) {
      if (!ParseDouble(fields[2], &weight) || weight <= 0.0) {
        if (Status s = scanner.Defect(&out.report.skipped_bad_weight,
                                      "bad weight");
            !s.ok()) {
          return s;
        }
        continue;
      }
    }
    NodeId user = users.Map(raw_user);
    ItemId item = items.Map(raw_item);
    if (mode == ParseMode::kLenient) {
      if (!seen.insert(PackPair(user, item)).second) {
        ++out.report.skipped_duplicates;
        continue;
      }
    }
    if (weighted_line) any_weighted = true;
    edges.push_back({user, item, weight});
    ++out.report.records_loaded;
  }
  if (out.report.truncated && mode == ParseMode::kStrict) {
    return Status::IoError("short read on " + path);
  }
  out.report.empty_input = out.report.lines_scanned == 0;
  if (any_weighted) {
    out.graph =
        PreferenceGraph::FromWeightedEdges(users.size(), items.size(), edges);
  } else {
    std::vector<std::pair<NodeId, ItemId>> unweighted;
    unweighted.reserve(edges.size());
    for (const PreferenceEdge& e : edges) {
      unweighted.emplace_back(e.user, e.item);
    }
    out.graph = PreferenceGraph::FromEdges(users.size(), items.size(),
                                           unweighted);
  }
  out.original_user_id = users.TakeOriginals();
  out.original_item_id = items.TakeOriginals();
  return out;
}

RetryOptions EffectiveRetry(const GraphIoOptions& options) {
  RetryOptions retry = options.retry;
  retry.max_attempts = options.max_attempts;
  return retry;
}

}  // namespace

Result<LoadedSocialGraph> LoadSocialGraph(const std::string& path,
                                          const GraphIoOptions& options) {
  PRIVREC_SPAN("graph.load_social");
  RetryStats stats;
  auto result = RetryWithBackoff(
      [&] { return LoadSocialGraphOnce(path, options.mode); },
      EffectiveRetry(options), &stats);
  if (result.ok()) {
    result->report.io_retries = stats.attempts - 1;
    RecordLoadMetrics(result->report);
  } else {
    static obs::Counter& failed =
        obs::GetCounter("privrec.data.failed_loads");
    failed.Increment();
  }
  return result;
}

Result<LoadedPreferenceGraph> LoadPreferenceGraph(
    const std::string& path, const GraphIoOptions& options) {
  PRIVREC_SPAN("graph.load_preferences");
  RetryStats stats;
  auto result = RetryWithBackoff(
      [&] { return LoadPreferenceGraphOnce(path, options.mode); },
      EffectiveRetry(options), &stats);
  if (result.ok()) {
    result->report.io_retries = stats.attempts - 1;
    RecordLoadMetrics(result->report);
  } else {
    static obs::Counter& failed =
        obs::GetCounter("privrec.data.failed_loads");
    failed.Increment();
  }
  return result;
}

Status SaveSocialGraph(const SocialGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# privrec social graph: " << g.num_nodes() << " nodes, "
      << g.num_edges() << " edges\n";
  for (auto [u, v] : g.Edges()) out << u << '\t' << v << '\n';
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Status SavePreferenceGraph(const PreferenceGraph& g,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# privrec preference graph: " << g.num_users() << " users, "
      << g.num_items() << " items, " << g.num_edges() << " edges"
      << (g.is_weighted() ? " (weighted)" : "") << '\n';
  if (g.is_weighted()) {
    for (const PreferenceEdge& e : g.WeightedEdges()) {
      out << e.user << '\t' << e.item << '\t' << e.weight << '\n';
    }
  } else {
    for (auto [u, i] : g.Edges()) out << u << '\t' << i << '\n';
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace privrec::graph
