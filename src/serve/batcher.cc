#include "serve/batcher.h"

#include <chrono>
#include <condition_variable>
#include <utility>

#include "common/macros.h"

namespace privrec::serve {

struct RequestBatcher::Batch {
  std::shared_ptr<EpochSnapshot> epoch;
  int64_t top_n = 0;
  int64_t open_clock_ms = 0;  // injected clock at open
  std::chrono::steady_clock::time_point open_real;
  // One entry per member, in arrival order. Members block inside Submit,
  // so the pointed-to vectors stay valid for the life of the batch.
  std::vector<const std::vector<graph::NodeId>*> member_users;
  int64_t total_users = 0;
  bool closed = false;  // no longer accepting members
  bool done = false;    // merged result is ready
  core::RecommendedBatch merged;
  std::condition_variable cv;
};

RequestBatcher::RequestBatcher(const BatchOptions& options,
                               const Clock* clock)
    : options_(options), clock_(clock) {
  PRIVREC_CHECK(clock != nullptr);
  PRIVREC_CHECK_MSG(options.window_ms > 0,
                    "RequestBatcher requires a positive batch window");
  PRIVREC_CHECK(options.max_requests >= 1 && options.max_users >= 1);
}

RequestBatcher::Slice RequestBatcher::Submit(
    const std::shared_ptr<EpochSnapshot>& epoch,
    const std::vector<graph::NodeId>& users, int64_t top_n,
    const Executor& executor) {
  const auto my_users = static_cast<int64_t>(users.size());
  auto full = [&](const Batch& b) {
    return static_cast<int64_t>(b.member_users.size()) >=
               options_.max_requests ||
           b.total_users >= options_.max_users;
  };

  std::unique_lock<std::mutex> lock(mu_);
  std::shared_ptr<Batch> b = open_;
  size_t my_slot = 0;
  const bool joinable =
      b != nullptr && !b->closed && b->epoch.get() == epoch.get() &&
      b->top_n == top_n &&
      static_cast<int64_t>(b->member_users.size()) < options_.max_requests &&
      b->total_users + my_users <= options_.max_users;

  if (joinable) {
    // Follower: append and wait for the leader to execute. Waking the
    // leader early when this arrival fills the batch keeps the window a
    // bound, not a floor.
    my_slot = b->member_users.size();
    b->member_users.push_back(&users);
    b->total_users += my_users;
    if (full(*b)) b->cv.notify_all();
    b->cv.wait(lock, [&] { return b->done; });
  } else {
    // Leader: open a batch and wait out the window for followers.
    b = std::make_shared<Batch>();
    b->epoch = epoch;
    b->top_n = top_n;
    b->open_clock_ms = clock_->NowMs();
    b->open_real = std::chrono::steady_clock::now();
    b->member_users.push_back(&users);
    b->total_users = my_users;
    open_ = b;

    const auto real_deadline =
        b->open_real + std::chrono::milliseconds(options_.window_ms);
    while (!full(*b)) {
      if (clock_->NowMs() - b->open_clock_ms >= options_.window_ms) break;
      if (b->cv.wait_until(lock, real_deadline) ==
          std::cv_status::timeout) {
        break;
      }
    }
    b->closed = true;
    if (open_ == b) open_ = nullptr;

    // Merge in arrival order, execute unlocked, publish the result.
    std::vector<graph::NodeId> all;
    all.reserve(static_cast<size_t>(b->total_users));
    for (const std::vector<graph::NodeId>* m : b->member_users) {
      all.insert(all.end(), m->begin(), m->end());
    }
    lock.unlock();
    core::RecommendedBatch merged = executor(*b->epoch, all, top_n);
    lock.lock();
    PRIVREC_CHECK_MSG(
        merged.lists.size() == all.size() &&
            merged.degradation.size() == all.size(),
        "batch executor returned a malformed merged batch");
    b->merged = std::move(merged);
    b->done = true;
    batches_formed_.fetch_add(1, std::memory_order_relaxed);
    requests_batched_.fetch_add(
        static_cast<int64_t>(b->member_users.size()),
        std::memory_order_relaxed);
    b->cv.notify_all();
  }

  // Slice this member's lists back out (still under the lock; each member
  // moves only its own disjoint range).
  size_t offset = 0;
  for (size_t i = 0; i < my_slot; ++i) {
    offset += b->member_users[i]->size();
  }
  Slice out;
  out.batch_requests = static_cast<int64_t>(b->member_users.size());
  out.batch_users = b->total_users;
  out.batch.report = b->merged.report;
  out.batch.report.users_degraded = 0;
  out.batch.lists.resize(users.size());
  out.batch.degradation.resize(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    out.batch.lists[i] = std::move(b->merged.lists[offset + i]);
    out.batch.degradation[i] = b->merged.degradation[offset + i];
    if (out.batch.degradation[i].degraded()) {
      ++out.batch.report.users_degraded;
    }
  }
  return out;
}

}  // namespace privrec::serve
