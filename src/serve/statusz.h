// The statusz surface: a point-in-time introspection snapshot of a
// serving runtime, rendered as a human-readable text page or a JSON
// document.
//
// RuntimeIntrospection gathers what an operator needs at a glance —
// pinned epoch identity (epoch number, provenance seed, ε, ledger id),
// the model/shard shape, swap and breaker state, admission occupancy, the
// ε gauges from the metrics registry, and (when a telemetry sink is
// attached) the live window quantiles, the burn rate and recent alerts.
// It is produced on demand by ServeRuntime::Introspect /
// ShardedServeRuntime::Introspect, periodically by dynamic_service
// --statusz-every, and at end of run by bench_serve_load --statusz-out.
//
// Reading the snapshot takes the same short locks as any other request
// (epoch pin, admission counters, telemetry mutex) — it never stops the
// serving path. Under PRIVREC_OBS=OFF the registry sections render empty
// but the page still builds and serves: the epoch/admission/breaker state
// lives in the runtime, not in the obs layer.

#ifndef PRIVREC_SERVE_STATUSZ_H_
#define PRIVREC_SERVE_STATUSZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/rolling_window.h"
#include "obs/snapshot.h"

namespace privrec::serve {

struct RuntimeIntrospection {
  // Clock reading the snapshot was taken at (the runtime's injected
  // clock — virtual time in the load harness).
  int64_t now_ms = 0;

  // ---- Pinned epoch + model shape (has_epoch == false before the first
  // successful Activate; the identity fields are then meaningless).
  bool has_epoch = false;
  int64_t epoch = 0;
  uint64_t artifact_seed = 0;
  double epsilon = 0.0;
  std::string ledger_id;
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t num_clusters = 0;
  bool mapped = false;
  int64_t shard_count = 0;
  // Users owned per shard (index = shard id); empty for 1-shard models.
  std::vector<int64_t> shard_users;

  // ---- Swap + breaker state.
  int64_t swaps = 0;
  int64_t rollbacks = 0;
  std::string last_swap_error;
  std::string breaker_state;
  int64_t breaker_failures = 0;
  int64_t breaker_retry_after_ms = 0;

  // ---- Admission occupancy.
  int64_t admission_in_flight = 0;
  int64_t admission_waiting = 0;
  int64_t admission_max_concurrency = 0;
  int64_t admission_queue_depth = 0;
  double admission_hold_ms = 0.0;
  int64_t admission_retry_hint_ms = 0;

  // ---- Registry slices: the privacy-budget gauges (privrec.dp.*) and
  // the serve counters (privrec.serve.*). Empty under PRIVREC_OBS=OFF.
  std::vector<obs::GaugeSample> epsilon_gauges;
  std::vector<obs::CounterSample> serve_counters;

  // ---- Shard routing (sharded runtime only; -1 = not sharded-routed).
  int64_t sharded_requests = -1;

  // ---- Reconstruction kernels: active SIMD dispatch level ("scalar" /
  // "avx2", see kernels/dispatch.h) and cross-request batching occupancy.
  // batches_formed counts merged reconstruction calls (threaded window
  // batcher + async groups); batched_requests counts the member requests
  // they carried — their ratio is the mean batch occupancy. Both stay 0
  // with batching disabled.
  std::string kernel_dispatch;
  int64_t batches_formed = 0;
  int64_t batched_requests = 0;

  // ---- Telemetry (has_telemetry == false when no sink is attached).
  bool has_telemetry = false;
  int64_t telemetry_recorded = 0;
  int64_t telemetry_sampled = 0;
  int64_t telemetry_dropped = 0;
  int64_t window_breaches = 0;
  double burn_rate = 0.0;
  bool has_last_window = false;
  obs::WindowStats last_window;
  // Most recent alerts, newest last (capped).
  std::vector<obs::WindowAlert> recent_alerts;
};

// Renderers. Text is the human statusz page; JSON nests the same fields
// for machine consumption (%.17g doubles, like every privrec exporter).
std::string StatuszText(const RuntimeIntrospection& status);
std::string StatuszJson(const RuntimeIntrospection& status);

}  // namespace privrec::serve

#endif  // PRIVREC_SERVE_STATUSZ_H_
