// ShardedServeRuntime: shard-aware request routing on top of ServeRuntime.
//
// A sharded artifact (artifact/shard_layout.h) partitions the release by
// cluster range, and the serving engine knows which shard owns each user's
// cluster. This runtime splits a batch by owning shard and serves the
// sub-batches against the SAME pinned epoch snapshot, then scatters the
// per-user lists back into request order — so shard locality is preserved
// (each sub-batch walks one shard's mapped pages) without changing a
// single served byte. Per-user results are independent in every
// ConcurrentSafe mechanism, so the regrouping is bit-identical to handing
// the whole batch to ServeRuntime::Handle; sharded_artifact_test pins
// that.
//
// Everything resilient stays in ServeRuntime: the epoch pin, admission
// (one slot per request, not per sub-batch), degraded fallback, and the
// swap/rollback machinery. Requests that cannot be shard-routed — no
// epoch yet, a 1-shard artifact, a stateful (non-ConcurrentSafe)
// mechanism whose RNG stream must see the batch exactly once, validation
// errors, or single-user batches — delegate to ServeRuntime::Handle
// unchanged.

#ifndef PRIVREC_SERVE_SHARDED_RUNTIME_H_
#define PRIVREC_SERVE_SHARDED_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "serve/clock.h"
#include "serve/runtime.h"

namespace privrec::serve {

class ShardedServeRuntime {
 public:
  explicit ShardedServeRuntime(ServeRuntimeOptions options);

  // Activates / hot-swaps exactly like ServeRuntime::Activate (monolithic
  // .pvra and sharded .pvram paths both work — the engine sniffs).
  Status Activate(const std::string& path);

  // Serves one request; shard-routes when profitable, delegates otherwise.
  // The response contract is identical to ServeRuntime::Handle.
  ServeResponse Handle(const ServeRequest& request);

  // The underlying runtime, for swap/admission/breaker introspection.
  ServeRuntime& runtime() { return runtime_; }
  const ServeRuntime& runtime() const { return runtime_; }

  // Requests served via the shard-routed path (vs delegated).
  int64_t sharded_requests() const {
    return sharded_requests_.load(std::memory_order_relaxed);
  }

  // Live status snapshot (serve/statusz.h): the underlying runtime's
  // introspection plus the shard-routed request count.
  RuntimeIntrospection Introspect(int64_t now_ms = -1) const;

 private:
  ServeRuntimeOptions options_;
  const Clock* clock_;
  ServeRuntime runtime_;
  std::atomic<int64_t> sharded_requests_{0};
};

}  // namespace privrec::serve

#endif  // PRIVREC_SERVE_SHARDED_RUNTIME_H_
