// ServeTelemetry: the per-request telemetry sink of the serving runtime.
//
// The runtimes (serve/runtime.h, serve/sharded_runtime.h) fill one
// obs::RequestTelemetry wide event per request and hand it here. The sink
//
//   - folds every event into a ring of rolling windows
//     (obs/rolling_window.h) on the runtime's injected clock, feeding the
//     SLO burn-rate tracker;
//   - keeps the deterministically sampled subset (every non-OK /
//     degraded / slow request plus 1-in-K of OK, keyed off the request
//     id) and renders the JSONL stream interleaving request lines with
//     the alert lines the windows emit;
//   - mirrors the aggregate signals into the metrics registry:
//     privrec.serve.telemetry_events_total / telemetry_sampled_total,
//     privrec.serve.slo_window_breaches_total / slo_burn_alerts_total,
//     and the privrec.serve.slo_burn_rate gauge.
//
// Thread-safe: Record() serializes on one mutex (wall-mode request
// threads contend only for the short fold; the recommender work stays
// outside). Determinism: the sink never reads a clock — time enters only
// through the events — so a virtual-time run produces a byte-identical
// JSONL stream and window series on every run and thread count. Under
// PRIVREC_OBS=OFF the registry mirroring folds to no-ops but events,
// windows, and JSONL keep working: the load report must not change shape
// with observability compiled out.

#ifndef PRIVREC_SERVE_TELEMETRY_H_
#define PRIVREC_SERVE_TELEMETRY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/rolling_window.h"
#include "obs/wide_event.h"
#include "serve/runtime.h"

namespace privrec::serve {

struct ServeTelemetryOptions {
  // 1-in-K sampling of OK requests; <= 1 keeps everything.
  int64_t sample_every = 16;
  // OK requests at or above this latency are always kept; < 0 disables.
  double slow_ms = 100.0;
  // Rolling-window width on the runtime clock.
  int64_t window_ms = 250;
  // Per-window SLO budget + burn-rate alerting (see WindowBudget).
  obs::WindowBudget budget;
  // Cap on retained sampled events (the JSONL stream stops growing once
  // reached; drops are counted, never silent).
  size_t max_events = 65536;
  // Cap on retained closed windows (oldest evicted first).
  size_t max_windows = 4096;
};

class ServeTelemetry {
 public:
  explicit ServeTelemetry(ServeTelemetryOptions options = {});

  ServeTelemetry(const ServeTelemetry&) = delete;
  ServeTelemetry& operator=(const ServeTelemetry&) = delete;

  // Folds one finalized event (windows advance to event.resolve_ms
  // first, so alert lines precede the request lines they chronologically
  // preceded).
  void Record(const obs::RequestTelemetry& event);

  // Closes windows that ended at or before now_ms without recording an
  // event (idle periods still burn down the lookback ring).
  void AdvanceTo(int64_t now_ms);

  // End of run: advance to now_ms and close the final partial window.
  void Flush(int64_t now_ms);

  // Copies, safe against concurrent Record().
  obs::WindowSeries series() const;
  std::vector<obs::RequestTelemetry> sampled_events() const;
  // The JSONL stream: one line per sampled request plus one line per
  // burn-rate alert, in emission order.
  std::string EventsJsonl() const;

  int64_t recorded() const;
  int64_t sampled() const;
  int64_t dropped_events() const;
  int64_t window_breaches() const;
  int64_t burn_alerts() const;
  double burn_rate() const;

  const ServeTelemetryOptions& options() const { return options_; }

 private:
  // Mirrors newly closed windows / alerts into metrics and the JSONL
  // stream. Caller holds mu_.
  void DrainWindowSignalsLocked();

  const ServeTelemetryOptions options_;
  mutable std::mutex mu_;
  obs::RollingWindows windows_;
  std::vector<obs::RequestTelemetry> events_;
  std::string jsonl_;
  size_t alerts_seen_ = 0;
  size_t windows_seen_ = 0;
  int64_t recorded_ = 0;
  int64_t sampled_ = 0;
  int64_t dropped_ = 0;
  int64_t breaches_ = 0;
};

// Completes a wide event from a finished response — outcome/admission
// classification, epoch identity, degradation tier, latency — at
// `resolve_ms` on the caller's clock. Shared by ServeRuntime and
// ShardedServeRuntime so both emit identical records.
void FinalizeRequestTelemetry(obs::RequestTelemetry& event,
                              const ServeResponse& response,
                              int64_t resolve_ms);

}  // namespace privrec::serve

#endif  // PRIVREC_SERVE_TELEMETRY_H_
