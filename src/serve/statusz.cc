#include "serve/statusz.h"

#include <algorithm>
#include <utility>

#include "kernels/dispatch.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/runtime.h"
#include "serve/sharded_runtime.h"
#include "serve/telemetry.h"

namespace privrec::serve {

namespace {

constexpr size_t kRecentAlerts = 5;

void FillTelemetry(const ServeTelemetry* telemetry,
                   RuntimeIntrospection* status) {
  if (telemetry == nullptr) return;
  status->has_telemetry = true;
  status->telemetry_recorded = telemetry->recorded();
  status->telemetry_sampled = telemetry->sampled();
  status->telemetry_dropped = telemetry->dropped_events();
  status->window_breaches = telemetry->window_breaches();
  status->burn_rate = telemetry->burn_rate();
  obs::WindowSeries series = telemetry->series();
  if (!series.windows.empty()) {
    status->has_last_window = true;
    status->last_window = series.windows.back();
  }
  const size_t n = series.alerts.size();
  const size_t first = n > kRecentAlerts ? n - kRecentAlerts : 0;
  status->recent_alerts.assign(series.alerts.begin() + first,
                               series.alerts.end());
}

void FillRegistrySlices(RuntimeIntrospection* status) {
  obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Instance().Snapshot();
  for (obs::GaugeSample& g : snapshot.gauges) {
    if (g.name.rfind("privrec.dp.", 0) == 0) {
      status->epsilon_gauges.push_back(std::move(g));
    }
  }
  for (obs::CounterSample& c : snapshot.counters) {
    if (c.name.rfind("privrec.serve.", 0) == 0) {
      status->serve_counters.push_back(std::move(c));
    }
  }
}

}  // namespace

RuntimeIntrospection ServeRuntime::Introspect(int64_t now_ms) const {
  RuntimeIntrospection status;
  status.now_ms = now_ms >= 0 ? now_ms : clock_->NowMs();

  std::shared_ptr<const EpochSnapshot> epoch = swapper_.Acquire();
  if (epoch != nullptr) {
    status.has_epoch = true;
    status.epoch = epoch->epoch;
    status.artifact_seed = epoch->artifact_seed;
    status.epsilon = epoch->epsilon;
    status.ledger_id = epoch->engine.model().provenance.ledger_id;
    status.num_users = epoch->engine.num_users();
    status.num_items = epoch->engine.num_items();
    status.num_clusters = epoch->engine.num_clusters();
    status.mapped = epoch->engine.mapped();
    status.shard_count =
        static_cast<int64_t>(epoch->engine.shard_count());
    if (status.shard_count > 1) {
      status.shard_users.assign(
          static_cast<size_t>(status.shard_count), 0);
      for (int64_t u = 0; u < status.num_users; ++u) {
        const auto s =
            static_cast<size_t>(epoch->engine.ShardOfUser(u));
        if (s < status.shard_users.size()) ++status.shard_users[s];
      }
    }
  }

  status.swaps = swapper_.swaps();
  status.rollbacks = swapper_.rollbacks();
  status.last_swap_error = swapper_.last_error();
  status.breaker_state = BreakerStateName(reload_breaker_.state());
  status.breaker_failures = reload_breaker_.consecutive_failures();
  status.breaker_retry_after_ms = reload_breaker_.retry_after_ms();
  status.admission_in_flight = admission_.in_flight();
  status.admission_waiting = admission_.waiting();
  status.admission_max_concurrency = admission_.options().max_concurrency;
  status.admission_queue_depth = admission_.options().queue_depth;
  status.admission_hold_ms = admission_.EstimatedHoldMs();
  status.admission_retry_hint_ms = admission_.RetryAfterHintMs();

  status.kernel_dispatch =
      kernels::DispatchLevelName(kernels::ActiveDispatchLevel());
  status.batches_formed = async_batches();
  status.batched_requests = async_batched_requests();
  if (batcher_ != nullptr) {
    status.batches_formed += batcher_->batches_formed();
    status.batched_requests += batcher_->requests_batched();
  }

  FillRegistrySlices(&status);
  FillTelemetry(options_.telemetry, &status);
  return status;
}

RuntimeIntrospection ShardedServeRuntime::Introspect(
    int64_t now_ms) const {
  RuntimeIntrospection status = runtime_.Introspect(now_ms);
  status.sharded_requests = sharded_requests();
  return status;
}

std::string StatuszText(const RuntimeIntrospection& status) {
  using obs::JsonNumber;
  std::string out;
  out += "==== privrec serve statusz @ " + std::to_string(status.now_ms) +
         " ms ====\n";
  if (status.has_epoch) {
    out += "epoch:      " + std::to_string(status.epoch) +
           " (artifact seed " + std::to_string(status.artifact_seed) +
           ", epsilon " + JsonNumber(status.epsilon) + ", ledger \"" +
           status.ledger_id + "\")\n";
    out += "model:      " + std::to_string(status.num_users) +
           " users x " + std::to_string(status.num_items) + " items, " +
           std::to_string(status.num_clusters) + " clusters, " +
           std::to_string(status.shard_count) + " shard(s)" +
           (status.mapped ? " [mapped]" : "") + "\n";
    if (!status.shard_users.empty()) {
      out += "shard map: ";
      for (size_t s = 0; s < status.shard_users.size(); ++s) {
        out += " s" + std::to_string(s) + "=" +
               std::to_string(status.shard_users[s]);
      }
      out += "\n";
    }
  } else {
    out += "epoch:      none (no artifact activated yet)\n";
  }
  out += "swaps:      " + std::to_string(status.swaps) + " ok, " +
         std::to_string(status.rollbacks) + " rollback(s)";
  if (!status.last_swap_error.empty()) {
    out += "; last error: " + status.last_swap_error;
  }
  out += "\n";
  out += "breaker:    " + status.breaker_state + " (" +
         std::to_string(status.breaker_failures) +
         " consecutive failure(s)";
  if (status.breaker_retry_after_ms > 0) {
    out += ", retry after " +
           std::to_string(status.breaker_retry_after_ms) + " ms";
  }
  out += ")\n";
  out += "admission:  " + std::to_string(status.admission_in_flight) +
         "/" + std::to_string(status.admission_max_concurrency) +
         " in flight, " + std::to_string(status.admission_waiting) + "/" +
         std::to_string(status.admission_queue_depth) +
         " queued, hold est " + JsonNumber(status.admission_hold_ms) +
         " ms, retry hint " +
         std::to_string(status.admission_retry_hint_ms) + " ms\n";
  if (status.sharded_requests >= 0) {
    out += "routing:    " + std::to_string(status.sharded_requests) +
           " shard-routed request(s)\n";
  }
  out += "kernels:    dispatch " + status.kernel_dispatch + ", " +
         std::to_string(status.batches_formed) + " batch(es) serving " +
         std::to_string(status.batched_requests) + " request(s)";
  if (status.batches_formed > 0) {
    out += ", occupancy " +
           JsonNumber(static_cast<double>(status.batched_requests) /
                      static_cast<double>(status.batches_formed));
  }
  out += "\n";
  for (const obs::GaugeSample& g : status.epsilon_gauges) {
    out += "epsilon:    " + g.name + " = " + JsonNumber(g.value) + "\n";
  }
  for (const obs::CounterSample& c : status.serve_counters) {
    out += "counter:    " + c.name + " = " + std::to_string(c.value) +
           "\n";
  }
  if (status.has_telemetry) {
    out += "telemetry:  " + std::to_string(status.telemetry_recorded) +
           " recorded, " + std::to_string(status.telemetry_sampled) +
           " sampled, " + std::to_string(status.telemetry_dropped) +
           " dropped, " + std::to_string(status.window_breaches) +
           " window breach(es), burn rate " +
           JsonNumber(status.burn_rate) + "\n";
    if (status.has_last_window) {
      const obs::WindowStats& w = status.last_window;
      out += "window:     [#" + std::to_string(w.index) + " @" +
             std::to_string(w.start_ms) + "ms] " +
             std::to_string(w.requests) + " req, rps " +
             JsonNumber(w.rps) + ", shed rate " +
             JsonNumber(w.shed_rate) + ", p50 " + JsonNumber(w.p50_ms) +
             " p99 " + JsonNumber(w.p99_ms) + " p999 " +
             JsonNumber(w.p999_ms) + "\n";
    }
    for (const obs::WindowAlert& alert : status.recent_alerts) {
      out += "alert:      [#" + std::to_string(alert.window_index) +
             " @" + std::to_string(alert.at_ms) + "ms] burn " +
             JsonNumber(alert.burn_rate) + ": " + alert.reason + "\n";
    }
  } else {
    out += "telemetry:  (no sink attached)\n";
  }
  return out;
}

std::string StatuszJson(const RuntimeIntrospection& status) {
  using obs::JsonEscape;
  using obs::JsonNumber;
  std::string out = "{\n";
  out += "  \"now_ms\": " + std::to_string(status.now_ms) + ",\n";

  out += "  \"epoch\": ";
  if (status.has_epoch) {
    out += "{\"epoch\": " + std::to_string(status.epoch) +
           ", \"artifact_seed\": " +
           std::to_string(status.artifact_seed) +
           ", \"epsilon\": " + JsonNumber(status.epsilon) +
           ", \"ledger_id\": \"" + JsonEscape(status.ledger_id) +
           "\", \"num_users\": " + std::to_string(status.num_users) +
           ", \"num_items\": " + std::to_string(status.num_items) +
           ", \"num_clusters\": " + std::to_string(status.num_clusters) +
           ", \"mapped\": " + (status.mapped ? "true" : "false") +
           ", \"shard_count\": " + std::to_string(status.shard_count) +
           ", \"shard_users\": [";
    for (size_t s = 0; s < status.shard_users.size(); ++s) {
      if (s > 0) out += ", ";
      out += std::to_string(status.shard_users[s]);
    }
    out += "]}";
  } else {
    out += "null";
  }
  out += ",\n";

  out += "  \"swap\": {\"swaps\": " + std::to_string(status.swaps) +
         ", \"rollbacks\": " + std::to_string(status.rollbacks) +
         ", \"last_error\": \"" + JsonEscape(status.last_swap_error) +
         "\"},\n";
  out += "  \"breaker\": {\"state\": \"" +
         JsonEscape(status.breaker_state) +
         "\", \"consecutive_failures\": " +
         std::to_string(status.breaker_failures) +
         ", \"retry_after_ms\": " +
         std::to_string(status.breaker_retry_after_ms) + "},\n";
  out += "  \"admission\": {\"in_flight\": " +
         std::to_string(status.admission_in_flight) +
         ", \"max_concurrency\": " +
         std::to_string(status.admission_max_concurrency) +
         ", \"waiting\": " + std::to_string(status.admission_waiting) +
         ", \"queue_depth\": " +
         std::to_string(status.admission_queue_depth) +
         ", \"hold_ms\": " + JsonNumber(status.admission_hold_ms) +
         ", \"retry_hint_ms\": " +
         std::to_string(status.admission_retry_hint_ms) + "},\n";

  out += "  \"sharded_requests\": ";
  out += status.sharded_requests >= 0
             ? std::to_string(status.sharded_requests)
             : "null";
  out += ",\n";

  out += "  \"kernels\": {\"dispatch\": \"" +
         JsonEscape(status.kernel_dispatch) +
         "\", \"batches_formed\": " +
         std::to_string(status.batches_formed) +
         ", \"batched_requests\": " +
         std::to_string(status.batched_requests) + "},\n";

  out += "  \"epsilon_gauges\": {";
  for (size_t i = 0; i < status.epsilon_gauges.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(status.epsilon_gauges[i].name) + "\": " +
           JsonNumber(status.epsilon_gauges[i].value);
  }
  out += "},\n";
  out += "  \"serve_counters\": {";
  for (size_t i = 0; i < status.serve_counters.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(status.serve_counters[i].name) + "\": " +
           std::to_string(status.serve_counters[i].value);
  }
  out += "},\n";

  out += "  \"telemetry\": ";
  if (status.has_telemetry) {
    out += "{\"recorded\": " + std::to_string(status.telemetry_recorded) +
           ", \"sampled\": " + std::to_string(status.telemetry_sampled) +
           ", \"dropped\": " + std::to_string(status.telemetry_dropped) +
           ", \"window_breaches\": " +
           std::to_string(status.window_breaches) +
           ", \"burn_rate\": " + JsonNumber(status.burn_rate) +
           ", \"last_window\": ";
    out += status.has_last_window
               ? obs::WindowStatsToJson(status.last_window)
               : "null";
    out += ", \"recent_alerts\": [";
    for (size_t i = 0; i < status.recent_alerts.size(); ++i) {
      if (i > 0) out += ", ";
      out += obs::WindowAlertToJson(status.recent_alerts[i]);
    }
    out += "]}";
  } else {
    out += "null";
  }
  out += "\n}\n";
  return out;
}

}  // namespace privrec::serve
