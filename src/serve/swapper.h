// Hot artifact swap: an epoch-based, RCU-style holder for the serving
// engine.
//
// The paper's framework makes a whole model generation a single immutable
// release (the published (cluster, item) table plus its public sections),
// so swapping generations is pointer publication, not state migration:
//
//   1. LoadArtifact + ServingEngine validation run OFF the request path,
//      on the caller's (reload) thread;
//   2. the PR-4 compatibility gates run against the swap policy — graph
//      fingerprint pinned to the current epoch by default, ε/provenance
//      per the ServeSpec;
//   3. a self-check probe serves a deterministic set of users from the
//      candidate and rejects non-finite or malformed output — a release
//      that decodes cleanly but would serve garbage never goes live;
//   4. only then is the new epoch published: readers that acquired the old
//      epoch keep serving from it (shared_ptr keeps it alive until the
//      last in-flight request drains), new readers see the new epoch.
//
// Any failure in 1-3 is a rollback: the current epoch stays published,
// the failure is recorded (privrec.serve.swap_rollback_total, last_error)
// and the typed status is returned. Every attempt emits a "serve.swap"
// span.

#ifndef PRIVREC_SERVE_SWAPPER_H_
#define PRIVREC_SERVE_SWAPPER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "artifact/serving.h"
#include "common/status.h"

namespace privrec::serve {

// One published model generation. Immutable after publication; requests
// hold it by shared_ptr so a swap never invalidates an in-flight batch.
struct EpochSnapshot {
  int64_t epoch = 0;
  serving::ServingEngine engine;
  std::unique_ptr<serving::ServeRecommender> recommender;
  // Serializes Recommend for mechanisms whose serve state mutates per call
  // (fresh-noise baselines); unused when recommender->ConcurrentSafe().
  std::mutex serve_mu;
  // Provenance identity of the artifact this epoch serves — lets callers
  // (and the chaos soak) attribute a response to its generation.
  uint64_t artifact_seed = 0;
  double epsilon = 0.0;
};

struct SwapPolicy {
  // Mechanism + gates for MakeServeRecommender. expected_graph_hash == 0
  // defers to pin_graph_hash below.
  serving::ServeSpec spec;
  // With spec.expected_graph_hash == 0: once a first artifact is live,
  // require every subsequent artifact to carry the same dataset
  // fingerprint (a swap can upgrade the model, never silently change what
  // dataset is being served).
  bool pin_graph_hash = true;
  // Adopt each artifact's provenance ε as the Cluster gate value instead
  // of requiring spec.epsilon. For release streams whose per-snapshot ε
  // legitimately varies (the dynamic session's composition schedule).
  bool adopt_artifact_epsilon = false;
  // Self-check probe: the first min(probe_users, num_users) user ids are
  // served at probe_top_n; non-finite utilities or malformed lists reject
  // the candidate. 0 disables the probe.
  int64_t probe_users = 4;
  int64_t probe_top_n = 10;
};

class ArtifactSwapper {
 public:
  explicit ArtifactSwapper(SwapPolicy policy);

  // Loads, gates, probes, and publishes the artifact at `path`. The first
  // successful call creates epoch 1; later calls are hot swaps. On ANY
  // failure the previous epoch (if one exists) remains published and this
  // returns the typed error (kNotFound / kIoError / kParseError /
  // kVersionMismatch / kGraphMismatch / kProvenanceMismatch /
  // kFailedPrecondition from the probe).
  Status Activate(const std::string& path);

  // The current epoch, or null before the first successful Activate.
  // The returned snapshot stays valid for the life of the shared_ptr even
  // across concurrent swaps.
  std::shared_ptr<const EpochSnapshot> Acquire() const;

  // Like Acquire but non-const, for callers that must serialize stateful
  // recommenders via serve_mu.
  std::shared_ptr<EpochSnapshot> AcquireMutable() const;

  int64_t current_epoch() const;
  int64_t swaps() const { return swaps_.load(std::memory_order_relaxed); }
  int64_t rollbacks() const {
    return rollbacks_.load(std::memory_order_relaxed);
  }
  // Message of the most recent rollback ("" when none yet).
  std::string last_error() const;

  const SwapPolicy& policy() const { return policy_; }

 private:
  Status ProbeCandidate(EpochSnapshot* candidate) const;
  Status RecordRollback(Status status);

  SwapPolicy policy_;

  mutable std::mutex mu_;  // guards current_ and last_error_
  std::shared_ptr<EpochSnapshot> current_;
  std::string last_error_;
  std::atomic<int64_t> swaps_{0};
  std::atomic<int64_t> rollbacks_{0};
  std::atomic<int64_t> epoch_{0};
};

}  // namespace privrec::serve

#endif  // PRIVREC_SERVE_SWAPPER_H_
