#include "serve/admission.h"

#include <chrono>

#include "obs/metrics.h"

namespace privrec::serve {

void AdmissionTicket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot();
    controller_ = nullptr;
  }
}

AdmissionController::AdmissionController(AdmissionOptions options,
                                         const Clock* clock)
    : options_(options),
      clock_(clock != nullptr ? clock : SteadyClock::Instance()) {}

int64_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

int64_t AdmissionController::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

void AdmissionController::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  slot_free_.notify_one();
}

Result<AdmissionTicket> AdmissionController::Admit(int64_t deadline_ms) {
  static obs::Counter& admitted =
      obs::GetCounter("privrec.serve.admitted_total");
  static obs::Counter& shed = obs::GetCounter("privrec.serve.shed_total");
  static obs::Counter& expired =
      obs::GetCounter("privrec.serve.deadline_exceeded_total");

  std::unique_lock<std::mutex> lock(mu_);
  if (clock_->NowMs() >= deadline_ms) {
    expired.Increment();
    return Status::DeadlineExceeded("deadline expired before admission");
  }
  if (in_flight_ < options_.max_concurrency) {
    ++in_flight_;
    admitted.Increment();
    return AdmissionTicket(this);
  }
  if (waiting_ >= options_.queue_depth) {
    shed.Increment();
    return Status::ResourceExhausted(
        "serving queue full (" + std::to_string(waiting_) +
        " waiting); retry in " + std::to_string(options_.retry_after_ms) +
        "ms");
  }

  // Queue for a slot, re-checking the injected clock each wakeup. The
  // condition variable waits in short real-time slices so a ManualClock
  // advanced by another thread is observed promptly; with the default
  // SteadyClock the slice is just a coarse timed wait.
  ++waiting_;
  while (in_flight_ >= options_.max_concurrency) {
    if (clock_->NowMs() >= deadline_ms) {
      --waiting_;
      expired.Increment();
      return Status::DeadlineExceeded("deadline expired while queued");
    }
    slot_free_.wait_for(lock, std::chrono::milliseconds(1));
  }
  --waiting_;
  ++in_flight_;
  admitted.Increment();
  return AdmissionTicket(this);
}

}  // namespace privrec::serve
