#include "serve/admission.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#include "common/macros.h"
#include "obs/metrics.h"

namespace privrec::serve {

namespace {

obs::Counter& AdmittedCounter() {
  static obs::Counter& c = obs::GetCounter("privrec.serve.admitted_total");
  return c;
}
obs::Counter& ShedCounter() {
  static obs::Counter& c = obs::GetCounter("privrec.serve.shed_total");
  return c;
}
obs::Counter& ExpiredCounter() {
  static obs::Counter& c =
      obs::GetCounter("privrec.serve.deadline_exceeded_total");
  return c;
}
obs::Counter& PurgedCounter() {
  static obs::Counter& c =
      obs::GetCounter("privrec.serve.admission_purged_total");
  return c;
}

}  // namespace

// Shared state of one admission attempt. Guarded by the owning
// controller's mu_ (the controller must outlive every handle).
struct PendingAdmit::Rep {
  Rep(AdmissionController* c, int64_t deadline)
      : controller(c), deadline_ms(deadline) {}

  AdmissionController* controller;
  const int64_t deadline_ms;
  State state = State::kQueued;
  // Valid when kAdmitted: grant time on the injected clock.
  int64_t admit_ms = 0;
  // Valid when kShed: the load-aware hint captured at rejection.
  int64_t retry_after_ms = 0;
  bool ticket_taken = false;
};

PendingAdmit::State PendingAdmit::state() const {
  std::lock_guard<std::mutex> lock(rep_->controller->mu_);
  return rep_->state;
}

int64_t PendingAdmit::retry_after_ms() const {
  std::lock_guard<std::mutex> lock(rep_->controller->mu_);
  return rep_->retry_after_ms;
}

Status PendingAdmit::status() const {
  std::lock_guard<std::mutex> lock(rep_->controller->mu_);
  switch (rep_->state) {
    case State::kQueued:
    case State::kAdmitted:
      return Status::Ok();
    case State::kShed:
      return Status::ResourceExhausted(
          "serving queue full; retry in " +
          std::to_string(rep_->retry_after_ms) + "ms");
    case State::kExpired:
      return Status::DeadlineExceeded("deadline expired before a slot");
  }
  return Status::Internal("unreachable admission state");
}

AdmissionTicket PendingAdmit::TakeTicket() {
  std::lock_guard<std::mutex> lock(rep_->controller->mu_);
  PRIVREC_CHECK_MSG(rep_->state == State::kAdmitted,
                    "TakeTicket on an unadmitted request");
  PRIVREC_CHECK_MSG(!rep_->ticket_taken, "TakeTicket called twice");
  rep_->ticket_taken = true;
  return AdmissionTicket(rep_->controller, rep_->admit_ms);
}

void AdmissionTicket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot(admit_ms_);
    controller_ = nullptr;
  }
}

AdmissionController::AdmissionController(AdmissionOptions options,
                                         const Clock* clock)
    : options_(options),
      clock_(clock != nullptr ? clock : SteadyClock::Instance()) {}

int64_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

int64_t AdmissionController::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

double AdmissionController::EstimatedHoldMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hold_ewma_ms_;
}

int64_t AdmissionController::RetryAfterHintMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return RetryAfterHintLocked();
}

int64_t AdmissionController::RetryAfterHintLocked() const {
  if (hold_ewma_ms_ <= 0.0) return options_.retry_after_ms;
  // Expected wait for an arrival at the back of the queue: every
  // max_concurrency releases drain one queue layer, each layer costing
  // one estimated hold time.
  const double layers =
      static_cast<double>(waiting_ + 1) /
      static_cast<double>(std::max<int64_t>(1, options_.max_concurrency));
  const int64_t estimate =
      static_cast<int64_t>(std::ceil(hold_ewma_ms_ * layers));
  return std::max(options_.retry_after_ms, estimate);
}

int64_t AdmissionController::PurgeExpiredLocked(int64_t now_ms) {
  int64_t purged = 0;
  for (auto& rep : queue_) {
    if (rep->state == PendingAdmit::State::kQueued &&
        now_ms >= rep->deadline_ms) {
      rep->state = PendingAdmit::State::kExpired;
      --waiting_;
      ++purged;
    }
  }
  if (purged > 0) {
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                [](const auto& rep) {
                                  return rep->state !=
                                         PendingAdmit::State::kQueued;
                                }),
                 queue_.end());
    ExpiredCounter().Add(purged);
    PurgedCounter().Add(purged);
  }
  return purged;
}

int64_t AdmissionController::PurgeExpired() {
  int64_t purged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    purged = PurgeExpiredLocked(clock_->NowMs());
  }
  if (purged > 0) slot_free_.notify_all();
  return purged;
}

void AdmissionController::ReleaseSlot(int64_t admit_ms) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t now = clock_->NowMs();
    const double hold =
        static_cast<double>(std::max<int64_t>(0, now - admit_ms));
    if (!has_hold_) {
      hold_ewma_ms_ = hold;
      has_hold_ = true;
    } else {
      const double a = options_.hold_ewma_alpha;
      hold_ewma_ms_ = a * hold + (1.0 - a) * hold_ewma_ms_;
    }
    // Dead requests first: a waiter whose deadline already passed must
    // not consume the freed slot just to wake up and fail.
    PurgeExpiredLocked(now);
    if (!queue_.empty()) {
      // Hand the slot straight to the first live waiter — in_flight_
      // stays constant across the transfer.
      std::shared_ptr<PendingAdmit::Rep> granted = queue_.front();
      queue_.pop_front();
      --waiting_;
      granted->state = PendingAdmit::State::kAdmitted;
      granted->admit_ms = now;
      AdmittedCounter().Increment();
    } else {
      --in_flight_;
    }
  }
  slot_free_.notify_all();
}

PendingAdmit AdmissionController::ResolveEntry(int64_t deadline_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = clock_->NowMs();
  PurgeExpiredLocked(now);
  auto rep = std::make_shared<PendingAdmit::Rep>(this, deadline_ms);
  if (now >= deadline_ms) {
    rep->state = PendingAdmit::State::kExpired;
    ExpiredCounter().Increment();
  } else if (in_flight_ < options_.max_concurrency) {
    ++in_flight_;
    rep->state = PendingAdmit::State::kAdmitted;
    rep->admit_ms = now;
    AdmittedCounter().Increment();
  } else if (waiting_ >= options_.queue_depth) {
    rep->state = PendingAdmit::State::kShed;
    rep->retry_after_ms = RetryAfterHintLocked();
    ShedCounter().Increment();
  } else {
    queue_.push_back(rep);
    ++waiting_;
  }
  return PendingAdmit(std::move(rep));
}

PendingAdmit AdmissionController::AdmitAsync(int64_t deadline_ms) {
  return ResolveEntry(deadline_ms);
}

Result<AdmissionTicket> AdmissionController::Admit(int64_t deadline_ms) {
  PendingAdmit pending = ResolveEntry(deadline_ms);
  std::shared_ptr<PendingAdmit::Rep> rep = pending.rep_;

  std::unique_lock<std::mutex> lock(mu_);
  // Queued: wait in short real-time slices, re-checking the injected
  // clock each wakeup so a ManualClock advanced by another thread is
  // observed promptly; with the default SteadyClock the slice is just a
  // coarse timed wait. A grant races a concurrent expiry in our favor:
  // once ReleaseSlot marked this waiter admitted, it keeps the slot.
  while (rep->state == PendingAdmit::State::kQueued) {
    if (clock_->NowMs() >= rep->deadline_ms) {
      rep->state = PendingAdmit::State::kExpired;
      --waiting_;
      queue_.erase(std::remove(queue_.begin(), queue_.end(), rep),
                   queue_.end());
      ExpiredCounter().Increment();
      break;
    }
    slot_free_.wait_for(lock, std::chrono::milliseconds(1));
  }

  switch (rep->state) {
    case PendingAdmit::State::kAdmitted:
      rep->ticket_taken = true;
      return AdmissionTicket(this, rep->admit_ms);
    case PendingAdmit::State::kShed:
      return Status::ResourceExhausted(
          "serving queue full (" + std::to_string(waiting_) +
          " waiting); retry in " + std::to_string(rep->retry_after_ms) +
          "ms");
    case PendingAdmit::State::kExpired:
      return Status::DeadlineExceeded(
          "deadline expired before or while queued for admission");
    case PendingAdmit::State::kQueued:
      break;
  }
  return Status::Internal("unreachable admission state");
}

}  // namespace privrec::serve
