#include "serve/runtime.h"

#include <memory>
#include <mutex>
#include <utility>

#include "core/recommendation.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace privrec::serve {

namespace {

obs::Counter& RequestCounter() {
  static obs::Counter& c = obs::GetCounter("privrec.serve.requests_total");
  return c;
}

obs::Counter& FallbackCounter() {
  static obs::Counter& c = obs::GetCounter("privrec.serve.fallback_total");
  return c;
}

obs::Histogram& RequestLatency() {
  static obs::Histogram& h = obs::GetHistogram(
      "privrec.serve.request_ms", obs::ExponentialBuckets(0.5, 2.0, 12));
  return h;
}

}  // namespace

ServeRuntime::ServeRuntime(ServeRuntimeOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SteadyClock::Instance()),
      swapper_(options.swap),
      admission_(options.admission, clock_),
      reload_breaker_("artifact_reload", options.breaker, clock_) {}

Status ServeRuntime::Activate(const std::string& path) {
  return reload_breaker_.Run([&] { return swapper_.Activate(path); });
}

ServeResponse ServeRuntime::Fallback(
    Status status, const std::shared_ptr<EpochSnapshot>& epoch,
    const ServeRequest& request, int64_t retry_after_ms) {
  ServeResponse response;
  response.status = std::move(status);
  response.retry_after_ms = retry_after_ms;
  response.epoch = epoch->epoch;
  response.artifact_seed = epoch->artifact_seed;
  if (!options_.degraded_fallback) return response;

  // The global-average row is a pure function of the frozen release, so
  // the fallback tier needs neither admission nor the serve mutex.
  const std::vector<double>& row = epoch->engine.global_average();
  core::RecommendationList list = core::TopNFromDense(row, request.top_n);
  response.batch.lists.assign(request.users.size(), list);
  response.batch.degradation.assign(
      request.users.size(),
      core::DegradationInfo{core::DegradationReason::kLoadShed});
  response.batch.report.users_degraded =
      static_cast<int64_t>(request.users.size());
  response.degraded_fallback = true;
  FallbackCounter().Increment();
  return response;
}

ServeResponse ServeRuntime::Handle(const ServeRequest& request) {
  PRIVREC_SPAN("serve.request");
  RequestCounter().Increment();
  const int64_t start_ms = clock_->NowMs();

  // Pin the epoch for the whole request: a concurrent swap cannot change
  // what this batch is served from, and the snapshot outlives the swap.
  std::shared_ptr<EpochSnapshot> epoch = swapper_.AcquireMutable();
  if (epoch == nullptr) {
    ServeResponse response;
    response.status =
        Status::FailedPrecondition("no artifact activated yet");
    return response;
  }

  const int64_t deadline = start_ms + request.deadline_ms;
  Result<AdmissionTicket> ticket = admission_.Admit(deadline);
  if (!ticket.ok()) {
    const int64_t retry_after =
        ticket.status().code() == StatusCode::kResourceExhausted
            ? options_.admission.retry_after_ms
            : 0;
    return Fallback(ticket.status(), epoch, request, retry_after);
  }

  ServeResponse response;
  response.epoch = epoch->epoch;
  response.artifact_seed = epoch->artifact_seed;
  if (epoch->recommender->ConcurrentSafe()) {
    response.batch = epoch->recommender->Recommend(request.users,
                                                   request.top_n);
  } else {
    std::lock_guard<std::mutex> lock(epoch->serve_mu);
    response.batch = epoch->recommender->Recommend(request.users,
                                                   request.top_n);
  }
  ticket->Release();

  RequestLatency().Observe(
      static_cast<double>(clock_->NowMs() - start_ms));
  return response;
}

}  // namespace privrec::serve
