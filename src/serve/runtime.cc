#include "serve/runtime.h"

#include <memory>
#include <mutex>
#include <utility>

#include "common/macros.h"
#include "core/recommendation.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/telemetry.h"

namespace privrec::serve {

namespace {

obs::Counter& RequestCounter() {
  static obs::Counter& c = obs::GetCounter("privrec.serve.requests_total");
  return c;
}

obs::Counter& FallbackCounter() {
  static obs::Counter& c = obs::GetCounter("privrec.serve.fallback_total");
  return c;
}

obs::Histogram& RequestLatency() {
  static obs::Histogram& h = obs::GetHistogram(
      "privrec.serve.request_ms", obs::LatencyBucketsMs());
  return h;
}

}  // namespace

ServeRuntime::ServeRuntime(ServeRuntimeOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SteadyClock::Instance()),
      swapper_(options.swap),
      admission_(options.admission, clock_),
      reload_breaker_("artifact_reload", options.breaker, clock_) {}

Status ServeRuntime::Activate(const std::string& path) {
  return reload_breaker_.Run([&] { return swapper_.Activate(path); });
}

ServeResponse ServeRuntime::Fallback(
    Status status, const std::shared_ptr<EpochSnapshot>& epoch,
    const ServeRequest& request, int64_t retry_after_ms) {
  ServeResponse response;
  response.status = std::move(status);
  response.retry_after_ms = retry_after_ms;
  response.epoch = epoch->epoch;
  response.artifact_seed = epoch->artifact_seed;
  if (!options_.degraded_fallback) return response;

  // The global-average row is a pure function of the frozen release, so
  // the fallback tier needs neither admission nor the serve mutex.
  const std::vector<double>& row = epoch->engine.global_average();
  core::RecommendationList list = core::TopNFromDense(row, request.top_n);
  response.batch.lists.assign(request.users.size(), list);
  response.batch.degradation.assign(
      request.users.size(),
      core::DegradationInfo{core::DegradationReason::kLoadShed});
  response.batch.report.users_degraded =
      static_cast<int64_t>(request.users.size());
  response.degraded_fallback = true;
  FallbackCounter().Increment();
  return response;
}

void ServeRuntime::ServeFromEpoch(EpochSnapshot& epoch,
                                  const ServeRequest& request,
                                  ServeResponse* response) {
  if (epoch.recommender->ConcurrentSafe()) {
    response->batch =
        epoch.recommender->Recommend(request.users, request.top_n);
  } else {
    std::lock_guard<std::mutex> lock(epoch.serve_mu);
    response->batch =
        epoch.recommender->Recommend(request.users, request.top_n);
  }
}

void ServeRuntime::EmitTelemetry(obs::RequestTelemetry& event,
                                 const ServeResponse& response) {
  if (options_.telemetry == nullptr) return;
  FinalizeRequestTelemetry(event, response, clock_->NowMs());
  options_.telemetry->Record(event);
}

void ServeRuntime::EmitAsyncTelemetry(AsyncServe& op) {
  if (options_.telemetry == nullptr || op.telemetry_emitted) return;
  op.telemetry_emitted = true;
  FinalizeRequestTelemetry(op.telemetry, op.response, clock_->NowMs());
  options_.telemetry->Record(op.telemetry);
}

ServeResponse ServeRuntime::Handle(const ServeRequest& request) {
  obs::SpanScope span("serve.request");
  RequestCounter().Increment();
  const int64_t start_ms = clock_->NowMs();
  const uint64_t request_id = ResolveRequestId(request);
  span.Arg("request_id", std::to_string(request_id));

  obs::RequestTelemetry event;
  event.request_id = request_id;
  event.arrival_ms = start_ms;
  event.users = static_cast<int64_t>(request.users.size());
  event.top_n = request.top_n;
  event.deadline_ms = request.deadline_ms;

  // Pin the epoch for the whole request: a concurrent swap cannot change
  // what this batch is served from, and the snapshot outlives the swap.
  std::shared_ptr<EpochSnapshot> epoch = swapper_.AcquireMutable();
  if (epoch == nullptr) {
    ServeResponse response;
    response.status =
        Status::FailedPrecondition("no artifact activated yet");
    response.request_id = request_id;
    EmitTelemetry(event, response);
    return response;
  }

  ServeResponse response;
  response.request_id = request_id;
  response.epoch = epoch->epoch;
  response.artifact_seed = epoch->artifact_seed;
  span.Arg("epoch", std::to_string(epoch->epoch));
  event.shard_count = epoch->engine.shard_count();

  if (request.top_n <= 0) {
    response.status =
        Status::InvalidArgument("top_n must be positive, got " +
                                std::to_string(request.top_n));
    EmitTelemetry(event, response);
    return response;
  }
  if (request.users.empty()) {
    // Nothing to rank; answer OK without consuming a serving slot.
    EmitTelemetry(event, response);
    return response;
  }

  const int64_t deadline = start_ms + request.deadline_ms;
  Result<AdmissionTicket> ticket = admission_.Admit(deadline);
  const int64_t admitted_ms = clock_->NowMs();
  event.queue_wait_ms = admitted_ms - start_ms;
  if (!ticket.ok()) {
    const int64_t retry_after =
        ticket.status().code() == StatusCode::kResourceExhausted
            ? admission_.RetryAfterHintMs()
            : 0;
    ServeResponse fallback =
        Fallback(ticket.status(), epoch, request, retry_after);
    fallback.request_id = request_id;
    EmitTelemetry(event, fallback);
    return fallback;
  }

  ServeFromEpoch(*epoch, request, &response);
  ticket->Release();

  const int64_t end_ms = clock_->NowMs();
  event.reconstruct_ms = static_cast<double>(end_ms - admitted_ms);
  RequestLatency().Observe(static_cast<double>(end_ms - start_ms));
  EmitTelemetry(event, response);
  return response;
}

AsyncServe ServeRuntime::BeginAsync(const ServeRequest& request,
                                    int64_t arrival_ms) {
  RequestCounter().Increment();
  AsyncServe op;
  op.request = request;
  op.arrival_ms = arrival_ms;

  const uint64_t request_id = ResolveRequestId(request);
  op.response.request_id = request_id;
  op.telemetry.request_id = request_id;
  op.telemetry.arrival_ms = arrival_ms;
  op.telemetry.users = static_cast<int64_t>(request.users.size());
  op.telemetry.top_n = request.top_n;
  op.telemetry.deadline_ms = request.deadline_ms;

  op.epoch = swapper_.AcquireMutable();
  if (op.epoch == nullptr) {
    op.response.status =
        Status::FailedPrecondition("no artifact activated yet");
    op.done = true;
    EmitAsyncTelemetry(op);
    return op;
  }
  op.response.epoch = op.epoch->epoch;
  op.response.artifact_seed = op.epoch->artifact_seed;
  op.telemetry.shard_count = op.epoch->engine.shard_count();

  if (request.top_n <= 0) {
    op.response.status =
        Status::InvalidArgument("top_n must be positive, got " +
                                std::to_string(request.top_n));
    op.done = true;
    EmitAsyncTelemetry(op);
    return op;
  }
  if (request.users.empty()) {
    op.done = true;  // OK, empty batch
    EmitAsyncTelemetry(op);
    return op;
  }

  op.pending =
      admission_.AdmitAsync(arrival_ms + request.deadline_ms);
  PollAsync(op);
  return op;
}

bool ServeRuntime::PollAsync(AsyncServe& op) {
  if (op.done || op.admitted) return true;
  PendingAdmit::State state = op.pending->state();
  if (state == PendingAdmit::State::kQueued) {
    // A clock advance may have expired this (or an earlier) waiter
    // without any release to notice it.
    if (admission_.PurgeExpired() == 0) return false;
    state = op.pending->state();
    if (state == PendingAdmit::State::kQueued) return false;
  }
  switch (state) {
    case PendingAdmit::State::kAdmitted:
      op.ticket = op.pending->TakeTicket();
      op.admitted = true;
      op.telemetry.queue_wait_ms = clock_->NowMs() - op.arrival_ms;
      return true;
    case PendingAdmit::State::kShed:
      op.response = Fallback(op.pending->status(), op.epoch, op.request,
                             op.pending->retry_after_ms());
      op.response.request_id = op.telemetry.request_id;
      op.telemetry.queue_wait_ms = clock_->NowMs() - op.arrival_ms;
      op.done = true;
      EmitAsyncTelemetry(op);
      return true;
    case PendingAdmit::State::kExpired:
      op.response =
          Fallback(op.pending->status(), op.epoch, op.request, 0);
      op.response.request_id = op.telemetry.request_id;
      op.telemetry.queue_wait_ms = clock_->NowMs() - op.arrival_ms;
      op.done = true;
      EmitAsyncTelemetry(op);
      return true;
    case PendingAdmit::State::kQueued:
      break;
  }
  return false;
}

ServeResponse ServeRuntime::FinishAsync(AsyncServe& op) {
  if (op.done) return op.response;
  PRIVREC_CHECK_MSG(op.admitted,
                    "FinishAsync on an operation that is still queued");
  const int64_t serve_start_ms = clock_->NowMs();
  ServeFromEpoch(*op.epoch, op.request, &op.response);
  op.ticket.Release();
  const int64_t end_ms = clock_->NowMs();
  op.telemetry.reconstruct_ms =
      static_cast<double>(end_ms - serve_start_ms);
  RequestLatency().Observe(static_cast<double>(end_ms - op.arrival_ms));
  op.done = true;
  EmitAsyncTelemetry(op);
  return op.response;
}

}  // namespace privrec::serve
