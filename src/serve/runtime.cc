#include "serve/runtime.h"

#include <memory>
#include <mutex>
#include <utility>

#include "common/macros.h"
#include "core/recommendation.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/telemetry.h"

namespace privrec::serve {

namespace {

obs::Counter& RequestCounter() {
  static obs::Counter& c = obs::GetCounter("privrec.serve.requests_total");
  return c;
}

obs::Counter& FallbackCounter() {
  static obs::Counter& c = obs::GetCounter("privrec.serve.fallback_total");
  return c;
}

obs::Histogram& RequestLatency() {
  static obs::Histogram& h = obs::GetHistogram(
      "privrec.serve.request_ms", obs::LatencyBucketsMs());
  return h;
}

}  // namespace

ServeRuntime::ServeRuntime(ServeRuntimeOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SteadyClock::Instance()),
      swapper_(options.swap),
      admission_(options.admission, clock_),
      reload_breaker_("artifact_reload", options.breaker, clock_) {
  if (options_.batch.window_ms > 0) {
    batcher_ = std::make_unique<RequestBatcher>(options_.batch, clock_);
  }
}

Status ServeRuntime::Activate(const std::string& path) {
  return reload_breaker_.Run([&] { return swapper_.Activate(path); });
}

ServeResponse ServeRuntime::Fallback(
    Status status, const std::shared_ptr<EpochSnapshot>& epoch,
    const ServeRequest& request, int64_t retry_after_ms) {
  ServeResponse response;
  response.status = std::move(status);
  response.retry_after_ms = retry_after_ms;
  response.epoch = epoch->epoch;
  response.artifact_seed = epoch->artifact_seed;
  if (!options_.degraded_fallback) return response;

  // The global-average row is a pure function of the frozen release, so
  // the fallback tier needs neither admission nor the serve mutex.
  const std::vector<double>& row = epoch->engine.global_average();
  core::RecommendationList list = core::TopNFromDense(row, request.top_n);
  response.batch.lists.assign(request.users.size(), list);
  response.batch.degradation.assign(
      request.users.size(),
      core::DegradationInfo{core::DegradationReason::kLoadShed});
  response.batch.report.users_degraded =
      static_cast<int64_t>(request.users.size());
  response.degraded_fallback = true;
  FallbackCounter().Increment();
  return response;
}

void ServeRuntime::ServeFromEpoch(
    const std::shared_ptr<EpochSnapshot>& epoch, const ServeRequest& request,
    ServeResponse* response, obs::RequestTelemetry* event,
    bool use_batcher) {
  if (epoch->recommender->ConcurrentSafe()) {
    if (use_batcher && batcher_ != nullptr) {
      // Per-user independence makes the merged call bit-identical to the
      // per-request calls it replaces; only amortization changes.
      RequestBatcher::Slice slice = batcher_->Submit(
          epoch, request.users, request.top_n,
          [](EpochSnapshot& e, const std::vector<graph::NodeId>& all,
             int64_t top_n) { return e.recommender->Recommend(all, top_n); });
      response->batch = std::move(slice.batch);
      if (event != nullptr) {
        event->batch_requests = slice.batch_requests;
        event->batch_users = slice.batch_users;
      }
      return;
    }
    response->batch =
        epoch->recommender->Recommend(request.users, request.top_n);
  } else {
    // Fresh-noise mechanisms consume their RNG stream per invocation and
    // must see exactly one call per request — never batched, serialized.
    std::lock_guard<std::mutex> lock(epoch->serve_mu);
    response->batch =
        epoch->recommender->Recommend(request.users, request.top_n);
  }
  if (event != nullptr) {
    event->batch_requests = 1;
    event->batch_users = static_cast<int64_t>(request.users.size());
  }
}

void ServeRuntime::EmitTelemetry(obs::RequestTelemetry& event,
                                 const ServeResponse& response) {
  if (options_.telemetry == nullptr) return;
  FinalizeRequestTelemetry(event, response, clock_->NowMs());
  options_.telemetry->Record(event);
}

void ServeRuntime::EmitAsyncTelemetry(AsyncServe& op) {
  if (options_.telemetry == nullptr || op.telemetry_emitted) return;
  op.telemetry_emitted = true;
  FinalizeRequestTelemetry(op.telemetry, op.response, clock_->NowMs());
  options_.telemetry->Record(op.telemetry);
}

ServeResponse ServeRuntime::Handle(const ServeRequest& request) {
  obs::SpanScope span("serve.request");
  RequestCounter().Increment();
  const int64_t start_ms = clock_->NowMs();
  const uint64_t request_id = ResolveRequestId(request);
  span.Arg("request_id", std::to_string(request_id));

  obs::RequestTelemetry event;
  event.request_id = request_id;
  event.arrival_ms = start_ms;
  event.users = static_cast<int64_t>(request.users.size());
  event.top_n = request.top_n;
  event.deadline_ms = request.deadline_ms;

  // Pin the epoch for the whole request: a concurrent swap cannot change
  // what this batch is served from, and the snapshot outlives the swap.
  std::shared_ptr<EpochSnapshot> epoch = swapper_.AcquireMutable();
  if (epoch == nullptr) {
    ServeResponse response;
    response.status =
        Status::FailedPrecondition("no artifact activated yet");
    response.request_id = request_id;
    EmitTelemetry(event, response);
    return response;
  }

  ServeResponse response;
  response.request_id = request_id;
  response.epoch = epoch->epoch;
  response.artifact_seed = epoch->artifact_seed;
  span.Arg("epoch", std::to_string(epoch->epoch));
  event.shard_count = epoch->engine.shard_count();

  if (request.top_n <= 0) {
    response.status =
        Status::InvalidArgument("top_n must be positive, got " +
                                std::to_string(request.top_n));
    EmitTelemetry(event, response);
    return response;
  }
  if (request.users.empty()) {
    // Nothing to rank; answer OK without consuming a serving slot.
    EmitTelemetry(event, response);
    return response;
  }

  const int64_t deadline = start_ms + request.deadline_ms;
  Result<AdmissionTicket> ticket = admission_.Admit(deadline);
  const int64_t admitted_ms = clock_->NowMs();
  event.queue_wait_ms = admitted_ms - start_ms;
  if (!ticket.ok()) {
    const int64_t retry_after =
        ticket.status().code() == StatusCode::kResourceExhausted
            ? admission_.RetryAfterHintMs()
            : 0;
    ServeResponse fallback =
        Fallback(ticket.status(), epoch, request, retry_after);
    fallback.request_id = request_id;
    EmitTelemetry(event, fallback);
    return fallback;
  }

  ServeFromEpoch(epoch, request, &response, &event,
                 /*use_batcher=*/true);
  ticket->Release();

  const int64_t end_ms = clock_->NowMs();
  event.reconstruct_ms = static_cast<double>(end_ms - admitted_ms);
  RequestLatency().Observe(static_cast<double>(end_ms - start_ms));
  EmitTelemetry(event, response);
  return response;
}

AsyncServe ServeRuntime::BeginAsync(const ServeRequest& request,
                                    int64_t arrival_ms) {
  RequestCounter().Increment();
  AsyncServe op;
  op.request = request;
  op.arrival_ms = arrival_ms;

  const uint64_t request_id = ResolveRequestId(request);
  op.response.request_id = request_id;
  op.telemetry.request_id = request_id;
  op.telemetry.arrival_ms = arrival_ms;
  op.telemetry.users = static_cast<int64_t>(request.users.size());
  op.telemetry.top_n = request.top_n;
  op.telemetry.deadline_ms = request.deadline_ms;

  op.epoch = swapper_.AcquireMutable();
  if (op.epoch == nullptr) {
    op.response.status =
        Status::FailedPrecondition("no artifact activated yet");
    op.done = true;
    EmitAsyncTelemetry(op);
    return op;
  }
  op.response.epoch = op.epoch->epoch;
  op.response.artifact_seed = op.epoch->artifact_seed;
  op.telemetry.shard_count = op.epoch->engine.shard_count();

  if (request.top_n <= 0) {
    op.response.status =
        Status::InvalidArgument("top_n must be positive, got " +
                                std::to_string(request.top_n));
    op.done = true;
    EmitAsyncTelemetry(op);
    return op;
  }
  if (request.users.empty()) {
    op.done = true;  // OK, empty batch
    EmitAsyncTelemetry(op);
    return op;
  }

  op.pending =
      admission_.AdmitAsync(arrival_ms + request.deadline_ms);
  PollAsync(op);
  return op;
}

bool ServeRuntime::PollAsync(AsyncServe& op) {
  if (op.done || op.admitted) return true;
  PendingAdmit::State state = op.pending->state();
  if (state == PendingAdmit::State::kQueued) {
    // A clock advance may have expired this (or an earlier) waiter
    // without any release to notice it.
    if (admission_.PurgeExpired() == 0) return false;
    state = op.pending->state();
    if (state == PendingAdmit::State::kQueued) return false;
  }
  switch (state) {
    case PendingAdmit::State::kAdmitted:
      op.ticket = op.pending->TakeTicket();
      op.admitted = true;
      op.telemetry.queue_wait_ms = clock_->NowMs() - op.arrival_ms;
      return true;
    case PendingAdmit::State::kShed:
      op.response = Fallback(op.pending->status(), op.epoch, op.request,
                             op.pending->retry_after_ms());
      op.response.request_id = op.telemetry.request_id;
      op.telemetry.queue_wait_ms = clock_->NowMs() - op.arrival_ms;
      op.done = true;
      EmitAsyncTelemetry(op);
      return true;
    case PendingAdmit::State::kExpired:
      op.response =
          Fallback(op.pending->status(), op.epoch, op.request, 0);
      op.response.request_id = op.telemetry.request_id;
      op.telemetry.queue_wait_ms = clock_->NowMs() - op.arrival_ms;
      op.done = true;
      EmitAsyncTelemetry(op);
      return true;
    case PendingAdmit::State::kQueued:
      break;
  }
  return false;
}

ServeResponse ServeRuntime::FinishAsync(AsyncServe& op) {
  if (op.done) return op.response;
  PRIVREC_CHECK_MSG(op.admitted,
                    "FinishAsync on an operation that is still queued");
  const int64_t serve_start_ms = clock_->NowMs();
  ServeFromEpoch(op.epoch, op.request, &op.response, &op.telemetry,
                 /*use_batcher=*/false);
  op.ticket.Release();
  const int64_t end_ms = clock_->NowMs();
  op.telemetry.reconstruct_ms =
      static_cast<double>(end_ms - serve_start_ms);
  RequestLatency().Observe(static_cast<double>(end_ms - op.arrival_ms));
  op.done = true;
  EmitAsyncTelemetry(op);
  return op.response;
}

void ServeRuntime::FinishAsyncBatch(const std::vector<AsyncServe*>& ops) {
  // Partition: already-done operations are skipped, fresh-noise
  // (non-ConcurrentSafe) operations finish on the serialized
  // one-invocation-per-request path, the rest are batchable.
  std::vector<AsyncServe*> batchable;
  batchable.reserve(ops.size());
  for (AsyncServe* op : ops) {
    if (op == nullptr || op->done) continue;
    PRIVREC_CHECK_MSG(
        op->admitted,
        "FinishAsyncBatch on an operation that is still queued");
    if (op->epoch->recommender->ConcurrentSafe()) {
      batchable.push_back(op);
    } else {
      FinishAsync(*op);
    }
  }

  std::vector<bool> used(batchable.size(), false);
  for (size_t i = 0; i < batchable.size(); ++i) {
    if (used[i]) continue;
    // Group operations that pinned the same epoch and want the same
    // top_n; arrival order within the vector is preserved.
    std::vector<AsyncServe*> group{batchable[i]};
    used[i] = true;
    for (size_t j = i + 1; j < batchable.size(); ++j) {
      if (!used[j] &&
          batchable[j]->epoch.get() == batchable[i]->epoch.get() &&
          batchable[j]->request.top_n == batchable[i]->request.top_n) {
        group.push_back(batchable[j]);
        used[j] = true;
      }
    }

    const int64_t serve_start_ms = clock_->NowMs();
    std::vector<graph::NodeId> all;
    for (const AsyncServe* op : group) {
      all.insert(all.end(), op->request.users.begin(),
                 op->request.users.end());
    }
    core::RecommendedBatch merged =
        group.front()->epoch->recommender->Recommend(
            all, group.front()->request.top_n);
    PRIVREC_CHECK_MSG(
        merged.lists.size() == all.size() &&
            merged.degradation.size() == all.size(),
        "batched recommender returned a malformed merged batch");
    const int64_t end_ms = clock_->NowMs();
    async_batches_.fetch_add(1, std::memory_order_relaxed);
    async_batched_requests_.fetch_add(static_cast<int64_t>(group.size()),
                                      std::memory_order_relaxed);

    // Scatter: each operation takes its contiguous slice of the merged
    // result. Per-user independence of ConcurrentSafe recommenders makes
    // the slices bit-identical to per-operation FinishAsync calls.
    size_t offset = 0;
    for (AsyncServe* op : group) {
      const size_t n = op->request.users.size();
      op->response.batch.report = merged.report;
      op->response.batch.report.users_degraded = 0;
      op->response.batch.lists.resize(n);
      op->response.batch.degradation.resize(n);
      for (size_t k = 0; k < n; ++k) {
        op->response.batch.lists[k] = std::move(merged.lists[offset + k]);
        op->response.batch.degradation[k] = merged.degradation[offset + k];
        if (op->response.batch.degradation[k].degraded()) {
          ++op->response.batch.report.users_degraded;
        }
      }
      offset += n;
      op->ticket.Release();
      op->telemetry.reconstruct_ms =
          static_cast<double>(end_ms - serve_start_ms);
      op->telemetry.batch_requests = static_cast<int64_t>(group.size());
      op->telemetry.batch_users = static_cast<int64_t>(all.size());
      RequestLatency().Observe(static_cast<double>(end_ms - op->arrival_ms));
      op->done = true;
      EmitAsyncTelemetry(*op);
    }
  }
}

}  // namespace privrec::serve
