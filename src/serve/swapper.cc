#include "serve/swapper.h"

#include <cmath>
#include <utility>
#include <vector>

#include "graph/ids.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace privrec::serve {

namespace {

obs::Counter& SwapCounter() {
  static obs::Counter& c = obs::GetCounter("privrec.serve.swap_total");
  return c;
}

obs::Counter& RollbackCounter() {
  static obs::Counter& c =
      obs::GetCounter("privrec.serve.swap_rollback_total");
  return c;
}

obs::Gauge& EpochGauge() {
  static obs::Gauge& g = obs::GetGauge("privrec.serve.epoch");
  return g;
}

}  // namespace

ArtifactSwapper::ArtifactSwapper(SwapPolicy policy)
    : policy_(std::move(policy)) {}

std::shared_ptr<const EpochSnapshot> ArtifactSwapper::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::shared_ptr<EpochSnapshot> ArtifactSwapper::AcquireMutable() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

int64_t ArtifactSwapper::current_epoch() const {
  return epoch_.load(std::memory_order_relaxed);
}

std::string ArtifactSwapper::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

Status ArtifactSwapper::RecordRollback(Status status) {
  RollbackCounter().Increment();
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_error_ = status.ToString();
  }
  rollbacks_.fetch_add(1, std::memory_order_relaxed);
  return status;
}

Status ArtifactSwapper::ProbeCandidate(EpochSnapshot* candidate) const {
  if (policy_.probe_users <= 0) return Status::Ok();
  const int64_t num_users = candidate->engine.num_users();
  std::vector<graph::NodeId> probe;
  for (int64_t u = 0; u < std::min(policy_.probe_users, num_users); ++u) {
    probe.push_back(u);
  }
  if (probe.empty()) return Status::Ok();

  core::RecommendedBatch batch =
      candidate->recommender->Recommend(probe, policy_.probe_top_n);
  if (batch.lists.size() != probe.size() ||
      batch.degradation.size() != probe.size()) {
    return Status::FailedPrecondition(
        "self-check probe: batch shape does not match the probe request");
  }
  for (const core::RecommendationList& list : batch.lists) {
    if (static_cast<int64_t>(list.size()) > policy_.probe_top_n) {
      return Status::FailedPrecondition(
          "self-check probe: list longer than top_n");
    }
    for (const core::Recommendation& r : list) {
      if (r.item < 0 || r.item >= candidate->engine.num_items() ||
          !std::isfinite(r.utility)) {
        return Status::FailedPrecondition(
            "self-check probe: non-finite or out-of-range recommendation "
            "(item " +
            std::to_string(r.item) + ")");
      }
    }
  }
  return Status::Ok();
}

Status ArtifactSwapper::Activate(const std::string& path) {
  PRIVREC_SPAN("serve.swap");

  // 1. Load + validate off the request path. Readers keep serving the
  // current epoch throughout.
  Result<serving::ServingEngine> loaded = serving::ServingEngine::Load(path);
  if (!loaded.ok()) return RecordRollback(loaded.status());

  auto candidate = std::make_shared<EpochSnapshot>();
  candidate->engine = std::move(*loaded);
  candidate->artifact_seed = candidate->engine.model().provenance.seed;
  candidate->epsilon = candidate->engine.model().provenance.epsilon;

  // 2. Compatibility gates. The graph fingerprint is pinned to the live
  // epoch unless the policy names one explicitly: a hot swap may upgrade
  // the model, never silently change the dataset being served.
  serving::ServeSpec spec = policy_.spec;
  if (spec.expected_graph_hash == 0 && policy_.pin_graph_hash) {
    std::shared_ptr<const EpochSnapshot> live = Acquire();
    if (live != nullptr) {
      spec.expected_graph_hash = live->engine.model().meta.graph_hash;
    }
  }
  if (policy_.adopt_artifact_epsilon) {
    spec.epsilon = candidate->epsilon;
  }
  Result<std::unique_ptr<serving::ServeRecommender>> recommender =
      serving::MakeServeRecommender(&candidate->engine, spec);
  if (!recommender.ok()) return RecordRollback(recommender.status());
  candidate->recommender = std::move(*recommender);

  // 3. Self-check probe: a candidate that decodes and gates cleanly but
  // would serve garbage is rejected here, before any request can see it.
  Status probed = ProbeCandidate(candidate.get());
  if (!probed.ok()) return RecordRollback(std::move(probed));

  // 4. Publish. In-flight requests holding the old shared_ptr finish on
  // their epoch; the old snapshot is destroyed when the last one drains.
  const int64_t epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  candidate->epoch = epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(candidate);
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  SwapCounter().Increment();
  EpochGauge().Set(static_cast<double>(epoch));
  return Status::Ok();
}

}  // namespace privrec::serve
