#include "serve/circuit_breaker.h"

#include <utility>

#include "obs/metrics.h"

namespace privrec::serve {

namespace {

obs::Gauge& StateGauge() {
  static obs::Gauge& gauge = obs::GetGauge("privrec.serve.breaker_state");
  return gauge;
}

}  // namespace

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "closed";
}

CircuitBreaker::CircuitBreaker(std::string name,
                               CircuitBreakerOptions options,
                               const Clock* clock)
    : name_(std::move(name)),
      options_(options),
      clock_(clock != nullptr ? clock : SteadyClock::Instance()) {
  StateGauge().Set(0.0);
}

BreakerState CircuitBreaker::StateLocked(int64_t now_ms) const {
  if (!tripped_) return BreakerState::kClosed;
  if (now_ms - opened_at_ms_ >= options_.cooldown_ms) {
    return BreakerState::kHalfOpen;
  }
  return BreakerState::kOpen;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return StateLocked(clock_->NowMs());
}

int64_t CircuitBreaker::retry_after_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = clock_->NowMs();
  if (StateLocked(now) != BreakerState::kOpen) return 0;
  return options_.cooldown_ms - (now - opened_at_ms_);
}

int64_t CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

void CircuitBreaker::RecordLocked(bool ok, int64_t now_ms) {
  static obs::Counter& opened =
      obs::GetCounter("privrec.serve.breaker_opened_total");
  static obs::Counter& closed =
      obs::GetCounter("privrec.serve.breaker_closed_total");
  const BreakerState state = StateLocked(now_ms);
  if (ok) {
    if (state == BreakerState::kHalfOpen) {
      if (++probe_successes_ >= options_.half_open_successes) {
        tripped_ = false;
        failures_ = 0;
        probe_successes_ = 0;
        closed.Increment();
      }
    } else {
      failures_ = 0;
    }
  } else {
    probe_successes_ = 0;
    if (state == BreakerState::kHalfOpen) {
      // A failed probe re-opens and restarts the cooldown.
      opened_at_ms_ = now_ms;
      opened.Increment();
    } else if (++failures_ >= options_.failure_threshold && !tripped_) {
      tripped_ = true;
      opened_at_ms_ = now_ms;
      probe_successes_ = 0;
      opened.Increment();
    }
  }
  StateGauge().Set(static_cast<double>(StateLocked(now_ms)));
}

Status CircuitBreaker::Run(const std::function<Status()>& op) {
  BreakerState entry_state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t now = clock_->NowMs();
    entry_state = StateLocked(now);
    if (entry_state == BreakerState::kOpen ||
        (entry_state == BreakerState::kHalfOpen && probe_in_flight_)) {
      static obs::Counter& rejected =
          obs::GetCounter("privrec.serve.breaker_rejected_total");
      rejected.Increment();
      const int64_t retry_in =
          entry_state == BreakerState::kOpen
              ? options_.cooldown_ms - (now - opened_at_ms_)
              : options_.cooldown_ms;
      return Status::ResourceExhausted(
          "circuit '" + name_ + "' open; retry in " +
          std::to_string(retry_in) + "ms");
    }
    if (entry_state == BreakerState::kHalfOpen) probe_in_flight_ = true;
  }

  Status result;
  if (entry_state == BreakerState::kHalfOpen) {
    // Half-open probe: give the recovering backing store the benefit of
    // bounded retries for transient errors before judging it.
    result = RetryWithBackoff(op, options_.probe_retry);
  } else {
    result = op();
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entry_state == BreakerState::kHalfOpen) probe_in_flight_ = false;
    RecordLocked(result.ok(), clock_->NowMs());
  }
  return result;
}

}  // namespace privrec::serve
