// ServeRuntime: the resilient request-serving loop over the artifact
// serving engine. It composes the three mechanisms of this layer:
//
//   - ArtifactSwapper: epoch-based hot swap; requests pin their epoch via
//     shared_ptr, reloads validate/gate/probe off the request path and
//     roll back without ever exposing a bad artifact;
//   - AdmissionController: per-request deadlines, a bounded wait queue,
//     and load shedding with typed rejections and a retry-after hint;
//   - CircuitBreaker: reload/backing-store protection — after repeated
//     reload failures the breaker opens and later reloads fail fast until
//     a half-open probe (with bounded retries) succeeds.
//
// Shed or expired requests are not necessarily empty-handed: with
// `degraded_fallback` on, the response still carries the global-average
// fallback ranking (core/degradation kLoadShed tier) computed from the
// pinned epoch — the caller gets both the typed rejection AND a usable
// degraded answer, mirroring the degradation contract of the offline
// recommenders.

#ifndef PRIVREC_SERVE_RUNTIME_H_
#define PRIVREC_SERVE_RUNTIME_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/degradation.h"
#include "graph/ids.h"
#include "serve/admission.h"
#include "serve/circuit_breaker.h"
#include "serve/clock.h"
#include "serve/swapper.h"

namespace privrec::serve {

struct ServeRuntimeOptions {
  SwapPolicy swap;
  AdmissionOptions admission;
  CircuitBreakerOptions breaker;
  // Answer shed/expired requests from the global-average fallback tier of
  // the pinned epoch instead of returning the bare rejection.
  bool degraded_fallback = true;
  // Null = SteadyClock; tests inject a ManualClock shared with the
  // admission controller and the breaker.
  const Clock* clock = nullptr;
};

struct ServeRequest {
  std::vector<graph::NodeId> users;
  int64_t top_n = 10;
  // Relative deadline budget, measured on the runtime's clock from the
  // moment Handle() is entered.
  int64_t deadline_ms = 1000;
};

struct ServeResponse {
  // kOk: `batch` is the personalized answer. kResourceExhausted /
  // kDeadlineExceeded: the request was shed or expired — `batch` holds
  // the kLoadShed fallback ranking iff degraded_fallback was on.
  // kFailedPrecondition: no artifact has been activated yet.
  Status status = Status::Ok();
  core::RecommendedBatch batch;
  // Generation identity of the epoch that (fully) served this response.
  int64_t epoch = 0;
  uint64_t artifact_seed = 0;
  // True when `batch` came from the global-average fallback tier.
  bool degraded_fallback = false;
  // Nonzero on kResourceExhausted: hint for when to retry.
  int64_t retry_after_ms = 0;
};

class ServeRuntime {
 public:
  explicit ServeRuntime(ServeRuntimeOptions options);

  // Activates (first call) or hot-swaps (later calls) the artifact at
  // `path`, routed through the reload circuit breaker: while the breaker
  // is open this fails fast with kResourceExhausted without touching the
  // backing store.
  Status Activate(const std::string& path);

  // Serves one request against the currently pinned epoch. Thread-safe;
  // concurrent calls during an Activate() finish on whichever epoch they
  // pinned at entry.
  ServeResponse Handle(const ServeRequest& request);

  const ArtifactSwapper& swapper() const { return swapper_; }
  const CircuitBreaker& reload_breaker() const { return reload_breaker_; }
  const AdmissionController& admission() const { return admission_; }

 private:
  ServeResponse Fallback(Status status,
                         const std::shared_ptr<EpochSnapshot>& epoch,
                         const ServeRequest& request,
                         int64_t retry_after_ms);

  ServeRuntimeOptions options_;
  const Clock* clock_;
  ArtifactSwapper swapper_;
  AdmissionController admission_;
  CircuitBreaker reload_breaker_;
};

}  // namespace privrec::serve

#endif  // PRIVREC_SERVE_RUNTIME_H_
