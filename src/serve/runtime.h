// ServeRuntime: the resilient request-serving loop over the artifact
// serving engine. It composes the three mechanisms of this layer:
//
//   - ArtifactSwapper: epoch-based hot swap; requests pin their epoch via
//     shared_ptr, reloads validate/gate/probe off the request path and
//     roll back without ever exposing a bad artifact;
//   - AdmissionController: per-request deadlines, a bounded wait queue,
//     and load shedding with typed rejections and a retry-after hint;
//   - CircuitBreaker: reload/backing-store protection — after repeated
//     reload failures the breaker opens and later reloads fail fast until
//     a half-open probe (with bounded retries) succeeds.
//
// Shed or expired requests are not necessarily empty-handed: with
// `degraded_fallback` on, the response still carries the global-average
// fallback ranking (core/degradation kLoadShed tier) computed from the
// pinned epoch — the caller gets both the typed rejection AND a usable
// degraded answer, mirroring the degradation contract of the offline
// recommenders.

#ifndef PRIVREC_SERVE_RUNTIME_H_
#define PRIVREC_SERVE_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/degradation.h"
#include "graph/ids.h"
#include "obs/wide_event.h"
#include "serve/admission.h"
#include "serve/batcher.h"
#include "serve/circuit_breaker.h"
#include "serve/clock.h"
#include "serve/swapper.h"

namespace privrec::serve {

class ServeTelemetry;
struct RuntimeIntrospection;

struct ServeRuntimeOptions {
  SwapPolicy swap;
  AdmissionOptions admission;
  CircuitBreakerOptions breaker;
  // Answer shed/expired requests from the global-average fallback tier of
  // the pinned epoch instead of returning the bare rejection.
  bool degraded_fallback = true;
  // Cross-request coalescing (serve/batcher.h). window_ms = 0 (the
  // default) keeps the historical one-request-one-Recommend path; > 0
  // merges concurrent Handle() calls that pinned the same epoch into one
  // reconstruction. Only ConcurrentSafe recommenders are ever batched, so
  // the merge is bit-identical to serving each request alone.
  BatchOptions batch;
  // Null = SteadyClock; tests inject a ManualClock shared with the
  // admission controller and the breaker.
  const Clock* clock = nullptr;
  // Optional per-request telemetry sink (serve/telemetry.h), not owned;
  // must outlive the runtime. Null = no wide events.
  ServeTelemetry* telemetry = nullptr;
};

struct ServeRequest {
  std::vector<graph::NodeId> users;
  int64_t top_n = 10;
  // Relative deadline budget, measured on the runtime's clock from the
  // moment Handle() is entered.
  int64_t deadline_ms = 1000;
  // Wide-event identity: 0 lets the runtime assign the next id from its
  // sequence; nonzero ids (the load harness stamps schedule indices) are
  // taken verbatim so sampled-event sets reproduce across runs, modes,
  // and thread counts.
  uint64_t request_id = 0;
};

struct ServeResponse {
  // kOk: `batch` is the personalized answer. kResourceExhausted /
  // kDeadlineExceeded: the request was shed or expired — `batch` holds
  // the kLoadShed fallback ranking iff degraded_fallback was on.
  // kFailedPrecondition: no artifact has been activated yet.
  Status status = Status::Ok();
  core::RecommendedBatch batch;
  // Generation identity of the epoch that (fully) served this response.
  int64_t epoch = 0;
  uint64_t artifact_seed = 0;
  // True when `batch` came from the global-average fallback tier.
  bool degraded_fallback = false;
  // Nonzero on kResourceExhausted: hint for when to retry.
  int64_t retry_after_ms = 0;
  // The id this request was served under (assigned or taken from the
  // request) — the join key into the wide-event JSONL stream.
  uint64_t request_id = 0;
};

// One in-flight request on the non-blocking serve path (see
// ServeRuntime::BeginAsync). The epoch is pinned at Begin time, exactly
// like Handle(): a swap that lands while this request is queued does not
// change what it is served from.
struct AsyncServe {
  ServeRequest request;
  // When the request entered the runtime (injected clock); the latency
  // recorded at FinishAsync is measured from here, so queue wait is
  // charged to the request (coordinated-omission-safe accounting).
  int64_t arrival_ms = 0;
  std::shared_ptr<EpochSnapshot> epoch;
  std::optional<PendingAdmit> pending;
  AdmissionTicket ticket;
  ServeResponse response;
  // True once `response` is final (immediate rejection, validation error,
  // shed/expired resolution, or a completed FinishAsync).
  bool done = false;
  // True once a slot has been granted and the ticket taken.
  bool admitted = false;
  // Wide event under construction; emitted to the runtime's telemetry
  // sink exactly once, at whichever point `done` becomes true.
  obs::RequestTelemetry telemetry;
  bool telemetry_emitted = false;
};

class ServeRuntime {
 public:
  explicit ServeRuntime(ServeRuntimeOptions options);

  // Activates (first call) or hot-swaps (later calls) the artifact at
  // `path`, routed through the reload circuit breaker: while the breaker
  // is open this fails fast with kResourceExhausted without touching the
  // backing store.
  Status Activate(const std::string& path);

  // Serves one request against the currently pinned epoch. Thread-safe;
  // concurrent calls during an Activate() finish on whichever epoch they
  // pinned at entry.
  //
  // Validation: an empty `users` list is answered OK with an empty batch
  // (carrying the pinned epoch's identity) without taking a serving slot;
  // `top_n <= 0` is kInvalidArgument (no fallback — the request is
  // malformed, not overload); `deadline_ms <= 0` expires at admission and
  // follows the normal kDeadlineExceeded path.
  ServeResponse Handle(const ServeRequest& request);

  // Non-blocking counterpart of Handle() for single-threaded drivers
  // (the open-loop load harness): BeginAsync pins the epoch, validates,
  // and enters admission without ever parking a thread. The returned
  // operation is either already done (rejection, validation error,
  // empty-users fast path), admitted (serve it with FinishAsync), or
  // queued (poll after advancing the clock / releasing capacity).
  AsyncServe BeginAsync(const ServeRequest& request, int64_t arrival_ms);

  // Advances a queued operation: purges expired waiters, takes the ticket
  // on grant, finalizes shed/expired responses. Returns true when the
  // operation is ready — either done, or admitted and awaiting
  // FinishAsync.
  bool PollAsync(AsyncServe& op);

  // Serves an admitted operation from its pinned epoch and releases the
  // slot. For an already-done operation this just returns the response.
  ServeResponse FinishAsync(AsyncServe& op);

  // Serves a group of admitted operations together: operations that
  // pinned the same epoch, ask for the same top_n, and carry a
  // ConcurrentSafe recommender are concatenated into one Recommend call
  // and the merged result is sliced back per operation (bit-identical to
  // finishing each alone). Everything else falls through to FinishAsync.
  // The single-threaded counterpart of the threaded Handle() batcher —
  // the open-loop harness collects due operations per tick and amortizes
  // reconstruction across them without parking threads.
  void FinishAsyncBatch(const std::vector<AsyncServe*>& ops);

  const ArtifactSwapper& swapper() const { return swapper_; }
  const CircuitBreaker& reload_breaker() const { return reload_breaker_; }
  const AdmissionController& admission() const { return admission_; }

  // Mutable admission access for clock-advancing drivers that need
  // PurgeExpired() between arrivals.
  AdmissionController& admission_mutable() { return admission_; }

  const Clock* clock() const { return clock_; }
  const ServeTelemetry* telemetry() const { return options_.telemetry; }

  // Null when batching is disabled (batch.window_ms == 0).
  const RequestBatcher* batcher() const { return batcher_.get(); }

  // Async-path batching counters (FinishAsyncBatch groups).
  int64_t async_batches() const {
    return async_batches_.load(std::memory_order_relaxed);
  }
  int64_t async_batched_requests() const {
    return async_batched_requests_.load(std::memory_order_relaxed);
  }

  // Live status snapshot (serve/statusz.h renders it as text or JSON):
  // pinned epoch identity, shard map, breaker/admission state, ε gauges,
  // telemetry windows. `now_ms` < 0 reads the runtime's clock.
  RuntimeIntrospection Introspect(int64_t now_ms = -1) const;

  // Resolves the wide-event id for a request: the request's own id when
  // nonzero, else the next value of the runtime's sequence. Public so
  // composing runtimes (sharded routing) share one id space.
  uint64_t ResolveRequestId(const ServeRequest& request) {
    if (request.request_id != 0) return request.request_id;
    return next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

 private:
  ServeResponse Fallback(Status status,
                         const std::shared_ptr<EpochSnapshot>& epoch,
                         const ServeRequest& request,
                         int64_t retry_after_ms);
  // `use_batcher` routes ConcurrentSafe requests through the window
  // batcher when one is configured. Only the threaded Handle() path opts
  // in: a single-threaded async driver parked in the batcher would wait
  // out every window alone, so FinishAsync serves directly and cross-
  // request amortization on that path comes from FinishAsyncBatch.
  void ServeFromEpoch(const std::shared_ptr<EpochSnapshot>& epoch,
                      const ServeRequest& request, ServeResponse* response,
                      obs::RequestTelemetry* event, bool use_batcher);
  // Finalizes and hands the wide event to the telemetry sink (no-op when
  // no sink is configured).
  void EmitTelemetry(obs::RequestTelemetry& event,
                     const ServeResponse& response);
  void EmitAsyncTelemetry(AsyncServe& op);

  ServeRuntimeOptions options_;
  const Clock* clock_;
  ArtifactSwapper swapper_;
  AdmissionController admission_;
  CircuitBreaker reload_breaker_;
  std::unique_ptr<RequestBatcher> batcher_;
  std::atomic<uint64_t> next_request_id_{0};
  std::atomic<int64_t> async_batches_{0};
  std::atomic<int64_t> async_batched_requests_{0};
};

}  // namespace privrec::serve

#endif  // PRIVREC_SERVE_RUNTIME_H_
