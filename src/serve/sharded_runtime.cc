#include "serve/sharded_runtime.h"

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "core/recommendation.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/telemetry.h"

namespace privrec::serve {

namespace {

// Same metric names as ServeRuntime — the two paths are one serve surface
// and dashboards must not care which routed a request.
obs::Counter& RequestCounter() {
  static obs::Counter& c = obs::GetCounter("privrec.serve.requests_total");
  return c;
}

obs::Counter& FallbackCounter() {
  static obs::Counter& c = obs::GetCounter("privrec.serve.fallback_total");
  return c;
}

obs::Counter& ShardRoutedCounter() {
  static obs::Counter& c =
      obs::GetCounter("privrec.serve.shard_routed_total");
  return c;
}

obs::Histogram& RequestLatency() {
  static obs::Histogram& h = obs::GetHistogram(
      "privrec.serve.request_ms", obs::LatencyBucketsMs());
  return h;
}

}  // namespace

ShardedServeRuntime::ShardedServeRuntime(ServeRuntimeOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SteadyClock::Instance()),
      runtime_(options) {}

Status ShardedServeRuntime::Activate(const std::string& path) {
  return runtime_.Activate(path);
}

ServeResponse ShardedServeRuntime::Handle(const ServeRequest& request) {
  // Pin once; the delegated path re-acquires, which is fine — both
  // acquisitions happen-before any swap that could retire this epoch, and
  // the shared_ptr keeps whichever snapshot each path pinned alive.
  std::shared_ptr<EpochSnapshot> epoch = runtime_.swapper().AcquireMutable();
  const int64_t num_users =
      epoch != nullptr ? epoch->engine.num_users() : 0;
  bool routable = epoch != nullptr && epoch->engine.shard_count() > 1 &&
                  epoch->recommender->ConcurrentSafe() &&
                  request.users.size() > 1 && request.top_n > 0;
  if (routable) {
    for (graph::NodeId u : request.users) {
      if (u < 0 || u >= num_users) {
        routable = false;  // let the delegate's validation policy apply
        break;
      }
    }
  }
  if (!routable) return runtime_.Handle(request);

  obs::SpanScope span("serve.request");
  RequestCounter().Increment();
  ShardRoutedCounter().Increment();
  sharded_requests_.fetch_add(1, std::memory_order_relaxed);
  const int64_t start_ms = clock_->NowMs();
  const uint64_t request_id = runtime_.ResolveRequestId(request);
  span.Arg("request_id", std::to_string(request_id));
  span.Arg("epoch", std::to_string(epoch->epoch));

  obs::RequestTelemetry event;
  event.request_id = request_id;
  event.arrival_ms = start_ms;
  event.users = static_cast<int64_t>(request.users.size());
  event.top_n = request.top_n;
  event.deadline_ms = request.deadline_ms;
  event.shard_count = epoch->engine.shard_count();

  ServeResponse response;
  response.request_id = request_id;
  response.epoch = epoch->epoch;
  response.artifact_seed = epoch->artifact_seed;

  // Hands the finished event to the shared sink (no-op without one).
  auto emit = [&] {
    if (options_.telemetry == nullptr) return;
    FinalizeRequestTelemetry(event, response, clock_->NowMs());
    options_.telemetry->Record(event);
  };

  // One admission slot covers the whole request: the sub-batches run
  // sequentially on this thread, so splitting consumes no extra capacity.
  const int64_t deadline = start_ms + request.deadline_ms;
  Result<AdmissionTicket> ticket =
      runtime_.admission_mutable().Admit(deadline);
  event.queue_wait_ms = clock_->NowMs() - start_ms;
  if (!ticket.ok()) {
    response.status = ticket.status();
    response.retry_after_ms =
        ticket.status().code() == StatusCode::kResourceExhausted
            ? runtime_.admission().RetryAfterHintMs()
            : 0;
    if (options_.degraded_fallback) {
      const std::vector<double>& row = epoch->engine.global_average();
      core::RecommendationList list =
          core::TopNFromDense(row, request.top_n);
      response.batch.lists.assign(request.users.size(), list);
      response.batch.degradation.assign(
          request.users.size(),
          core::DegradationInfo{core::DegradationReason::kLoadShed});
      response.batch.report.users_degraded =
          static_cast<int64_t>(request.users.size());
      response.degraded_fallback = true;
      FallbackCounter().Increment();
    }
    emit();
    return response;
  }

  // Split by owning shard, preserving request order inside each group so
  // every user's list is computed from exactly the inputs the unsplit
  // batch would have used.
  const int64_t route_start_ms = clock_->NowMs();
  const auto shard_count = static_cast<size_t>(epoch->engine.shard_count());
  std::vector<std::vector<graph::NodeId>> groups(shard_count);
  std::vector<std::vector<size_t>> slots(shard_count);
  for (size_t k = 0; k < request.users.size(); ++k) {
    const auto s = static_cast<size_t>(
        epoch->engine.ShardOfUser(request.users[k]));
    groups[s].push_back(request.users[k]);
    slots[s].push_back(k);
  }

  response.batch.lists.resize(request.users.size());
  response.batch.degradation.resize(request.users.size());
  bool first_group = true;
  double reconstruct_ms = 0.0;
  std::string shard_list;
  for (size_t s = 0; s < shard_count; ++s) {
    if (groups[s].empty()) continue;
    event.shards_touched.push_back(static_cast<int64_t>(s));
    if (!shard_list.empty()) shard_list += ',';
    shard_list += std::to_string(s);
    // ConcurrentSafe — no serve_mu needed, same as ServeFromEpoch.
    const int64_t part_start_ms = clock_->NowMs();
    core::RecommendedBatch part =
        epoch->recommender->Recommend(groups[s], request.top_n);
    reconstruct_ms += static_cast<double>(clock_->NowMs() - part_start_ms);
    for (size_t j = 0; j < slots[s].size(); ++j) {
      response.batch.lists[slots[s][j]] = std::move(part.lists[j]);
      response.batch.degradation[slots[s][j]] = part.degradation[j];
    }
    // users_degraded accumulates across sub-batches; the release-shape
    // counters are per-artifact constants, identical in every sub-batch.
    response.batch.report.users_degraded += part.report.users_degraded;
    if (first_group) {
      response.batch.report.empty_clusters = part.report.empty_clusters;
      response.batch.report.singleton_clusters =
          part.report.singleton_clusters;
      response.batch.report.nonfinite_sanitized =
          part.report.nonfinite_sanitized;
      response.batch.report.degenerate_groups =
          part.report.degenerate_groups;
      first_group = false;
    }
  }
  ticket->Release();
  span.Arg("shards", shard_list);
  // The routed path never merges with other requests (batching happens in
  // the delegate): occupancy is this request alone.
  event.batch_requests = 1;
  event.batch_users = static_cast<int64_t>(request.users.size());

  const int64_t end_ms = clock_->NowMs();
  event.reconstruct_ms = reconstruct_ms;
  // Route time = split/scatter overhead around the recommender calls.
  event.route_ms =
      static_cast<double>(end_ms - route_start_ms) - reconstruct_ms;
  RequestLatency().Observe(static_cast<double>(end_ms - start_ms));
  emit();
  return response;
}

}  // namespace privrec::serve
