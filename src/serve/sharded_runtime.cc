#include "serve/sharded_runtime.h"

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "core/recommendation.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace privrec::serve {

namespace {

// Same metric names as ServeRuntime — the two paths are one serve surface
// and dashboards must not care which routed a request.
obs::Counter& RequestCounter() {
  static obs::Counter& c = obs::GetCounter("privrec.serve.requests_total");
  return c;
}

obs::Counter& FallbackCounter() {
  static obs::Counter& c = obs::GetCounter("privrec.serve.fallback_total");
  return c;
}

obs::Counter& ShardRoutedCounter() {
  static obs::Counter& c =
      obs::GetCounter("privrec.serve.shard_routed_total");
  return c;
}

obs::Histogram& RequestLatency() {
  static obs::Histogram& h = obs::GetHistogram(
      "privrec.serve.request_ms", obs::LatencyBucketsMs());
  return h;
}

}  // namespace

ShardedServeRuntime::ShardedServeRuntime(ServeRuntimeOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SteadyClock::Instance()),
      runtime_(options) {}

Status ShardedServeRuntime::Activate(const std::string& path) {
  return runtime_.Activate(path);
}

ServeResponse ShardedServeRuntime::Handle(const ServeRequest& request) {
  // Pin once; the delegated path re-acquires, which is fine — both
  // acquisitions happen-before any swap that could retire this epoch, and
  // the shared_ptr keeps whichever snapshot each path pinned alive.
  std::shared_ptr<EpochSnapshot> epoch = runtime_.swapper().AcquireMutable();
  const int64_t num_users =
      epoch != nullptr ? epoch->engine.num_users() : 0;
  bool routable = epoch != nullptr && epoch->engine.shard_count() > 1 &&
                  epoch->recommender->ConcurrentSafe() &&
                  request.users.size() > 1 && request.top_n > 0;
  if (routable) {
    for (graph::NodeId u : request.users) {
      if (u < 0 || u >= num_users) {
        routable = false;  // let the delegate's validation policy apply
        break;
      }
    }
  }
  if (!routable) return runtime_.Handle(request);

  PRIVREC_SPAN("serve.request");
  RequestCounter().Increment();
  ShardRoutedCounter().Increment();
  sharded_requests_.fetch_add(1, std::memory_order_relaxed);
  const int64_t start_ms = clock_->NowMs();

  ServeResponse response;
  response.epoch = epoch->epoch;
  response.artifact_seed = epoch->artifact_seed;

  // One admission slot covers the whole request: the sub-batches run
  // sequentially on this thread, so splitting consumes no extra capacity.
  const int64_t deadline = start_ms + request.deadline_ms;
  Result<AdmissionTicket> ticket =
      runtime_.admission_mutable().Admit(deadline);
  if (!ticket.ok()) {
    response.status = ticket.status();
    response.retry_after_ms =
        ticket.status().code() == StatusCode::kResourceExhausted
            ? runtime_.admission().RetryAfterHintMs()
            : 0;
    if (options_.degraded_fallback) {
      const std::vector<double>& row = epoch->engine.global_average();
      core::RecommendationList list =
          core::TopNFromDense(row, request.top_n);
      response.batch.lists.assign(request.users.size(), list);
      response.batch.degradation.assign(
          request.users.size(),
          core::DegradationInfo{core::DegradationReason::kLoadShed});
      response.batch.report.users_degraded =
          static_cast<int64_t>(request.users.size());
      response.degraded_fallback = true;
      FallbackCounter().Increment();
    }
    return response;
  }

  // Split by owning shard, preserving request order inside each group so
  // every user's list is computed from exactly the inputs the unsplit
  // batch would have used.
  const auto shard_count = static_cast<size_t>(epoch->engine.shard_count());
  std::vector<std::vector<graph::NodeId>> groups(shard_count);
  std::vector<std::vector<size_t>> slots(shard_count);
  for (size_t k = 0; k < request.users.size(); ++k) {
    const auto s = static_cast<size_t>(
        epoch->engine.ShardOfUser(request.users[k]));
    groups[s].push_back(request.users[k]);
    slots[s].push_back(k);
  }

  response.batch.lists.resize(request.users.size());
  response.batch.degradation.resize(request.users.size());
  bool first_group = true;
  for (size_t s = 0; s < shard_count; ++s) {
    if (groups[s].empty()) continue;
    // ConcurrentSafe — no serve_mu needed, same as ServeFromEpoch.
    core::RecommendedBatch part =
        epoch->recommender->Recommend(groups[s], request.top_n);
    for (size_t j = 0; j < slots[s].size(); ++j) {
      response.batch.lists[slots[s][j]] = std::move(part.lists[j]);
      response.batch.degradation[slots[s][j]] = part.degradation[j];
    }
    // users_degraded accumulates across sub-batches; the release-shape
    // counters are per-artifact constants, identical in every sub-batch.
    response.batch.report.users_degraded += part.report.users_degraded;
    if (first_group) {
      response.batch.report.empty_clusters = part.report.empty_clusters;
      response.batch.report.singleton_clusters =
          part.report.singleton_clusters;
      response.batch.report.nonfinite_sanitized =
          part.report.nonfinite_sanitized;
      response.batch.report.degenerate_groups =
          part.report.degenerate_groups;
      first_group = false;
    }
  }
  ticket->Release();

  RequestLatency().Observe(
      static_cast<double>(clock_->NowMs() - start_ms));
  return response;
}

}  // namespace privrec::serve
