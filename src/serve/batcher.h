// RequestBatcher: cross-request coalescing for the serve runtime.
//
// Concurrent requests that pinned the SAME epoch and ask for the same
// top_n are merged into one recommender call: the first arrival opens a
// batch and leads it (waiting out a bounded window for followers), later
// arrivals append their users and block until the leader executes, and
// every member then slices its own lists back out. Because every
// batchable mechanism (ConcurrentSafe: Cluster, Exact) computes each
// user independently, serving the union and slicing is bit-identical to
// serving each request alone — the batcher changes amortization, never
// bytes. The fresh-noise baselines are NOT batchable: their RNG stream
// must see exactly one invocation per request, so the runtime keeps them
// on the serialized single-request path.
//
// Window accounting: expiry is checked on the runtime's injected
// serve::Clock (authoritative in virtual-time tests), with a real-time
// cap of the same width so a ManualClock that never advances cannot park
// a leader forever. A batch also closes early the moment it reaches
// max_requests or max_users.

#ifndef PRIVREC_SERVE_BATCHER_H_
#define PRIVREC_SERVE_BATCHER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/degradation.h"
#include "graph/ids.h"
#include "serve/clock.h"
#include "serve/swapper.h"

namespace privrec::serve {

struct BatchOptions {
  // Batch window in ms; 0 disables cross-request batching entirely (the
  // runtime then serves every request on the historical direct path).
  int64_t window_ms = 0;
  // A batch closes early once it holds this many member requests...
  int64_t max_requests = 8;
  // ...or this many total users across its members.
  int64_t max_users = 256;
};

class RequestBatcher {
 public:
  // Executes one merged user list against the batch's pinned epoch.
  // Called on exactly one member thread per batch, without the batcher's
  // lock held.
  using Executor = std::function<core::RecommendedBatch(
      EpochSnapshot& epoch, const std::vector<graph::NodeId>& users,
      int64_t top_n)>;

  // This request's share of an executed batch, plus the occupancy of the
  // batch that served it (for wide-event telemetry).
  struct Slice {
    core::RecommendedBatch batch;
    int64_t batch_requests = 0;
    int64_t batch_users = 0;
  };

  RequestBatcher(const BatchOptions& options, const Clock* clock);

  // Joins (or opens) the batch for (epoch, top_n), blocks until it
  // executes, and returns this request's slice. `users` must stay valid
  // for the duration of the call (the caller blocks, so it does). The
  // report's artifact-shape counters are copied from the merged batch;
  // users_degraded is recomputed for the slice.
  Slice Submit(const std::shared_ptr<EpochSnapshot>& epoch,
               const std::vector<graph::NodeId>& users, int64_t top_n,
               const Executor& executor);

  // Occupancy counters: merged executions and the member requests they
  // carried (batches of one count too — occupancy is their ratio).
  int64_t batches_formed() const {
    return batches_formed_.load(std::memory_order_relaxed);
  }
  int64_t requests_batched() const {
    return requests_batched_.load(std::memory_order_relaxed);
  }

 private:
  struct Batch;

  BatchOptions options_;
  const Clock* clock_;
  std::mutex mu_;  // guards open_ and every Batch's member state
  std::shared_ptr<Batch> open_;
  std::atomic<int64_t> batches_formed_{0};
  std::atomic<int64_t> requests_batched_{0};
};

}  // namespace privrec::serve

#endif  // PRIVREC_SERVE_BATCHER_H_
