// Injected time source for the serving runtime.
//
// Every time-dependent policy in src/serve (admission deadlines, circuit-
// breaker cooldowns) reads time through this interface rather than the
// wall clock directly, so the state machines can be driven deterministically
// in tests: a ManualClock advances only when told to, which makes
// "cooldown elapsed" and "deadline passed" exact, repeatable events instead
// of races against the scheduler. Production code uses SteadyClock, a
// monotonic clock immune to wall-time jumps.

#ifndef PRIVREC_SERVE_CLOCK_H_
#define PRIVREC_SERVE_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace privrec::serve {

class Clock {
 public:
  virtual ~Clock() = default;
  // Milliseconds on an arbitrary monotonic scale; only differences matter.
  virtual int64_t NowMs() const = 0;
};

// Monotonic wall clock (std::chrono::steady_clock).
class SteadyClock final : public Clock {
 public:
  int64_t NowMs() const override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  // Shared instance for the common "no clock injected" default.
  static const SteadyClock* Instance() {
    static const SteadyClock clock;
    return &clock;
  }
};

// Test clock: starts at 0, moves only via Advance/Set. Thread-safe.
class ManualClock final : public Clock {
 public:
  int64_t NowMs() const override {
    return now_ms_.load(std::memory_order_relaxed);
  }
  void Advance(int64_t ms) {
    now_ms_.fetch_add(ms, std::memory_order_relaxed);
  }
  void Set(int64_t ms) { now_ms_.store(ms, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> now_ms_{0};
};

}  // namespace privrec::serve

#endif  // PRIVREC_SERVE_CLOCK_H_
