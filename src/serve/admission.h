// Admission control for the serving runtime: a concurrency limiter with a
// bounded wait queue, per-request deadlines, and load shedding.
//
// The policy, evaluated on the injected clock:
//
//   - at most `max_concurrency` requests hold a serving slot at once;
//   - at most `queue_depth` further requests may WAIT for a slot; a
//     request arriving beyond that is shed immediately with
//     kResourceExhausted and a retry-after hint (failing fast under
//     overload keeps the queue short and latency bounded — Zhao et al.'s
//     serving-side lesson);
//   - a request whose deadline passes before it gets a slot (or that
//     arrives with an already-expired deadline) fails with
//     kDeadlineExceeded.
//
// Both rejection codes are typed so the runtime can layer the degradation
// tiers on top: a shed request can still be answered from the global-
// average fallback (core/degradation kLoadShed) without touching the
// contended serve path.

#ifndef PRIVREC_SERVE_ADMISSION_H_
#define PRIVREC_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/status.h"
#include "serve/clock.h"

namespace privrec::serve {

struct AdmissionOptions {
  // Concurrent requests allowed past admission.
  int64_t max_concurrency = 4;
  // Requests allowed to wait for a slot beyond max_concurrency; arrivals
  // beyond this are shed immediately.
  int64_t queue_depth = 8;
  // Retry-after hint attached to shed responses.
  int64_t retry_after_ms = 50;
};

class AdmissionController;

// RAII slot: releasing returns the slot to the controller and wakes one
// waiter. Move-only; a default-constructed ticket holds nothing.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  ~AdmissionTicket() { Release(); }
  AdmissionTicket(AdmissionTicket&& other) noexcept
      : controller_(other.controller_) {
    other.controller_ = nullptr;
  }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    if (this != &other) {
      Release();
      controller_ = other.controller_;
      other.controller_ = nullptr;
    }
    return *this;
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  bool holds_slot() const { return controller_ != nullptr; }
  void Release();

 private:
  friend class AdmissionController;
  explicit AdmissionTicket(AdmissionController* controller)
      : controller_(controller) {}
  AdmissionController* controller_ = nullptr;
};

class AdmissionController {
 public:
  // Null clock = SteadyClock.
  explicit AdmissionController(AdmissionOptions options,
                               const Clock* clock = nullptr);

  // Tries to take a serving slot before `deadline_ms` (absolute, on the
  // injected clock). Errors: kResourceExhausted (shed — queue full),
  // kDeadlineExceeded (deadline hit while queued or already expired).
  Result<AdmissionTicket> Admit(int64_t deadline_ms);

  int64_t in_flight() const;
  int64_t waiting() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  friend class AdmissionTicket;
  void ReleaseSlot();

  const AdmissionOptions options_;
  const Clock* clock_;

  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  int64_t in_flight_ = 0;
  int64_t waiting_ = 0;
};

}  // namespace privrec::serve

#endif  // PRIVREC_SERVE_ADMISSION_H_
