// Admission control for the serving runtime: a concurrency limiter with a
// bounded FIFO wait queue, per-request deadlines, and load shedding.
//
// The policy, evaluated on the injected clock:
//
//   - at most `max_concurrency` requests hold a serving slot at once;
//   - at most `queue_depth` further requests may WAIT for a slot; a
//     request arriving beyond that is shed immediately with
//     kResourceExhausted and a retry-after hint (failing fast under
//     overload keeps the queue short and latency bounded — Zhao et al.'s
//     serving-side lesson);
//   - a request whose deadline passes before it gets a slot (or that
//     arrives with an already-expired deadline) fails with
//     kDeadlineExceeded. Expired waiters are PURGED — at admission entry
//     and whenever a slot frees — so a dead request never holds a queue
//     position against live traffic, and a freed slot always goes to the
//     first waiter that can still use it;
//   - the retry-after hint is load-aware: an EWMA of observed slot-hold
//     times (measured on the injected clock) scales with the current
//     queue occupancy to estimate the wait a new arrival would face,
//     floored at the configured constant.
//
// Both rejection codes are typed so the runtime can layer the degradation
// tiers on top: a shed request can still be answered from the global-
// average fallback (core/degradation kLoadShed) without touching the
// contended serve path.
//
// Two admission styles share the same queue and policy:
//
//   Admit()       blocks the calling thread until a slot, shed, or expiry
//                 (classic thread-per-request serving);
//   AdmitAsync()  never blocks: returns a PendingAdmit handle that is
//                 resolved either immediately or later, when a release
//                 grants it the freed slot (or a purge expires it). This
//                 is what the open-loop load harness (src/loadgen) drives
//                 in virtual time — queue occupancy is real, but no
//                 thread ever parks, so a single-threaded discrete-event
//                 loop reproduces admission decisions bit-for-bit.

#ifndef PRIVREC_SERVE_ADMISSION_H_
#define PRIVREC_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

#include "common/status.h"
#include "serve/clock.h"

namespace privrec::serve {

struct AdmissionOptions {
  // Concurrent requests allowed past admission.
  int64_t max_concurrency = 4;
  // Requests allowed to wait for a slot beyond max_concurrency; arrivals
  // beyond this are shed immediately.
  int64_t queue_depth = 8;
  // FLOOR for the retry-after hint attached to shed responses; the
  // controller scales the hint up with queue occupancy (RetryAfterHintMs).
  int64_t retry_after_ms = 50;
  // Smoothing factor for the slot-hold-time EWMA behind the hint, in
  // (0, 1]; 1 tracks only the latest hold.
  double hold_ewma_alpha = 0.2;
};

class AdmissionController;

// RAII slot: releasing returns the slot to the controller and hands it to
// the first live waiter. Move-only; a default-constructed ticket holds
// nothing.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  ~AdmissionTicket() { Release(); }
  AdmissionTicket(AdmissionTicket&& other) noexcept
      : controller_(other.controller_), admit_ms_(other.admit_ms_) {
    other.controller_ = nullptr;
  }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    if (this != &other) {
      Release();
      controller_ = other.controller_;
      admit_ms_ = other.admit_ms_;
      other.controller_ = nullptr;
    }
    return *this;
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  bool holds_slot() const { return controller_ != nullptr; }
  void Release();

 private:
  friend class AdmissionController;
  friend class PendingAdmit;
  AdmissionTicket(AdmissionController* controller, int64_t admit_ms)
      : controller_(controller), admit_ms_(admit_ms) {}
  AdmissionController* controller_ = nullptr;
  // When the slot was granted (injected clock); release reports the hold
  // duration so the controller's wait estimate tracks real service times.
  int64_t admit_ms_ = 0;
};

// Non-blocking admission handle. Resolution happens either at
// AdmitAsync() time (immediate slot, shed, or already-expired deadline)
// or later, inside a ReleaseSlot/PurgeExpired on some other request's
// path. The caller polls state() after advancing the clock or releasing
// capacity; no callback, no thread.
class PendingAdmit {
 public:
  enum class State {
    kQueued,    // waiting for a slot
    kAdmitted,  // slot granted; TakeTicket() exactly once
    kShed,      // rejected at entry: queue full
    kExpired,   // deadline passed at entry, while queued, or at purge
  };

  State state() const;
  bool resolved() const { return state() != State::kQueued; }

  // Typed status for a resolved handle: Ok / kResourceExhausted (with the
  // load-aware retry hint in the message) / kDeadlineExceeded.
  Status status() const;

  // Retry-after hint captured when the request was shed; 0 otherwise.
  int64_t retry_after_ms() const;

  // Moves the granted slot out; valid exactly once, iff kAdmitted.
  AdmissionTicket TakeTicket();

 private:
  friend class AdmissionController;
  struct Rep;
  explicit PendingAdmit(std::shared_ptr<Rep> rep) : rep_(std::move(rep)) {}
  std::shared_ptr<Rep> rep_;
};

class AdmissionController {
 public:
  // Null clock = SteadyClock.
  explicit AdmissionController(AdmissionOptions options,
                               const Clock* clock = nullptr);

  // Tries to take a serving slot before `deadline_ms` (absolute, on the
  // injected clock), blocking while queued. Errors: kResourceExhausted
  // (shed — queue full), kDeadlineExceeded (deadline hit while queued or
  // already expired).
  Result<AdmissionTicket> Admit(int64_t deadline_ms);

  // Non-blocking admission: immediately resolved or queued (see
  // PendingAdmit). The queue position is real — a queued handle counts
  // against queue_depth until granted or purged.
  PendingAdmit AdmitAsync(int64_t deadline_ms);

  // Purges queued waiters whose deadline has passed; they resolve to
  // kExpired without ever taking a slot. Runs automatically at admission
  // entry and on every slot release; exposed for drivers that advance an
  // injected clock without traffic. Returns the number purged.
  int64_t PurgeExpired();

  int64_t in_flight() const;
  int64_t waiting() const;

  // Load-aware retry hint: the estimated queue wait a new arrival would
  // face — ceil(hold_estimate * (waiting + 1) / max_concurrency) — with
  // options().retry_after_ms as the floor (also returned verbatim before
  // any hold time has been observed).
  int64_t RetryAfterHintMs() const;

  // Current EWMA of slot-hold durations on the injected clock (0 until
  // the first release). Exposed for tests and the load harness report.
  double EstimatedHoldMs() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  friend class AdmissionTicket;
  friend class PendingAdmit;

  void ReleaseSlot(int64_t admit_ms);
  int64_t PurgeExpiredLocked(int64_t now_ms);
  int64_t RetryAfterHintLocked() const;
  PendingAdmit ResolveEntry(int64_t deadline_ms);

  const AdmissionOptions options_;
  const Clock* clock_;

  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  // FIFO of queued admissions (blocking and async waiters share it);
  // resolved entries are skipped and dropped lazily. waiting_ counts only
  // still-queued entries.
  std::deque<std::shared_ptr<PendingAdmit::Rep>> queue_;
  int64_t in_flight_ = 0;
  int64_t waiting_ = 0;
  double hold_ewma_ms_ = 0.0;
  // False until the first release seeds the EWMA (a genuine 0 ms hold is
  // a valid seed on a virtual clock and must not look like "no data").
  bool has_hold_ = false;
};

}  // namespace privrec::serve

#endif  // PRIVREC_SERVE_ADMISSION_H_
