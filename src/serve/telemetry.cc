#include "serve/telemetry.h"

#include "obs/metrics.h"

namespace privrec::serve {

namespace {

obs::Counter& EventsCounter() {
  static obs::Counter& c =
      obs::GetCounter("privrec.serve.telemetry_events_total");
  return c;
}

obs::Counter& SampledCounter() {
  static obs::Counter& c =
      obs::GetCounter("privrec.serve.telemetry_sampled_total");
  return c;
}

obs::Counter& BreachCounter() {
  static obs::Counter& c =
      obs::GetCounter("privrec.serve.slo_window_breaches_total");
  return c;
}

obs::Counter& AlertCounter() {
  static obs::Counter& c =
      obs::GetCounter("privrec.serve.slo_burn_alerts_total");
  return c;
}

obs::Gauge& BurnGauge() {
  static obs::Gauge& g = obs::GetGauge("privrec.serve.slo_burn_rate");
  return g;
}

obs::RequestOutcome OutcomeOfStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return obs::RequestOutcome::kOk;
    case StatusCode::kResourceExhausted:
      return obs::RequestOutcome::kShed;
    case StatusCode::kDeadlineExceeded:
      return obs::RequestOutcome::kExpired;
    case StatusCode::kInvalidArgument:
      return obs::RequestOutcome::kInvalid;
    case StatusCode::kFailedPrecondition:
      return obs::RequestOutcome::kNoEpoch;
    default:
      return obs::RequestOutcome::kError;
  }
}

obs::AdmissionOutcome AdmissionOfEvent(
    const obs::RequestTelemetry& event) {
  switch (event.outcome) {
    case obs::RequestOutcome::kShed:
      return obs::AdmissionOutcome::kShed;
    case obs::RequestOutcome::kExpired:
      return obs::AdmissionOutcome::kExpired;
    case obs::RequestOutcome::kOk:
      // The empty-users fast path answers OK without entering admission.
      if (event.users == 0) return obs::AdmissionOutcome::kNone;
      return event.queue_wait_ms > 0 ? obs::AdmissionOutcome::kQueued
                                     : obs::AdmissionOutcome::kImmediate;
    default:
      return obs::AdmissionOutcome::kNone;
  }
}

}  // namespace

void FinalizeRequestTelemetry(obs::RequestTelemetry& event,
                              const ServeResponse& response,
                              int64_t resolve_ms) {
  event.outcome = OutcomeOfStatus(response.status.code());
  event.epoch = response.epoch;
  event.artifact_seed = response.artifact_seed;
  event.degraded = response.degraded_fallback;
  event.users_degraded = response.batch.report.users_degraded;
  event.retry_after_ms = response.retry_after_ms;
  event.resolve_ms = resolve_ms;
  event.latency_ms = static_cast<double>(resolve_ms - event.arrival_ms);
  event.admission = AdmissionOfEvent(event);
}

ServeTelemetry::ServeTelemetry(ServeTelemetryOptions options)
    : options_(options),
      windows_(options.window_ms, options.budget, options.max_windows) {}

void ServeTelemetry::DrainWindowSignalsLocked() {
  const obs::WindowSeries& series = windows_.series();
  // dropped_windows shifts the vector, but breaches_/alerts are counted
  // monotonically off the tracker so eviction cannot double-count.
  const int64_t new_breaches = windows_.breaches() - breaches_;
  if (new_breaches > 0) BreachCounter().Add(new_breaches);
  breaches_ = windows_.breaches();
  windows_seen_ = series.windows.size();
  for (; alerts_seen_ < series.alerts.size(); ++alerts_seen_) {
    AlertCounter().Increment();
    jsonl_ += obs::WindowAlertToJson(series.alerts[alerts_seen_]);
    jsonl_ += '\n';
  }
  BurnGauge().Set(windows_.burn_rate());
}

void ServeTelemetry::Record(const obs::RequestTelemetry& event) {
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  EventsCounter().Increment();
  windows_.Observe(event.resolve_ms, event.outcome, event.degraded,
                   event.latency_ms);
  DrainWindowSignalsLocked();
  if (!obs::SampleWideEvent(event,
                            {options_.sample_every, options_.slow_ms})) {
    return;
  }
  ++sampled_;
  SampledCounter().Increment();
  if (events_.size() >= options_.max_events) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
  jsonl_ += obs::RequestTelemetryToJson(event);
  jsonl_ += '\n';
}

void ServeTelemetry::AdvanceTo(int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  windows_.AdvanceTo(now_ms);
  DrainWindowSignalsLocked();
}

void ServeTelemetry::Flush(int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  windows_.AdvanceTo(now_ms);
  windows_.Flush();
  DrainWindowSignalsLocked();
}

obs::WindowSeries ServeTelemetry::series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return windows_.series();
}

std::vector<obs::RequestTelemetry> ServeTelemetry::sampled_events()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string ServeTelemetry::EventsJsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jsonl_;
}

int64_t ServeTelemetry::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

int64_t ServeTelemetry::sampled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sampled_;
}

int64_t ServeTelemetry::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

int64_t ServeTelemetry::window_breaches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return windows_.breaches();
}

int64_t ServeTelemetry::burn_alerts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(windows_.series().alerts.size());
}

double ServeTelemetry::burn_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return windows_.burn_rate();
}

}  // namespace privrec::serve
